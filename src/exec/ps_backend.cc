#include "exec/ps_backend.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "exec/transport.h"
#include "learn/data.h"
#include "learn/matrix.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace tictac::exec {
namespace {

constexpr std::size_t kInvalidTask = std::numeric_limits<std::size_t>::max();

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Real-clock compute payload: spins actual arithmetic until `seconds` of
// wall clock elapsed. A deadline spin (rather than a calibrated iteration
// count) keeps the payload proportional to the modeled duration on any
// machine without a warm-up pass.
void SpinFor(double seconds) {
  if (seconds <= 0.0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  volatile double x = 1.0000001;
  do {
    for (int i = 0; i < 256; ++i) x = x * 1.0000001 + 1e-12;
  } while (std::chrono::steady_clock::now() < deadline);
}

// Real-clock wire payload: copies `bytes` through bounded scratch buffers
// so transfer time grows with transfer size. Returns bytes copied.
std::uint64_t ChurnWire(std::uint64_t bytes) {
  constexpr std::size_t kChunk = 256 * 1024;
  thread_local std::vector<unsigned char> src(kChunk, 0xA5);
  thread_local std::vector<unsigned char> dst(kChunk);
  std::uint64_t copied = 0;
  while (copied < bytes) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(bytes - copied, kChunk));
    std::memcpy(dst.data(), src.data(), n);
    src.swap(dst);
    copied += n;
  }
  return copied;
}

// Per-(worker, iteration) lazy gradient computation. Any of the worker's
// send tasks may run first (they live on different uplink channels), so
// the first one computes; every send transitively depends on every recv
// of its worker, so the replica's parameters are complete by then.
struct WorkerCargo {
  std::mutex mu;
  bool computed = false;
  double loss = 0.0;
  learn::Gradients grads;
};

}  // namespace

double ExecutionTrace::MeanIterationTime() const {
  if (iteration_time_s.empty()) return 0.0;
  double sum = 0.0;
  for (double t : iteration_time_s) sum += t;
  return sum / static_cast<double>(iteration_time_s.size());
}

PsBackend::PsBackend(const runtime::Lowering& lowering,
                     const core::Graph& worker_graph, BackendOptions options)
    : lowering_(&lowering), graph_(&worker_graph),
      options_(std::move(options)) {
  if (options_.iterations < 1) {
    throw std::invalid_argument("PsBackend: iterations must be >= 1");
  }
  if (options_.work_scale <= 0.0 || options_.wire_scale <= 0.0) {
    throw std::invalid_argument("PsBackend: payload scales must be > 0");
  }
  if (options_.hidden_compute_factor <= 0.0 ||
      options_.hidden_bandwidth_factor <= 0.0 ||
      options_.hidden_latency_factor <= 0.0) {
    throw std::invalid_argument("PsBackend: hidden platform factors must be > 0");
  }
  if (options_.link_jitter_sigma < 0.0) {
    throw std::invalid_argument("PsBackend: link_jitter_sigma must be >= 0");
  }
  if (options_.queue_capacity < 0) {
    throw std::invalid_argument("PsBackend: queue_capacity must be >= 0");
  }
  const int W = lowering.num_workers;
  if (static_cast<int>(options_.straggler_factors.size()) > W) {
    throw std::invalid_argument("PsBackend: straggler factor for worker beyond cluster");
  }
  for (double f : options_.straggler_factors) {
    if (f < 1.0) {
      throw std::invalid_argument("PsBackend: straggler factors must be >= 1");
    }
  }
  if (W < 1 || (lowering.num_resources - W) % (2 * W + 1) != 0 ||
      (lowering.num_resources - W) / (2 * W + 1) < 1) {
    throw std::invalid_argument("PsBackend: lowering has no worker/PS resource layout");
  }
  if (options_.workload.batch_per_worker < 1 ||
      options_.workload.dataset_examples < 1) {
    throw std::invalid_argument("PsBackend: workload needs examples and a batch size");
  }
}

ExecutionTrace PsBackend::Run() {
  const runtime::Lowering& L = *lowering_;
  const core::Graph& G = *graph_;
  const BackendOptions& opt = options_;
  const int W = L.num_workers;
  const int R = L.num_resources;
  const int S = (R - W) / (2 * W + 1);
  const std::size_t N = L.tasks.size();
  const int P = static_cast<int>(L.update_task.size());

  const auto downlink = [&](int w, int s) { return W + w * S + s; };
  const auto uplink = [&](int w, int s) { return W + W * S + w * S + s; };

  // --- static task metadata (parameter / shard provenance) ------------------
  std::vector<std::int64_t> bytes_of_param(static_cast<std::size_t>(P), 0);
  for (const core::Op& op : G.ops()) {
    if (op.kind == core::OpKind::kRecv && op.param >= 0 && op.param < P) {
      bytes_of_param[static_cast<std::size_t>(op.param)] = op.bytes;
    }
  }
  std::vector<int> param_of(N, -1);
  std::vector<int> shard_of(N, -1);
  std::vector<int> ps_of_param(static_cast<std::size_t>(P), 0);
  for (int p = 0; p < P; ++p) {
    // Read tasks are lowered first, one per parameter, on their shard's CPU.
    const auto t = static_cast<std::size_t>(p);
    ps_of_param[t] = L.tasks[t].resource - (W + 2 * W * S);
    param_of[t] = p;
    shard_of[t] = ps_of_param[t];
  }
  bool has_sends = false;
  bool has_updates = false;
  for (std::size_t t = static_cast<std::size_t>(P); t < N; ++t) {
    const sim::Task& task = L.tasks[t];
    if (core::IsCommunication(task.kind)) {
      param_of[t] = G.op(task.op).param;
      shard_of[t] = ps_of_param[static_cast<std::size_t>(param_of[t])];
      has_sends |= task.kind == core::OpKind::kSend;
    }
  }
  for (int p = 0; p < P; ++p) {
    const sim::TaskId upd = L.update_task[static_cast<std::size_t>(p)];
    if (upd < 0) continue;
    has_updates = true;
    param_of[static_cast<std::size_t>(upd)] = p;
    shard_of[static_cast<std::size_t>(upd)] = ps_of_param[static_cast<std::size_t>(p)];
    const sim::TaskId agg = L.tasks[static_cast<std::size_t>(upd)].preds.front();
    param_of[static_cast<std::size_t>(agg)] = p;
    shard_of[static_cast<std::size_t>(agg)] = ps_of_param[static_cast<std::size_t>(p)];
  }

  std::vector<std::vector<std::size_t>> succs(N);
  std::vector<int> pred_count(N, 0);
  std::vector<int> total_on(static_cast<std::size_t>(R), 0);
  int num_groups = 0;
  for (std::size_t t = 0; t < N; ++t) {
    const sim::Task& task = L.tasks[t];
    pred_count[t] = static_cast<int>(task.preds.size());
    for (sim::TaskId pred : task.preds) {
      succs[static_cast<std::size_t>(pred)].push_back(t);
    }
    ++total_on[static_cast<std::size_t>(task.resource)];
    if (task.gate_group >= 0) num_groups = std::max(num_groups, task.gate_group + 1);
  }

  // Deterministic clock: fix each resource's execution order from one
  // reference simulation of the same lowering, then replay it with real
  // threads (readiness and gates still enforced by synchronization).
  std::vector<std::vector<std::size_t>> replay(static_cast<std::size_t>(R));
  if (opt.deterministic_clock) {
    const sim::SimResult ref = L.BuildSim().Run(sim::SimOptions{}, opt.seed);
    for (sim::TaskId t : ref.start_order) {
      replay[static_cast<std::size_t>(L.tasks[static_cast<std::size_t>(t)].resource)]
          .push_back(static_cast<std::size_t>(t));
    }
  }

  // --- training cargo -------------------------------------------------------
  learn::Mlp ps_model(opt.workload.shape, opt.seed);
  const int cargo_params = std::min(P, static_cast<int>(ps_model.num_params()));
  std::vector<learn::Mlp> worker_models(static_cast<std::size_t>(W), ps_model);
  learn::Dataset dataset = learn::MakeGaussianMixture(
      opt.workload.dataset_examples, opt.workload.shape.inputs,
      static_cast<int>(opt.workload.shape.classes), opt.workload.dataset_seed);
  if (opt.seed != 0) dataset = dataset.Shuffled(opt.seed);
  const bool trains = has_sends && has_updates && cargo_params > 0;

  // --- transport ------------------------------------------------------------
  int max_per_shard = 1;
  {
    std::vector<int> count(static_cast<std::size_t>(S), 0);
    for (int s : ps_of_param) ++count[static_cast<std::size_t>(s)];
    for (int c : count) max_per_shard = std::max(max_per_shard, c);
  }
  int capacity = opt.queue_capacity > 0 ? opt.queue_capacity : max_per_shard;
  if (has_sends && !has_updates) {
    // Pushed gradients are never aggregated (inference-style lowering with
    // sends): residue accumulates across iterations, so widen the bound.
    capacity = std::max(capacity, max_per_shard * opt.iterations);
  }
  InProcTransport transport(R, capacity);

  // Gradient tensors parked between a parameter's aggregate and update
  // tasks (dependency-ordered, same PS CPU).
  std::vector<std::vector<std::vector<double>>> agg(static_cast<std::size_t>(P));

  const auto straggler_factor = [&](int w) {
    return (w >= 0 && static_cast<std::size_t>(w) < opt.straggler_factors.size())
               ? opt.straggler_factors[static_cast<std::size_t>(w)]
               : 1.0;
  };

  // Virtual durations: the hidden platform the deterministic machine
  // "really" runs at — a pure function of (task, iteration, seed), so
  // timestamps are interleaving-free.
  const auto virtual_duration = [&](std::size_t t, int iter) {
    const sim::Task& task = L.tasks[t];
    double d = task.duration;
    if (task.kind == core::OpKind::kCompute) {
      d = d / opt.hidden_compute_factor * straggler_factor(task.worker);
    } else if (core::IsCommunication(task.kind)) {
      const double wire = std::max(0.0, d - opt.assumed.latency_s);
      d = opt.hidden_latency_factor * opt.assumed.latency_s +
          wire / opt.hidden_bandwidth_factor;
      if (opt.link_jitter_sigma > 0.0) {
        d *= util::Rng::Stream(
                 opt.seed + 0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(iter) + 1),
                 static_cast<std::uint64_t>(t))
                 .Lognormal(1.0, opt.link_jitter_sigma);
      }
    }
    return d;
  };

  ExecutionTrace trace;
  trace.handoff_order.assign(static_cast<std::size_t>(W), {});

  for (int iter = 0; iter < opt.iterations; ++iter) {
    sim::SimResult res;
    res.start.assign(N, 0.0);
    res.end.assign(N, 0.0);
    res.start_order.reserve(N);

    std::vector<int> remaining = pred_count;
    std::vector<char> ready(N, 0);
    std::vector<std::vector<std::size_t>> ready_q(static_cast<std::size_t>(R));
    std::vector<std::size_t> next_idx(static_cast<std::size_t>(R), 0);
    std::vector<int> done_on(static_cast<std::size_t>(R), 0);
    std::vector<int> gate_counter(static_cast<std::size_t>(num_groups), 0);
    std::vector<double> group_vlast(static_cast<std::size_t>(num_groups), 0.0);
    std::vector<double> vfree(static_cast<std::size_t>(R), 0.0);
    std::vector<std::unique_ptr<WorkerCargo>> cargo;
    cargo.reserve(static_cast<std::size_t>(W));
    for (int w = 0; w < W; ++w) cargo.push_back(std::make_unique<WorkerCargo>());

    std::mutex mu;
    std::condition_variable cv;
    bool go = false;
    std::chrono::steady_clock::time_point t0;
    std::uint64_t iter_bytes = 0;

    for (std::size_t t = 0; t < N; ++t) {
      if (remaining[t] == 0) {
        ready[t] = 1;
        if (!opt.deterministic_clock) {
          ready_q[static_cast<std::size_t>(L.tasks[t].resource)].push_back(t);
        }
      }
    }

    const auto gate_open = [&](const sim::Task& task) {
      return task.gate_group < 0 ||
             gate_counter[static_cast<std::size_t>(task.gate_group)] ==
                 task.gate_rank;
    };

    // Next task this resource may start, or kInvalidTask. Deterministic
    // mode replays the reference order; real mode picks the min
    // (priority, task id) among ready, gate-eligible tasks — the
    // simulator's queue rule with a deterministic tie-break.
    const auto pick = [&](int r) -> std::size_t {
      const auto ri = static_cast<std::size_t>(r);
      if (opt.deterministic_clock) {
        if (next_idx[ri] < replay[ri].size()) {
          const std::size_t t = replay[ri][next_idx[ri]];
          if (ready[t] && gate_open(L.tasks[t])) {
            ++next_idx[ri];
            return t;
          }
        }
        return kInvalidTask;
      }
      std::size_t best = kInvalidTask;
      std::size_t best_pos = 0;
      for (std::size_t i = 0; i < ready_q[ri].size(); ++i) {
        const std::size_t t = ready_q[ri][i];
        const sim::Task& task = L.tasks[t];
        if (!gate_open(task)) continue;
        if (best == kInvalidTask ||
            task.priority < L.tasks[best].priority ||
            (task.priority == L.tasks[best].priority && t < best)) {
          best = t;
          best_pos = i;
        }
      }
      if (best != kInvalidTask) {
        ready_q[ri].erase(ready_q[ri].begin() +
                          static_cast<std::ptrdiff_t>(best_pos));
      }
      return best;
    };

    const auto ensure_gradients = [&](int w) {
      WorkerCargo& c = *cargo[static_cast<std::size_t>(w)];
      std::lock_guard<std::mutex> g(c.mu);
      if (c.computed) return;
      const std::size_t offset =
          ((static_cast<std::size_t>(iter) * static_cast<std::size_t>(W) +
            static_cast<std::size_t>(w)) *
           opt.workload.batch_per_worker) %
          dataset.size();
      const learn::Dataset batch =
          dataset.Batch(offset, opt.workload.batch_per_worker);
      learn::Mlp& model = worker_models[static_cast<std::size_t>(w)];
      c.grads = model.ZeroGradients();
      c.loss = model.Loss(batch.features, batch.labels, &c.grads);
      c.computed = true;
    };

    // The data plane: real tensors through the transport. Runs outside
    // the scheduling lock. Returns payload bytes copied.
    const auto run_payload = [&](std::size_t t) -> std::uint64_t {
      const sim::Task& task = L.tasks[t];
      std::uint64_t copied = 0;
      switch (task.kind) {
        case core::OpKind::kRead: {
          const int p = param_of[t];
          const int s = shard_of[t];
          std::vector<double> tensor;
          if (p < cargo_params) {
            tensor = ps_model.param(static_cast<std::size_t>(p)).data();
          }
          for (int w = 0; w < W; ++w) {
            Message m;
            m.tag = p;
            m.sender = s;
            m.wire_bytes =
                static_cast<std::uint64_t>(bytes_of_param[static_cast<std::size_t>(p)]);
            m.tensor = tensor;
            copied += tensor.size() * sizeof(double);
            transport.Send(downlink(w, s), std::move(m));
          }
          break;
        }
        case core::OpKind::kRecv: {
          const int p = param_of[t];
          Message m = transport.Recv(task.resource, p);
          if (!opt.deterministic_clock) {
            copied += ChurnWire(static_cast<std::uint64_t>(
                static_cast<double>(m.wire_bytes) * opt.wire_scale));
          }
          if (!m.tensor.empty() && p < cargo_params) {
            copied += m.tensor.size() * sizeof(double);
            worker_models[static_cast<std::size_t>(task.worker)]
                .mutable_param(static_cast<std::size_t>(p))
                .data() = std::move(m.tensor);
          }
          break;
        }
        case core::OpKind::kCompute: {
          if (!opt.deterministic_clock) {
            SpinFor(task.duration * opt.work_scale *
                    straggler_factor(task.worker));
          }
          break;
        }
        case core::OpKind::kSend: {
          const int p = param_of[t];
          const int w = task.worker;
          if (trains) ensure_gradients(w);
          Message m;
          m.tag = p;
          m.sender = w;
          m.wire_bytes = static_cast<std::uint64_t>(G.op(task.op).bytes);
          if (trains && p < cargo_params) {
            m.tensor =
                cargo[static_cast<std::size_t>(w)]->grads[static_cast<std::size_t>(p)]
                    .data();
            copied += m.tensor.size() * sizeof(double);
          }
          if (!opt.deterministic_clock) {
            copied += ChurnWire(static_cast<std::uint64_t>(
                static_cast<double>(m.wire_bytes) * opt.wire_scale));
          }
          transport.Send(task.resource, std::move(m));
          break;
        }
        case core::OpKind::kAggregate: {
          const int p = param_of[t];
          const int s = shard_of[t];
          auto& slot = agg[static_cast<std::size_t>(p)];
          slot.clear();
          for (int w = 0; w < W; ++w) {
            slot.push_back(transport.Recv(uplink(w, s), p).tensor);
          }
          break;
        }
        case core::OpKind::kUpdate: {
          const int p = param_of[t];
          if (p < cargo_params) {
            // Apply the W per-worker gradients in worker order with the
            // same scale PsTrainer uses — bit-identical aggregation, and
            // per-parameter updates commute, so thread interleaving
            // cannot perturb the weights.
            const double scale =
                -opt.workload.learning_rate / static_cast<double>(W);
            learn::Matrix& pm = ps_model.mutable_param(static_cast<std::size_t>(p));
            for (auto& tensor : agg[static_cast<std::size_t>(p)]) {
              learn::Matrix grad(pm.rows(), pm.cols());
              grad.data() = std::move(tensor);
              pm.Axpy(scale, grad);
            }
          }
          agg[static_cast<std::size_t>(p)].clear();
          break;
        }
      }
      return copied;
    };

    const auto resource_thread = [&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return go; });
      while (done_on[ri] < total_on[ri]) {
        const std::size_t t = pick(r);
        if (t == kInvalidTask) {
          cv.wait(lk);
          continue;
        }
        const sim::Task& task = L.tasks[t];
        ready[t] = 0;
        res.start_order.push_back(static_cast<sim::TaskId>(t));
        if (task.gate_group >= 0) {
          if (iter == 0 && task.kind == core::OpKind::kRecv) {
            trace.handoff_order[static_cast<std::size_t>(task.worker)].push_back(
                param_of[t]);
          }
          ++gate_counter[static_cast<std::size_t>(task.gate_group)];
        }
        if (opt.deterministic_clock) {
          double vstart = vfree[ri];
          for (sim::TaskId pred : task.preds) {
            vstart = std::max(vstart, res.end[static_cast<std::size_t>(pred)]);
          }
          if (task.gate_group >= 0) {
            const auto g = static_cast<std::size_t>(task.gate_group);
            vstart = std::max(vstart, group_vlast[g]);
            group_vlast[g] = vstart;
          }
          res.start[t] = vstart;
          res.end[t] = vstart + virtual_duration(t, iter);
          vfree[ri] = res.end[t];
        } else {
          res.start[t] = SecondsSince(t0);
        }
        cv.notify_all();  // gate counter may have advanced
        lk.unlock();
        const std::uint64_t copied = run_payload(t);
        lk.lock();
        if (!opt.deterministic_clock) res.end[t] = SecondsSince(t0);
        iter_bytes += copied;
        ++done_on[ri];
        for (std::size_t succ : succs[t]) {
          if (--remaining[succ] == 0) {
            ready[succ] = 1;
            if (!opt.deterministic_clock) {
              ready_q[static_cast<std::size_t>(L.tasks[succ].resource)].push_back(
                  succ);
            }
          }
        }
        cv.notify_all();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) threads.emplace_back(resource_thread, r);
    {
      std::lock_guard<std::mutex> g(mu);
      t0 = std::chrono::steady_clock::now();
      go = true;
    }
    cv.notify_all();
    for (std::thread& th : threads) th.join();

    res.makespan = *std::max_element(res.end.begin(), res.end.end());
    if (opt.deterministic_clock) {
      // Canonical start order: the wall-clock interleaving of pushes into
      // start_order is nondeterministic, but the virtual timestamps are
      // not — re-derive the order from them so the whole trace is
      // interleaving-free.
      std::vector<sim::TaskId> order(N);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](sim::TaskId a, sim::TaskId b) {
                         const auto ai = static_cast<std::size_t>(a);
                         const auto bi = static_cast<std::size_t>(b);
                         return res.start[ai] != res.start[bi]
                                    ? res.start[ai] < res.start[bi]
                                    : a < b;
                       });
      res.start_order = std::move(order);
    }
    trace.iteration_time_s.push_back(res.makespan);
    trace.payload_bytes_copied += iter_bytes;
    if (trains) {
      double loss = 0.0;
      for (int w = 0; w < W; ++w) {
        loss += cargo[static_cast<std::size_t>(w)]->loss;
      }
      loss /= static_cast<double>(W);
      trace.loss.push_back(loss);
    }
    trace.iterations.push_back(std::move(res));
  }

  trace.messages = transport.messages_sent();
  if (trains) {
    const learn::Dataset eval = dataset.Batch(0, dataset.size());
    trace.final_accuracy = ps_model.Accuracy(eval.features, eval.labels);
    for (int p = 0; p < cargo_params; ++p) {
      const auto& data = ps_model.param(static_cast<std::size_t>(p)).data();
      trace.final_weight_checksums.push_back(
          std::accumulate(data.begin(), data.end(), 0.0));
    }
  }
  return trace;
}

}  // namespace tictac::exec
