#include "exec/validate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/policy_registry.h"
#include "core/schedule.h"
#include "exec/ps_backend.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/runner.h"
#include "runtime/spec.h"
#include "util/json.h"

namespace tictac::exec {
namespace {

// Synthetic one-shot result carrying per-task durations averaged across
// the measured iterations (start=0, end=mean), the shape
// trace::CalibratePlatform reads durations from.
sim::SimResult MeanDurations(const ExecutionTrace& trace) {
  sim::SimResult mean;
  const std::size_t n = trace.iterations.front().start.size();
  mean.start.assign(n, 0.0);
  mean.end.assign(n, 0.0);
  for (const sim::SimResult& it : trace.iterations) {
    for (std::size_t t = 0; t < n; ++t) {
      mean.end[t] += it.end[t] - it.start[t];
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    mean.end[t] /= static_cast<double>(trace.iterations.size());
  }
  return mean;
}

double ErrorPct(double predicted, double measured) {
  return measured > 0.0 ? 100.0 * std::abs(predicted - measured) / measured
                        : 0.0;
}

// Worker 0's gated parameter order, by gate rank; empty when ungated.
std::vector<int> ExpectedHandoffOrder(const runtime::Lowering& lowering) {
  std::vector<std::pair<int, int>> by_rank;  // (rank, param)
  const auto& recvs = lowering.worker_recv_tasks[0];
  const auto& params = lowering.transfer_param[0];
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    const sim::Task& task =
        lowering.tasks[static_cast<std::size_t>(recvs[i])];
    if (task.gate_group >= 0) by_rank.emplace_back(task.gate_rank, params[i]);
  }
  std::sort(by_rank.begin(), by_rank.end());
  std::vector<int> expected;
  expected.reserve(by_rank.size());
  for (const auto& [rank, param] : by_rank) expected.push_back(param);
  return expected;
}

void AppendCalibrationJson(std::string& out, const trace::Calibration& cal,
                           bool ok) {
  using runtime::FormatDouble;
  out += "{\"bandwidth_bps\":" + FormatDouble(cal.platform.bandwidth_bps);
  out += ",\"latency_s\":" + FormatDouble(cal.platform.latency_s);
  out += ",\"compute_rate\":" + FormatDouble(cal.platform.compute_rate);
  out += ",\"transfer_fit_r2\":" + FormatDouble(cal.transfer_fit_r2);
  out += ",\"compute_fit_r2\":" + FormatDouble(cal.compute_fit_r2);
  out += ",\"transfer_mean_abs_residual_s\":" +
         FormatDouble(cal.transfer_mean_abs_residual_s);
  out += ",\"compute_mean_abs_residual_s\":" +
         FormatDouble(cal.compute_mean_abs_residual_s);
  out += ",\"transfer_samples\":" + std::to_string(cal.transfer_samples);
  out += ",\"compute_samples\":" + std::to_string(cal.compute_samples);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += "}";
}

}  // namespace

double ExecReport::MeanAbsErrorPct() const {
  if (policies.empty()) return 0.0;
  double sum = 0.0;
  for (const PolicyValidation& row : policies) sum += row.error_pct;
  return sum / static_cast<double>(policies.size());
}

std::string ExecReport::ToTable() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "exec validation: model=%s workers=%d ps=%d iters=%d seed=%llu "
                "clock=%s\n",
                spec.model.c_str(), spec.num_workers, spec.num_ps,
                spec.iterations, static_cast<unsigned long long>(spec.seed),
                spec.deterministic ? "virtual" : "wall");
  out += line;
  std::snprintf(line, sizeof(line), "%-12s %12s %12s %8s %12s %10s %6s\n",
                "policy", "measured(s)", "predicted(s)", "err%", "uncal(s)",
                "uncal-err%", "fit");
  out += line;
  for (const PolicyValidation& row : policies) {
    std::snprintf(line, sizeof(line),
                  "%-12s %12.6f %12.6f %8.2f %12.6f %10.2f %6s\n",
                  row.policy.c_str(), row.measured_s, row.predicted_s,
                  row.error_pct, row.uncalibrated_s,
                  row.uncalibrated_error_pct,
                  row.calibration_ok ? "ok" : "POOR");
    out += line;
  }
  std::snprintf(line, sizeof(line), "mean abs prediction error: %.2f%%\n",
                MeanAbsErrorPct());
  out += line;
  return out;
}

std::string ExecReport::ToJson() const {
  using runtime::FormatDouble;
  std::string out = "{\"exec\":{";
  out += "\"model\":\"" + util::JsonEscape(spec.model) + "\"";
  out += ",\"workers\":" + std::to_string(spec.num_workers);
  out += ",\"ps\":" + std::to_string(spec.num_ps);
  out += ",\"iterations\":" + std::to_string(spec.iterations);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"deterministic\":";
  out += spec.deterministic ? "true" : "false";
  out += ",\"link_jitter_sigma\":" + FormatDouble(spec.link_jitter_sigma);
  out += ",\"straggler_factors\":[";
  for (std::size_t i = 0; i < spec.straggler_factors.size(); ++i) {
    if (i > 0) out += ",";
    out += FormatDouble(spec.straggler_factors[i]);
  }
  out += "],\"policies\":[";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const PolicyValidation& row = policies[i];
    if (i > 0) out += ",";
    out += "{\"policy\":\"" + util::JsonEscape(row.policy) + "\"";
    out += ",\"measured_s\":" + FormatDouble(row.measured_s);
    out += ",\"predicted_s\":" + FormatDouble(row.predicted_s);
    out += ",\"prediction_error_pct\":" + FormatDouble(row.error_pct);
    out += ",\"uncalibrated_s\":" + FormatDouble(row.uncalibrated_s);
    out += ",\"uncalibrated_error_pct\":" +
           FormatDouble(row.uncalibrated_error_pct);
    out += ",\"calibration\":";
    AppendCalibrationJson(out, row.calibration, row.calibration_ok);
    out += ",\"handoff_order\":[";
    for (std::size_t j = 0; j < row.handoff_order.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(row.handoff_order[j]);
    }
    out += "],\"order_matches_schedule\":";
    out += row.order_matches_schedule ? "true" : "false";
    out += ",\"final_loss\":" + FormatDouble(row.final_loss);
    out += ",\"final_accuracy\":" + FormatDouble(row.final_accuracy);
    out += "}";
  }
  out += "],\"mean_abs_prediction_error_pct\":" +
         FormatDouble(MeanAbsErrorPct());
  out += "}}";
  return out;
}

ExecReport ValidateAgainstSim(const ExecSpec& spec) {
  const models::ModelInfo& model = models::FindModel(spec.model);
  runtime::ClusterConfig config;
  config.num_workers = spec.num_workers;
  config.num_ps = spec.num_ps;
  config.training = spec.training;
  config.platform = spec.platform;
  const runtime::Runner runner(model, config);
  const core::Graph& graph = runner.worker_graph();

  ExecReport report;
  report.spec = spec;
  for (const std::string& policy_spec : spec.policies) {
    const auto policy = core::PolicyRegistry::Global().Create(policy_spec);
    const core::Schedule schedule = runner.MakeSchedule(*policy);
    const runtime::Lowering lowering = runtime::LowerCluster(
        graph, schedule, runner.ps_of_param(), config);

    BackendOptions options;
    options.iterations = spec.iterations;
    options.seed = spec.seed;
    options.deterministic_clock = spec.deterministic;
    options.assumed = config.platform;
    options.straggler_factors = spec.straggler_factors;
    options.link_jitter_sigma = spec.link_jitter_sigma;
    options.work_scale = spec.work_scale;
    options.wire_scale = spec.wire_scale;
    PsBackend backend(lowering, graph, options);
    const ExecutionTrace trace = backend.Run();

    PolicyValidation row;
    row.policy = policy_spec;
    row.measured_s = trace.MeanIterationTime();
    row.handoff_order = trace.handoff_order.front();
    if (!trace.loss.empty()) row.final_loss = trace.loss.back();
    row.final_accuracy = trace.final_accuracy;

    // §5.1 enforcement check: the order worker 0 actually initiated its
    // pulls in must equal the schedule's normalized order.
    const std::vector<int> expected = ExpectedHandoffOrder(lowering);
    row.order_matches_schedule = row.handoff_order == expected;

    // Fit platform constants from the measured trace.
    row.calibration = trace::CalibratePlatform(
        lowering, MeanDurations(trace), graph, spec.num_workers);
    // Worker 0 is the calibration witness; if the straggler knob targets
    // it, its factor leaks into the fitted rate — divide it back out,
    // the knob is modeled separately through worker speed factors.
    if (!spec.straggler_factors.empty() && spec.straggler_factors[0] > 1.0) {
      row.calibration.platform.compute_rate *= spec.straggler_factors[0];
    }
    row.calibration_ok = row.calibration.GoodFit();

    sim::SimOptions sim_options;
    sim_options.enforce_gates =
        schedule.size() == graph.size() && schedule.CoversAllRecvs(graph);

    // Predicted: re-lower on the fitted platform, with the simulator
    // tracking the straggler knob as per-worker speed factors.
    runtime::ClusterConfig fitted = config;
    fitted.platform = row.calibration.platform;
    fitted.platform.ps_op_time_s = config.platform.ps_op_time_s;  // not fitted
    if (!spec.straggler_factors.empty()) {
      fitted.worker_speed_factors.assign(
          static_cast<std::size_t>(spec.num_workers), 1.0);
      for (std::size_t w = 0; w < spec.straggler_factors.size(); ++w) {
        fitted.worker_speed_factors[w] = 1.0 / spec.straggler_factors[w];
      }
    }
    const runtime::Lowering fitted_lowering = runtime::LowerCluster(
        graph, schedule, runner.ps_of_param(), fitted);
    row.predicted_s =
        fitted_lowering.BuildSim().Run(sim_options, spec.seed).makespan;
    row.error_pct = ErrorPct(row.predicted_s, row.measured_s);

    // The contrast figure: what the simulator would predict without ever
    // measuring (assumed constants, knobs untracked).
    row.uncalibrated_s = lowering.BuildSim().Run(sim_options, spec.seed).makespan;
    row.uncalibrated_error_pct = ErrorPct(row.uncalibrated_s, row.measured_s);

    report.policies.push_back(std::move(row));
  }
  return report;
}

}  // namespace tictac::exec
