#include "exec/transport.h"

#include <stdexcept>
#include <string>

namespace tictac::exec {

InProcTransport::InProcTransport(int num_channels, int capacity)
    : capacity_(capacity) {
  if (num_channels < 1) {
    throw std::invalid_argument("InProcTransport: need >= 1 channel, got " +
                                std::to_string(num_channels));
  }
  if (capacity < 1) {
    throw std::invalid_argument("InProcTransport: capacity must be >= 1, got " +
                                std::to_string(capacity));
  }
  channels_.reserve(static_cast<std::size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    channels_.push_back(std::make_unique<Channel>());
  }
}

void InProcTransport::Send(int channel, Message message) {
  Channel& ch = *channels_.at(static_cast<std::size_t>(channel));
  std::unique_lock<std::mutex> lock(ch.mu);
  if (ch.queue.size() >= static_cast<std::size_t>(capacity_)) {
    blocked_sends_.fetch_add(1, std::memory_order_relaxed);
    ch.can_send.wait(lock, [&] {
      return ch.queue.size() < static_cast<std::size_t>(capacity_);
    });
  }
  ch.queue.push_back(std::move(message));
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  // Receivers filter by tag, so every waiter must re-check.
  ch.can_recv.notify_all();
}

Message InProcTransport::Recv(int channel, int tag) {
  Channel& ch = *channels_.at(static_cast<std::size_t>(channel));
  std::unique_lock<std::mutex> lock(ch.mu);
  while (true) {
    for (auto it = ch.queue.begin(); it != ch.queue.end(); ++it) {
      if (it->tag == tag) {
        Message out = std::move(*it);
        ch.queue.erase(it);
        ch.can_send.notify_one();
        return out;
      }
    }
    ch.can_recv.wait(lock);
  }
}

}  // namespace tictac::exec
