// Executable parameter-server backend (DESIGN.md §9).
//
// PsBackend takes the same lowered task graph the discrete-event
// simulator consumes (runtime::LowerCluster) and *runs* it: one thread
// per lowered resource — W worker computation threads, 2·W·S channel
// threads, S parameter-server CPU threads — synchronizing on the task
// graph's dependency edges and §5.1 hand-off gates exactly as the
// simulator assumes, and moving real data through exec::Transport
// queues. Worker threads train a real learn::Mlp (the cargo model):
// parameters are pulled from the PS in the schedule-enforced order,
// gradients are computed on each worker's batch shard and pushed back,
// and the PS aggregates and applies SGD — numerically identical, bit for
// bit, to the serial learn::PsTrainer reference (pinned in
// tests/exec_test.cc). Parameters beyond the cargo model's size carry
// synthetic payloads sized by the lowered op's bytes.
//
// Two clocks:
//   * Real (default off in tests, on for honest measurement): task
//     timestamps come from std::chrono::steady_clock; compute tasks spin
//     `cost * work_scale` GFLOPs of actual arithmetic, transfers copy
//     `bytes * wire_scale` real bytes through bounded scratch buffers.
//     Measurements are honest and machine-dependent — NOT reproducible.
//   * Deterministic (options.deterministic_clock): execution order per
//     resource is fixed by a reference simulation of the same lowering
//     and timestamps are *virtual* — pure functions of the task graph, a
//     hidden platform (the assumed platform skewed by fixed factors, so
//     self-calibration has real constants to recover), the straggler /
//     jitter knobs, and the seed. Threads, queues, gates, and the
//     training numerics all still run for real; only the clock is
//     synthesized, so two same-seed runs are byte-identical (the CI exec
//     smoke pins this).
//
// Perturbation knobs mirror the fault::FaultSpec vocabulary:
// straggler_factors[w] (compute on worker w runs factor× slower, like
// straggler:worker=w:factor=F), link_jitter_sigma (per-transfer lognormal
// jitter, the jittery-link analogue of slowlink), and the cluster's own
// worker_speed_factors for heterogeneous workers. The simulator must
// track all of them — exec::ValidateAgainstSim checks that it does.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/time_oracle.h"
#include "learn/mlp.h"
#include "runtime/lowering.h"
#include "sim/task.h"

namespace tictac::exec {

// The real training cargo riding on the executed task graph.
struct WorkloadConfig {
  learn::MlpShape shape;  // tiny by default (learn/mlp.h)
  std::size_t dataset_examples = 256;
  std::size_t batch_per_worker = 16;
  double learning_rate = 0.05;
  std::uint64_t dataset_seed = 1234;  // dataset identity, not run seed
};

struct BackendOptions {
  int iterations = 5;
  // Seeds the cargo model's weight init and minibatch order
  // (learn::TrainConfig model_seed/data_seed) plus the deterministic
  // clock's jitter stream.
  std::uint64_t seed = 1;

  bool deterministic_clock = false;
  // Platform the lowering's durations were computed from; the
  // deterministic clock derives its hidden platform from it.
  core::PlatformModel assumed;
  // Hidden-platform skews (deterministic clock): the virtual machine
  // computes at `hidden_compute_factor`× the assumed rate, moves bytes at
  // `hidden_bandwidth_factor`× the assumed bandwidth, and pays
  // `hidden_latency_factor`× the assumed per-transfer latency. Deliberate
  // mis-assumptions: calibration must recover the hidden constants.
  double hidden_compute_factor = 0.8;
  double hidden_bandwidth_factor = 1.25;
  double hidden_latency_factor = 2.0;

  // Real-clock payload scales: fraction of the modeled GFLOPs actually
  // spun and of the modeled bytes actually copied per task.
  double work_scale = 1e-4;
  double wire_scale = 1e-2;

  // Perturbation knobs (see header comment). straggler_factors is per
  // worker (empty = none, entries >= 1); link_jitter_sigma is the
  // lognormal shape on every transfer.
  std::vector<double> straggler_factors;
  double link_jitter_sigma = 0.0;

  // Per-channel transport queue bound; 0 = auto (the per-PS parameter
  // count — the maximum ever in flight on one channel, see transport.h).
  int queue_capacity = 0;

  WorkloadConfig workload;
};

// Measured execution: per-iteration task timestamps in the same
// SimResult shape the simulator emits, so trace::CollectSpans,
// trace::CalibratePlatform, and runtime::ComputeIterationStats consume
// measured runs unchanged.
struct ExecutionTrace {
  std::vector<sim::SimResult> iterations;
  std::vector<double> iteration_time_s;  // = iterations[i].makespan

  // Gate hand-off order of the first iteration, per worker, as parameter
  // indices — the order each worker actually initiated its pulls in.
  // Empty per-worker lists when the schedule carried no gates (baseline).
  std::vector<std::vector<int>> handoff_order;

  // Training cargo results (empty loss for inference graphs).
  std::vector<double> loss;  // per iteration, mean over workers
  double final_accuracy = 0.0;
  std::vector<double> final_weight_checksums;  // per cargo parameter

  std::uint64_t messages = 0;
  std::uint64_t payload_bytes_copied = 0;

  double MeanIterationTime() const;
};

class PsBackend {
 public:
  // `lowering` must be a single-iteration LowerCluster result over
  // `worker_graph`; both must outlive the backend. Throws
  // std::invalid_argument on malformed options (factor < 1, scales <= 0,
  // iterations < 1).
  PsBackend(const runtime::Lowering& lowering, const core::Graph& worker_graph,
            BackendOptions options);

  // Executes options.iterations iterations with real threads and
  // returns the measured trace. May be called once per backend.
  ExecutionTrace Run();

 private:
  const runtime::Lowering* lowering_;
  const core::Graph* graph_;
  BackendOptions options_;
};

}  // namespace tictac::exec
