// Self-calibrating sim-to-real validation (the paper's Fig. 12 loop,
// closed against our own backend):
//
//   schedule -> lower -> EXECUTE (exec::PsBackend, real threads) ->
//   trace -> trace::CalibratePlatform -> re-simulate with the fitted
//   constants -> predicted vs measured iteration time, per policy.
//
// The round-trip is honest in both clock modes: the deterministic clock
// runs on a *hidden* platform deliberately skewed from the assumed one
// (ps_backend.h), so calibration must genuinely recover constants the
// simulator never saw; the real clock measures actual thread execution.
// Each policy's row also reports the uncalibrated prediction (assumed
// constants, no perturbation tracking) as the contrast figure, and the
// calibration's residuals/R² gate `calibration_ok` so a poor fit is
// flagged instead of silently reported as a small error percentage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time_oracle.h"
#include "trace/calibrate.h"

namespace tictac::exec {

struct ExecSpec {
  std::string model = "Inception v2";
  std::vector<std::string> policies = {"baseline", "tic", "tac"};
  int num_workers = 2;
  int num_ps = 2;
  int iterations = 5;
  std::uint64_t seed = 1;
  bool training = true;
  // Virtual clock (reproducible, hidden-platform) vs wall clock.
  bool deterministic = true;
  core::PlatformModel platform;  // the assumed platform (lowering costs)
  // Perturbation knobs, mirrored into BackendOptions.
  std::vector<double> straggler_factors;
  double link_jitter_sigma = 0.0;
  // Real-clock payload scales (ps_backend.h).
  double work_scale = 1e-4;
  double wire_scale = 1e-2;
};

struct PolicyValidation {
  std::string policy;
  double measured_s = 0.0;       // backend mean iteration time
  double predicted_s = 0.0;      // sim with calibrated constants
  double uncalibrated_s = 0.0;   // sim with assumed constants, no knobs
  double error_pct = 0.0;        // 100 * |predicted - measured| / measured
  double uncalibrated_error_pct = 0.0;
  trace::Calibration calibration;
  bool calibration_ok = false;
  // Worker 0's measured hand-off order (parameter indices) and whether it
  // matches the policy schedule's normalized order exactly. True
  // (vacuously) for ungated policies such as the baseline.
  std::vector<int> handoff_order;
  bool order_matches_schedule = false;
  // Training cargo (0 when the run carries no cargo).
  double final_loss = 0.0;
  double final_accuracy = 0.0;
};

struct ExecReport {
  ExecSpec spec;
  std::vector<PolicyValidation> policies;

  // Mean of error_pct across policies (the headline acceptance figure).
  double MeanAbsErrorPct() const;
  // Aligned predicted-vs-measured table for the terminal.
  std::string ToTable() const;
  // Deterministic JSON (runtime::FormatDouble round-trip formatting):
  // byte-identical across same-seed deterministic runs.
  std::string ToJson() const;
};

// Runs the full round-trip for every policy in the spec. Throws
// std::invalid_argument / std::out_of_range on bad spec values (unknown
// model or policy, straggler factor < 1, worker index out of range).
ExecReport ValidateAgainstSim(const ExecSpec& spec);

}  // namespace tictac::exec
