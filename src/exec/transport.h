// Message transport for the executable parameter-server backend
// (DESIGN.md §9).
//
// The backend's data plane moves parameter and gradient messages between
// worker and PS threads over indexed channels — the same channel indices
// the lowering assigns to downlink/uplink resources — through a
// socket-ready interface: by-value messages, integer channel addresses,
// integer tags (MPI-style tagged receive), blocking sends with bounded
// buffering. The in-process implementation backs every channel with a
// shared-memory queue guarded by a mutex; a TCP implementation could
// serialize Message verbatim without changing a caller.
//
// Backpressure contract: Send blocks while the channel already holds
// `capacity` messages and unblocks when a Recv drains one; Recv blocks
// until a message with the requested tag arrives (messages with other
// tags are held in arrival order and still count against capacity).
// Callers therefore size capacity to the maximum number of messages in
// flight per channel (exec::PsBackend uses the per-PS parameter count) —
// a tagged receive behind a full queue of other tags would otherwise
// deadlock with its blocked producer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace tictac::exec {

// One parameter or gradient transfer. `tensor` is the real cargo (MLP
// parameter or gradient values; empty for parameters beyond the cargo
// model's size); `wire_bytes` is the modeled transfer size the channel
// accounts time against.
struct Message {
  int tag = -1;     // parameter index
  int sender = -1;  // worker id (pushes) or PS id (pulls)
  std::uint64_t wire_bytes = 0;
  std::vector<double> tensor;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Enqueues `message` on `channel`; blocks while the channel is full.
  virtual void Send(int channel, Message message) = 0;

  // Removes and returns the oldest message with `tag` on `channel`;
  // blocks until one arrives.
  virtual Message Recv(int channel, int tag) = 0;

  virtual int num_channels() const = 0;
};

// Shared-memory implementation: one bounded queue per channel.
class InProcTransport final : public Transport {
 public:
  // `capacity` bounds each channel's queue (>= 1).
  InProcTransport(int num_channels, int capacity);

  void Send(int channel, Message message) override;
  Message Recv(int channel, int tag) override;
  int num_channels() const override { return static_cast<int>(channels_.size()); }

  int capacity() const { return capacity_; }
  // Number of Send calls that had to block on a full queue — the
  // backpressure observable the tests assert on.
  std::uint64_t blocked_sends() const { return blocked_sends_.load(); }
  std::uint64_t messages_sent() const { return messages_sent_.load(); }

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable can_send;
    std::condition_variable can_recv;
    std::deque<Message> queue;
  };

  int capacity_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<std::uint64_t> blocked_sends_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace tictac::exec
