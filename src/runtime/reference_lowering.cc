// Verbatim copies of the pre-IR lowerings — see the header for why these
// must not change. The only edits from the originals are the namespace
// and the internal LowerCluster calls resolving to reference::.
#include "runtime/reference_lowering.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace tictac::runtime::reference {
namespace {

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("multijob: " + message);
}

}  // namespace

Lowering LowerCluster(const core::Graph& worker_graph,
                      const core::Schedule& schedule,
                      const std::vector<int>& ps_of_param,
                      const ClusterConfig& config) {
  const int W = config.num_workers;
  const int S = config.num_ps;
  if (W < 1 || S < 1) throw std::invalid_argument("need >=1 worker and PS");
  const core::PlatformModel& hw = config.platform;

  Lowering out;
  out.num_workers = W;
  out.num_resources = W + 2 * W * S + S;
  out.worker_tasks.resize(static_cast<std::size_t>(W));
  out.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  out.transfer_param.resize(static_cast<std::size_t>(W));

  const auto downlink = [&](int w, int s) { return W + w * S + s; };
  const auto uplink = [&](int w, int s) { return W + W * S + w * S + s; };
  const auto ps_cpu = [&](int s) { return W + 2 * W * S + s; };

  // Each PS NIC is shared by W pair-channels.
  const double pair_bandwidth = hw.bandwidth_bps / W;
  const auto transfer_time = [&](std::int64_t bytes) {
    return hw.latency_s + static_cast<double>(bytes) / pair_bandwidth;
  };

  const auto ps_for = [&](int param) {
    if (param < 0 || static_cast<std::size_t>(param) >= ps_of_param.size()) {
      throw std::invalid_argument("transfer op without valid param index");
    }
    return ps_of_param[static_cast<std::size_t>(param)];
  };

  std::unordered_map<core::OpId, int> rank;
  const bool scheduled = schedule.size() == worker_graph.size() &&
                         schedule.CoversAllRecvs(worker_graph);
  if (scheduled) rank = schedule.NormalizedRecvRank(worker_graph);

  const int P = static_cast<int>(ps_of_param.size());
  std::vector<sim::TaskId> read_task(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    sim::Task read;
    read.duration = hw.ps_op_time_s;
    read.resource = ps_cpu(ps_for(p));
    read.kind = core::OpKind::kRead;
    read_task[static_cast<std::size_t>(p)] =
        static_cast<sim::TaskId>(out.tasks.size());
    out.tasks.push_back(std::move(read));
  }

  std::vector<std::vector<sim::TaskId>> op_task(
      static_cast<std::size_t>(W),
      std::vector<sim::TaskId>(worker_graph.size(), -1));

  const std::vector<core::OpId> topo_order = worker_graph.TopologicalOrder();
  if (topo_order.size() != worker_graph.size()) {
    throw std::invalid_argument("worker graph has a cycle");
  }

  out.worker_sink.assign(static_cast<std::size_t>(W), -1);
  for (int w = 0; w < W; ++w) {
    for (const core::OpId op_id : topo_order) {
      const core::Op& op = worker_graph.op(op_id);
      sim::Task task;
      task.op = op.id;
      task.kind = op.kind;
      task.worker = w;
      switch (op.kind) {
        case core::OpKind::kRecv: {
          const int s = ps_for(op.param);
          task.resource = downlink(w, s);
          task.duration = transfer_time(op.bytes);
          task.preds.push_back(read_task[static_cast<std::size_t>(op.param)]);
          if (scheduled) {
            const int r = rank.at(op.id);
            task.priority = r;
            switch (config.enforcement) {
              case Enforcement::kPriorityOnly:
                break;
              case Enforcement::kHandoffGate:
                task.gate_group = w;
                task.gate_rank = r;
                break;
              case Enforcement::kDagChain:
                break;  // dependency edges added in a post-pass below
            }
          }
          break;
        }
        case core::OpKind::kSend: {
          const int s = ps_for(op.param);
          task.resource = uplink(w, s);
          task.duration = transfer_time(op.bytes);
          if (schedule.size() == worker_graph.size() &&
              schedule.HasPriority(op.id)) {
            task.priority = schedule.priority(op.id);
          }
          break;
        }
        case core::OpKind::kCompute: {
          task.resource = w;
          double speed = 1.0;
          if (static_cast<std::size_t>(w) <
              config.worker_speed_factors.size()) {
            speed = config.worker_speed_factors[static_cast<std::size_t>(w)];
            if (speed <= 0.0) {
              throw std::invalid_argument("worker speed factor must be > 0");
            }
          }
          task.duration = op.cost / (hw.compute_rate * speed);
          break;
        }
        default:
          throw std::invalid_argument(
              "worker partition may only hold compute/recv/send ops");
      }
      for (core::OpId pred : worker_graph.preds(op.id)) {
        task.preds.push_back(op_task[static_cast<std::size_t>(w)]
                                    [static_cast<std::size_t>(pred)]);
      }
      const auto id = static_cast<sim::TaskId>(out.tasks.size());
      op_task[static_cast<std::size_t>(w)][static_cast<std::size_t>(op.id)] =
          id;
      out.worker_tasks[static_cast<std::size_t>(w)].push_back(id);
      if (op.kind == core::OpKind::kRecv) {
        out.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(id);
        out.transfer_param[static_cast<std::size_t>(w)].push_back(op.param);
      }
      if (op.kind == core::OpKind::kCompute) {
        out.worker_sink[static_cast<std::size_t>(w)] = id;  // last in topo
      }
      out.tasks.push_back(std::move(task));
    }
  }

  if (scheduled && config.enforcement == Enforcement::kDagChain) {
    for (int w = 0; w < W; ++w) {
      const auto& recv_tasks =
          out.worker_recv_tasks[static_cast<std::size_t>(w)];
      std::vector<sim::TaskId> by_rank(recv_tasks.size());
      for (sim::TaskId t : recv_tasks) {
        by_rank[static_cast<std::size_t>(
            out.tasks[static_cast<std::size_t>(t)].priority)] = t;
      }
      for (std::size_t r = 1; r < by_rank.size(); ++r) {
        out.tasks[static_cast<std::size_t>(by_rank[r])].preds.push_back(
            by_rank[r - 1]);
      }
    }
  }

  out.update_task.assign(static_cast<std::size_t>(P), -1);
  if (config.training) {
    std::vector<std::vector<sim::TaskId>> sends_of_param(
        static_cast<std::size_t>(P));
    for (int w = 0; w < W; ++w) {
      for (const core::Op& op : worker_graph.ops()) {
        if (op.kind == core::OpKind::kSend) {
          sends_of_param[static_cast<std::size_t>(op.param)].push_back(
              op_task[static_cast<std::size_t>(w)]
                     [static_cast<std::size_t>(op.id)]);
        }
      }
    }
    for (int p = 0; p < P; ++p) {
      auto& sends = sends_of_param[static_cast<std::size_t>(p)];
      if (sends.empty()) continue;  // parameter without gradient (frozen)
      sim::Task aggregate;
      aggregate.duration = hw.ps_op_time_s;
      aggregate.resource = ps_cpu(ps_for(p));
      aggregate.kind = core::OpKind::kAggregate;
      aggregate.preds = sends;
      const auto agg_id = static_cast<sim::TaskId>(out.tasks.size());
      out.tasks.push_back(std::move(aggregate));

      sim::Task update;
      update.duration = hw.ps_op_time_s;
      update.resource = ps_cpu(ps_for(p));
      update.kind = core::OpKind::kUpdate;
      update.preds.push_back(agg_id);
      out.update_task[static_cast<std::size_t>(p)] =
          static_cast<sim::TaskId>(out.tasks.size());
      out.tasks.push_back(std::move(update));
    }
  }

  return out;
}

PipelineLowering LowerPipeline(const core::Graph& worker_graph,
                               const core::Schedule& schedule,
                               const std::vector<int>& ps_of_param,
                               const ClusterConfig& config, int iterations) {
  if (iterations < 1) throw std::invalid_argument("iterations must be >= 1");
  const Lowering once =
      reference::LowerCluster(worker_graph, schedule, ps_of_param, config);
  const int W = once.num_workers;
  const auto tasks_per_iter = static_cast<sim::TaskId>(once.tasks.size());

  PipelineLowering out;
  out.iterations = iterations;
  Lowering& merged = out.lowering;
  merged.num_resources = once.num_resources;
  merged.num_workers = W;
  merged.worker_tasks.resize(static_cast<std::size_t>(W));
  merged.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  merged.transfer_param = once.transfer_param;
  merged.update_task = once.update_task;
  merged.worker_sink = once.worker_sink;

  for (int k = 0; k < iterations; ++k) {
    const sim::TaskId offset = tasks_per_iter * k;
    const sim::TaskId prev_offset = tasks_per_iter * (k - 1);
    for (sim::TaskId t = 0; t < tasks_per_iter; ++t) {
      sim::Task task = once.tasks[static_cast<std::size_t>(t)];
      for (sim::TaskId& p : task.preds) p += offset;
      if (task.gate_group >= 0) task.gate_group += k * W;
      if (k > 0 && task.kind == core::OpKind::kRecv && task.worker >= 0) {
        const int param = worker_graph.op(task.op).param;
        const sim::TaskId upd =
            once.update_task.empty()
                ? -1
                : once.update_task[static_cast<std::size_t>(param)];
        if (upd >= 0) {
          task.preds.push_back(prev_offset + upd);
        } else {
          task.preds.push_back(
              prev_offset +
              once.worker_sink[static_cast<std::size_t>(task.worker)]);
        }
      }
      out.task_iteration.push_back(k);
      merged.tasks.push_back(std::move(task));
    }
    for (int w = 0; w < W; ++w) {
      for (sim::TaskId t : once.worker_tasks[static_cast<std::size_t>(w)]) {
        merged.worker_tasks[static_cast<std::size_t>(w)].push_back(t + offset);
      }
      for (sim::TaskId t :
           once.worker_recv_tasks[static_cast<std::size_t>(w)]) {
        merged.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(
            t + offset);
      }
    }
  }
  return out;
}

Lowering LowerAllReduce(const core::Graph& worker_graph,
                        const ClusterConfig& config) {
  const int W = config.num_workers;
  if (W < 2) throw std::invalid_argument("all-reduce needs >= 2 workers");
  if (!config.training) {
    throw std::invalid_argument("all-reduce applies to training only");
  }
  const core::PlatformModel& hw = config.platform;

  Lowering out;
  out.num_workers = W;
  out.num_resources = 2 * W;
  out.worker_tasks.resize(static_cast<std::size_t>(W));
  out.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  out.transfer_param.resize(static_cast<std::size_t>(W));

  const std::vector<core::OpId> topo = worker_graph.TopologicalOrder();
  if (topo.size() != worker_graph.size()) {
    throw std::invalid_argument("worker graph has a cycle");
  }

  std::vector<std::vector<sim::TaskId>> op_task(
      static_cast<std::size_t>(W),
      std::vector<sim::TaskId>(worker_graph.size(), -1));

  int max_param = -1;
  for (const core::Op& op : worker_graph.ops()) {
    max_param = std::max(max_param, op.param);
  }
  const int P = max_param + 1;
  std::vector<std::vector<sim::TaskId>> grad_ready(
      static_cast<std::size_t>(P));

  for (int w = 0; w < W; ++w) {
    for (const core::OpId op_id : topo) {
      const core::Op& op = worker_graph.op(op_id);
      sim::Task task;
      task.op = op.id;
      task.kind = op.kind;
      task.worker = w;
      switch (op.kind) {
        case core::OpKind::kRecv:
          task.resource = w;
          task.duration = 0.0;
          break;
        case core::OpKind::kSend:
          task.resource = w;
          task.duration = 0.0;
          break;
        case core::OpKind::kCompute: {
          task.resource = w;
          double speed = 1.0;
          if (static_cast<std::size_t>(w) <
              config.worker_speed_factors.size()) {
            speed = config.worker_speed_factors[static_cast<std::size_t>(w)];
          }
          task.duration = op.cost / (hw.compute_rate * speed);
          break;
        }
        default:
          throw std::invalid_argument(
              "worker partition may only hold compute/recv/send ops");
      }
      for (core::OpId pred : worker_graph.preds(op.id)) {
        task.preds.push_back(op_task[static_cast<std::size_t>(w)]
                                    [static_cast<std::size_t>(pred)]);
      }
      const auto id = static_cast<sim::TaskId>(out.tasks.size());
      op_task[static_cast<std::size_t>(w)][static_cast<std::size_t>(op.id)] =
          id;
      out.worker_tasks[static_cast<std::size_t>(w)].push_back(id);
      if (op.kind == core::OpKind::kRecv) {
        out.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(id);
        out.transfer_param[static_cast<std::size_t>(w)].push_back(op.param);
      }
      if (op.kind == core::OpKind::kSend && op.param >= 0) {
        grad_ready[static_cast<std::size_t>(op.param)].push_back(id);
      }
      out.tasks.push_back(std::move(task));
    }
  }

  for (int p = 0; p < P; ++p) {
    const auto& ready = grad_ready[static_cast<std::size_t>(p)];
    if (ready.empty()) continue;
    std::int64_t bytes = 0;
    for (const core::Op& op : worker_graph.ops()) {
      if (op.kind == core::OpKind::kSend && op.param == p) {
        bytes = op.bytes;
        break;
      }
    }
    const double chunk_time =
        hw.latency_s + static_cast<double>(bytes) / W / hw.bandwidth_bps;

    std::vector<sim::TaskId> previous_round = ready;
    for (int round = 0; round < 2 * (W - 1); ++round) {
      std::vector<sim::TaskId> this_round;
      this_round.reserve(static_cast<std::size_t>(W));
      for (int link = 0; link < W; ++link) {
        sim::Task transfer;
        transfer.kind = core::OpKind::kSend;
        transfer.resource = W + link;
        transfer.duration = chunk_time;
        transfer.preds = previous_round;
        this_round.push_back(static_cast<sim::TaskId>(out.tasks.size()));
        out.tasks.push_back(std::move(transfer));
      }
      previous_round = std::move(this_round);
    }
  }
  return out;
}

MultiJobLowering LowerSharedCluster(
    const std::vector<JobLoweringInput>& jobs) {
  if (jobs.empty()) Fail("LowerSharedCluster needs >= 1 job");
  const int S = jobs.front().config.num_ps;
  long long total = 0;
  for (const JobLoweringInput& job : jobs) {
    if (job.config.num_ps != S) {
      Fail("all jobs must share the PS fleet: got num_ps=" +
           std::to_string(job.config.num_ps) + " vs " + std::to_string(S));
    }
    total += job.config.num_workers;
  }
  if (total > (1 << 20)) {
    Fail("total workers across jobs must be <= 1048576, got " +
         std::to_string(total));
  }
  const int T = static_cast<int>(total);

  MultiJobLowering out;
  out.total_workers = T;
  out.num_ps = S;
  Lowering& combined = out.combined;
  combined.num_workers = T;
  combined.num_resources = T + 2 * T * S + S;
  combined.worker_tasks.resize(static_cast<std::size_t>(T));
  combined.worker_recv_tasks.resize(static_cast<std::size_t>(T));
  combined.transfer_param.resize(static_cast<std::size_t>(T));

  int base_w = 0;
  int delay_resources = 0;
  for (const JobLoweringInput& job : jobs) {
    Lowering local = reference::LowerCluster(job.graph, job.schedule,
                                             job.ps_of_param, job.config);
    const int W = job.config.num_workers;

    MultiJobLowering::JobSlice slice;
    slice.first_worker = base_w;
    if (job.start_offset > 0.0) {
      sim::Task delay;
      delay.duration = job.start_offset;
      delay.resource = T + 2 * T * S + S + delay_resources;
      ++delay_resources;
      slice.delay_task = static_cast<sim::TaskId>(combined.tasks.size());
      combined.tasks.push_back(std::move(delay));
    } else if (job.start_offset < 0.0) {
      Fail("start_offset must be >= 0, got " +
           std::to_string(job.start_offset));
    }
    const auto offset = static_cast<sim::TaskId>(combined.tasks.size());
    slice.first_task = offset;

    const auto remap_resource = [&](int r) {
      if (r < W) return base_w + r;  // worker computation
      if (r < W + W * S) {           // downlink channel (s -> w)
        const int w = (r - W) / S;
        const int s = (r - W) % S;
        return T + (base_w + w) * S + s;
      }
      if (r < W + 2 * W * S) {  // uplink channel (w -> s)
        const int w = (r - W - W * S) / S;
        const int s = (r - W - W * S) % S;
        return T + T * S + (base_w + w) * S + s;
      }
      return T + 2 * T * S + (r - W - 2 * W * S);  // shared PS CPU
    };

    for (const sim::Task& local_task : local.tasks) {
      sim::Task task = local_task;
      task.resource = remap_resource(task.resource);
      for (sim::TaskId& p : task.preds) p += offset;
      if (task.gate_group >= 0) task.gate_group += base_w;
      if (task.worker >= 0) task.worker += base_w;
      if (slice.delay_task >= 0 && task.preds.empty()) {
        task.preds.push_back(slice.delay_task);
      }
      combined.tasks.push_back(std::move(task));
    }
    for (int w = 0; w < W; ++w) {
      const auto local_w = static_cast<std::size_t>(w);
      const auto global_w = static_cast<std::size_t>(base_w + w);
      for (sim::TaskId t : local.worker_tasks[local_w]) {
        combined.worker_tasks[global_w].push_back(t + offset);
      }
      for (sim::TaskId t : local.worker_recv_tasks[local_w]) {
        combined.worker_recv_tasks[global_w].push_back(t + offset);
      }
      combined.transfer_param[global_w] = local.transfer_param[local_w];
    }
    slice.last_task = static_cast<sim::TaskId>(combined.tasks.size());
    slice.start_offset = job.start_offset;
    slice.lowering = std::move(local);
    out.jobs.push_back(std::move(slice));
    base_w += W;
  }
  combined.num_resources += delay_resources;
  return out;
}

}  // namespace tictac::runtime::reference
