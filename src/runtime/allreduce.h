// Ring all-reduce lowering — the decentralized aggregation pattern
// (Horovod-style) that the paper names as out of scope (§2) and future
// work (§7). Built here as a comparison substrate so the PS+TicTac
// results can be put in context.
//
// Model: no parameter servers. Weights live on the workers, so the
// forward pass never waits on the network; after each parameter's
// gradient is ready on every worker, the gradient is all-reduced around a
// ring of W unidirectional links in 2(W-1) phases, each moving 1/W of the
// parameter's bytes per link concurrently.
//
// Resource layout:
//   [0, W)      worker computation resources
//   [W, 2W)     ring links (worker i -> worker (i+1) mod W)
#pragma once

#include "core/graph.h"
#include "runtime/cluster.h"
#include "runtime/lowering.h"

namespace tictac::runtime {

// `worker_graph` must be a training graph (sends present). Recv ops
// become zero-cost local weight reads on the worker. The returned
// Lowering reuses the same stats contract as LowerCluster (worker_tasks,
// worker_recv_tasks are populated; gates unused).
Lowering LowerAllReduce(const core::Graph& worker_graph,
                        const ClusterConfig& config);

}  // namespace tictac::runtime
