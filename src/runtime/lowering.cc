#include "runtime/lowering.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ir/lower.h"

namespace tictac::runtime {

// The single-job entry points are presets over the IR pass pipeline
// (ir/lower.h); tests/ir_differential_test.cc pins them bit-identical to
// the frozen pre-IR implementations (runtime/reference_lowering.h).

Lowering LowerCluster(const core::Graph& worker_graph,
                      const core::Schedule& schedule,
                      const std::vector<int>& ps_of_param,
                      const ClusterConfig& config) {
  const std::vector<JobLoweringInput> jobs{
      {worker_graph, schedule, ps_of_param, config}};
  ir::Module module =
      ir::StandardLoweringPipeline(Topology::kPsFabric)
          .Run(ir::BuildLogicalModule(jobs));
  return ir::ToLowering(module);
}

PipelineLowering LowerPipeline(const core::Graph& worker_graph,
                               const core::Schedule& schedule,
                               const std::vector<int>& ps_of_param,
                               const ClusterConfig& config, int iterations) {
  const std::vector<JobLoweringInput> jobs{
      {worker_graph, schedule, ps_of_param, config}};
  // Validates iterations >= 1 before any lowering work.
  ir::PassPipeline pipeline =
      ir::StandardLoweringPipeline(Topology::kPsFabric, iterations);
  ir::Module module = pipeline.Run(ir::BuildLogicalModule(jobs));
  return ir::ToPipelineLowering(module);
}

PipelineTiming ComputePipelineTiming(const PipelineLowering& pipeline,
                                     const sim::SimResult& result) {
  PipelineTiming timing;
  timing.iteration_finish.assign(
      static_cast<std::size_t>(pipeline.iterations), 0.0);
  for (std::size_t t = 0; t < pipeline.lowering.tasks.size(); ++t) {
    auto& finish = timing.iteration_finish[static_cast<std::size_t>(
        pipeline.task_iteration[t])];
    finish = std::max(finish, result.end[t]);
  }
  timing.first_iteration = timing.iteration_finish.front();
  if (pipeline.iterations > 1) {
    timing.steady_state =
        (timing.iteration_finish.back() - timing.iteration_finish.front()) /
        static_cast<double>(pipeline.iterations - 1);
  } else {
    timing.steady_state = timing.first_iteration;
  }
  return timing;
}

}  // namespace tictac::runtime
