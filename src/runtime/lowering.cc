#include "runtime/lowering.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace tictac::runtime {

Lowering LowerCluster(const core::Graph& worker_graph,
                      const core::Schedule& schedule,
                      const std::vector<int>& ps_of_param,
                      const ClusterConfig& config) {
  const int W = config.num_workers;
  const int S = config.num_ps;
  if (W < 1 || S < 1) throw std::invalid_argument("need >=1 worker and PS");
  const core::PlatformModel& hw = config.platform;

  Lowering out;
  out.num_workers = W;
  out.num_resources = W + 2 * W * S + S;
  out.worker_tasks.resize(static_cast<std::size_t>(W));
  out.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  out.transfer_param.resize(static_cast<std::size_t>(W));

  const auto downlink = [&](int w, int s) { return W + w * S + s; };
  const auto uplink = [&](int w, int s) { return W + W * S + w * S + s; };
  const auto ps_cpu = [&](int s) { return W + 2 * W * S + s; };

  // Each PS NIC is shared by W pair-channels.
  const double pair_bandwidth = hw.bandwidth_bps / W;
  const auto transfer_time = [&](std::int64_t bytes) {
    return hw.latency_s + static_cast<double>(bytes) / pair_bandwidth;
  };

  const auto ps_for = [&](int param) {
    if (param < 0 || static_cast<std::size_t>(param) >= ps_of_param.size()) {
      throw std::invalid_argument("transfer op without valid param index");
    }
    return ps_of_param[static_cast<std::size_t>(param)];
  };

  // Normalized per-worker hand-off ranks for enforcement (§5.1). Empty
  // schedules (baseline) produce no gates.
  std::unordered_map<core::OpId, int> rank;
  const bool scheduled = schedule.size() == worker_graph.size() &&
                         schedule.CoversAllRecvs(worker_graph);
  if (scheduled) rank = schedule.NormalizedRecvRank(worker_graph);

  // PS-side read ops: parameters become available for sending at iteration
  // start (the PS activates all sends up front, §2.2).
  const int P = static_cast<int>(ps_of_param.size());
  std::vector<sim::TaskId> read_task(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    sim::Task read;
    read.duration = hw.ps_op_time_s;
    read.resource = ps_cpu(ps_for(p));
    read.kind = core::OpKind::kRead;
    read_task[static_cast<std::size_t>(p)] =
        static_cast<sim::TaskId>(out.tasks.size());
    out.tasks.push_back(std::move(read));
  }

  // Worker partitions. Worker graphs are identical (Model Replica), so op
  // ids map to task ids via a per-worker base offset plus this table.
  std::vector<std::vector<sim::TaskId>> op_task(
      static_cast<std::size_t>(W),
      std::vector<sim::TaskId>(worker_graph.size(), -1));

  // Ops must be visited predecessors-first so task ids exist when edges
  // are wired (op ids alone are not topologically sorted, e.g. Inception
  // concat ops precede their branches).
  const std::vector<core::OpId> topo_order = worker_graph.TopologicalOrder();
  if (topo_order.size() != worker_graph.size()) {
    throw std::invalid_argument("worker graph has a cycle");
  }

  out.worker_sink.assign(static_cast<std::size_t>(W), -1);
  for (int w = 0; w < W; ++w) {
    for (const core::OpId op_id : topo_order) {
      const core::Op& op = worker_graph.op(op_id);
      sim::Task task;
      task.op = op.id;
      task.kind = op.kind;
      task.worker = w;
      switch (op.kind) {
        case core::OpKind::kRecv: {
          const int s = ps_for(op.param);
          task.resource = downlink(w, s);
          task.duration = transfer_time(op.bytes);
          task.preds.push_back(read_task[static_cast<std::size_t>(op.param)]);
          if (scheduled) {
            // The channel serves transfers in hand-off order (gRPC FIFO),
            // so the wire priority is the normalized rank — the total
            // order of §5.1 — rather than the raw (possibly tied)
            // schedule priority.
            const int r = rank.at(op.id);
            task.priority = r;
            switch (config.enforcement) {
              case Enforcement::kPriorityOnly:
                break;
              case Enforcement::kHandoffGate:
                task.gate_group = w;
                task.gate_rank = r;
                break;
              case Enforcement::kDagChain:
                break;  // dependency edges added in a post-pass below
            }
          }
          break;
        }
        case core::OpKind::kSend: {
          const int s = ps_for(op.param);
          task.resource = uplink(w, s);
          task.duration = transfer_time(op.bytes);
          // Gradient-push ordering (core/push_schedule.h) is best-effort:
          // the uplink channel honors priorities among queued pushes, but
          // no hand-off gate holds a ready gradient back.
          if (schedule.size() == worker_graph.size() &&
              schedule.HasPriority(op.id)) {
            task.priority = schedule.priority(op.id);
          }
          break;
        }
        case core::OpKind::kCompute: {
          task.resource = w;
          double speed = 1.0;
          if (static_cast<std::size_t>(w) <
              config.worker_speed_factors.size()) {
            speed = config.worker_speed_factors[static_cast<std::size_t>(w)];
            if (speed <= 0.0) {
              throw std::invalid_argument("worker speed factor must be > 0");
            }
          }
          task.duration = op.cost / (hw.compute_rate * speed);
          break;
        }
        default:
          throw std::invalid_argument(
              "worker partition may only hold compute/recv/send ops");
      }
      for (core::OpId pred : worker_graph.preds(op.id)) {
        task.preds.push_back(op_task[static_cast<std::size_t>(w)]
                                    [static_cast<std::size_t>(pred)]);
      }
      const auto id = static_cast<sim::TaskId>(out.tasks.size());
      op_task[static_cast<std::size_t>(w)][static_cast<std::size_t>(op.id)] =
          id;
      out.worker_tasks[static_cast<std::size_t>(w)].push_back(id);
      if (op.kind == core::OpKind::kRecv) {
        out.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(id);
        out.transfer_param[static_cast<std::size_t>(w)].push_back(op.param);
      }
      if (op.kind == core::OpKind::kCompute) {
        out.worker_sink[static_cast<std::size_t>(w)] = id;  // last in topo
      }
      out.tasks.push_back(std::move(task));
    }
  }

  // DAG-chaining enforcement: each transfer depends on the completion of
  // its predecessor in the normalized order (§5.1's rejected variant).
  if (scheduled && config.enforcement == Enforcement::kDagChain) {
    for (int w = 0; w < W; ++w) {
      const auto& recv_tasks = out.worker_recv_tasks[static_cast<std::size_t>(w)];
      std::vector<sim::TaskId> by_rank(recv_tasks.size());
      for (sim::TaskId t : recv_tasks) {
        by_rank[static_cast<std::size_t>(
            out.tasks[static_cast<std::size_t>(t)].priority)] = t;
      }
      for (std::size_t r = 1; r < by_rank.size(); ++r) {
        out.tasks[static_cast<std::size_t>(by_rank[r])].preds.push_back(
            by_rank[r - 1]);
      }
    }
  }

  // PS-side aggregation + update per parameter (training only): aggregate
  // fires once every worker's gradient push for that parameter lands.
  out.update_task.assign(static_cast<std::size_t>(P), -1);
  if (config.training) {
    std::vector<std::vector<sim::TaskId>> sends_of_param(
        static_cast<std::size_t>(P));
    for (int w = 0; w < W; ++w) {
      for (const core::Op& op : worker_graph.ops()) {
        if (op.kind == core::OpKind::kSend) {
          sends_of_param[static_cast<std::size_t>(op.param)].push_back(
              op_task[static_cast<std::size_t>(w)]
                     [static_cast<std::size_t>(op.id)]);
        }
      }
    }
    for (int p = 0; p < P; ++p) {
      auto& sends = sends_of_param[static_cast<std::size_t>(p)];
      if (sends.empty()) continue;  // parameter without gradient (frozen)
      sim::Task aggregate;
      aggregate.duration = hw.ps_op_time_s;
      aggregate.resource = ps_cpu(ps_for(p));
      aggregate.kind = core::OpKind::kAggregate;
      aggregate.preds = sends;
      const auto agg_id = static_cast<sim::TaskId>(out.tasks.size());
      out.tasks.push_back(std::move(aggregate));

      sim::Task update;
      update.duration = hw.ps_op_time_s;
      update.resource = ps_cpu(ps_for(p));
      update.kind = core::OpKind::kUpdate;
      update.preds.push_back(agg_id);
      out.update_task[static_cast<std::size_t>(p)] =
          static_cast<sim::TaskId>(out.tasks.size());
      out.tasks.push_back(std::move(update));
    }
  }

  return out;
}

PipelineLowering LowerPipeline(const core::Graph& worker_graph,
                               const core::Schedule& schedule,
                               const std::vector<int>& ps_of_param,
                               const ClusterConfig& config, int iterations) {
  if (iterations < 1) throw std::invalid_argument("iterations must be >= 1");
  const Lowering once =
      LowerCluster(worker_graph, schedule, ps_of_param, config);
  const int W = once.num_workers;
  const auto tasks_per_iter = static_cast<sim::TaskId>(once.tasks.size());

  PipelineLowering out;
  out.iterations = iterations;
  Lowering& merged = out.lowering;
  merged.num_resources = once.num_resources;
  merged.num_workers = W;
  merged.worker_tasks.resize(static_cast<std::size_t>(W));
  merged.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  merged.transfer_param = once.transfer_param;
  merged.update_task = once.update_task;
  merged.worker_sink = once.worker_sink;

  for (int k = 0; k < iterations; ++k) {
    const sim::TaskId offset = tasks_per_iter * k;
    const sim::TaskId prev_offset = tasks_per_iter * (k - 1);
    for (sim::TaskId t = 0; t < tasks_per_iter; ++t) {
      sim::Task task = once.tasks[static_cast<std::size_t>(t)];
      for (sim::TaskId& p : task.preds) p += offset;
      // Enforcement counters reset each iteration (§5.1): distinct gate
      // group per (worker, iteration).
      if (task.gate_group >= 0) task.gate_group += k * W;
      if (k > 0 && task.kind == core::OpKind::kRecv && task.worker >= 0) {
        const int param = worker_graph.op(task.op).param;
        const sim::TaskId upd =
            once.update_task.empty()
                ? -1
                : once.update_task[static_cast<std::size_t>(param)];
        if (upd >= 0) {
          // Training: pull k waits for update k-1 of the same parameter.
          task.preds.push_back(prev_offset + upd);
        } else {
          // Inference serving loop: step k starts after forward k-1.
          task.preds.push_back(
              prev_offset +
              once.worker_sink[static_cast<std::size_t>(task.worker)]);
        }
      }
      out.task_iteration.push_back(k);
      merged.tasks.push_back(std::move(task));
    }
    for (int w = 0; w < W; ++w) {
      for (sim::TaskId t : once.worker_tasks[static_cast<std::size_t>(w)]) {
        merged.worker_tasks[static_cast<std::size_t>(w)].push_back(t + offset);
      }
      for (sim::TaskId t :
           once.worker_recv_tasks[static_cast<std::size_t>(w)]) {
        merged.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(
            t + offset);
      }
    }
  }
  return out;
}

PipelineTiming ComputePipelineTiming(const PipelineLowering& pipeline,
                                     const sim::SimResult& result) {
  PipelineTiming timing;
  timing.iteration_finish.assign(
      static_cast<std::size_t>(pipeline.iterations), 0.0);
  for (std::size_t t = 0; t < pipeline.lowering.tasks.size(); ++t) {
    auto& finish = timing.iteration_finish[static_cast<std::size_t>(
        pipeline.task_iteration[t])];
    finish = std::max(finish, result.end[t]);
  }
  timing.first_iteration = timing.iteration_finish.front();
  if (pipeline.iterations > 1) {
    timing.steady_state =
        (timing.iteration_finish.back() - timing.iteration_finish.front()) /
        static_cast<double>(pipeline.iterations - 1);
  } else {
    timing.steady_state = timing.first_iteration;
  }
  return timing;
}

}  // namespace tictac::runtime
