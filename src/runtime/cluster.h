// Cluster configuration and the two evaluation environments of Section 6.
#pragma once

#include "core/time_oracle.h"
#include "sim/task.h"

namespace tictac::runtime {

// The scheduling method under test.
//
// Deprecated: the closed enum survives only as a migration shim. New code
// selects policies by name through core::PolicyRegistry ("baseline",
// "tic", "tac", ...) or passes a core::SchedulingPolicy directly; see
// core/policy_registry.h.
enum class Method {
  kBaseline,  // no priorities, no enforcement — TensorFlow's arbitrary order
  kTic,       // Algorithm 2
  kTac,       // Algorithm 3
};

const char* ToString(Method method);

// The PolicyRegistry key of a legacy enum value ("baseline"/"tic"/"tac").
const char* PolicyName(Method method);

// How the transfer order is imposed on the runtime (§5.1 discusses the
// candidate locations; the paper picks the sender-side hand-off gate).
enum class Enforcement {
  // Priorities influence ready-queue picks but nothing blocks hand-off.
  kPriorityOnly,
  // Sender-side counter gate before the gRPC hand-off (the paper's
  // choice): transfers enqueue in normalized-priority order, channels
  // drain concurrently.
  kHandoffGate,
  // Direct DAG dependencies between consecutive transfers: conservative,
  // each transfer waits for the *completion* of the previous one, which
  // defeats pipelining across channels (§5.1 rejects this).
  kDagChain,
};

const char* ToString(Enforcement enforcement);

struct ClusterConfig {
  int num_workers = 1;
  int num_ps = 1;
  // Training (forward+backward+gradient push+PS update) vs inference
  // (parameter read + forward), per the two workloads of Section 6.
  bool training = true;
  // Batch-size multiplier (Figure 10 sweeps {0.5, 1, 2}).
  double batch_factor = 1.0;
  // Hardware cost model. compute_rate is in GFLOP/s to match the
  // GFLOP-denominated op costs produced by the model builder.
  core::PlatformModel platform;
  // Execution-time variation and gRPC reordering.
  sim::SimOptions sim;
  // Lognormal sigma for the oracle TAC consumes; 0 = exact oracle. Models
  // trace-estimation error (the ablation of DESIGN.md A2).
  double tac_oracle_sigma = 0.0;
  // Order-enforcement mechanism (ablation A1).
  Enforcement enforcement = Enforcement::kHandoffGate;
  // Per-worker compute speed multipliers (hardware heterogeneity; 1.0 =
  // nominal). Empty = homogeneous. Scheduling fixes *schedule-induced*
  // stragglers, not hardware ones — the straggler ablation separates the
  // two.
  std::vector<double> worker_speed_factors;
  // Split transfers larger than this into chunks before scheduling
  // (core/chunking.h, the P3/ByteScheduler-style extension). 0 = off.
  std::int64_t chunk_bytes = 0;
};

// envG — cloud GPU environment: Standard NC6 workers (1x K80) with
// CPU-only F64s parameter servers on a ~10 Gb/s cloud fabric.
ClusterConfig EnvG(int num_workers, int num_ps, bool training);

// envC — high-end CPU commodity cluster on 1 GbE.
ClusterConfig EnvC(int num_workers, int num_ps, bool training);

}  // namespace tictac::runtime
