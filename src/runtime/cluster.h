// Cluster configuration and the two evaluation environments of Section 6.
//
// Scheduling policies are selected by core::PolicyRegistry spec strings
// ("baseline", "tic", "tac", "random:7", ...); see core/policy_registry.h.
#pragma once

#include <string_view>

#include "core/time_oracle.h"
#include "runtime/sharding.h"
#include "sim/task.h"

namespace tictac::runtime {

// Aggregation topology of the cluster: the paper's parameter-server
// fabric (runtime/lowering.h) or the Horovod-style ring all-reduce
// comparison substrate (runtime/allreduce.h).
enum class Topology {
  kPsFabric,
  kRing,
};

const char* ToString(Topology topology);

// Compact token, the `topology=` value of the spec grammar: "ps" | "ring".
const char* TopologyToken(Topology topology);

// Inverse of TopologyToken; throws std::invalid_argument listing the
// accepted tokens.
Topology ParseTopology(std::string_view token);

// How the transfer order is imposed on the runtime (§5.1 discusses the
// candidate locations; the paper picks the sender-side hand-off gate).
enum class Enforcement {
  // Priorities influence ready-queue picks but nothing blocks hand-off.
  kPriorityOnly,
  // Sender-side counter gate before the gRPC hand-off (the paper's
  // choice): transfers enqueue in normalized-priority order, channels
  // drain concurrently.
  kHandoffGate,
  // Direct DAG dependencies between consecutive transfers: conservative,
  // each transfer waits for the *completion* of the previous one, which
  // defeats pipelining across channels (§5.1 rejects this).
  kDagChain,
};

const char* ToString(Enforcement enforcement);

// Compact machine-readable token, the `enforce=` value of the
// ExperimentSpec grammar: "priority" | "gate" | "chain". ToString() above
// stays the human-readable display form.
const char* EnforcementToken(Enforcement enforcement);

// Inverse of EnforcementToken; throws std::invalid_argument listing the
// accepted tokens.
Enforcement ParseEnforcement(std::string_view token);

struct ClusterConfig {
  int num_workers = 1;
  int num_ps = 1;
  // Training (forward+backward+gradient push+PS update) vs inference
  // (parameter read + forward), per the two workloads of Section 6.
  bool training = true;
  // Batch-size multiplier (Figure 10 sweeps {0.5, 1, 2}).
  double batch_factor = 1.0;
  // Hardware cost model. compute_rate is in GFLOP/s to match the
  // GFLOP-denominated op costs produced by the model builder.
  core::PlatformModel platform;
  // Execution-time variation and gRPC reordering.
  sim::SimOptions sim;
  // Lognormal sigma for the oracle TAC consumes; 0 = exact oracle. Models
  // trace-estimation error (the ablation of DESIGN.md A2).
  double tac_oracle_sigma = 0.0;
  // Order-enforcement mechanism (ablation A1).
  Enforcement enforcement = Enforcement::kHandoffGate;
  // Per-worker compute speed multipliers (hardware heterogeneity; 1.0 =
  // nominal). Empty = homogeneous. Scheduling fixes *schedule-induced*
  // stragglers, not hardware ones — the straggler ablation separates the
  // two.
  std::vector<double> worker_speed_factors;
  // Split transfers larger than this into chunks before scheduling
  // (core/chunking.h, the P3/ByteScheduler-style extension). 0 = off.
  std::int64_t chunk_bytes = 0;
  // Aggregation topology: parameter-server fabric (the paper's setting)
  // or ring all-reduce.
  Topology topology = Topology::kPsFabric;
  // Parameter -> PS placement strategy (runtime/sharding.h).
  ShardStrategy shard = ShardStrategy::kBytes;
  // Fat-tree shape of the PS fabric for the flow-level contention model
  // (models/topology.h; consumed by the lower_flow_nics pass when
  // sim.flow_fairness is on): leaf pod count and core oversubscription
  // ratio. Defaults describe a single non-blocking switch.
  int fabric_pods = 1;
  double fabric_oversubscription = 1.0;

  // Rejects configurations that would silently misbehave downstream:
  // num_workers/num_ps < 1, batch_factor <= 0, chunk_bytes < 0,
  // topology=ring without training or with < 2 workers,
  // worker_speed_factors whose size is neither 0 nor num_workers or whose
  // entries are not positive, fabric_pods < 1, non-positive
  // fabric_oversubscription, and sim.flow_fairness on a ring topology
  // (the flow model covers the PS fabric only; pods vs host count is
  // checked at lowering time against the merged fabric). Throws
  // std::invalid_argument naming the offending field and value. Runner
  // and ClusterSpec::Build() call this on construction.
  void Validate() const;
};

// envG — cloud GPU environment: Standard NC6 workers (1x K80) with
// CPU-only F64s parameter servers on a ~10 Gb/s cloud fabric.
ClusterConfig EnvG(int num_workers, int num_ps, bool training);

// envC — high-end CPU commodity cluster on 1 GbE.
ClusterConfig EnvC(int num_workers, int num_ps, bool training);

}  // namespace tictac::runtime
