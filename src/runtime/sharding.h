// Parameter -> parameter-server assignment.
//
// Distributed TensorFlow shards variables across parameter servers; we use
// greedy balanced-bytes placement (largest parameter first onto the least
// loaded PS), which keeps per-PS transfer volume near-equal — the property
// the multi-PS experiments (Figure 9) depend on.
#pragma once

#include <cstdint>
#include <vector>

namespace tictac::runtime {

// Returns ps index per parameter, in [0, num_ps). num_ps must be >= 1.
std::vector<int> ShardParams(const std::vector<std::int64_t>& param_bytes,
                             int num_ps);

// Total bytes per PS under `assignment`.
std::vector<std::int64_t> ShardLoads(
    const std::vector<std::int64_t>& param_bytes,
    const std::vector<int>& assignment, int num_ps);

}  // namespace tictac::runtime
