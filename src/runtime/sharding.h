// Parameter -> parameter-server assignment.
//
// Distributed TensorFlow shards variables across parameter servers; the
// default is greedy balanced-bytes placement (largest parameter first onto
// the least loaded PS), which keeps per-PS transfer volume near-equal —
// the property the multi-PS experiments (Figure 9) depend on. Round-robin
// placement (TensorFlow's default replica_device_setter) is available as
// the `shard=even` spec knob for ablations.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace tictac::runtime {

enum class ShardStrategy {
  // Greedy balanced-bytes: largest parameter first onto the least-loaded
  // PS (the repo's historical behavior and the default).
  kBytes,
  // Round-robin by parameter index: parameter p on PS p % num_ps,
  // ignoring sizes.
  kEven,
};

// Compact token, the `shard=` value of the spec grammar:
// "bytes" | "even".
const char* ShardStrategyToken(ShardStrategy strategy);

// Inverse of ShardStrategyToken; throws std::invalid_argument listing the
// accepted tokens.
ShardStrategy ParseShardStrategy(std::string_view token);

// Returns ps index per parameter, in [0, num_ps). num_ps must be >= 1.
std::vector<int> ShardParams(const std::vector<std::int64_t>& param_bytes,
                             int num_ps,
                             ShardStrategy strategy = ShardStrategy::kBytes);

// Total bytes per PS under `assignment`.
std::vector<std::int64_t> ShardLoads(
    const std::vector<std::int64_t>& param_bytes,
    const std::vector<int>& assignment, int num_ps);

}  // namespace tictac::runtime
