#include "runtime/sharding.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>

namespace tictac::runtime {

const char* ShardStrategyToken(ShardStrategy strategy) {
  switch (strategy) {
    case ShardStrategy::kBytes: return "bytes";
    case ShardStrategy::kEven: return "even";
  }
  return "bytes";
}

ShardStrategy ParseShardStrategy(std::string_view token) {
  if (token == "bytes") return ShardStrategy::kBytes;
  if (token == "even") return ShardStrategy::kEven;
  throw std::invalid_argument("unknown shard strategy '" +
                              std::string(token) +
                              "' (known: bytes, even)");
}

std::vector<int> ShardParams(const std::vector<std::int64_t>& param_bytes,
                             int num_ps, ShardStrategy strategy) {
  assert(num_ps >= 1);
  std::vector<int> assignment(param_bytes.size(), 0);
  if (num_ps == 1) return assignment;
  if (strategy == ShardStrategy::kEven) {
    for (std::size_t p = 0; p < assignment.size(); ++p) {
      assignment[p] = static_cast<int>(p % static_cast<std::size_t>(num_ps));
    }
    return assignment;
  }

  // Largest-first greedy onto the least-loaded server.
  std::vector<std::size_t> order(param_bytes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return param_bytes[a] > param_bytes[b];
  });
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_ps), 0);
  for (std::size_t p : order) {
    const int target = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[p] = target;
    load[static_cast<std::size_t>(target)] += param_bytes[p];
  }
  return assignment;
}

std::vector<std::int64_t> ShardLoads(
    const std::vector<std::int64_t>& param_bytes,
    const std::vector<int>& assignment, int num_ps) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_ps), 0);
  for (std::size_t p = 0; p < param_bytes.size(); ++p) {
    load[static_cast<std::size_t>(assignment[p])] += param_bytes[p];
  }
  return load;
}

}  // namespace tictac::runtime
