// Datacenter-scale contended sweep (DESIGN.md §11): N co-located jobs
// partitioned over K independent PS fabrics, merged into ONE task graph
// with disjoint resource/gate/flow-link ranges, and simulated by the
// sharded event engine (sim::TaskGraphSim::RunParallel) — each fabric is
// an independent component, so the engine advances the K event loops on
// separate threads with per-component random streams while the result
// stays identical at every thread count.
//
// This is the scale regime the per-fabric MultiJobRunner (capped at 64
// jobs) cannot reach: a 1000-job sweep becomes ceil(1000/64) = 16
// fabrics, lowered once and simulated as a single graph. Per-job metrics
// come out of the same SliceResult/ComputeIterationStats machinery as
// the single-fabric path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/multijob.h"

namespace tictac::runtime {

struct ClusterSweepOptions {
  // Number of fabrics to partition the jobs over; 0 = as few as the
  // 64-job per-fabric cap allows (ceil(N / 64)). Jobs are split into
  // contiguous, size-balanced chunks.
  int fabrics = 0;
  // Threads for the sharded engine; 0 = hardware concurrency. The
  // simulated results are identical for every value (sim/engine.h).
  int num_threads = 0;
};

// Deterministic aggregate report: same spec + seed -> byte-identical
// ToJson() at any thread count (the CI smoke runs a sweep twice and
// cmp's the files).
struct ClusterSweepResult {
  int jobs = 0;
  int fabrics = 0;
  int components = 0;  // independent event-loop shards in the merged sim
  int iterations = 0;
  // Mean over iterations of the latest fabric finish (the sweep's
  // wall-clock per iteration).
  double mean_makespan_s = 0.0;
  // Distribution of per-job mean iteration times across the population.
  double mean_job_iteration_s = 0.0;
  double p50_job_iteration_s = 0.0;
  double p99_job_iteration_s = 0.0;
  // Sum of per-job throughputs (samples/s) and Jain fairness across them.
  double total_throughput = 0.0;
  double fairness = 0.0;
  // Per-job mean iteration time, in global job order.
  std::vector<double> job_mean_iteration_s;

  std::string ToJson() const;
};

// Builds and runs the partitioned sweep. Construction partitions the
// jobs, constructs one MultiJobRunner per fabric (schedules computed
// against each fabric's contended oracle), and merges the per-fabric
// lowerings into one task graph with disjoint resource, gate-group and
// flow-link id ranges. Throws std::invalid_argument on an empty job
// list, a partition that overflows the per-fabric cap, or fabrics whose
// simulation options disagree (jitter/ooo/gates are global to a run).
class ClusterSweep {
 public:
  explicit ClusterSweep(std::vector<MultiJobEntry> jobs,
                        ClusterSweepOptions options = {});

  ClusterSweep(const ClusterSweep&) = delete;
  ClusterSweep& operator=(const ClusterSweep&) = delete;

  // Simulates jobs[0].spec.iterations iterations seeded seed + i from
  // jobs[0].spec.seed, exactly like the single-fabric path.
  ClusterSweepResult Run() const;
  ClusterSweepResult Run(int iterations, std::uint64_t seed) const;

  int num_jobs() const;
  int num_fabrics() const { return static_cast<int>(fabrics_.size()); }

 private:
  ClusterSweepOptions options_;
  std::vector<std::unique_ptr<MultiJobRunner>> fabrics_;
  // The merged graph: fabric f's tasks at [task_base_[f], task_base_[f+1]).
  std::vector<sim::Task> merged_tasks_;
  std::vector<sim::TaskId> task_base_;
  int merged_resources_ = 0;
  // Merged capacity graph (null when no fabric enables flow fairness);
  // merged_options_.network points at it.
  std::shared_ptr<sim::FlowNetwork> merged_flow_;
  sim::SimOptions merged_options_;
};

}  // namespace tictac::runtime
