// Experiment runner: builds a model's worker partition, schedules it with
// the requested policy, lowers the cluster, and simulates iterations,
// collecting the paper's metrics (throughput, scheduling efficiency E,
// straggler share, transfer orders).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/properties.h"
#include "core/schedule.h"
#include "models/builder.h"
#include "runtime/lowering.h"

namespace tictac::runtime {

struct IterationStats {
  double makespan = 0.0;                // cluster iteration time (seconds)
  std::vector<double> worker_finish;    // per-worker partition makespan
  double straggler_pct = 0.0;           // max worker wait / iteration time
  double mean_efficiency = 0.0;         // E (Eq. 3) averaged over workers
  std::vector<int> recv_order;          // worker 0 transfer completion order
  // Fraction of the smaller of (communication busy time, computation busy
  // time) during which both proceeded concurrently, averaged over
  // workers. 1 = perfect overlap of the shorter side, 0 = fully serial.
  double overlap_fraction = 0.0;
};

// Statistics of one simulated iteration of `lowering`: per-worker
// partition makespans, Eq.-3 scheduling efficiency from the iteration's
// measured op times, communication/computation overlap, straggler share,
// and worker-0's parameter arrival order. `run` must be the SimResult of
// lowering's own task graph (the multi-job runner slices its combined
// result into per-job SimResults first, runtime/multijob.h).
// stats.makespan is run.makespan.
IterationStats ComputeIterationStats(const Lowering& lowering,
                                     const sim::SimResult& run);

struct ExperimentResult {
  std::vector<IterationStats> iterations;
  double samples_per_iteration = 0.0;

  double MeanIterationTime() const;
  double Throughput() const;  // samples / second
  // The paper reports the max across iterations for stragglers and E.
  double MaxStragglerPct() const;
  double MeanStragglerPct() const;
  double MaxEfficiency() const;
  double MeanEfficiency() const;
  double MeanOverlap() const;
  // Distinct worker-0 parameter arrival orders across iterations (§2.2).
  int UniqueRecvOrders() const;
};

class Runner {
 public:
  // Validates `config` (ClusterConfig::Validate) before building the
  // worker graph; throws std::invalid_argument on a bad configuration.
  //
  // Runs are const and touch only per-call state, so one Runner may
  // serve concurrent Run()/MakeSchedule() calls from several threads
  // (harness::Session's parallel sweep executor relies on this).
  Runner(const models::ModelInfo& model, ClusterConfig config);

  // The cached PropertyIndex points into graph_; a copied or moved Runner
  // would leave it dangling. Caching it also amortizes the dependency
  // analysis (and its recv→consumers inverted index, which TAC's
  // incremental property maintenance walks) across every policy this
  // Runner evaluates.
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  // The priority schedule the given policy produces for this model (empty
  // — no priorities — for the baseline). The policy is fed a time oracle
  // reflecting this cluster's effective transfer costs (PS NICs are
  // time-shared by all workers, see lowering), perturbed by
  // config.tac_oracle_sigma when the policy requires timing.
  core::Schedule MakeSchedule(const core::SchedulingPolicy& policy) const;

  // Simulates `iterations` iterations; deterministic in `seed`. Gate
  // enforcement is on iff the policy's schedule covers every recv.
  ExperimentResult Run(const core::SchedulingPolicy& policy, int iterations,
                       std::uint64_t seed) const;

  // Name-based conveniences resolving `policy` (a spec like "tic" or
  // "random:7") through core::PolicyRegistry::Global().
  core::Schedule MakeSchedule(const std::string& policy) const;
  ExperimentResult Run(const std::string& policy, int iterations,
                       std::uint64_t seed) const;

  const core::Graph& worker_graph() const { return graph_; }
  const ClusterConfig& config() const { return config_; }
  const std::vector<int>& ps_of_param() const { return ps_of_param_; }

 private:
  models::ModelInfo model_;
  ClusterConfig config_;
  core::Graph graph_;
  // Dependency analysis of graph_, shared by every policy invocation.
  std::unique_ptr<const core::PropertyIndex> index_;
  std::vector<int> ps_of_param_;
};

}  // namespace tictac::runtime
