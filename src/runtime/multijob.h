// Multi-job shared-cluster lowering (DESIGN.md §6): composes N
// independently-specified jobs onto ONE parameter-server fabric, so
// transfers from different jobs genuinely contend for the PS NICs and
// the PS bookkeeping CPUs — the regime ByteScheduler/P3-style systems
// target — while each job keeps its own workers, model, schedule and
// policy.
//
// Resource layout of the combined fabric (T = Σ_j W_j workers, S shared
// parameter servers; identical to runtime/lowering.h with W := T, so a
// 1-job lowering degenerates to the single-job layout *bit for bit*):
//   [0, T)                      worker computation, job j's workers at
//                                 [base_w(j), base_w(j) + W_j)
//   [T, T + T*S)                downlink channels (PS s -> global worker g)
//   [T + T*S, T + 2*T*S)        uplink channels (global worker g -> PS s)
//   [T + 2*T*S, T + 2*T*S + S)  PS bookkeeping CPUs — SHARED across jobs:
//                                 reads/aggregates/updates of all jobs
//                                 queue on the same S resources
//   [T + 2*T*S + S, ...)        one arrival-delay resource per job with a
//                                 start offset > 0
//
// Each PS NIC is time-shared by the T pair-channels of ALL jobs, so the
// per-channel bandwidth is bandwidth/T — adding a co-located job slows
// every transfer in the fabric, and the per-job schedules are computed
// against that contended oracle (MultiJobRunner scales each job's
// platform bandwidth by W_j/T before handing it to runtime::Runner,
// whose MakeSchedule divides by W_j; the product is bandwidth/T).
//
// The combined task graph runs through the existing sim::TaskGraphSim
// unchanged — tasks, resources, priorities and per-(job, worker) gate
// groups are all it ever sees. SliceResult() cuts the combined SimResult
// back into per-job SimResults so runtime::ComputeIterationStats yields
// per-job makespans/efficiency/overlap with the exact single-job code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/schedule.h"
#include "runtime/lowering.h"
#include "runtime/runner.h"
#include "runtime/spec.h"

namespace tictac::runtime {

// One job of a multi-job experiment: a complete single-job spec plus an
// arrival offset (seconds after t = 0 before any of the job's tasks may
// start — the staggered-arrival scenario family).
struct MultiJobEntry {
  ExperimentSpec spec;
  double start_offset = 0.0;

  friend bool operator==(const MultiJobEntry&,
                         const MultiJobEntry&) = default;
};

// Parses the "[COUNTx]{<experiment spec>}[@offset_s]" group grammar into
// a flat job list, with replication counts capped at `max_count`.
// MultiJobSpec::Parse is this with the 64-job fabric cap plus
// Validate(); the cluster sweep (runtime/clustersweep.h) parses with a
// larger cap and partitions the result over several fabrics. Throws
// std::invalid_argument (naming the bad token) on malformed input.
std::vector<MultiJobEntry> ParseJobGroups(std::string_view text,
                                          long long max_count);

// N jobs sharing one PS fabric. Text form (round-trips exactly):
//
//   jobs=2x{envG:workers=4:ps=2:training model=ResNet-101 v1 policy=tac
//   iterations=10 seed=1} {envG:workers=2:ps=2 model=VGG-16
//   policy=baseline iterations=10 seed=1}@0.05
//
// Grammar:
//   multijob := ["jobs="] group (ws group)*
//   group    := [COUNT "x"] "{" experiment-spec "}" ["@" OFFSET_SECONDS]
//
// `COUNT x` replicates the group (2x{...} = two identical co-located
// jobs); `@offset` delays every replica's arrival. ToString() collapses
// consecutive identical entries back into the counted form. At most 64
// jobs per fabric — each job costs a full Runner construction, so the
// cap keeps a one-line spec from encoding minutes of setup work.
struct MultiJobSpec {
  std::vector<MultiJobEntry> jobs;

  // Canonical text form; Parse(ToString()) == *this.
  std::string ToString() const;

  // Throws std::invalid_argument (naming the bad token) on malformed
  // input. The parsed spec is Validate()d before being returned.
  static MultiJobSpec Parse(std::string_view text);

  // The fabric-sharing rules: >= 1 job; every job declares the same env,
  // the same ps= count (it is one shared PS fleet), the same
  // iterations/seed (the combined graph is simulated as one unit), and
  // the same jitter/ooo overrides (sim options are global to a run);
  // offsets must be finite and >= 0. Model, policy, workers, training,
  // batch, chunk, enforcement, sigma and speeds may differ per job.
  // Throws std::invalid_argument naming the offending job and field.
  void Validate() const;

  // Sum of the jobs' worker counts (the T of the resource layout).
  int TotalWorkers() const;

  friend bool operator==(const MultiJobSpec&, const MultiJobSpec&) = default;
};

// The combined fabric plus the per-job slices needed to cut metrics back
// out of a combined SimResult.
struct MultiJobLowering {
  // Whole-fabric task graph: num_workers = T, worker tables indexed by
  // global worker id. update_task/worker_sink are left empty (parameter
  // indices are per-job; use the slices' lowerings).
  Lowering combined;

  struct JobSlice {
    // The job's own LowerCluster output, untouched (job-local task ids
    // and resources): feed it ComputeIterationStats together with
    // SliceResult's job-local SimResult.
    Lowering lowering;
    // The job's contiguous task range in the combined graph:
    // combined id = first_task + local id, range [first_task, last_task).
    sim::TaskId first_task = 0;
    sim::TaskId last_task = 0;
    // Global id of the job's first worker (base_w).
    int first_worker = 0;
    // Combined id of the arrival-delay task, -1 when start_offset == 0.
    sim::TaskId delay_task = -1;
    // The job's arrival offset, repeated here so SliceResult can shift
    // the slice onto the job's own clock.
    double start_offset = 0.0;
  };
  std::vector<JobSlice> jobs;

  int total_workers = 0;
  int num_ps = 0;
};

// Lowers every job with runtime::LowerCluster and merges the results
// onto the shared fabric: task ids are offset per job, resources remapped
// into the combined layout (PS CPUs collapse onto the shared S), gate
// groups renumbered by global worker so enforcement counters never
// collide across jobs, and a start_offset > 0 becomes a delay task every
// source task of the job depends on. All jobs must declare the same
// num_ps. A single zero-offset job reproduces LowerCluster bit for bit.
MultiJobLowering LowerSharedCluster(const std::vector<JobLoweringInput>& jobs);

// Cuts the combined SimResult down to one job's slice: start/end are
// re-indexed to job-local task ids and shifted onto the job's own clock
// (its nominal arrival, start_offset, becomes t = 0, so waiting to
// arrive is not billed as contention slowdown or Eq.-3 inefficiency);
// makespan is the slice's own max shifted end — the job's completion
// time since arrival, the quantity per-job throughput and interference
// are measured against. start_order keeps the job's tasks, re-indexed.
// (Under jitter the delay task's simulated duration may differ slightly
// from the nominal offset, so shifted starts can be marginally
// negative; metrics only consume differences and maxima.)
sim::SimResult SliceResult(const sim::SimResult& combined,
                           const MultiJobLowering::JobSlice& job);

// Combined + per-job views of one multi-job experiment. jobs[j] is
// sliced from the same simulated executions the combined result
// summarizes, so for every iteration i:
//   combined.iterations[i].makespan ==
//       max_j (jobs[j].iterations[i].makespan + start_offset_j)
// (each task belongs to exactly one job; delay tasks never finish
// last). With all offsets zero — the common case — the combined
// makespan is exactly the max over per-job makespans.
struct MultiJobResult {
  ExperimentResult combined;
  std::vector<ExperimentResult> jobs;
};

// Builds and runs a multi-job experiment. Construction validates the
// spec, computes each job's schedule against the contended oracle, and
// lowers the shared fabric; Run() then simulates the spec's iterations.
// A 1-job MultiJobRunner reproduces the single-job Session/Runner path
// bit for bit (pinned by tests/multijob_test.cc).
class MultiJobRunner {
 public:
  explicit MultiJobRunner(MultiJobSpec spec);

  // The per-job Runners hold the graphs lowering_ points into.
  MultiJobRunner(const MultiJobRunner&) = delete;
  MultiJobRunner& operator=(const MultiJobRunner&) = delete;

  // Simulates spec().jobs[0].spec.iterations iterations (validated equal
  // across jobs), seeds seed + i as the single-job path does. Thread-safe
  // (const, all mutable state is per-call).
  MultiJobResult Run() const;
  MultiJobResult Run(int iterations, std::uint64_t seed) const;

  const MultiJobSpec& spec() const { return spec_; }
  const MultiJobLowering& lowering() const { return lowering_; }
  int total_workers() const { return lowering_.total_workers; }
  // The options every Run() simulates with (gates, jitter, flow network),
  // derived from the jobs' configs at construction. The cluster sweep
  // (runtime/clustersweep.h) reads these to merge fabrics into one sim.
  const sim::SimOptions& sim_options() const { return sim_options_; }

 private:
  MultiJobSpec spec_;
  // One Runner per job, constructed with the contended-bandwidth config;
  // supplies the worker graph, PropertyIndex-backed scheduling, and
  // parameter sharding.
  std::vector<std::unique_ptr<Runner>> runners_;
  std::vector<core::Schedule> schedules_;
  // Whether job j's schedule covers all its recvs (gates enforced).
  std::vector<bool> scheduled_;
  MultiJobLowering lowering_;
  sim::SimOptions sim_options_;
};

}  // namespace tictac::runtime
