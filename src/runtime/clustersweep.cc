#include "runtime/clustersweep.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/zoo.h"
#include "sim/flow.h"

namespace tictac::runtime {
namespace {

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("clustersweep: " + message);
}

// Per-fabric cap mirrored from runtime/multijob.cc (MultiJobSpec
// enforces it; the sweep's partitioner must agree so its error message
// can name the fix).
constexpr int kMaxJobsPerFabric = 64;

// Nearest-rank percentile of a sorted sample: deterministic, no
// interpolation, exact for the byte-compare CI smoke.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

ClusterSweep::ClusterSweep(std::vector<MultiJobEntry> jobs,
                           ClusterSweepOptions options)
    : options_(options) {
  if (jobs.empty()) Fail("need >= 1 job");
  const int n = static_cast<int>(jobs.size());
  const int fabrics = options_.fabrics > 0
                          ? options_.fabrics
                          : (n + kMaxJobsPerFabric - 1) / kMaxJobsPerFabric;
  if (fabrics > n) {
    Fail("more fabrics (" + std::to_string(fabrics) + ") than jobs (" +
         std::to_string(n) + ")");
  }
  const int base = n / fabrics;
  const int extra = n % fabrics;  // first `extra` fabrics take one more
  if (base + (extra > 0 ? 1 : 0) > kMaxJobsPerFabric) {
    Fail("partitioning " + std::to_string(n) + " jobs over " +
         std::to_string(fabrics) + " fabrics puts " +
         std::to_string(base + (extra > 0 ? 1 : 0)) +
         " on one fabric; the per-fabric cap is " +
         std::to_string(kMaxJobsPerFabric) + " — use at least " +
         std::to_string((n + kMaxJobsPerFabric - 1) / kMaxJobsPerFabric) +
         " fabrics");
  }

  // Contiguous, size-balanced chunks; each fabric computes its own
  // schedules against its own contended oracle (jobs only contend with
  // co-located jobs, never across fabrics).
  fabrics_.reserve(static_cast<std::size_t>(fabrics));
  std::size_t next = 0;
  for (int f = 0; f < fabrics; ++f) {
    const int size = base + (f < extra ? 1 : 0);
    MultiJobSpec spec;
    spec.jobs.assign(jobs.begin() + static_cast<std::ptrdiff_t>(next),
                     jobs.begin() + static_cast<std::ptrdiff_t>(next) + size);
    next += static_cast<std::size_t>(size);
    fabrics_.push_back(std::make_unique<MultiJobRunner>(std::move(spec)));
  }

  // Simulation options are global to the merged run: every fabric must
  // agree on the knobs a single SimOptions carries. Gate enforcement
  // ORs across fabrics exactly as MultiJobRunner ORs it across
  // co-located jobs.
  const sim::SimOptions& head = fabrics_.front()->sim_options();
  merged_options_ = head;
  for (std::size_t f = 1; f < fabrics_.size(); ++f) {
    const sim::SimOptions& other = fabrics_[f]->sim_options();
    if (other.jitter_sigma != head.jitter_sigma ||
        other.out_of_order_probability != head.out_of_order_probability) {
      Fail("fabric " + std::to_string(f) +
           " overrides jitter=/ooo= differently from fabric 0 — simulation "
           "options are global to a run");
    }
    merged_options_.enforce_gates |= other.enforce_gates;
    merged_options_.flow_fairness |= other.flow_fairness;
  }

  // Merge the per-fabric lowerings: disjoint task, resource, gate-group
  // and flow-link id ranges, so the merged graph decomposes back into
  // one independent component per fabric (sim::TaskGraphSim::ComponentOf)
  // and the sharded engine runs the K event loops in parallel.
  task_base_.reserve(fabrics_.size() + 1);
  bool any_flow = false;
  for (const auto& fabric : fabrics_) {
    any_flow |= fabric->lowering().combined.flow != nullptr;
  }
  if (any_flow) merged_flow_ = std::make_shared<sim::FlowNetwork>();
  int gate_base = 0;
  for (const auto& fabric : fabrics_) {
    const Lowering& lowering = fabric->lowering().combined;
    const auto task_base = static_cast<sim::TaskId>(merged_tasks_.size());
    const int resource_base = merged_resources_;
    task_base_.push_back(task_base);
    int max_gate = -1;
    for (const sim::Task& task : lowering.tasks) {
      sim::Task merged = task;
      merged.resource += resource_base;
      for (sim::TaskId& pred : merged.preds) pred += task_base;
      if (merged.gate_group >= 0) {
        max_gate = std::max(max_gate, merged.gate_group);
        merged.gate_group += gate_base;
      }
      merged_tasks_.push_back(std::move(merged));
    }
    if (merged_flow_ && lowering.flow) {
      const sim::FlowNetwork& flow = *lowering.flow;
      const int link_base = static_cast<int>(merged_flow_->links.size());
      merged_flow_->links.insert(merged_flow_->links.end(),
                                 flow.links.begin(), flow.links.end());
      merged_flow_->resource_links.resize(
          static_cast<std::size_t>(resource_base) + flow.resource_links.size());
      merged_flow_->resource_nominal_bps.resize(
          merged_flow_->resource_links.size(), 0.0);
      for (std::size_t r = 0; r < flow.resource_links.size(); ++r) {
        if (flow.resource_links[r].empty()) continue;
        auto& links =
            merged_flow_->resource_links[static_cast<std::size_t>(resource_base) + r];
        links = flow.resource_links[r];
        for (int& link : links) link += link_base;
        merged_flow_->resource_nominal_bps
            [static_cast<std::size_t>(resource_base) + r] =
            flow.resource_nominal_bps[r];
      }
    }
    merged_resources_ += lowering.num_resources;
    gate_base += max_gate + 1;
  }
  task_base_.push_back(static_cast<sim::TaskId>(merged_tasks_.size()));
  merged_options_.network = merged_flow_.get();
}

int ClusterSweep::num_jobs() const {
  int total = 0;
  for (const auto& fabric : fabrics_) {
    total += static_cast<int>(fabric->spec().jobs.size());
  }
  return total;
}

ClusterSweepResult ClusterSweep::Run() const {
  const ExperimentSpec& head = fabrics_.front()->spec().jobs.front().spec;
  return Run(head.iterations, head.seed);
}

ClusterSweepResult ClusterSweep::Run(int iterations,
                                     std::uint64_t seed) const {
  if (iterations < 1) Fail("iterations must be >= 1");
  const sim::TaskGraphSim sim(merged_tasks_, merged_resources_);

  ClusterSweepResult result;
  result.jobs = num_jobs();
  result.fabrics = num_fabrics();
  result.iterations = iterations;
  {
    const std::vector<int> component = sim.ComponentOf(merged_options_);
    int max_component = -1;
    for (const int c : component) max_component = std::max(max_component, c);
    result.components = max_component + 1;
  }

  // Per-job accumulators, global job order (fabric-major).
  std::vector<ExperimentResult> per_job(static_cast<std::size_t>(result.jobs));
  {
    std::size_t g = 0;
    for (const auto& fabric : fabrics_) {
      for (const MultiJobEntry& entry : fabric->spec().jobs) {
        const ExperimentSpec& job = entry.spec;
        per_job[g].samples_per_iteration =
            models::FindModel(job.model).standard_batch *
            job.cluster.batch_factor * job.cluster.workers;
        per_job[g].iterations.reserve(static_cast<std::size_t>(iterations));
        ++g;
      }
    }
  }

  double makespan_sum = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const sim::SimResult run = sim.RunParallel(
        merged_options_, seed + static_cast<std::uint64_t>(i),
        options_.num_threads);
    makespan_sum += run.makespan;
    std::size_t g = 0;
    for (std::size_t f = 0; f < fabrics_.size(); ++f) {
      // Cut the fabric's task range back out so the per-fabric slices
      // (fabric-local task ids) apply unchanged.
      const auto first = static_cast<std::size_t>(task_base_[f]);
      const auto last = static_cast<std::size_t>(task_base_[f + 1]);
      sim::SimResult fabric_run;
      fabric_run.start.assign(
          run.start.begin() + static_cast<std::ptrdiff_t>(first),
          run.start.begin() + static_cast<std::ptrdiff_t>(last));
      fabric_run.end.assign(
          run.end.begin() + static_cast<std::ptrdiff_t>(first),
          run.end.begin() + static_cast<std::ptrdiff_t>(last));
      for (const sim::TaskId t : run.start_order) {
        if (t >= task_base_[f] && t < task_base_[f + 1]) {
          fabric_run.start_order.push_back(t - task_base_[f]);
        }
      }
      const MultiJobLowering& lowering = fabrics_[f]->lowering();
      for (const MultiJobLowering::JobSlice& slice : lowering.jobs) {
        const sim::SimResult sliced = SliceResult(fabric_run, slice);
        per_job[g].iterations.push_back(
            ComputeIterationStats(slice.lowering, sliced));
        ++g;
      }
    }
  }
  result.mean_makespan_s = makespan_sum / static_cast<double>(iterations);

  result.job_mean_iteration_s.reserve(per_job.size());
  double throughput_sum = 0.0;
  double throughput_sq_sum = 0.0;
  double iteration_sum = 0.0;
  for (const ExperimentResult& job : per_job) {
    const double mean = job.MeanIterationTime();
    result.job_mean_iteration_s.push_back(mean);
    iteration_sum += mean;
    const double throughput = job.Throughput();
    throughput_sum += throughput;
    throughput_sq_sum += throughput * throughput;
  }
  result.mean_job_iteration_s =
      iteration_sum / static_cast<double>(per_job.size());
  std::vector<double> sorted = result.job_mean_iteration_s;
  std::sort(sorted.begin(), sorted.end());
  result.p50_job_iteration_s = Percentile(sorted, 0.50);
  result.p99_job_iteration_s = Percentile(sorted, 0.99);
  result.total_throughput = throughput_sum;
  result.fairness =
      throughput_sq_sum > 0.0
          ? (throughput_sum * throughput_sum) /
                (static_cast<double>(per_job.size()) * throughput_sq_sum)
          : 0.0;
  return result;
}

std::string ClusterSweepResult::ToJson() const {
  std::string json = "{\n";
  json += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  json += "  \"fabrics\": " + std::to_string(fabrics) + ",\n";
  json += "  \"components\": " + std::to_string(components) + ",\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"mean_makespan_s\": " + FormatDouble(mean_makespan_s) + ",\n";
  json += "  \"mean_job_iteration_s\": " + FormatDouble(mean_job_iteration_s) +
          ",\n";
  json += "  \"p50_job_iteration_s\": " + FormatDouble(p50_job_iteration_s) +
          ",\n";
  json += "  \"p99_job_iteration_s\": " + FormatDouble(p99_job_iteration_s) +
          ",\n";
  json += "  \"total_throughput\": " + FormatDouble(total_throughput) + ",\n";
  json += "  \"fairness\": " + FormatDouble(fairness) + ",\n";
  json += "  \"job_mean_iteration_s\": [";
  for (std::size_t j = 0; j < job_mean_iteration_s.size(); ++j) {
    json += (j == 0 ? "" : ", ") + FormatDouble(job_mean_iteration_s[j]);
  }
  json += "]\n}\n";
  return json;
}

}  // namespace tictac::runtime
