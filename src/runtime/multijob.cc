#include "runtime/multijob.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "ir/lower.h"
#include "models/zoo.h"

namespace tictac::runtime {
namespace {

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("multijob: " + message);
}

// Construction cost is one full Runner (graph build + dependency
// analysis + schedule) per job and a combined fabric of 2·T·S channel
// resources, so an over-generous job count turns a one-line spec into
// minutes of work; 64 co-located jobs is far beyond any realistic
// shared-PS scenario.
constexpr long long kMaxJobs = 64;

}  // namespace

std::string MultiJobSpec::ToString() const {
  std::string text = "jobs=";
  std::size_t i = 0;
  bool first = true;
  while (i < jobs.size()) {
    std::size_t run = 1;
    while (i + run < jobs.size() && jobs[i + run] == jobs[i]) ++run;
    if (!first) text += ' ';
    first = false;
    if (run > 1) text += std::to_string(run) + "x";
    text += '{' + jobs[i].spec.ToString() + '}';
    if (jobs[i].start_offset != 0.0) {
      text += '@' + FormatDouble(jobs[i].start_offset);
    }
    i += run;
  }
  return text;
}

std::vector<MultiJobEntry> ParseJobGroups(std::string_view text,
                                          long long max_count) {
  std::vector<MultiJobEntry> jobs;
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  skip_ws();
  if (text.substr(pos, 5) == "jobs=") pos += 5;
  while (true) {
    skip_ws();
    if (pos >= text.size()) break;
    // Optional replication count: "2x{...}".
    long long count = 1;
    if (std::isdigit(static_cast<unsigned char>(text[pos]))) {
      std::size_t digits = pos;
      while (digits < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[digits]))) {
        ++digits;
      }
      if (digits >= text.size() || text[digits] != 'x') {
        Fail("expected COUNTx{...} at '" + std::string(text.substr(pos)) +
             "'");
      }
      const std::string digits_text(text.substr(pos, digits - pos));
      try {
        count = std::stoll(digits_text);
      } catch (const std::out_of_range&) {
        count = -1;  // out of any acceptable range: fail below, loudly
      }
      if (count < 1 || count > max_count) {
        Fail("job count must be in [1, " + std::to_string(max_count) +
             "], got " + digits_text);
      }
      pos = digits + 1;
    }
    if (pos >= text.size() || text[pos] != '{') {
      Fail("expected '{' opening a job spec at '" +
           std::string(text.substr(pos)) + "'");
    }
    const std::size_t close = text.find('}', pos + 1);
    if (close == std::string_view::npos) {
      Fail("unterminated job spec (missing '}') in '" + std::string(text) +
           "'");
    }
    MultiJobEntry entry;
    entry.spec = ExperimentSpec::Parse(text.substr(pos + 1, close - pos - 1));
    pos = close + 1;
    if (pos < text.size() && text[pos] == '@') {
      std::size_t end = pos + 1;
      while (end < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      const std::string value(text.substr(pos + 1, end - pos - 1));
      try {
        std::size_t consumed = 0;
        entry.start_offset = std::stod(value, &consumed);
        if (consumed != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        Fail("@offset expects a number of seconds, got '" + value + "'");
      }
      pos = end;
    }
    // Totals above max_count are the caller's to reject (MultiJobSpec
    // caps per-fabric in Validate; the cluster sweep caps at parse time)
    // so the per-fabric error message stays the legacy one.
    for (long long c = 0; c < count; ++c) jobs.push_back(entry);
  }
  if (jobs.empty()) {
    Fail("no jobs found — expected at least one [COUNTx]{<experiment spec>} "
         "group");
  }
  return jobs;
}

MultiJobSpec MultiJobSpec::Parse(std::string_view text) {
  MultiJobSpec spec;
  spec.jobs = ParseJobGroups(text, kMaxJobs);
  spec.Validate();
  return spec;
}

void MultiJobSpec::Validate() const {
  if (jobs.empty()) Fail("need >= 1 job");
  if (jobs.size() > static_cast<std::size_t>(kMaxJobs)) {
    Fail("at most " + std::to_string(kMaxJobs) + " jobs per fabric, got " +
         std::to_string(jobs.size()));
  }
  const ExperimentSpec& head = jobs.front().spec;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const ExperimentSpec& job = jobs[j].spec;
    const std::string where = "job " + std::to_string(j) + " ('" +
                              job.ToString() + "') ";
    job.BuildCluster();  // per-job cluster validity, loud field names
    if (job.cluster.topology != Topology::kPsFabric) {
      Fail(where + "declares topology=" +
           std::string(TopologyToken(job.cluster.topology)) +
           " — the shared fabric is parameter-server only (a ring "
           "collective has no PS fleet to share; run it single-job)");
    }
    if (job.cluster.env != head.cluster.env) {
      Fail(where + "declares env " + job.cluster.env +
           " but the fabric is " + head.cluster.env +
           " — all jobs share one environment");
    }
    if (job.cluster.ps != head.cluster.ps) {
      Fail(where + "declares ps=" + std::to_string(job.cluster.ps) +
           " but the shared PS fleet has " +
           std::to_string(head.cluster.ps) +
           " servers — all jobs must declare the same ps=");
    }
    if (job.iterations != head.iterations || job.seed != head.seed) {
      Fail(where +
           "declares iterations/seed different from job 0 — the combined "
           "fabric is simulated as one unit, so iterations= and seed= must "
           "match across jobs");
    }
    if (job.cluster.jitter_sigma != head.cluster.jitter_sigma ||
        job.cluster.out_of_order != head.cluster.out_of_order) {
      Fail(where +
           "overrides jitter=/ooo= differently from job 0 — simulation "
           "options are global to a run");
    }
    if (!(jobs[j].start_offset >= 0.0) || std::isinf(jobs[j].start_offset)) {
      Fail(where + "has start offset " +
           std::to_string(jobs[j].start_offset) +
           " — offsets must be finite and >= 0");
    }
  }
}

int MultiJobSpec::TotalWorkers() const {
  int total = 0;
  for (const MultiJobEntry& job : jobs) total += job.spec.cluster.workers;
  return total;
}

MultiJobLowering LowerSharedCluster(
    const std::vector<JobLoweringInput>& jobs) {
  // The shared-fabric preconditions are checked up front — before any
  // per-job lowering work — preserving the legacy error precedence; the
  // merge_jobs pass re-validates them.
  if (jobs.empty()) Fail("LowerSharedCluster needs >= 1 job");
  const int S = jobs.front().config.num_ps;
  long long total = 0;
  for (const JobLoweringInput& job : jobs) {
    if (job.config.num_ps != S) {
      Fail("all jobs must share the PS fleet: got num_ps=" +
           std::to_string(job.config.num_ps) + " vs " + std::to_string(S));
    }
    total += job.config.num_workers;
  }
  if (total > (1 << 20)) {
    Fail("total workers across jobs must be <= 1048576, got " +
         std::to_string(total));
  }
  ir::Module module = ir::StandardLoweringPipeline(Topology::kPsFabric)
                          .Run(ir::BuildLogicalModule(jobs));
  return ir::ToMultiJobLowering(module);
}

sim::SimResult SliceResult(const sim::SimResult& combined,
                           const MultiJobLowering::JobSlice& job) {
  const auto first = static_cast<std::size_t>(job.first_task);
  const auto last = static_cast<std::size_t>(job.last_task);
  sim::SimResult out;
  out.start.assign(combined.start.begin() + static_cast<std::ptrdiff_t>(first),
                   combined.start.begin() + static_cast<std::ptrdiff_t>(last));
  out.end.assign(combined.end.begin() + static_cast<std::ptrdiff_t>(first),
                 combined.end.begin() + static_cast<std::ptrdiff_t>(last));
  if (job.start_offset != 0.0) {
    // The job's own clock starts at its arrival: waiting for the offset
    // is not execution time (and must not read as contention slowdown
    // or negative Eq.-3 efficiency downstream).
    for (double& start : out.start) start -= job.start_offset;
    for (double& end : out.end) end -= job.start_offset;
  }
  for (const double end : out.end) out.makespan = std::max(out.makespan, end);
  for (const sim::TaskId t : combined.start_order) {
    if (t >= job.first_task && t < job.last_task) {
      out.start_order.push_back(t - job.first_task);
    }
  }
  return out;
}

MultiJobRunner::MultiJobRunner(MultiJobSpec spec) : spec_(std::move(spec)) {
  spec_.Validate();
  const int T = spec_.TotalWorkers();
  runners_.reserve(spec_.jobs.size());
  schedules_.reserve(spec_.jobs.size());
  scheduled_.reserve(spec_.jobs.size());
  for (const MultiJobEntry& entry : spec_.jobs) {
    ClusterConfig config = entry.spec.BuildCluster();
    // Every PS NIC is time-shared by the pair-channels of ALL jobs'
    // workers, not just this job's: scale the platform bandwidth by
    // W_j / T so LowerCluster's and MakeSchedule's per-channel figure
    // (bandwidth / W_j) comes out as the contended bandwidth / T.
    // Exactly 1.0 — bit-identical — for a single job.
    config.platform.bandwidth_bps *=
        static_cast<double>(config.num_workers) / static_cast<double>(T);
    runners_.push_back(std::make_unique<Runner>(
        models::FindModel(entry.spec.model), config));
    const Runner& runner = *runners_.back();
    schedules_.push_back(runner.MakeSchedule(entry.spec.policy));
    scheduled_.push_back(
        schedules_.back().size() == runner.worker_graph().size() &&
        schedules_.back().CoversAllRecvs(runner.worker_graph()));
  }

  std::vector<JobLoweringInput> inputs;
  inputs.reserve(spec_.jobs.size());
  for (std::size_t j = 0; j < spec_.jobs.size(); ++j) {
    inputs.push_back(JobLoweringInput{
        runners_[j]->worker_graph(), schedules_[j], runners_[j]->ps_of_param(),
        runners_[j]->config(), spec_.jobs[j].start_offset});
  }
  lowering_ = LowerSharedCluster(inputs);

  sim_options_ = runners_.front()->config().sim;
  bool any_scheduled = false;
  for (const bool covered : scheduled_) any_scheduled |= covered;
  sim_options_.enforce_gates = any_scheduled;
  // Non-null exactly when a config enabled sim.flow_fairness
  // (lower_flow_nics); the lowering outlives every Run(). Like
  // enforce_gates, any one job opting in turns the flow model on for the
  // shared fabric — contention is fabric-wide or not at all.
  sim_options_.network = lowering_.combined.flow.get();
  sim_options_.flow_fairness |= sim_options_.network != nullptr;
}

MultiJobResult MultiJobRunner::Run() const {
  return Run(spec_.jobs.front().spec.iterations,
             spec_.jobs.front().spec.seed);
}

MultiJobResult MultiJobRunner::Run(int iterations,
                                   std::uint64_t seed) const {
  if (iterations < 1) {
    throw std::invalid_argument("MultiJobRunner: iterations must be >= 1");
  }
  sim::TaskGraphSim sim = lowering_.combined.BuildSim();

  MultiJobResult result;
  result.jobs.resize(spec_.jobs.size());
  double combined_samples = 0.0;
  for (std::size_t j = 0; j < spec_.jobs.size(); ++j) {
    const ExperimentSpec& job = spec_.jobs[j].spec;
    // Same expression (and evaluation order) as Runner::Run.
    const double samples = models::FindModel(job.model).standard_batch *
                           job.cluster.batch_factor * job.cluster.workers;
    result.jobs[j].samples_per_iteration = samples;
    result.jobs[j].iterations.reserve(static_cast<std::size_t>(iterations));
    combined_samples += samples;
  }
  result.combined.samples_per_iteration = combined_samples;
  result.combined.iterations.reserve(static_cast<std::size_t>(iterations));

  for (int i = 0; i < iterations; ++i) {
    const sim::SimResult run =
        sim.Run(sim_options_, seed + static_cast<std::uint64_t>(i));
    result.combined.iterations.push_back(
        ComputeIterationStats(lowering_.combined, run));
    for (std::size_t j = 0; j < lowering_.jobs.size(); ++j) {
      const sim::SimResult sliced = SliceResult(run, lowering_.jobs[j]);
      result.jobs[j].iterations.push_back(
          ComputeIterationStats(lowering_.jobs[j].lowering, sliced));
    }
  }
  return result;
}

}  // namespace tictac::runtime
