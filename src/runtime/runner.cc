#include "runtime/runner.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/chunking.h"
#include "core/metrics.h"
#include "core/policy_registry.h"
#include "models/zoo.h"
#include "runtime/allreduce.h"
#include "runtime/sharding.h"

namespace tictac::runtime {
namespace {

// Merges a set of [start, end) intervals into disjoint spans.
std::vector<std::pair<double, double>> MergeIntervals(
    std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& [start, end] : intervals) {
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

double CoveredLength(const std::vector<std::pair<double, double>>& spans) {
  double total = 0.0;
  for (const auto& [start, end] : spans) total += end - start;
  return total;
}

// Fraction of the shorter activity (comm vs comp busy time) that ran
// concurrently with the other.
double OverlapFraction(std::vector<std::pair<double, double>> comm,
                       std::vector<std::pair<double, double>> comp) {
  const auto a = MergeIntervals(std::move(comm));
  const auto b = MergeIntervals(std::move(comp));
  const double shorter = std::min(CoveredLength(a), CoveredLength(b));
  if (shorter <= 0.0) return 0.0;
  double intersection = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) intersection += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return intersection / shorter;
}

}  // namespace

IterationStats ComputeIterationStats(const Lowering& lowering,
                                     const sim::SimResult& run) {
  IterationStats stats;
  stats.makespan = run.makespan;

  // Per-worker partition makespan, scheduling efficiency (Eq. 3) from
  // this iteration's *measured* op times (as §3.2 does), and the
  // communication/computation overlap fraction.
  double efficiency_sum = 0.0;
  double overlap_sum = 0.0;
  for (int w = 0; w < lowering.num_workers; ++w) {
    double finish = 0.0;
    double upper = 0.0;
    std::map<int, double> per_resource;
    std::vector<std::pair<double, double>> comm;
    std::vector<std::pair<double, double>> comp;
    for (sim::TaskId t : lowering.worker_tasks[static_cast<std::size_t>(w)]) {
      const auto ti = static_cast<std::size_t>(t);
      finish = std::max(finish, run.end[ti]);
      const double measured = run.end[ti] - run.start[ti];
      upper += measured;
      per_resource[lowering.tasks[ti].resource] += measured;
      (core::IsCommunication(lowering.tasks[ti].kind) ? comm : comp)
          .emplace_back(run.start[ti], run.end[ti]);
    }
    double lower = 0.0;
    for (const auto& [r, total] : per_resource) lower = std::max(lower, total);
    stats.worker_finish.push_back(finish);
    core::MakespanBounds bounds{upper, lower};
    efficiency_sum += core::Efficiency(bounds, finish);
    overlap_sum += OverlapFraction(comm, comp);
  }
  stats.mean_efficiency =
      efficiency_sum / static_cast<double>(lowering.num_workers);
  stats.overlap_fraction =
      overlap_sum / static_cast<double>(lowering.num_workers);

  const double t_max =
      *std::max_element(stats.worker_finish.begin(), stats.worker_finish.end());
  const double t_min =
      *std::min_element(stats.worker_finish.begin(), stats.worker_finish.end());
  stats.straggler_pct = t_max > 0.0 ? 100.0 * (t_max - t_min) / t_max : 0.0;

  // Worker 0 parameter arrival order (§2.2's observation).
  {
    const auto& recvs = lowering.worker_recv_tasks[0];
    const auto& params = lowering.transfer_param[0];
    std::vector<std::size_t> idx(recvs.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return run.end[static_cast<std::size_t>(recvs[a])] <
             run.end[static_cast<std::size_t>(recvs[b])];
    });
    stats.recv_order.reserve(idx.size());
    for (std::size_t j : idx) stats.recv_order.push_back(params[j]);
  }
  return stats;
}

double ExperimentResult::MeanIterationTime() const {
  if (iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : iterations) sum += it.makespan;
  return sum / static_cast<double>(iterations.size());
}

double ExperimentResult::Throughput() const {
  const double t = MeanIterationTime();
  return t > 0.0 ? samples_per_iteration / t : 0.0;
}

double ExperimentResult::MaxStragglerPct() const {
  double m = 0.0;
  for (const auto& it : iterations) m = std::max(m, it.straggler_pct);
  return m;
}

double ExperimentResult::MeanStragglerPct() const {
  if (iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : iterations) sum += it.straggler_pct;
  return sum / static_cast<double>(iterations.size());
}

double ExperimentResult::MaxEfficiency() const {
  double m = 0.0;
  for (const auto& it : iterations) m = std::max(m, it.mean_efficiency);
  return m;
}

double ExperimentResult::MeanEfficiency() const {
  if (iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : iterations) sum += it.mean_efficiency;
  return sum / static_cast<double>(iterations.size());
}

double ExperimentResult::MeanOverlap() const {
  if (iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : iterations) sum += it.overlap_fraction;
  return sum / static_cast<double>(iterations.size());
}

int ExperimentResult::UniqueRecvOrders() const {
  std::set<std::vector<int>> orders;
  for (const auto& it : iterations) orders.insert(it.recv_order);
  return static_cast<int>(orders.size());
}

Runner::Runner(const models::ModelInfo& model, ClusterConfig config)
    : model_(model), config_(config) {
  config_.Validate();
  models::BuildOptions build;
  build.training = config_.training;
  build.batch_factor = config_.batch_factor;
  graph_ = models::BuildWorkerGraph(model_, build);
  if (config_.chunk_bytes > 0) {
    graph_ = core::ChunkTransfers(graph_,
                                  {.max_chunk_bytes = config_.chunk_bytes});
  }
  // Built after chunking, which rewrites the graph's recv set.
  index_ = std::make_unique<const core::PropertyIndex>(graph_);
  ps_of_param_ =
      ShardParams(models::ParamSizes(model_), config_.num_ps, config_.shard);
}

core::Schedule Runner::MakeSchedule(
    const core::SchedulingPolicy& policy) const {
  // The oracle must describe what transfers actually cost on this
  // cluster: each PS NIC is time-shared by all workers (see lowering).
  core::PlatformModel effective = config_.platform;
  effective.bandwidth_bps /= config_.num_workers;
  const core::AnalyticalTimeOracle exact(effective);
  if (config_.tac_oracle_sigma > 0.0 && policy.RequiresOracle()) {
    const core::NoisyTimeOracle noisy(exact, config_.tac_oracle_sigma,
                                      /*seed=*/0x7ac0ff5e);
    return policy.Compute(*index_, noisy);
  }
  return policy.Compute(*index_, exact);
}

core::Schedule Runner::MakeSchedule(const std::string& policy) const {
  return MakeSchedule(*core::PolicyRegistry::Global().Create(policy));
}

ExperimentResult Runner::Run(const std::string& policy, int iterations,
                             std::uint64_t seed) const {
  return Run(*core::PolicyRegistry::Global().Create(policy), iterations,
             seed);
}

ExperimentResult Runner::Run(const core::SchedulingPolicy& policy,
                             int iterations, std::uint64_t seed) const {
  Lowering lowering;
  sim::SimOptions options = config_.sim;
  if (config_.topology == Topology::kRing) {
    // The ring collective fixes the transfer order itself: no schedule
    // to compute, no §5.1 hand-off gates to enforce.
    lowering = LowerAllReduce(graph_, config_);
    options.enforce_gates = false;
  } else {
    const core::Schedule schedule = MakeSchedule(policy);
    lowering = LowerCluster(graph_, schedule, ps_of_param_, config_);
    options.enforce_gates = schedule.size() == graph_.size() &&
                            schedule.CoversAllRecvs(graph_);
  }
  // lowering.flow is non-null exactly when the config enabled
  // sim.flow_fairness (lower_flow_nics); it outlives the runs below.
  options.network = lowering.flow.get();
  sim::TaskGraphSim sim = lowering.BuildSim();

  ExperimentResult result;
  result.samples_per_iteration = model_.standard_batch *
                                 config_.batch_factor *
                                 config_.num_workers;
  result.iterations.reserve(static_cast<std::size_t>(iterations));

  for (int i = 0; i < iterations; ++i) {
    const sim::SimResult run =
        sim.Run(options, seed + static_cast<std::uint64_t>(i));
    result.iterations.push_back(ComputeIterationStats(lowering, run));
  }
  return result;
}

}  // namespace tictac::runtime
