#include "runtime/cluster.h"

namespace tictac::runtime {

const char* ToString(Method method) {
  switch (method) {
    case Method::kBaseline: return "baseline";
    case Method::kTic: return "TIC";
    case Method::kTac: return "TAC";
  }
  return "unknown";
}

const char* PolicyName(Method method) {
  switch (method) {
    case Method::kBaseline: return "baseline";
    case Method::kTic: return "tic";
    case Method::kTac: return "tac";
  }
  return "baseline";
}

const char* ToString(Enforcement enforcement) {
  switch (enforcement) {
    case Enforcement::kPriorityOnly: return "priority-only";
    case Enforcement::kHandoffGate: return "hand-off gate";
    case Enforcement::kDagChain: return "DAG chaining";
  }
  return "unknown";
}

ClusterConfig EnvG(int num_workers, int num_ps, bool training) {
  ClusterConfig config;
  config.num_workers = num_workers;
  config.num_ps = num_ps;
  config.training = training;
  config.platform.compute_rate = 4000.0;    // K80 fp32, ~4 TFLOP/s effective
  config.platform.bandwidth_bps = 1.25e9;   // ~10 Gb/s cloud fabric
  config.platform.latency_s = 200e-6;       // per-transfer RPC setup
  config.platform.ps_op_time_s = 5e-6;
  config.sim.jitter_sigma = 0.04;           // cloud timing variation
  config.sim.out_of_order_probability = 0.005;  // §5.1: ~0.4-0.5%
  return config;
}

ClusterConfig EnvC(int num_workers, int num_ps, bool training) {
  ClusterConfig config;
  config.num_workers = num_workers;
  config.num_ps = num_ps;
  config.training = training;
  config.platform.compute_rate = 600.0;     // 32-core CPU, ~0.6 TFLOP/s
  config.platform.bandwidth_bps = 1.25e8;   // 1 GbE
  config.platform.latency_s = 150e-6;
  config.platform.ps_op_time_s = 5e-6;
  config.sim.jitter_sigma = 0.02;
  config.sim.out_of_order_probability = 0.005;
  return config;
}

}  // namespace tictac::runtime
