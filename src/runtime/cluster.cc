#include "runtime/cluster.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace tictac::runtime {

const char* ToString(Enforcement enforcement) {
  switch (enforcement) {
    case Enforcement::kPriorityOnly: return "priority-only";
    case Enforcement::kHandoffGate: return "hand-off gate";
    case Enforcement::kDagChain: return "DAG chaining";
  }
  return "unknown";
}

const char* EnforcementToken(Enforcement enforcement) {
  switch (enforcement) {
    case Enforcement::kPriorityOnly: return "priority";
    case Enforcement::kHandoffGate: return "gate";
    case Enforcement::kDagChain: return "chain";
  }
  return "gate";
}

Enforcement ParseEnforcement(std::string_view token) {
  if (token == "priority") return Enforcement::kPriorityOnly;
  if (token == "gate") return Enforcement::kHandoffGate;
  if (token == "chain") return Enforcement::kDagChain;
  throw std::invalid_argument("unknown enforcement '" + std::string(token) +
                              "' (known: priority, gate, chain)");
}

const char* ToString(Topology topology) {
  switch (topology) {
    case Topology::kPsFabric: return "parameter-server fabric";
    case Topology::kRing: return "ring all-reduce";
  }
  return "unknown";
}

const char* TopologyToken(Topology topology) {
  switch (topology) {
    case Topology::kPsFabric: return "ps";
    case Topology::kRing: return "ring";
  }
  return "ps";
}

Topology ParseTopology(std::string_view token) {
  if (token == "ps") return Topology::kPsFabric;
  if (token == "ring") return Topology::kRing;
  throw std::invalid_argument("unknown topology '" + std::string(token) +
                              "' (known: ps, ring)");
}

void ClusterConfig::Validate() const {
  const auto fail = [](const std::string& message) {
    throw std::invalid_argument("ClusterConfig: " + message);
  };
  if (num_workers < 1) {
    fail("num_workers must be >= 1, got " + std::to_string(num_workers));
  }
  if (num_ps < 1) {
    fail("num_ps must be >= 1, got " + std::to_string(num_ps));
  }
  if (!(batch_factor > 0.0) || std::isinf(batch_factor)) {
    fail("batch_factor must be a finite value > 0, got " +
         std::to_string(batch_factor));
  }
  if (chunk_bytes < 0) {
    fail("chunk_bytes must be >= 0 (0 = chunking off), got " +
         std::to_string(chunk_bytes));
  }
  if (topology == Topology::kRing) {
    if (!training) {
      fail("topology=ring applies to training only (the all-reduce "
           "collective aggregates gradients; use topology=ps for "
           "inference)");
    }
    if (num_workers < 2) {
      fail("topology=ring needs num_workers >= 2 (a ring of one link is "
           "degenerate), got " + std::to_string(num_workers));
    }
  }
  // NaN fails every comparison, so these !(x >= ...) forms reject it too
  // — a NaN sigma would otherwise silently disable oracle noise.
  if (!(tac_oracle_sigma >= 0.0) || std::isinf(tac_oracle_sigma)) {
    fail("tac_oracle_sigma must be a finite value >= 0, got " +
         std::to_string(tac_oracle_sigma));
  }
  if (!(sim.jitter_sigma >= 0.0) || std::isinf(sim.jitter_sigma)) {
    fail("sim.jitter_sigma must be a finite value >= 0, got " +
         std::to_string(sim.jitter_sigma));
  }
  if (!(sim.out_of_order_probability >= 0.0 &&
        sim.out_of_order_probability <= 1.0)) {
    fail("sim.out_of_order_probability must be in [0, 1], got " +
         std::to_string(sim.out_of_order_probability));
  }
  if (!worker_speed_factors.empty() &&
      worker_speed_factors.size() != static_cast<std::size_t>(num_workers)) {
    fail("worker_speed_factors must be empty (homogeneous) or hold one "
         "factor per worker: got " +
         std::to_string(worker_speed_factors.size()) + " factors for " +
         std::to_string(num_workers) + " workers");
  }
  for (std::size_t w = 0; w < worker_speed_factors.size(); ++w) {
    if (!(worker_speed_factors[w] > 0.0) ||
        std::isinf(worker_speed_factors[w])) {
      fail("worker_speed_factors[" + std::to_string(w) +
           "] must be a finite value > 0, got " +
           std::to_string(worker_speed_factors[w]));
    }
  }
  if (fabric_pods < 1) {
    fail("fabric_pods must be >= 1 (1 = single non-blocking switch), got " +
         std::to_string(fabric_pods));
  }
  // fabric_pods vs host count is checked at lowering time against the
  // MERGED fabric (models/topology.h): co-located jobs pool their hosts,
  // so a per-job bound here would falsely reject valid multi-job configs.
  if (!(fabric_oversubscription > 0.0) ||
      std::isinf(fabric_oversubscription)) {
    fail("fabric_oversubscription must be a finite ratio > 0 (1 = full "
         "bisection bandwidth), got " +
         std::to_string(fabric_oversubscription));
  }
  if (sim.flow_fairness && topology == Topology::kRing) {
    fail("sim.flow_fairness models the PS fabric's shared links; ring "
         "all-reduce has no flow network — use topology=ps or turn "
         "flow fairness off");
  }
}

ClusterConfig EnvG(int num_workers, int num_ps, bool training) {
  ClusterConfig config;
  config.num_workers = num_workers;
  config.num_ps = num_ps;
  config.training = training;
  config.platform.compute_rate = 4000.0;    // K80 fp32, ~4 TFLOP/s effective
  config.platform.bandwidth_bps = 1.25e9;   // ~10 Gb/s cloud fabric
  config.platform.latency_s = 200e-6;       // per-transfer RPC setup
  config.platform.ps_op_time_s = 5e-6;
  config.sim.jitter_sigma = 0.04;           // cloud timing variation
  config.sim.out_of_order_probability = 0.005;  // §5.1: ~0.4-0.5%
  return config;
}

ClusterConfig EnvC(int num_workers, int num_ps, bool training) {
  ClusterConfig config;
  config.num_workers = num_workers;
  config.num_ps = num_ps;
  config.training = training;
  config.platform.compute_rate = 600.0;     // 32-core CPU, ~0.6 TFLOP/s
  config.platform.bandwidth_bps = 1.25e8;   // 1 GbE
  config.platform.latency_s = 150e-6;
  config.platform.ps_op_time_s = 5e-6;
  config.sim.jitter_sigma = 0.02;
  config.sim.out_of_order_probability = 0.005;
  return config;
}

}  // namespace tictac::runtime
