// FROZEN pre-IR lowering implementations, kept verbatim as the ground
// truth the pass-based pipeline is differentially pinned against
// (tests/ir_differential_test.cc) and as the "old layout" side of
// bench_lowering. Do not modify these: the public entry points in
// runtime/lowering.h, runtime/allreduce.h and runtime/multijob.h are now
// thin ir::PassPipeline presets, and every behavior change must happen
// in src/ir/ passes — these bodies exist precisely so a drift there is
// caught bit for bit.
//
// Precedent: core/tac.h's TacFullRecompute, frozen in PR 2 for the same
// reason.
#pragma once

#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "runtime/cluster.h"
#include "runtime/lowering.h"
#include "runtime/multijob.h"

namespace tictac::runtime::reference {

// The pre-IR runtime::LowerCluster, verbatim.
Lowering LowerCluster(const core::Graph& worker_graph,
                      const core::Schedule& schedule,
                      const std::vector<int>& ps_of_param,
                      const ClusterConfig& config);

// The pre-IR runtime::LowerPipeline, verbatim.
PipelineLowering LowerPipeline(const core::Graph& worker_graph,
                               const core::Schedule& schedule,
                               const std::vector<int>& ps_of_param,
                               const ClusterConfig& config, int iterations);

// The pre-IR runtime::LowerAllReduce, verbatim.
Lowering LowerAllReduce(const core::Graph& worker_graph,
                        const ClusterConfig& config);

// The pre-IR runtime::LowerSharedCluster, verbatim (lowers each job with
// reference::LowerCluster).
MultiJobLowering LowerSharedCluster(const std::vector<JobLoweringInput>& jobs);

}  // namespace tictac::runtime::reference
