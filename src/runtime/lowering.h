// Lowers a Model-Replica cluster (identical worker partitions + sharded
// parameter servers) into the simulator's flat task graph.
//
// Resource layout (Figure 2's distributed execution), with gRPC's "one
// channel per worker-PS pair; only one transfer active per channel"
// semantics (§5.1):
//   [0, W)                      worker computation resources (GPU/CPU)
//   [W, W + W*S)                downlink channels (PS s -> worker w):
//                                 index W + w*S + s
//   [W + W*S, W + 2*W*S)        uplink channels (worker w -> PS s):
//                                 index W + W*S + w*S + s
//   [W + 2*W*S, W + 2*W*S + S)  PS bookkeeping CPUs (aggregate/read/update)
//
// A PS NIC is time-shared by its W channels, so each pair-channel gets
// bandwidth/W — this is how PS communication load grows with worker count
// (§6.1) while per-worker transfer order remains the worker's own affair.
#pragma once

#include <memory>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "runtime/cluster.h"
#include "sim/engine.h"

namespace tictac::runtime {

// Mapping from simulator tasks back to model semantics, for statistics.
struct Lowering {
  sim::TaskGraphSim BuildSim() const {
    return sim::TaskGraphSim(tasks, num_resources);
  }

  std::vector<sim::Task> tasks;
  int num_resources = 0;
  int num_workers = 0;

  // Capacity graph for flow-level max-min fairness, attached by the
  // lower_flow_nics pass when the config enables sim.flow_fairness (null
  // = static bandwidth/T split only). Runners point
  // SimOptions::network at it for the sim's lifetime.
  std::shared_ptr<const sim::FlowNetwork> flow;

  // Task ids of each worker's ops (the worker partition), used for the
  // per-worker makespan and the U/L bounds of Section 3.2.
  std::vector<std::vector<sim::TaskId>> worker_tasks;
  // Task ids of each worker's parameter transfers, aligned with
  // `transfer_param[w]` giving the parameter index of each.
  std::vector<std::vector<sim::TaskId>> worker_recv_tasks;
  std::vector<std::vector<int>> transfer_param;
  // PS-side update task per parameter (-1 when absent, e.g. inference);
  // and each worker's final forward compute — the hooks the pipelined
  // lowering stitches consecutive iterations with.
  std::vector<sim::TaskId> update_task;
  std::vector<sim::TaskId> worker_sink;
};

// One job's already-scheduled inputs to a lowering (single-job entry
// points use exactly one; the shared-fabric lowering takes a vector). The
// config's platform must already carry any contended bandwidth scaling
// (bandwidth_bps · W_j / T) — MultiJobRunner does this; callers invoking
// LowerSharedCluster directly are responsible for it.
struct JobLoweringInput {
  const core::Graph& graph;
  const core::Schedule& schedule;
  const std::vector<int>& ps_of_param;
  const ClusterConfig& config;
  double start_offset = 0.0;
};

// Builds the iteration task graph.
//
// `worker_graph` is the per-worker partition (identical on every worker,
// Model-Replica). `schedule` supplies recv priorities; pass an empty
// schedule (no priorities) for the baseline. `ps_of_param` maps parameter
// index -> PS. Durations come from config.platform.
//
// Implemented as the ir::PassPipeline preset [expand_replicas,
// lower_ps_fabric] (ir/lower.h), pinned bit-identical to the frozen
// pre-IR implementation (runtime/reference_lowering.h) by
// tests/ir_differential_test.cc.
Lowering LowerCluster(const core::Graph& worker_graph,
                      const core::Schedule& schedule,
                      const std::vector<int>& ps_of_param,
                      const ClusterConfig& config);

// Pipelined execution of consecutive iterations. Dataflow runtimes do not
// erect a global barrier between steps: a parameter can be pulled for
// iteration k+1 the moment its PS update from iteration k lands (training)
// — so transfers of the next step overlap the tail of the current one. In
// inference (serving loop) iteration k+1 starts once the worker's forward
// pass k completes.
struct PipelineLowering {
  Lowering lowering;
  std::vector<int> task_iteration;  // per task: which iteration it belongs to
  int iterations = 0;
};

PipelineLowering LowerPipeline(const core::Graph& worker_graph,
                               const core::Schedule& schedule,
                               const std::vector<int>& ps_of_param,
                               const ClusterConfig& config, int iterations);

// Per-iteration completion times (max end over the iteration's tasks) and
// the steady-state per-iteration time, estimated over iterations [1, n).
struct PipelineTiming {
  std::vector<double> iteration_finish;
  double first_iteration = 0.0;
  double steady_state = 0.0;
};

PipelineTiming ComputePipelineTiming(const PipelineLowering& pipeline,
                                     const sim::SimResult& result);

}  // namespace tictac::runtime
