#include "runtime/spec.h"

#include <cctype>
#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tictac::runtime {
namespace {

std::vector<std::string> WhitespaceTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::vector<std::string> Split(const std::string& value, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = value.find(sep, start);
    parts.push_back(value.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("spec: " + message);
}

long long ParseIntegral(const std::string& value, const std::string& key) {
  long long result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    Fail(key + "= expects an integer, got '" + value + "'");
  }
  return result;
}

// Whole-string parse into [min, max]; rejects instead of truncating, so
// workers=4294967297 fails loudly rather than wrapping to 1.
int ParseBoundedInt(const std::string& value, const std::string& key,
                    long long min, long long max) {
  const long long result = ParseIntegral(value, key);
  if (result < min || result > max) {
    Fail(key + " must be in [" + std::to_string(min) + ", " +
         std::to_string(max) + "], got " + value);
  }
  return static_cast<int>(result);
}

std::uint64_t ParseSeed(const std::string& value, const std::string& key) {
  unsigned long long result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    Fail(key + "= expects a non-negative integer, got '" + value + "'");
  }
  return result;
}

double ParseDouble(const std::string& value, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double result = std::stod(value, &consumed);
    if (consumed == value.size()) return result;
  } catch (const std::exception&) {
  }
  Fail(key + "= expects a number, got '" + value + "'");
}

// Bytes with an optional binary suffix: "4194304", "4M", "4MiB", "512K".
std::int64_t ParseBytes(const std::string& value, const std::string& key) {
  std::size_t digits = 0;
  while (digits < value.size() &&
         (std::isdigit(static_cast<unsigned char>(value[digits])) ||
          (digits == 0 && value[digits] == '-'))) {
    ++digits;
  }
  std::string suffix = value.substr(digits);
  for (char& c : suffix) c = static_cast<char>(std::tolower(c));
  std::int64_t scale = 1;
  if (suffix == "k" || suffix == "kib") {
    scale = 1ll << 10;
  } else if (suffix == "m" || suffix == "mib") {
    scale = 1ll << 20;
  } else if (suffix == "g" || suffix == "gib") {
    scale = 1ll << 30;
  } else if (!suffix.empty()) {
    Fail(key + "= has unknown byte suffix '" + suffix + "' in '" + value +
         "' (use K, M or G)");
  }
  const long long magnitude = ParseIntegral(value.substr(0, digits), key);
  if (magnitude > std::numeric_limits<std::int64_t>::max() / scale ||
      magnitude < std::numeric_limits<std::int64_t>::min() / scale) {
    Fail(key + "= overflows 64-bit bytes: '" + value + "'");
  }
  return magnitude * scale;
}


std::string Join(const std::vector<std::string>& values) {
  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += values[i];
  }
  return joined;
}

template <typename T, typename Format>
std::string JoinFormatted(const std::vector<T>& values, Format format) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const T& value : values) parts.push_back(format(value));
  return Join(parts);
}

// Shared cluster-token parser. Every axis is parsed as a list; the
// single-spec path rejects sizes > 1 afterwards.
void ParseClusterToken(const std::string& token, SweepSpec& sweep) {
  const std::vector<std::string> settings = Split(token, ':');
  sweep.env = settings[0];
  if (sweep.env != "envG" && sweep.env != "envC") {
    Fail("unknown environment '" + sweep.env + "' (known: envG, envC)");
  }
  for (std::size_t i = 1; i < settings.size(); ++i) {
    const std::string& setting = settings[i];
    if (setting == "training") {
      sweep.tasks = {true};
      continue;
    }
    if (setting == "inference") {
      sweep.tasks = {false};
      continue;
    }
    if (setting == "flow") {
      sweep.flow = true;
      continue;
    }
    const std::size_t eq = setting.find('=');
    if (eq == std::string::npos) {
      Fail("malformed cluster setting '" + setting + "' in '" + token + "'");
    }
    const std::string key = setting.substr(0, eq);
    const std::vector<std::string> values = Split(setting.substr(eq + 1), ',');
    if (values.empty() || values.front().empty()) {
      Fail(key + "= has an empty value in '" + token + "'");
    }
    if (key == "workers") {
      sweep.workers.clear();
      for (const auto& v : values) {
        sweep.workers.push_back(ParseBoundedInt(v, key, 1, 1 << 20));
      }
    } else if (key == "ps") {
      sweep.ps.clear();
      for (const auto& v : values) {
        sweep.ps.push_back(ParseBoundedInt(v, key, 1, 1 << 20));
      }
    } else if (key == "task") {
      sweep.tasks.clear();
      for (const auto& v : values) {
        if (v == "training") {
          sweep.tasks.push_back(true);
        } else if (v == "inference") {
          sweep.tasks.push_back(false);
        } else {
          Fail("task= expects 'inference' or 'training', got '" + v + "'");
        }
      }
    } else if (key == "batch") {
      sweep.batch_factors.clear();
      for (const auto& v : values) {
        const double b = ParseDouble(v, key);
        if (b <= 0.0) Fail("batch must be > 0, got " + v);
        sweep.batch_factors.push_back(b);
      }
    } else if (key == "chunk") {
      sweep.chunk_bytes.clear();
      for (const auto& v : values) {
        const std::int64_t c = ParseBytes(v, key);
        if (c < 0) Fail("chunk must be >= 0, got " + v);
        sweep.chunk_bytes.push_back(c);
      }
    } else if (key == "shard") {
      sweep.shards.clear();
      for (const auto& v : values) {
        sweep.shards.push_back(ParseShardStrategy(v));
      }
    } else if (key == "topology") {
      sweep.topologies.clear();
      for (const auto& v : values) {
        sweep.topologies.push_back(ParseTopology(v));
      }
    } else if (key == "enforce") {
      sweep.enforcements.clear();
      for (const auto& v : values) {
        sweep.enforcements.push_back(ParseEnforcement(v));
      }
    } else if (key == "sigma") {
      sweep.tac_oracle_sigmas.clear();
      for (const auto& v : values) {
        const double s = ParseDouble(v, key);
        if (s < 0.0) Fail("sigma must be >= 0, got " + v);
        sweep.tac_oracle_sigmas.push_back(s);
      }
    } else if (key == "jitter") {
      if (values.size() != 1) Fail("jitter= is not a sweep axis");
      sweep.jitter_sigma = ParseDouble(values[0], key);
    } else if (key == "ooo") {
      if (values.size() != 1) Fail("ooo= is not a sweep axis");
      sweep.out_of_order = ParseDouble(values[0], key);
    } else if (key == "speeds") {
      sweep.worker_speed_factors.clear();
      for (const auto& v : values) {
        sweep.worker_speed_factors.push_back(ParseDouble(v, key));
      }
    } else if (key == "pods") {
      if (values.size() != 1) Fail("pods= is not a sweep axis");
      sweep.pods = ParseBoundedInt(values[0], key, 1, 1 << 20);
    } else if (key == "oversub") {
      if (values.size() != 1) Fail("oversub= is not a sweep axis");
      const double o = ParseDouble(values[0], key);
      if (o <= 0.0) Fail("oversub must be > 0, got " + values[0]);
      sweep.oversub = o;
    } else {
      Fail("unknown cluster setting '" + key + "' in '" + token +
           "' (known: workers, ps, training, inference, task, batch, "
           "chunk, shard, topology, enforce, sigma, jitter, ooo, speeds, "
           "flow, pods, oversub)");
    }
  }
}

}  // namespace

std::string FormatDouble(double value) {
  // Shortest representation that parses back to the same bits, so
  // Parse(ToString()) round-trips exactly and Session cache keys never
  // alias two distinct configurations.
  for (int precision = 15; precision <= 17; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::stod(out.str()) == value) return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

ClusterConfig ClusterSpec::Build() const {
  ClusterConfig config;
  if (env == "envG") {
    config = EnvG(workers, ps, training);
  } else if (env == "envC") {
    config = EnvC(workers, ps, training);
  } else {
    throw std::invalid_argument("ClusterSpec: unknown environment '" + env +
                                "' (known: envG, envC)");
  }
  config.batch_factor = batch_factor;
  config.chunk_bytes = chunk_bytes;
  config.shard = shard;
  config.topology = topology;
  config.enforcement = enforcement;
  config.tac_oracle_sigma = tac_oracle_sigma;
  if (jitter_sigma) config.sim.jitter_sigma = *jitter_sigma;
  if (out_of_order) config.sim.out_of_order_probability = *out_of_order;
  config.worker_speed_factors = worker_speed_factors;
  config.sim.flow_fairness = flow;
  config.fabric_pods = pods;
  config.fabric_oversubscription = oversub;
  config.Validate();
  return config;
}

std::string ClusterSpec::ToString() const {
  std::string text = env;
  text += ":workers=" + std::to_string(workers);
  text += ":ps=" + std::to_string(ps);
  text += training ? ":training" : ":inference";
  if (batch_factor != 1.0) text += ":batch=" + FormatDouble(batch_factor);
  if (chunk_bytes != 0) text += ":chunk=" + std::to_string(chunk_bytes);
  if (shard != ShardStrategy::kBytes) {
    text += std::string(":shard=") + ShardStrategyToken(shard);
  }
  if (topology != Topology::kPsFabric) {
    text += std::string(":topology=") + TopologyToken(topology);
  }
  if (enforcement != Enforcement::kHandoffGate) {
    text += std::string(":enforce=") + EnforcementToken(enforcement);
  }
  if (tac_oracle_sigma != 0.0) {
    text += ":sigma=" + FormatDouble(tac_oracle_sigma);
  }
  if (jitter_sigma) text += ":jitter=" + FormatDouble(*jitter_sigma);
  if (out_of_order) text += ":ooo=" + FormatDouble(*out_of_order);
  if (!worker_speed_factors.empty()) {
    text += ":speeds=" + JoinFormatted(worker_speed_factors, FormatDouble);
  }
  if (flow) text += ":flow";
  if (pods != 1) text += ":pods=" + std::to_string(pods);
  if (oversub != 1.0) text += ":oversub=" + FormatDouble(oversub);
  return text;
}

std::string ExperimentSpec::ToString() const {
  std::string text = cluster.ToString();
  text += " model=" + model;
  text += " policy=" + policy;
  text += " iterations=" + std::to_string(iterations);
  text += " seed=" + std::to_string(seed);
  return text;
}

ExperimentSpec ExperimentSpec::Parse(std::string_view text) {
  const SweepSpec sweep = SweepSpec::Parse(text);
  if (sweep.size() != 1) {
    Fail("'" + std::string(text) +
         "' describes " + std::to_string(sweep.size()) +
         " runs — list-valued axes need a SweepSpec, not an ExperimentSpec");
  }
  ExperimentSpec spec = sweep.Expand().front();
  spec.BuildCluster();  // validate eagerly so parse-time errors are loud
  return spec;
}

std::size_t SweepSpec::size() const {
  return models.size() * tasks.size() * workers.size() * ps.size() *
         batch_factors.size() * chunk_bytes.size() * shards.size() *
         topologies.size() * enforcements.size() * tac_oracle_sigmas.size() *
         policies.size();
}

std::vector<ExperimentSpec> SweepSpec::Expand() const {
  const auto require_nonempty = [](bool empty, const char* axis) {
    if (empty) {
      throw std::invalid_argument(std::string("SweepSpec: ") + axis +
                                  " is empty — nothing to run");
    }
  };
  require_nonempty(models.empty(), "models");
  require_nonempty(tasks.empty(), "tasks");
  require_nonempty(workers.empty(), "workers");
  require_nonempty(ps.empty(), "ps");
  require_nonempty(batch_factors.empty(), "batch_factors");
  require_nonempty(chunk_bytes.empty(), "chunk_bytes");
  require_nonempty(shards.empty(), "shards");
  require_nonempty(topologies.empty(), "topologies");
  require_nonempty(enforcements.empty(), "enforcements");
  require_nonempty(tac_oracle_sigmas.empty(), "tac_oracle_sigmas");
  require_nonempty(policies.empty(), "policies");
  std::vector<ExperimentSpec> specs;
  specs.reserve(size());
  for (const std::string& model : models) {
    for (const bool training : tasks) {
      for (const int w : workers) {
        for (const int p : ps) {
          for (const double batch : batch_factors) {
            for (const std::int64_t chunk : chunk_bytes) {
              for (const ShardStrategy shard : shards) {
                for (const Topology topology : topologies) {
                  for (const Enforcement enforcement : enforcements) {
                    for (const double sigma : tac_oracle_sigmas) {
                      for (const std::string& policy : policies) {
                        ExperimentSpec spec;
                        spec.model = model;
                        spec.cluster.env = env;
                        spec.cluster.workers = w;
                        spec.cluster.ps = p;
                        spec.cluster.training = training;
                        spec.cluster.batch_factor = batch;
                        spec.cluster.chunk_bytes = chunk;
                        spec.cluster.shard = shard;
                        spec.cluster.topology = topology;
                        spec.cluster.enforcement = enforcement;
                        spec.cluster.tac_oracle_sigma = sigma;
                        spec.cluster.jitter_sigma = jitter_sigma;
                        spec.cluster.out_of_order = out_of_order;
                        spec.cluster.worker_speed_factors =
                            worker_speed_factors;
                        spec.cluster.flow = flow;
                        spec.cluster.pods = pods;
                        spec.cluster.oversub = oversub;
                        spec.policy = policy;
                        spec.iterations = iterations;
                        spec.seed = seed;
                        specs.push_back(std::move(spec));
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

std::string SweepSpec::ToString() const {
  std::string text = env;
  text += ":workers=" + JoinFormatted(workers, [](int w) {
    return std::to_string(w);
  });
  text += ":ps=" + JoinFormatted(ps, [](int p) { return std::to_string(p); });
  if (tasks.size() == 1) {
    text += tasks.front() ? ":training" : ":inference";
  } else {
    text += ":task=" + JoinFormatted(tasks, [](bool training) {
      return std::string(training ? "training" : "inference");
    });
  }
  if (batch_factors != std::vector<double>{1.0}) {
    text += ":batch=" + JoinFormatted(batch_factors, FormatDouble);
  }
  if (chunk_bytes != std::vector<std::int64_t>{0}) {
    text += ":chunk=" + JoinFormatted(chunk_bytes, [](std::int64_t c) {
      return std::to_string(c);
    });
  }
  if (shards != std::vector<ShardStrategy>{ShardStrategy::kBytes}) {
    text += ":shard=" + JoinFormatted(shards, [](ShardStrategy s) {
      return std::string(ShardStrategyToken(s));
    });
  }
  if (topologies != std::vector<Topology>{Topology::kPsFabric}) {
    text += ":topology=" + JoinFormatted(topologies, [](Topology t) {
      return std::string(TopologyToken(t));
    });
  }
  if (enforcements != std::vector<Enforcement>{Enforcement::kHandoffGate}) {
    text += ":enforce=" + JoinFormatted(enforcements, [](Enforcement e) {
      return std::string(EnforcementToken(e));
    });
  }
  if (tac_oracle_sigmas != std::vector<double>{0.0}) {
    text += ":sigma=" + JoinFormatted(tac_oracle_sigmas, FormatDouble);
  }
  if (jitter_sigma) text += ":jitter=" + FormatDouble(*jitter_sigma);
  if (out_of_order) text += ":ooo=" + FormatDouble(*out_of_order);
  if (!worker_speed_factors.empty()) {
    text += ":speeds=" + JoinFormatted(worker_speed_factors, FormatDouble);
  }
  if (flow) text += ":flow";
  if (pods != 1) text += ":pods=" + std::to_string(pods);
  if (oversub != 1.0) text += ":oversub=" + FormatDouble(oversub);
  text += " models=" + Join(models);
  text += " policies=" + Join(policies);
  text += " iterations=" + std::to_string(iterations);
  text += " seed=" + std::to_string(seed);
  return text;
}

SweepSpec SweepSpec::Parse(std::string_view text) {
  const std::vector<std::string> tokens = WhitespaceTokens(text);
  if (tokens.empty()) Fail("empty spec");
  if (tokens[0].rfind("env", 0) != 0) {
    Fail("spec must start with the cluster (envG:... or envC:...), got '" +
         tokens[0] + "'");
  }
  SweepSpec sweep;
  ParseClusterToken(tokens[0], sweep);

  // model names may contain spaces, so the models= value keeps absorbing
  // subsequent tokens until the next key=value token.
  std::string raw_models;
  std::string* pending = nullptr;
  bool saw_models = false;
  bool saw_policies = false;
  bool saw_iterations = false;
  bool saw_seed = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (!pending) {
        Fail("unexpected token '" + token +
             "' (did you mean model=... ? model names continue until the "
             "next key=value token)");
      }
      *pending += " " + token;
      continue;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    pending = nullptr;
    if (key == "model" || key == "models") {
      if (saw_models) Fail("duplicate " + key + "= token");
      saw_models = true;
      raw_models = value;
      pending = &raw_models;
    } else if (key == "policy" || key == "policies") {
      if (saw_policies) Fail("duplicate " + key + "= token");
      saw_policies = true;
      sweep.policies.clear();
      for (const auto& p : Split(value, ',')) {
        if (p.empty()) Fail("policies= has an empty entry in '" + value + "'");
        sweep.policies.push_back(p);
      }
    } else if (key == "iterations") {
      if (saw_iterations) Fail("duplicate iterations= token");
      saw_iterations = true;
      sweep.iterations = ParseBoundedInt(
          value, key, 1, std::numeric_limits<int>::max());
    } else if (key == "seed") {
      if (saw_seed) Fail("duplicate seed= token");
      saw_seed = true;
      sweep.seed = ParseSeed(value, key);
    } else {
      Fail("unknown key '" + key +
           "=' (known: model(s), policy/policies, iterations, seed)");
    }
  }
  if (!saw_models || raw_models.empty()) {
    Fail("model= (or models=) is required, e.g. model=Inception v2");
  }
  for (std::string& name : Split(raw_models, ',')) {
    // Tolerate "a, b" style lists.
    const std::size_t begin = name.find_first_not_of(' ');
    const std::size_t end = name.find_last_not_of(' ');
    if (begin == std::string::npos) {
      Fail("models= has an empty entry in '" + raw_models + "'");
    }
    sweep.models.push_back(name.substr(begin, end - begin + 1));
  }
  return sweep;
}

}  // namespace tictac::runtime
