// Declarative experiment descriptions (DESIGN.md §5).
//
// An ExperimentSpec is the complete, self-contained description of one
// run: which model, what cluster, which scheduling policy, how many
// iterations, which seed. It serializes to a compact one-line text form
//
//   envG:workers=8:ps=4:training model=VGG-16 policy=tac iterations=10 seed=1
//
// and parses back to an equal spec (round-trip identity), so experiment
// grids can live in shell scripts, CI configs, and bench tables instead
// of hand-rolled C++ loops.
//
// A SweepSpec is the same grammar with comma-separated value lists on
// any cluster axis plus models= / policies=, expanding to the cartesian
// grid in a deterministic order:
//
//   envG:workers=1,2,4,8:ps=1 models=VGG-16,Inception v2 policies=baseline,tic
//
// harness::Session executes specs (serially or on a thread pool) with
// Runner caching keyed by (model, cluster); see harness/session.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/cluster.h"

namespace tictac::runtime {

// Shortest decimal form of `value` that parses back to the same double
// (15-17 significant digits). The grammar's emitters use it so spec
// round-trips are exact without printing 17 digits for "0.5".
std::string FormatDouble(double value);

// The cluster half of a spec: a named base environment (envG / envC)
// plus the overrides the grammar exposes. Kept symbolic — rather than a
// raw ClusterConfig — so specs serialize compactly and compare exactly.
struct ClusterSpec {
  std::string env = "envG";  // "envG" (cloud GPU) or "envC" (CPU/1GbE)
  int workers = 4;
  int ps = 1;
  bool training = false;
  double batch_factor = 1.0;
  std::int64_t chunk_bytes = 0;
  ShardStrategy shard = ShardStrategy::kBytes;
  Topology topology = Topology::kPsFabric;
  Enforcement enforcement = Enforcement::kHandoffGate;
  double tac_oracle_sigma = 0.0;
  // Env defaults apply when unset (EnvG/EnvC pick their own jitter and
  // out-of-order probability); set to override.
  std::optional<double> jitter_sigma;
  std::optional<double> out_of_order;
  // Per-worker speed multipliers; empty = homogeneous. Never a sweep
  // axis (its commas separate per-worker values, not grid points).
  std::vector<double> worker_speed_factors;
  // Flow-level max-min fairness (":flow" enables sim.flow_fairness) and
  // the fat-tree shape lower_flow_nics builds when it is on: pods= core
  // pods, oversub= core oversubscription ratio. Scalar knobs, not sweep
  // axes.
  bool flow = false;
  int pods = 1;
  double oversub = 1.0;

  // Materializes the validated ClusterConfig (throws std::invalid_argument
  // with the offending field for out-of-range values, unknown env).
  ClusterConfig Build() const;

  // Canonical text form, e.g. "envG:workers=8:ps=4:training:batch=0.5".
  // Defaults other than workers/ps/task are omitted.
  std::string ToString() const;

  friend bool operator==(const ClusterSpec&, const ClusterSpec&) = default;
};

// One fully-specified run.
struct ExperimentSpec {
  std::string model;  // zoo name, e.g. "Inception v2"
  ClusterSpec cluster;
  std::string policy = "tic";  // core::PolicyRegistry spec
  int iterations = 10;
  std::uint64_t seed = 1;

  // Canonical one-line form; Parse(ToString()) == *this.
  std::string ToString() const;

  // Parses "<cluster> model=<name> [policy=<spec>] [iterations=N]
  // [seed=N]". Model names may contain spaces. Throws
  // std::invalid_argument (naming the bad token) on malformed input,
  // missing model, list-valued axes (use SweepSpec), or an invalid
  // cluster.
  static ExperimentSpec Parse(std::string_view text);

  ClusterConfig BuildCluster() const { return cluster.Build(); }

  friend bool operator==(const ExperimentSpec&,
                         const ExperimentSpec&) = default;
};

// A cartesian grid of ExperimentSpecs: every cluster axis plus models
// and policies may hold several values. iterations and seed are scalar
// (shared by every run).
struct SweepSpec {
  std::vector<std::string> models;  // required, >= 1 name
  std::string env = "envG";
  std::vector<bool> tasks{false};  // training flags (false = inference)
  std::vector<int> workers{4};
  std::vector<int> ps{1};
  std::vector<double> batch_factors{1.0};
  std::vector<std::int64_t> chunk_bytes{0};
  std::vector<ShardStrategy> shards{ShardStrategy::kBytes};
  std::vector<Topology> topologies{Topology::kPsFabric};
  std::vector<Enforcement> enforcements{Enforcement::kHandoffGate};
  std::vector<double> tac_oracle_sigmas{0.0};
  std::vector<std::string> policies{"tic"};
  std::optional<double> jitter_sigma;
  std::optional<double> out_of_order;
  std::vector<double> worker_speed_factors;
  // Scalar flow-fairness knobs, mirrored into every expanded cluster
  // (see ClusterSpec::flow/pods/oversub).
  bool flow = false;
  int pods = 1;
  double oversub = 1.0;
  int iterations = 10;
  std::uint64_t seed = 1;

  // Number of specs Expand() produces (the product of the axis sizes).
  std::size_t size() const;

  // The full grid, nested model → task → workers → ps → batch → chunk →
  // shard → topology → enforcement → sigma → policy (policy varies
  // fastest, so consecutive
  // specs share a Session Runner-cache entry). Deterministic: the order
  // depends only on the axis value order. Throws if models is empty.
  std::vector<ExperimentSpec> Expand() const;

  // Canonical text form; Parse(ToString()) == *this.
  std::string ToString() const;

  // Parses "<cluster-with-lists> models=<a,b> [policies=<a,b>]
  // [iterations=N] [seed=N]"; singular model=/policy= are accepted as
  // aliases. Throws std::invalid_argument on malformed input.
  static SweepSpec Parse(std::string_view text);

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

}  // namespace tictac::runtime
