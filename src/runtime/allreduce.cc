#include "runtime/allreduce.h"

#include <stdexcept>

namespace tictac::runtime {

Lowering LowerAllReduce(const core::Graph& worker_graph,
                        const ClusterConfig& config) {
  const int W = config.num_workers;
  if (W < 2) throw std::invalid_argument("all-reduce needs >= 2 workers");
  if (!config.training) {
    throw std::invalid_argument("all-reduce applies to training only");
  }
  const core::PlatformModel& hw = config.platform;

  Lowering out;
  out.num_workers = W;
  out.num_resources = 2 * W;
  out.worker_tasks.resize(static_cast<std::size_t>(W));
  out.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  out.transfer_param.resize(static_cast<std::size_t>(W));

  const std::vector<core::OpId> topo = worker_graph.TopologicalOrder();
  if (topo.size() != worker_graph.size()) {
    throw std::invalid_argument("worker graph has a cycle");
  }

  std::vector<std::vector<sim::TaskId>> op_task(
      static_cast<std::size_t>(W),
      std::vector<sim::TaskId>(worker_graph.size(), -1));

  int max_param = -1;
  for (const core::Op& op : worker_graph.ops()) {
    max_param = std::max(max_param, op.param);
  }
  const int P = max_param + 1;
  // Per parameter: the gradient-ready task (the send op) on each worker.
  std::vector<std::vector<sim::TaskId>> grad_ready(
      static_cast<std::size_t>(P));

  for (int w = 0; w < W; ++w) {
    for (const core::OpId op_id : topo) {
      const core::Op& op = worker_graph.op(op_id);
      sim::Task task;
      task.op = op.id;
      task.kind = op.kind;
      task.worker = w;
      switch (op.kind) {
        case core::OpKind::kRecv:
          // Weights are local: an instantaneous read on the worker.
          task.resource = w;
          task.duration = 0.0;
          break;
        case core::OpKind::kSend:
          // Gradient handoff to the collective: bookkeeping only; the
          // ring transfers are separate tasks below.
          task.resource = w;
          task.duration = 0.0;
          break;
        case core::OpKind::kCompute: {
          task.resource = w;
          double speed = 1.0;
          if (static_cast<std::size_t>(w) <
              config.worker_speed_factors.size()) {
            speed = config.worker_speed_factors[static_cast<std::size_t>(w)];
          }
          task.duration = op.cost / (hw.compute_rate * speed);
          break;
        }
        default:
          throw std::invalid_argument(
              "worker partition may only hold compute/recv/send ops");
      }
      for (core::OpId pred : worker_graph.preds(op.id)) {
        task.preds.push_back(op_task[static_cast<std::size_t>(w)]
                                    [static_cast<std::size_t>(pred)]);
      }
      const auto id = static_cast<sim::TaskId>(out.tasks.size());
      op_task[static_cast<std::size_t>(w)][static_cast<std::size_t>(op.id)] =
          id;
      out.worker_tasks[static_cast<std::size_t>(w)].push_back(id);
      if (op.kind == core::OpKind::kRecv) {
        out.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(id);
        out.transfer_param[static_cast<std::size_t>(w)].push_back(op.param);
      }
      if (op.kind == core::OpKind::kSend && op.param >= 0) {
        grad_ready[static_cast<std::size_t>(op.param)].push_back(id);
      }
      out.tasks.push_back(std::move(task));
    }
  }

  // Ring phases per parameter: 2(W-1) rounds, W chunk-transfers per round
  // (one per link, concurrently), each chunk bytes/W. A round starts only
  // when the previous round completes (bucket-synchronous collective).
  for (int p = 0; p < P; ++p) {
    const auto& ready = grad_ready[static_cast<std::size_t>(p)];
    if (ready.empty()) continue;
    std::int64_t bytes = 0;
    for (const core::Op& op : worker_graph.ops()) {
      if (op.kind == core::OpKind::kSend && op.param == p) {
        bytes = op.bytes;
        break;
      }
    }
    const double chunk_time =
        hw.latency_s + static_cast<double>(bytes) / W / hw.bandwidth_bps;

    std::vector<sim::TaskId> previous_round = ready;
    for (int round = 0; round < 2 * (W - 1); ++round) {
      std::vector<sim::TaskId> this_round;
      this_round.reserve(static_cast<std::size_t>(W));
      for (int link = 0; link < W; ++link) {
        sim::Task transfer;
        transfer.kind = core::OpKind::kSend;
        transfer.resource = W + link;
        transfer.duration = chunk_time;
        transfer.preds = previous_round;
        this_round.push_back(static_cast<sim::TaskId>(out.tasks.size()));
        out.tasks.push_back(std::move(transfer));
      }
      previous_round = std::move(this_round);
    }
  }
  return out;
}

}  // namespace tictac::runtime
