#include "runtime/allreduce.h"

#include <stdexcept>
#include <vector>

#include "core/schedule.h"
#include "ir/lower.h"

namespace tictac::runtime {

Lowering LowerAllReduce(const core::Graph& worker_graph,
                        const ClusterConfig& config) {
  // Checked here (not just in the ring pass) to keep the legacy error
  // precedence: a bad worker count or task type fails before graph
  // traversal.
  if (config.num_workers < 2) {
    throw std::invalid_argument("all-reduce needs >= 2 workers");
  }
  if (!config.training) {
    throw std::invalid_argument("all-reduce applies to training only");
  }
  // The collective takes no schedule: transfer order is fixed by the ring
  // rounds, so rank/priority attributes never apply.
  const core::Schedule no_schedule;
  const std::vector<int> no_params;
  const std::vector<JobLoweringInput> jobs{
      {worker_graph, no_schedule, no_params, config}};
  ir::Module module = ir::StandardLoweringPipeline(Topology::kRing)
                          .Run(ir::BuildLogicalModule(jobs));
  return ir::ToLowering(module);
}

}  // namespace tictac::runtime
