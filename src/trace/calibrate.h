// Platform calibration from traces: recovers an AnalyticalTimeOracle's
// PlatformModel (bandwidth, latency, compute rate) from one measured
// execution. Closes the profiling loop: trace an unknown cluster once,
// calibrate, then schedule *other* models on it with TAC without
// re-profiling them op by op.
#pragma once

#include "core/graph.h"
#include "core/time_oracle.h"
#include "runtime/lowering.h"

namespace tictac::trace {

struct Calibration {
  core::PlatformModel platform;
  double transfer_fit_r2 = 0.0;  // quality of the bytes -> duration fit
  // Through-origin cost -> duration fit quality (1 - SSE/SST about the
  // mean); can go negative when a single rate explains compute worse
  // than the mean duration would.
  double compute_fit_r2 = 0.0;
  // Mean |measured - fitted| duration per sample class, in seconds —
  // the absolute counterpart to the R² figures, so a consumer
  // (exec::ValidateAgainstSim) can flag a poor fit in the units it
  // reports predictions in.
  double transfer_mean_abs_residual_s = 0.0;
  double compute_mean_abs_residual_s = 0.0;
  int transfer_samples = 0;
  int compute_samples = 0;

  // Fit-quality gate: both regressions explain their samples well.
  bool GoodFit(double min_r2 = 0.9) const {
    return transfer_fit_r2 >= min_r2 && compute_fit_r2 >= min_r2;
  }
};

// Fits, over worker-0's tasks:
//   transfer duration = latency + bytes / (bandwidth / num_workers)
//     (ordinary least squares; the NIC time-sharing factor is divided
//      back out so the returned bandwidth is the full-NIC figure), and
//   compute duration = cost / compute_rate (through-origin fit).
// `num_workers` must match the traced cluster's worker count.
Calibration CalibratePlatform(const runtime::Lowering& lowering,
                              const sim::SimResult& result,
                              const core::Graph& worker_graph,
                              int num_workers);

}  // namespace tictac::trace
