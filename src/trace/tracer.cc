#include "trace/tracer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace tictac::trace {

std::vector<Span> CollectSpans(const runtime::Lowering& lowering,
                               const sim::SimResult& result,
                               const core::Graph& worker_graph) {
  std::vector<Span> spans;
  spans.reserve(lowering.tasks.size());
  for (std::size_t t = 0; t < lowering.tasks.size(); ++t) {
    const sim::Task& task = lowering.tasks[t];
    Span span;
    span.resource = task.resource;
    span.worker = task.worker;
    span.kind = task.kind;
    span.start = result.start[t];
    span.end = result.end[t];
    if (task.op != core::kInvalidOp) {
      span.name = worker_graph.op(task.op).name;
      if (task.worker >= 0) {
        span.name = "w" + std::to_string(task.worker) + "/" + span.name;
      }
    } else {
      span.name = std::string("ps/") + core::ToString(task.kind);
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

std::string ToChromeTraceJson(const std::vector<Span>& spans) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) os << ",\n";
    first = false;
    // Span names embed op names from user-loaded graphs (core/io), so
    // they may contain '"', '\' or control characters; emitting them
    // verbatim would produce JSON chrome://tracing rejects.
    os << R"({"name":")" << util::JsonEscape(span.name)
       << R"(","ph":"X","pid":0,"tid":)" << span.resource << R"(,"ts":)"
       << span.start * 1e6 << R"(,"dur":)" << (span.end - span.start) * 1e6
       << R"(,"cat":")" << util::JsonEscape(core::ToString(span.kind))
       << R"("})";
  }
  os << "\n]\n";
  return os.str();
}

void WriteChromeTrace(const std::vector<Span>& spans,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file " + path);
  out << ToChromeTraceJson(spans);
}

}  // namespace tictac::trace
