#include "trace/estimator.h"

#include <algorithm>
#include <unordered_map>

#include "sim/engine.h"

namespace tictac::trace {

core::MapTimeOracle EstimateWorkerOracle(const runtime::Lowering& lowering,
                                         const sim::SimOptions& options,
                                         int runs, std::uint64_t seed) {
  sim::TaskGraphSim sim = lowering.BuildSim();
  std::unordered_map<core::OpId, double> best;
  for (int r = 0; r < runs; ++r) {
    const sim::SimResult result =
        sim.Run(options, seed + static_cast<std::uint64_t>(r));
    for (sim::TaskId t : lowering.worker_tasks[0]) {
      const auto ti = static_cast<std::size_t>(t);
      const core::OpId op = lowering.tasks[ti].op;
      const double measured = result.end[ti] - result.start[ti];
      auto [it, inserted] = best.try_emplace(op, measured);
      if (!inserted) it->second = std::min(it->second, measured);
    }
  }
  return core::MapTimeOracle(std::move(best));
}

}  // namespace tictac::trace
