// Time-oracle estimator (§5): profiles a few iterations and takes the
// minimum measured runtime per op, exactly the paper's "execute each
// operation 5 times and choose the minimum" rule.
#pragma once

#include <cstdint>

#include "core/time_oracle.h"
#include "runtime/lowering.h"

namespace tictac::trace {

inline constexpr int kDefaultProfilingRuns = 5;

// Runs `runs` profiling iterations of the lowered cluster (with the given
// simulation options, typically including jitter) and returns a
// MapTimeOracle over the *worker-0 partition* ops: each op's time is the
// minimum across runs. This is the oracle TAC consumes in a realistic
// deployment, as opposed to the exact analytical oracle.
core::MapTimeOracle EstimateWorkerOracle(const runtime::Lowering& lowering,
                                         const sim::SimOptions& options,
                                         int runs, std::uint64_t seed);

}  // namespace tictac::trace
