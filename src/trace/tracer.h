// Tracing module (§5): converts simulator executions into per-op spans
// and exports them in the Chrome trace-event format (chrome://tracing,
// Perfetto) for visual inspection of computation/communication overlap.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "runtime/lowering.h"
#include "sim/task.h"

namespace tictac::trace {

struct Span {
  std::string name;
  int resource = 0;
  int worker = -1;
  core::OpKind kind = core::OpKind::kCompute;
  double start = 0.0;  // seconds
  double end = 0.0;
};

// One span per task. `worker_graph` supplies op names; PS-side tasks are
// named after their kind.
std::vector<Span> CollectSpans(const runtime::Lowering& lowering,
                               const sim::SimResult& result,
                               const core::Graph& worker_graph);

// Serializes spans as a Chrome trace-event JSON array ("X" complete
// events, microsecond timestamps, one tid per resource).
std::string ToChromeTraceJson(const std::vector<Span>& spans);

// Writes ToChromeTraceJson to `path`. Throws std::runtime_error on I/O
// failure.
void WriteChromeTrace(const std::vector<Span>& spans, const std::string& path);

}  // namespace tictac::trace
