#include "trace/calibrate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/stats.h"

namespace tictac::trace {

Calibration CalibratePlatform(const runtime::Lowering& lowering,
                              const sim::SimResult& result,
                              const core::Graph& worker_graph,
                              int num_workers) {
  if (num_workers < 1) throw std::invalid_argument("num_workers must be >= 1");
  std::vector<double> bytes;
  std::vector<double> transfer_time;
  std::vector<double> compute_cost;
  std::vector<double> compute_time;
  double total_cost = 0.0;
  double total_compute_time = 0.0;

  for (sim::TaskId t : lowering.worker_tasks[0]) {
    const auto ti = static_cast<std::size_t>(t);
    const sim::Task& task = lowering.tasks[ti];
    const double duration = result.end[ti] - result.start[ti];
    const core::Op& op = worker_graph.op(task.op);
    if (core::IsCommunication(task.kind)) {
      bytes.push_back(static_cast<double>(op.bytes));
      transfer_time.push_back(duration);
    } else if (task.kind == core::OpKind::kCompute && op.cost > 0.0 &&
               duration > 0.0) {
      compute_cost.push_back(op.cost);
      compute_time.push_back(duration);
      total_cost += op.cost;
      total_compute_time += duration;
    }
  }
  const int compute_samples = static_cast<int>(compute_cost.size());
  if (bytes.size() < 2 || compute_samples == 0) {
    throw std::runtime_error("not enough samples to calibrate");
  }

  // util::FitLine returns the default fit (slope 0) on zero x-variance,
  // which the slope check below would misreport as a bad fit; the real
  // problem is a degenerate sample set, so diagnose it as such.
  const auto [min_bytes, max_bytes] =
      std::minmax_element(bytes.begin(), bytes.end());
  if (*min_bytes == *max_bytes) {
    throw std::runtime_error(
        "transfer calibration is degenerate: all " +
        std::to_string(bytes.size()) +
        " transfer samples have the same size (" +
        std::to_string(static_cast<std::int64_t>(*min_bytes)) +
        " bytes) — at least two distinct transfer sizes are needed to "
        "separate latency from bandwidth");
  }

  const util::LinearFit fit = util::FitLine(bytes, transfer_time);
  if (fit.slope <= 0.0) {
    throw std::runtime_error("transfer fit has non-positive slope");
  }

  Calibration calibration;
  // slope = 1 / (bandwidth / W)  =>  bandwidth = W / slope.
  calibration.platform.bandwidth_bps =
      static_cast<double>(num_workers) / fit.slope;
  calibration.platform.latency_s = std::max(0.0, fit.intercept);
  calibration.platform.compute_rate = total_cost / total_compute_time;
  calibration.transfer_fit_r2 = fit.r2;
  calibration.transfer_samples = static_cast<int>(bytes.size());
  calibration.compute_samples = compute_samples;

  // Per-constant residuals (satellite of the exec validation loop): how
  // far the fitted line / rate sit from the individual samples, so a
  // consumer can distinguish "constants recovered" from "fit forced
  // through noise".
  double transfer_abs = 0.0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    transfer_abs +=
        std::abs(transfer_time[i] - (fit.intercept + fit.slope * bytes[i]));
  }
  calibration.transfer_mean_abs_residual_s =
      transfer_abs / static_cast<double>(bytes.size());

  const double rate = calibration.platform.compute_rate;
  const double mean_time =
      total_compute_time / static_cast<double>(compute_samples);
  double sse = 0.0;
  double sst = 0.0;
  double compute_abs = 0.0;
  for (std::size_t i = 0; i < compute_cost.size(); ++i) {
    const double fitted = compute_cost[i] / rate;
    sse += (compute_time[i] - fitted) * (compute_time[i] - fitted);
    sst += (compute_time[i] - mean_time) * (compute_time[i] - mean_time);
    compute_abs += std::abs(compute_time[i] - fitted);
  }
  calibration.compute_mean_abs_residual_s =
      compute_abs / static_cast<double>(compute_samples);
  // Through-origin R²: 1 - SSE/SST about the mean duration. A constant
  // sample set (SST == 0) is a perfect fit iff the rate reproduces it.
  calibration.compute_fit_r2 =
      sst > 0.0 ? 1.0 - sse / sst : (sse == 0.0 ? 1.0 : 0.0);
  return calibration;
}

}  // namespace tictac::trace
