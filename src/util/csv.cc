#include "util/csv.h"

#include <stdexcept>

namespace tictac::util {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  EmitRow(header);
}

void CsvWriter::AddRow(const std::vector<std::string>& row) {
  if (row.size() != columns_) {
    throw std::runtime_error("CsvWriter: row width mismatch");
  }
  EmitRow(row);
}

void CsvWriter::EmitRow(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(row[i]);
  }
  out_ << '\n';
}

}  // namespace tictac::util
