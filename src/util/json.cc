#include "util/json.h"

#include <cstdio>

namespace tictac::util {

std::string JsonEscape(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char raw : value) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\b':
        escaped += "\\b";
        break;
      case '\f':
        escaped += "\\f";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += raw;
        }
    }
  }
  return escaped;
}

}  // namespace tictac::util
