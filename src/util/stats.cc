#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace tictac::util {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double idx = p * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double Mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  return std::accumulate(sample.begin(), sample.end(), 0.0) /
         static_cast<double>(sample.size());
}

double Stddev(const std::vector<double>& sample) {
  RunningStat s;
  for (double x : sample) s.Add(x);
  return s.stddev();
}

double Min(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  return *std::min_element(sample.begin(), sample.end());
}

double Max(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  return *std::max_element(sample.begin(), sample.end());
}

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> sample,
                                                    std::size_t points) {
  std::vector<std::pair<double, double>> cdf;
  if (sample.empty() || points == 0) return cdf;
  std::sort(sample.begin(), sample.end());
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        (points == 1) ? 1.0
                      : static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sample.size() - 1) + 0.5);
    cdf.emplace_back(sample[idx], static_cast<double>(idx + 1) /
                                      static_cast<double>(sample.size()));
  }
  return cdf;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return fit;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace tictac::util
