// Aligned-column table printing for benchmark harness output.
//
// Every bench binary reports the rows/series of the paper table or figure
// it regenerates; Table gives them a uniform, diffable text format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tictac::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Renders with a header separator and right-padded columns.
  std::string ToString() const;
  void Print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (default 2).
std::string Fmt(double v, int precision = 2);
// Formats a percentage with a leading sign, e.g. "+12.3%".
std::string FmtPct(double fraction, int precision = 1);

}  // namespace tictac::util
