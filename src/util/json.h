// Minimal JSON emission helpers shared by every module that writes JSON
// by hand (trace export, result tables, bench summaries). There is no
// JSON *parser* here on purpose — the repo only ever emits JSON.
#pragma once

#include <string>
#include <string_view>

namespace tictac::util {

// Escapes `value` for embedding between the quotes of a JSON string
// literal: '"' and '\\' are backslash-escaped, the named control escapes
// (\b \f \n \r \t) are used where they exist, and any other control
// character (< 0x20) becomes a \u00XX sequence. Everything else —
// including non-ASCII bytes, which JSON passes through verbatim inside
// UTF-8 documents — is copied unchanged.
std::string JsonEscape(std::string_view value);

}  // namespace tictac::util
