// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (baseline random schedules,
// platform jitter, fault injection, synthetic datasets) draws from an
// explicitly seeded Rng so that experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tictac::util {

// A thin wrapper around std::mt19937_64 with convenience draws.
//
// Rng is cheap to copy; independent streams should be derived with Fork()
// so that adding draws to one consumer does not perturb another.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Lognormal such that the *median* of the distribution is `median` and
  // sigma is the shape parameter. Used for platform timing jitter.
  double Lognormal(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma)(engine_);
  }

  // Bernoulli with probability p of returning true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  // Derives an independent stream. The child seed mixes the parent stream
  // so repeated forks yield distinct generators.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tictac::util
