// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (baseline random schedules,
// platform jitter, fault injection, synthetic datasets) draws from an
// explicitly seeded Rng so that experiments are reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace tictac::util {

// A thin wrapper around std::mt19937_64 with convenience draws.
//
// Rng is cheap to copy; independent streams should be derived with Fork()
// so that adding draws to one consumer does not perturb another.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Lognormal such that the *median* of the distribution is `median` and
  // sigma is the shape parameter. Used for platform timing jitter.
  double Lognormal(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma)(engine_);
  }

  // Bernoulli with probability p of returning true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential inter-arrival gap with the given rate (events/second);
  // mean 1/rate. Implemented by inverse-CDF over the raw engine bits —
  // not std::exponential_distribution, whose output differs across
  // standard libraries — so a seeded arrival stream (sched::ArrivalSpec)
  // is bit-identical on every platform. Requires rate > 0.
  double Exponential(double rate) {
    return -std::log(Canonical()) / rate;
  }

  // Poisson count with the given mean, via Knuth's product-of-uniforms
  // (portable for the same reason as Exponential; O(mean) draws, fine
  // for the modest burst/batch sizes the schedulers use). mean == 0
  // returns 0; requires mean >= 0 and finite.
  std::int64_t Poisson(double mean) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double product = 1.0;
    do {
      product *= Canonical();
      ++k;
    } while (product > limit);
    return k - 1;
  }

  // Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  // Derives an independent stream. The child seed mixes the parent stream
  // so repeated forks yield distinct generators.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  // Independent-stream split WITHOUT consuming any parent state: (seed,
  // stream) is mixed through splitmix64 into a child seed, so a consumer
  // holding only the experiment seed can derive its own stream (fault
  // injection uses stream ids) while every other consumer of Rng(seed)
  // — the arrival process, per-iteration sim seeds — replays untouched.
  // Same (seed, stream) => bit-identical child on every platform.
  static Rng Stream(std::uint64_t seed, std::uint64_t stream) {
    return Rng(StreamSeed(seed, stream));
  }

  // The child seed Stream() is built from, for consumers that pass seeds
  // onward instead of holding a generator (the sharded sim engine seeds
  // each component with StreamSeed(seed, component)).
  static std::uint64_t StreamSeed(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Portable uniform in (0, 1] (the inverse-CDF base draw): mt19937_64
  // output is specified exactly, so the result is bit-identical across
  // standard libraries — use this (not Uniform) where replays must match
  // across platforms, e.g. recovery-backoff jitter.
  double Uniform01() { return Canonical(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  // Uniform draw in (0, 1], 53-bit resolution, straight from the engine
  // (mt19937_64 output is specified exactly, unlike the standard
  // distributions). The +1 excludes 0 so log() is always finite.
  double Canonical() {
    return static_cast<double>((engine_() >> 11) + 1) * 0x1.0p-53;
  }

  std::mt19937_64 engine_;
};

}  // namespace tictac::util
