#include "util/rng.h"

// Header-only; this translation unit exists so the target has a stable
// archive even if all inline definitions are absorbed by callers.
namespace tictac::util {}
