// Minimal CSV writer so experiment series can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace tictac::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.
  // Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void AddRow(const std::vector<std::string>& row);

 private:
  std::ofstream out_;
  std::size_t columns_;

  void EmitRow(const std::vector<std::string>& row);
};

// Quotes a CSV field if it contains separators or quotes.
std::string CsvEscape(const std::string& field);

}  // namespace tictac::util
