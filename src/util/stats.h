// Summary statistics used by the experiment harness: running moments,
// percentiles, empirical CDFs, and simple least-squares regression
// (Figure 12a reports an R^2 between scheduling efficiency and step time).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tictac::util {

// Accumulates mean / variance online (Welford).
class RunningStat {
 public:
  void Add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear interpolation percentile of a sample, p in [0, 1].
// Returns 0 for an empty sample.
double Percentile(std::vector<double> sample, double p);

double Mean(const std::vector<double>& sample);
double Stddev(const std::vector<double>& sample);
double Min(const std::vector<double>& sample);
double Max(const std::vector<double>& sample);

// Empirical CDF evaluated at `points` many equally spaced quantiles.
// Returns (value, cumulative probability) pairs sorted by value.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::vector<double> sample, std::size_t points);

// Ordinary least squares fit y = a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  // coefficient of determination
};
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace tictac::util
