#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace tictac::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string FmtPct(double fraction, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision)
     << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace tictac::util
