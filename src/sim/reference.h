// Reference executor for differential testing.
//
// An independent, deliberately naive implementation of the execution
// semantics: time-stepped list scheduling with deterministic selection
// (lowest priority number, then lowest task id) and no randomness. On
// task graphs where the engine's tie-breaks never fire (unique priorities
// per resource, no jitter, no gates), TaskGraphSim must produce exactly
// the same start/end times. Divergence in either direction is a bug in
// one of the two executors.
#pragma once

#include "sim/task.h"

namespace tictac::sim {

// Executes the task graph with deterministic greedy list scheduling.
// Ignores gates and SimOptions entirely; priorities kNoPriority sort
// after all numbered priorities (ties by task id).
SimResult ReferenceRun(const std::vector<Task>& tasks, int num_resources);

}  // namespace tictac::sim
