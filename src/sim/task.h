// Task-level execution model consumed by the discrete-event simulator.
//
// The runtime lowers a cluster (worker partitions + PS partitions +
// transfers) into a flat task graph: every task occupies exactly one
// resource for its duration, starts only after its predecessors complete,
// and — for network transfers under TicTac enforcement — only after its
// per-worker hand-off gate opens (§5.1).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/op.h"

namespace tictac::sim {

struct FlowNetwork;  // sim/flow.h

using TaskId = std::int32_t;

inline constexpr int kNoPriority = std::numeric_limits<int>::max();

struct Task {
  // Service time on `resource`, in seconds, before jitter.
  double duration = 0.0;
  // Resource index in [0, num_resources).
  int resource = 0;

  // Ready-queue priority number: a resource picks uniformly among ready
  // tasks holding the lowest number together with tasks holding no number
  // (Section 3.1 semantics).
  int priority = kNoPriority;

  // Enforcement gate (§5.1). A task with gate_group >= 0 may start only
  // when its group's hand-off counter equals gate_rank; the counter
  // increments when the task starts (is "handed to gRPC"), so transfers
  // pipeline while their initiation order stays fixed.
  int gate_group = -1;
  int gate_rank = -1;

  // Dependencies: indices of tasks that must complete first.
  std::vector<TaskId> preds;

  // Provenance, for statistics (not used by the engine itself).
  core::OpId op = core::kInvalidOp;
  core::OpKind kind = core::OpKind::kCompute;
  int worker = -1;  // worker this task belongs to; -1 for PS-side tasks
};

// One step of a piecewise-constant resource-speed timeline (fault
// injection): at `time`, `resource` switches to serving at `speed` times
// its nominal rate. speed <= 0 means DOWN — the resource starts no new
// tasks until a later event raises its speed; tasks already in flight
// complete at the rate they started with (the service layer models a
// permanent crash by re-queueing the job, never by an unending sim).
// A task picks up its resource's speed when it STARTS: effective
// duration = nominal / speed. Timelines must be sorted by time.
struct ResourceFault {
  double time = 0.0;
  int resource = 0;
  double speed = 1.0;
};

struct SimOptions {
  // Honor gate_group/gate_rank. Off = the unscheduled baseline.
  bool enforce_gates = true;
  // Probability that a gated task is exempted from its gate, modeling
  // gRPC hand-off reordering (the paper measures 0.4-0.5%).
  double out_of_order_probability = 0.0;
  // Multiplicative lognormal jitter (shape sigma) on every task duration,
  // modeling platform timing variation. 0 = deterministic durations.
  double jitter_sigma = 0.0;
  // Mid-run resource perturbations, sorted by time; nullptr or empty =
  // the unperturbed engine, bit for bit (the fault path draws no extra
  // randomness and is skipped entirely). The pointee must outlive Run().
  const std::vector<ResourceFault>* faults = nullptr;
  // Flow-level max-min fair bandwidth sharing (DESIGN.md §11). Off (the
  // default) or a null/flow-less network reproduces the static
  // bandwidth/T split bit for bit — the flow path is skipped entirely.
  // On, transfers on resources `network` maps to shared links progress at
  // progressive-filling max-min rates, recomputed on every flow start and
  // finish, instead of their fixed nominal rate. The pointee must outlive
  // Run().
  bool flow_fairness = false;
  const FlowNetwork* network = nullptr;
};

struct SimResult {
  double makespan = 0.0;
  std::vector<double> start;  // per task
  std::vector<double> end;    // per task
  // Tasks in the order they started, useful for schedule forensics.
  std::vector<TaskId> start_order;
};

}  // namespace tictac::sim
