#include "sim/engine.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tictac::sim {

TaskGraphSim::TaskGraphSim(std::vector<Task> tasks, int num_resources)
    : tasks_(std::move(tasks)), num_resources_(num_resources) {
  succs_.resize(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (TaskId p : tasks_[t].preds) {
      succs_[static_cast<std::size_t>(p)].push_back(static_cast<TaskId>(t));
    }
    num_gate_groups_ = std::max(num_gate_groups_, tasks_[t].gate_group + 1);
  }
}

void TaskGraphSim::Validate() const {
  const auto n = static_cast<TaskId>(tasks_.size());
  std::vector<std::vector<int>> gate_ranks(
      static_cast<std::size_t>(num_gate_groups_));
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (task.resource < 0 || task.resource >= num_resources_) {
      throw std::invalid_argument("task resource out of range");
    }
    if (task.duration < 0.0) {
      throw std::invalid_argument("negative task duration");
    }
    for (TaskId p : task.preds) {
      if (p < 0 || p >= n || p == t) {
        throw std::invalid_argument("task predecessor out of range");
      }
    }
    if ((task.gate_group >= 0) != (task.gate_rank >= 0)) {
      throw std::invalid_argument("gate group/rank must be set together");
    }
    if (task.gate_group >= 0) {
      gate_ranks[static_cast<std::size_t>(task.gate_group)].push_back(
          task.gate_rank);
    }
  }
  for (auto& ranks : gate_ranks) {
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] != static_cast<int>(i)) {
        throw std::invalid_argument("gate ranks must be dense from 0");
      }
    }
  }
  // Acyclicity via Kahn.
  std::vector<int> indegree(tasks_.size(), 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    indegree[t] = static_cast<int>(tasks_[t].preds.size());
  }
  std::queue<TaskId> q;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) q.push(static_cast<TaskId>(t));
  }
  std::size_t seen = 0;
  while (!q.empty()) {
    const TaskId t = q.front();
    q.pop();
    ++seen;
    for (TaskId s : succs_[static_cast<std::size_t>(t)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) q.push(s);
    }
  }
  if (seen != tasks_.size()) {
    throw std::invalid_argument("task graph has a cycle");
  }
}

SimResult TaskGraphSim::Run(const SimOptions& options,
                            std::uint64_t seed) const {
  util::Rng rng(seed);
  const auto n = static_cast<TaskId>(tasks_.size());

  // Per-task state.
  std::vector<int> missing_preds(tasks_.size());
  std::vector<double> duration(tasks_.size());
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    missing_preds[static_cast<std::size_t>(t)] =
        static_cast<int>(task.preds.size());
    duration[static_cast<std::size_t>(t)] =
        options.jitter_sigma > 0.0
            ? task.duration * rng.Lognormal(1.0, options.jitter_sigma)
            : task.duration;
  }

  std::vector<int> gate_counter(static_cast<std::size_t>(num_gate_groups_), 0);
  // Tasks whose predecessors are done but whose gate is still closed,
  // bucketed by gate group.
  std::vector<std::vector<TaskId>> gate_waiting(
      static_cast<std::size_t>(num_gate_groups_));

  auto gate_open = [&](TaskId t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (!options.enforce_gates || task.gate_group < 0) return true;
    return gate_counter[static_cast<std::size_t>(task.gate_group)] ==
           task.gate_rank;
  };

  // Ready sets per resource.
  std::vector<std::vector<TaskId>> ready(
      static_cast<std::size_t>(num_resources_));
  std::vector<bool> busy(static_cast<std::size_t>(num_resources_), false);

  // Hand-off (§5.1): a gated task is *enqueued* on its channel once its
  // dependencies are met and the group counter reaches its rank; the
  // counter advances at enqueue time (the transfer is "handed to gRPC"),
  // not at wire time, so channels drain their queues independently and
  // never idle waiting for another channel's wire transfer.
  auto deps_done_enqueue = [&](TaskId t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (!gate_open(t)) {
      gate_waiting[static_cast<std::size_t>(task.gate_group)].push_back(t);
      return;
    }
    ready[static_cast<std::size_t>(task.resource)].push_back(t);
    if (!options.enforce_gates || task.gate_group < 0) return;
    // Advance the counter and cascade-release successors whose
    // dependencies are already met.
    int group = task.gate_group;
    ++gate_counter[static_cast<std::size_t>(group)];
    bool released = true;
    while (released) {
      released = false;
      auto& waiting = gate_waiting[static_cast<std::size_t>(group)];
      for (std::size_t i = 0; i < waiting.size(); ++i) {
        if (gate_open(waiting[i])) {
          const TaskId next = waiting[i];
          waiting[i] = waiting.back();
          waiting.pop_back();
          ready[static_cast<std::size_t>(
                    tasks_[static_cast<std::size_t>(next)].resource)]
              .push_back(next);
          ++gate_counter[static_cast<std::size_t>(group)];
          released = true;
          break;  // ranks are unique; re-scan for the new counter value
        }
      }
    }
  };

  SimResult result;
  result.start.assign(tasks_.size(), 0.0);
  result.end.assign(tasks_.size(), 0.0);
  result.start_order.reserve(tasks_.size());

  for (TaskId t = 0; t < n; ++t) {
    if (missing_preds[static_cast<std::size_t>(t)] == 0) deps_done_enqueue(t);
  }

  // Completion events: (time, task). seq breaks time ties deterministically.
  using Completion = std::pair<double, TaskId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  double now = 0.0;

  // Selection rule: uniformly random among {ready tasks with the minimum
  // priority number} ∪ {ready tasks with no priority}. With probability
  // out_of_order_probability the pick ignores priorities entirely,
  // modeling gRPC processing transfers out of hand-off order (§5.1
  // measures 0.4-0.5% of transfers affected).
  auto select_task = [&](std::vector<TaskId>& queue) {
    std::vector<std::size_t> candidates;
    if (options.out_of_order_probability > 0.0 &&
        rng.Chance(options.out_of_order_probability)) {
      candidates.resize(queue.size());
      for (std::size_t i = 0; i < queue.size(); ++i) candidates[i] = i;
    } else {
      int min_priority = kNoPriority;
      for (TaskId t : queue) {
        min_priority = std::min(
            min_priority, tasks_[static_cast<std::size_t>(t)].priority);
      }
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const int p = tasks_[static_cast<std::size_t>(queue[i])].priority;
        if (p == min_priority || p == kNoPriority) candidates.push_back(i);
      }
    }
    const std::size_t pick = candidates[rng.Index(candidates.size())];
    const TaskId chosen = queue[pick];
    queue[pick] = queue.back();
    queue.pop_back();
    return chosen;
  };

  // Starting gated tasks opens downstream gates, possibly releasing tasks
  // for other idle resources, so iterate to a fixpoint.
  auto start_eligible = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int r = 0; r < num_resources_; ++r) {
        auto& queue = ready[static_cast<std::size_t>(r)];
        while (!busy[static_cast<std::size_t>(r)] && !queue.empty()) {
          const TaskId t = select_task(queue);
          busy[static_cast<std::size_t>(r)] = true;
          result.start[static_cast<std::size_t>(t)] = now;
          result.start_order.push_back(t);
          completions.emplace(now + duration[static_cast<std::size_t>(t)], t);
          progress = true;
        }
      }
    }
  };

  start_eligible();
  while (!completions.empty()) {
    const auto [time, t] = completions.top();
    completions.pop();
    now = time;
    result.end[static_cast<std::size_t>(t)] = now;
    result.makespan = std::max(result.makespan, now);
    busy[static_cast<std::size_t>(
        tasks_[static_cast<std::size_t>(t)].resource)] = false;
    for (TaskId s : succs_[static_cast<std::size_t>(t)]) {
      if (--missing_preds[static_cast<std::size_t>(s)] == 0) {
        deps_done_enqueue(s);
      }
    }
    start_eligible();
  }
  return result;
}

}  // namespace tictac::sim
