#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

#include "sim/flow.h"

namespace tictac::sim {

TaskGraphSim::TaskGraphSim(std::vector<Task> tasks, int num_resources)
    : tasks_(std::move(tasks)), num_resources_(num_resources) {
  succs_.resize(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (TaskId p : tasks_[t].preds) {
      succs_[static_cast<std::size_t>(p)].push_back(static_cast<TaskId>(t));
    }
    num_gate_groups_ = std::max(num_gate_groups_, tasks_[t].gate_group + 1);
  }

  // Rank-compress finite priorities *per resource* so ready-bucket
  // storage is bounded by the task count: a resource's min-pick only
  // compares priorities of tasks on that same resource, so ranks need
  // only be consistent within a resource, and each resource gets exactly
  // as many bucket rows as it has distinct priorities.
  std::vector<std::vector<int>> distinct(
      static_cast<std::size_t>(num_resources_));
  for (const Task& task : tasks_) {
    if (task.priority != kNoPriority &&
        task.resource >= 0 && task.resource < num_resources_) {
      distinct[static_cast<std::size_t>(task.resource)].push_back(
          task.priority);
    }
  }
  bucket_offset_.resize(static_cast<std::size_t>(num_resources_));
  bucket_count_ = 0;
  for (int r = 0; r < num_resources_; ++r) {
    auto& d = distinct[static_cast<std::size_t>(r)];
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
    bucket_offset_[static_cast<std::size_t>(r)] = bucket_count_;
    bucket_count_ += d.size();
  }
  priority_rank_.assign(tasks_.size(), kNoRank);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const Task& task = tasks_[t];
    if (task.priority == kNoPriority ||
        task.resource < 0 || task.resource >= num_resources_) {
      continue;
    }
    const auto& d = distinct[static_cast<std::size_t>(task.resource)];
    priority_rank_[t] = static_cast<int>(
        std::lower_bound(d.begin(), d.end(), task.priority) - d.begin());
  }

  // Per-group gate slot layout, sized by the group's *task count*: ranks
  // must be dense 0..k-1 for validated graphs (k = group size), and a
  // rank >= the group's task count can never be released anyway — the
  // counter advances once per activated task — so such tasks (invalid
  // input Validate() would reject) are dropped at enqueue time instead
  // of getting a slot. This also bounds slot memory by the task count
  // regardless of what rank values unvalidated inputs carry.
  gate_group_size_.assign(static_cast<std::size_t>(num_gate_groups_), 0);
  for (const Task& task : tasks_) {
    if (task.gate_group >= 0) {
      ++gate_group_size_[static_cast<std::size_t>(task.gate_group)];
    }
  }
  gate_offset_.resize(static_cast<std::size_t>(num_gate_groups_));
  gate_slot_count_ = 0;
  for (int g = 0; g < num_gate_groups_; ++g) {
    gate_offset_[static_cast<std::size_t>(g)] = gate_slot_count_;
    gate_slot_count_ +=
        static_cast<std::size_t>(gate_group_size_[static_cast<std::size_t>(g)]);
  }
}

void TaskGraphSim::Validate() const {
  const auto n = static_cast<TaskId>(tasks_.size());
  std::vector<std::vector<int>> gate_ranks(
      static_cast<std::size_t>(num_gate_groups_));
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (task.resource < 0 || task.resource >= num_resources_) {
      throw std::invalid_argument("task resource out of range");
    }
    if (task.duration < 0.0) {
      throw std::invalid_argument("negative task duration");
    }
    for (TaskId p : task.preds) {
      if (p < 0 || p >= n || p == t) {
        throw std::invalid_argument("task predecessor out of range");
      }
    }
    if ((task.gate_group >= 0) != (task.gate_rank >= 0)) {
      throw std::invalid_argument("gate group/rank must be set together");
    }
    if (task.gate_group >= 0) {
      gate_ranks[static_cast<std::size_t>(task.gate_group)].push_back(
          task.gate_rank);
    }
  }
  for (auto& ranks : gate_ranks) {
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] != static_cast<int>(i)) {
        throw std::invalid_argument("gate ranks must be dense from 0");
      }
    }
  }
  // Acyclicity via Kahn.
  std::vector<int> indegree(tasks_.size(), 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    indegree[t] = static_cast<int>(tasks_[t].preds.size());
  }
  std::queue<TaskId> q;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) q.push(static_cast<TaskId>(t));
  }
  std::size_t seen = 0;
  while (!q.empty()) {
    const TaskId t = q.front();
    q.pop();
    ++seen;
    for (TaskId s : succs_[static_cast<std::size_t>(t)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) q.push(s);
    }
  }
  if (seen != tasks_.size()) {
    throw std::invalid_argument("task graph has a cycle");
  }
}

namespace {

// Completion event. Time ties are broken by the smaller TaskId — made
// explicit here so completion order (and therefore successor release
// order) is deterministic. `epoch` invalidates projections for
// varying-rate flows: every max-min recompute that changes a flow's rate
// bumps the flow's epoch and pushes a fresh projection, so any earlier
// entry for that flow is stale and skipped on pop. Non-flow tasks always
// carry epoch 0 and are never stale.
struct CompletionEvent {
  double time;
  TaskId task;
  int epoch = 0;
  bool operator>(const CompletionEvent& other) const {
    if (time != other.time) return time > other.time;
    return task > other.task;
  }
};

// Per-resource ready set: priority-rank buckets for the Section-3.1 pick
// plus a flat list for the out-of-order uniform pick. Each container
// uses swap-removal with per-task position tracking, so insert and
// remove are O(1) and steady-state operation allocates nothing.
struct ReadySets {
  ReadySets(int num_resources, const std::vector<std::size_t>& bucket_offset,
            std::size_t bucket_count, std::size_t num_tasks)
      : buckets(bucket_count),
        nopri(static_cast<std::size_t>(num_resources)),
        flat(static_cast<std::size_t>(num_resources)),
        active(static_cast<std::size_t>(num_resources)),
        bucket_offset(&bucket_offset),
        class_pos(num_tasks),
        flat_pos(num_tasks) {}

  std::vector<TaskId>& bucket(int r, int rank) {
    return buckets[(*bucket_offset)[static_cast<std::size_t>(r)] +
                   static_cast<std::size_t>(rank)];
  }

  void Push(int r, int rank, TaskId t) {
    auto& f = flat[static_cast<std::size_t>(r)];
    flat_pos[static_cast<std::size_t>(t)] = f.size();
    f.push_back(t);
    auto& cls =
        rank == kNoRank ? nopri[static_cast<std::size_t>(r)]
                                     : bucket(r, rank);
    if (rank != kNoRank && cls.empty()) {
      active[static_cast<std::size_t>(r)].push(rank);
    }
    class_pos[static_cast<std::size_t>(t)] = cls.size();
    cls.push_back(t);
  }

  // Lowest rank with a non-empty bucket, or kNoRank. Lazily drains heap
  // entries whose bucket has since emptied.
  int MinRank(int r) {
    auto& heap = active[static_cast<std::size_t>(r)];
    while (!heap.empty()) {
      const int rank = heap.top();
      if (!bucket(r, rank).empty()) return rank;
      heap.pop();
    }
    return kNoRank;
  }

  void Remove(int r, int rank, TaskId t) {
    SwapRemove(rank == kNoRank ? nopri[static_cast<std::size_t>(r)]
                                            : bucket(r, rank),
               class_pos, t);
    SwapRemove(flat[static_cast<std::size_t>(r)], flat_pos, t);
  }

  static constexpr int kNoRank = -1;

  std::vector<std::vector<TaskId>> buckets;  // [bucket_offset[r] + rank]
  std::vector<std::vector<TaskId>> nopri;    // [r]
  std::vector<std::vector<TaskId>> flat;     // [r], all ready tasks
  // Min-heap of possibly-active ranks per resource (lazy deletion).
  std::vector<std::priority_queue<int, std::vector<int>, std::greater<int>>>
      active;
  const std::vector<std::size_t>* bucket_offset;
  std::vector<std::size_t> class_pos;  // task -> index in its bucket/nopri
  std::vector<std::size_t> flat_pos;   // task -> index in flat[r]

 private:
  static void SwapRemove(std::vector<TaskId>& v,
                         std::vector<std::size_t>& pos, TaskId t) {
    const std::size_t i = pos[static_cast<std::size_t>(t)];
    assert(i < v.size() && v[i] == t);
    v[i] = v.back();
    pos[static_cast<std::size_t>(v[i])] = i;
    v.pop_back();
  }
};

}  // namespace

SimResult TaskGraphSim::Run(const SimOptions& options,
                            std::uint64_t seed) const {
  util::Rng rng(seed);
  const auto n = static_cast<TaskId>(tasks_.size());

  // Per-task state.
  std::vector<int> missing_preds(tasks_.size());
  std::vector<double> duration(tasks_.size());
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    missing_preds[static_cast<std::size_t>(t)] =
        static_cast<int>(task.preds.size());
    duration[static_cast<std::size_t>(t)] =
        options.jitter_sigma > 0.0
            ? task.duration * rng.Lognormal(1.0, options.jitter_sigma)
            : task.duration;
  }

  // Fault-injection state (SimOptions::faults). Sized only when a
  // timeline is present; with none, every fault branch below is skipped
  // and the run is bit-identical to the unperturbed engine.
  const bool has_faults = options.faults != nullptr && !options.faults->empty();
  std::vector<double> speed;     // per-resource rate multiplier
  std::vector<char> res_down;    // speed <= 0: start nothing new
  std::size_t next_fault = 0;
  if (has_faults) {
    speed.assign(static_cast<std::size_t>(num_resources_), 1.0);
    res_down.assign(static_cast<std::size_t>(num_resources_), 0);
  }
  // Applies every timeline event with time <= t (events are sorted).
  // Speed changes affect tasks that start afterwards; in-flight tasks
  // keep the rate they started with.
  auto apply_faults_through = [&](double t) {
    while (next_fault < options.faults->size() &&
           (*options.faults)[next_fault].time <= t) {
      const ResourceFault& f = (*options.faults)[next_fault++];
      if (f.resource >= 0 && f.resource < num_resources_) {
        const auto r = static_cast<std::size_t>(f.resource);
        speed[r] = f.speed > 0.0 ? f.speed : 0.0;
        res_down[r] = f.speed <= 0.0;
      }
    }
  };

  // Flow-fairness state (SimOptions::flow_fairness + network, DESIGN.md
  // §11). Sized only when enabled and the network maps at least one
  // resource to a shared link; otherwise every flow branch below is
  // skipped and the run is bit-identical to the static-split engine
  // (pinned in tests/flow_test.cc).
  const FlowNetwork* net = options.network;
  const bool has_flows =
      options.flow_fairness && net != nullptr && net->HasFlows();
  std::vector<double> flow_remaining;  // nominal seconds of demand left
  std::vector<double> flow_rate;       // progress per second of sim time
  std::vector<double> flow_last;       // last time `remaining` was advanced
  std::vector<double> flow_alloc;      // bytes/s from the last water-fill
  std::vector<int> flow_epoch;         // bumped on every rate change
  std::vector<char> flow_frozen;       // water-fill scratch
  std::vector<TaskId> active_flows;    // in-flight flow tasks
  std::vector<std::size_t> active_pos;  // task -> index in active_flows
  std::vector<int> link_members;        // water-fill scratch, per link
  std::vector<double> link_residual;    // water-fill scratch, per link
  std::vector<int> touched_links;
  if (has_flows) {
    net->Validate(num_resources_);
    flow_remaining.assign(tasks_.size(), 0.0);
    flow_rate.assign(tasks_.size(), 0.0);
    flow_last.assign(tasks_.size(), 0.0);
    flow_alloc.assign(tasks_.size(), 0.0);
    flow_epoch.assign(tasks_.size(), 0);
    flow_frozen.assign(tasks_.size(), 0);
    active_pos.assign(tasks_.size(), 0);
    link_members.assign(net->links.size(), 0);
    link_residual.assign(net->links.size(), 0.0);
  }
  // True when tasks on resource r share links (and so progress at the
  // water-filled rate instead of their fixed nominal duration).
  auto is_flow_resource = [&](int r) {
    return static_cast<std::size_t>(r) < net->resource_links.size() &&
           !net->resource_links[static_cast<std::size_t>(r)].empty();
  };

  std::vector<int> gate_counter(static_cast<std::size_t>(num_gate_groups_), 0);
  // Tasks whose predecessors are done but whose gate is still closed,
  // slotted by (group, rank) so a cascade release is a direct lookup.
  std::vector<TaskId> gate_slot(gate_slot_count_, -1);

  auto gate_open = [&](TaskId t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (!options.enforce_gates || task.gate_group < 0) return true;
    return gate_counter[static_cast<std::size_t>(task.gate_group)] ==
           task.gate_rank;
  };

  ReadySets ready(num_resources_, bucket_offset_, bucket_count_,
                  tasks_.size());
  std::vector<bool> busy(static_cast<std::size_t>(num_resources_), false);

  auto push_ready = [&](TaskId t) {
    ready.Push(tasks_[static_cast<std::size_t>(t)].resource,
               priority_rank_[static_cast<std::size_t>(t)], t);
  };

  // Hand-off (§5.1): a gated task is *enqueued* on its channel once its
  // dependencies are met and the group counter reaches its rank; the
  // counter advances at enqueue time (the transfer is "handed to gRPC"),
  // not at wire time, so channels drain their queues independently and
  // never idle waiting for another channel's wire transfer.
  auto deps_done_enqueue = [&](TaskId t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (!gate_open(t)) {
      // A negative or >= group-size rank (invalid input Validate() would
      // reject) has no slot; such a gate can never open — the counter
      // advances at most once per task in the group — so dropping it
      // here reproduces the old behavior: the task simply never starts.
      if (task.gate_rank >= 0 &&
          task.gate_rank <
              gate_group_size_[static_cast<std::size_t>(task.gate_group)]) {
        gate_slot[gate_offset_[static_cast<std::size_t>(task.gate_group)] +
                  static_cast<std::size_t>(task.gate_rank)] = t;
      }
      return;
    }
    push_ready(t);
    if (!options.enforce_gates || task.gate_group < 0) return;
    // Advance the counter and cascade-release successor ranks whose
    // dependencies are already met: one slot lookup per released task.
    const auto group = static_cast<std::size_t>(task.gate_group);
    const std::size_t base = gate_offset_[group];
    int& counter = gate_counter[group];
    ++counter;
    while (counter < gate_group_size_[group]) {
      const TaskId next = gate_slot[base + static_cast<std::size_t>(counter)];
      if (next < 0) break;
      gate_slot[base + static_cast<std::size_t>(counter)] = -1;
      push_ready(next);
      ++counter;
    }
  };

  SimResult result;
  result.start.assign(tasks_.size(), 0.0);
  result.end.assign(tasks_.size(), 0.0);
  result.start_order.reserve(tasks_.size());

  for (TaskId t = 0; t < n; ++t) {
    if (missing_preds[static_cast<std::size_t>(t)] == 0) deps_done_enqueue(t);
  }

  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<CompletionEvent>>
      completions;
  double now = 0.0;

  // Progressive-filling max-min allocation over the active flows,
  // invoked on every flow start and finish. Advances each active flow's
  // remaining demand to `t_now` at its old rate first (rates are
  // piecewise constant between recomputes), then water-fills: repeatedly
  // find the tightest link (minimum residual capacity per unfrozen
  // member), freeze every flow crossing a tightest link at that fair
  // share, and subtract the frozen bandwidth. Flows whose rate changed
  // get a new epoch and a fresh completion projection; unchanged flows
  // keep their queued event. All iteration is in deterministic
  // (active-list / link-id) order and uses exact float comparisons, so
  // results are reproducible across runs and shards.
  auto recompute_rates = [&](double t_now) {
    for (TaskId f : active_flows) {
      const auto fi = static_cast<std::size_t>(f);
      flow_remaining[fi] -= (t_now - flow_last[fi]) * flow_rate[fi];
      if (flow_remaining[fi] < 0.0) flow_remaining[fi] = 0.0;
      flow_last[fi] = t_now;
    }
    touched_links.clear();
    for (TaskId f : active_flows) {
      flow_frozen[static_cast<std::size_t>(f)] = 0;
      const int r = tasks_[static_cast<std::size_t>(f)].resource;
      for (int l : net->resource_links[static_cast<std::size_t>(r)]) {
        const auto li = static_cast<std::size_t>(l);
        if (link_members[li]++ == 0) {
          touched_links.push_back(l);
          link_residual[li] = net->links[li].capacity_bps;
        }
      }
    }
    std::size_t unfrozen = active_flows.size();
    while (unfrozen > 0) {
      double level = std::numeric_limits<double>::infinity();
      for (int l : touched_links) {
        const auto li = static_cast<std::size_t>(l);
        if (link_members[li] > 0) {
          level = std::min(level, link_residual[li] / link_members[li]);
        }
      }
      bool froze = false;
      for (TaskId f : active_flows) {
        const auto fi = static_cast<std::size_t>(f);
        if (flow_frozen[fi]) continue;
        const int r = tasks_[fi].resource;
        const auto& links = net->resource_links[static_cast<std::size_t>(r)];
        bool at_bottleneck = false;
        for (int l : links) {
          const auto li = static_cast<std::size_t>(l);
          // Exact comparison: `level` is the min over these very
          // divisions, so the argmin links match it bit for bit.
          if (link_members[li] > 0 &&
              link_residual[li] / link_members[li] == level) {
            at_bottleneck = true;
            break;
          }
        }
        if (!at_bottleneck) continue;
        flow_frozen[fi] = 1;
        flow_alloc[fi] = level;
        froze = true;
        --unfrozen;
        for (int l : links) {
          const auto li = static_cast<std::size_t>(l);
          link_residual[li] -= level;
          if (link_residual[li] < 0.0) link_residual[li] = 0.0;
          --link_members[li];
        }
      }
      // Unreachable for valid networks (the argmin link always has a
      // member to freeze); guards against float pathologies looping.
      if (!froze) break;
    }
    for (int l : touched_links) {
      link_members[static_cast<std::size_t>(l)] = 0;
      link_residual[static_cast<std::size_t>(l)] = 0.0;
    }
    for (TaskId f : active_flows) {
      const auto fi = static_cast<std::size_t>(f);
      const int r = tasks_[fi].resource;
      double rate =
          flow_alloc[fi] / net->resource_nominal_bps[static_cast<std::size_t>(r)];
      // Validate() guarantees positive capacities and nominal rates, so a
      // non-positive share can only come from accumulated float dust on a
      // degenerate topology; keep completion times finite regardless.
      if (!(rate > 0.0)) rate = std::numeric_limits<double>::epsilon();
      if (rate != flow_rate[fi]) {
        flow_rate[fi] = rate;
        ++flow_epoch[fi];
        completions.push({t_now + flow_remaining[fi] / rate, f, flow_epoch[fi]});
      }
    }
  };

  // Selection rule: uniformly random among {ready tasks with the minimum
  // priority number} ∪ {ready tasks with no priority}. With probability
  // out_of_order_probability the pick ignores priorities entirely,
  // modeling gRPC processing transfers out of hand-off order (§5.1
  // measures 0.4-0.5% of transfers affected).
  auto select_task = [&](int r) {
    TaskId chosen;
    if (options.out_of_order_probability > 0.0 &&
        rng.Chance(options.out_of_order_probability)) {
      const auto& flat = ready.flat[static_cast<std::size_t>(r)];
      chosen = flat[rng.Index(flat.size())];
    } else {
      const int min_rank = ready.MinRank(r);
      const auto& nopri = ready.nopri[static_cast<std::size_t>(r)];
      if (min_rank == ReadySets::kNoRank) {
        chosen = nopri[rng.Index(nopri.size())];
      } else {
        const auto& bucket = ready.bucket(r, min_rank);
        const std::size_t pick = rng.Index(bucket.size() + nopri.size());
        chosen = pick < bucket.size() ? bucket[pick]
                                      : nopri[pick - bucket.size()];
      }
    }
    ready.Remove(r, priority_rank_[static_cast<std::size_t>(chosen)], chosen);
    return chosen;
  };

  // Starting gated tasks opens downstream gates, possibly releasing tasks
  // for other idle resources, so iterate to a fixpoint.
  auto start_eligible = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int r = 0; r < num_resources_; ++r) {
        if (has_faults && res_down[static_cast<std::size_t>(r)]) continue;
        while (!busy[static_cast<std::size_t>(r)] &&
               !ready.flat[static_cast<std::size_t>(r)].empty()) {
          const TaskId t = select_task(r);
          busy[static_cast<std::size_t>(r)] = true;
          result.start[static_cast<std::size_t>(t)] = now;
          result.start_order.push_back(t);
          // A task runs at its resource's speed at start time; division
          // only happens on the fault path so the plain path stays bit
          // for bit what it always was.
          const double d =
              has_faults
                  ? duration[static_cast<std::size_t>(t)] /
                        speed[static_cast<std::size_t>(r)]
                  : duration[static_cast<std::size_t>(t)];
          if (has_flows && is_flow_resource(r)) {
            // A flow's fault/jitter-adjusted duration is its demand at
            // the nominal (static-split) rate; the water-fill converts
            // it to wall time. Joining reshapes every rate, so recompute
            // immediately — the new flow's first projection comes from
            // its 0 -> fair-share rate change.
            const auto ti = static_cast<std::size_t>(t);
            flow_remaining[ti] = d;
            flow_rate[ti] = 0.0;
            flow_last[ti] = now;
            active_pos[ti] = active_flows.size();
            active_flows.push_back(t);
            recompute_rates(now);
          } else {
            completions.push({now + d, t});
          }
          progress = true;
        }
      }
    }
  };

  // Timeline events at t <= 0 (perturbations already in effect when the
  // run begins) apply before the first task starts.
  if (has_faults) apply_faults_through(0.0);
  start_eligible();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (true) {
    const double completion_at =
        completions.empty() ? kInf : completions.top().time;
    const double fault_at =
        has_faults && next_fault < options.faults->size()
            ? (*options.faults)[next_fault].time
            : kInf;
    if (completion_at == kInf && fault_at == kInf) break;
    if (fault_at < completion_at) {
      // A perturbation takes effect strictly before anything completes:
      // resources coming back up may start waiting tasks at this instant.
      now = std::max(now, fault_at);
      apply_faults_through(fault_at);
      start_eligible();
      continue;
    }
    const auto [time, t, epoch] = completions.top();
    completions.pop();
    if (has_flows && epoch != 0 &&
        epoch != flow_epoch[static_cast<std::size_t>(t)]) {
      // Superseded projection for a flow whose rate changed (or that
      // already finished) since this event was queued.
      continue;
    }
    now = time;
    result.end[static_cast<std::size_t>(t)] = now;
    result.makespan = std::max(result.makespan, now);
    busy[static_cast<std::size_t>(
        tasks_[static_cast<std::size_t>(t)].resource)] = false;
    if (has_flows && epoch != 0) {
      // A flow finished: swap-remove it from the active list, invalidate
      // any projections still queued for it, and hand its bandwidth to
      // the remaining flows.
      const auto ti = static_cast<std::size_t>(t);
      const std::size_t i = active_pos[ti];
      active_flows[i] = active_flows.back();
      active_pos[static_cast<std::size_t>(active_flows[i])] = i;
      active_flows.pop_back();
      ++flow_epoch[ti];
      recompute_rates(now);
    }
    for (TaskId s : succs_[static_cast<std::size_t>(t)]) {
      if (--missing_preds[static_cast<std::size_t>(s)] == 0) {
        deps_done_enqueue(s);
      }
    }
    start_eligible();
  }
  return result;
}

}  // namespace tictac::sim
