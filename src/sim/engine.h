// Discrete-event multi-resource simulator.
//
// Executes a task graph under the paper's runtime semantics:
//   * each resource serves one task at a time;
//   * a task becomes *ready* when all predecessors have completed and its
//     enforcement gate (if any) is open;
//   * an idle resource picks uniformly at random among the ready tasks
//     holding the lowest priority number plus those without a priority —
//     exactly the ready-to-execute queue rule of Section 3.1;
//   * starting a gated task advances its group's hand-off counter.
//
// The engine is deterministic given (tasks, options, seed).
//
// Fault injection (SimOptions::faults): an optional sorted timeline of
// per-resource speed changes — compute slowdown, bandwidth scaling, or
// down intervals (speed <= 0 starts nothing new until a later event
// raises it). A task samples its resource's speed when it starts; tasks
// in flight finish at the rate they started with. The fault path draws
// no randomness and allocates nothing per event, and an absent/empty
// timeline reproduces the unperturbed engine bit for bit (pinned in
// tests/sim_test.cc and tests/fault_test.cc).
//
// Flow fairness (SimOptions::flow_fairness + network): transfers on
// resources the FlowNetwork maps to shared links progress at
// progressive-filling max-min rates instead of their static per-channel
// slice, recomputed incrementally on every flow start and finish with
// epoch-invalidated completion projections (DESIGN.md §11). The flag off
// — or a network without flows — reproduces the static-split engine bit
// for bit (pinned in tests/flow_test.cc). Like the fault path, the flow
// path draws no extra randomness, so schedules stay comparable across
// the two contention models under one seed.
//
// Hot-path data structures (sized once per Run, no per-event allocation):
//   * ready tasks live in per-resource priority buckets (priorities are
//     rank-compressed per resource in the constructor, so total bucket
//     count is bounded by the task count) plus a flat per-resource list
//     for the out-of-order uniform pick — a pick is O(1) instead of an
//     O(queue) min-scan into a freshly allocated candidate vector;
//   * gate-waiting tasks are bucketed by rank, so a cascade release is
//     O(1) per released task instead of a rescan of the waiting list.
#pragma once

#include <vector>

#include "sim/task.h"
#include "util/rng.h"

namespace tictac::sim {

class TaskGraphSim {
 public:
  // `num_resources` must cover every task's resource index.
  TaskGraphSim(std::vector<Task> tasks, int num_resources);

  // Validates the graph once: in-range resources/preds, acyclicity,
  // dense gate ranks per group. Throws std::invalid_argument on failure.
  void Validate() const;

  SimResult Run(const SimOptions& options, std::uint64_t seed) const;

  // Sharded execution (sim/parallel.cc, DESIGN.md §11): partitions the
  // graph into independent components — tasks connected through a
  // dependency edge, a shared resource, a shared gate group, or a shared
  // flow link — and advances each component's event loop on its own
  // thread with a per-component random stream. The result is identical
  // at every thread count (component runs depend only on the component
  // and the seed; merges are ordered), and with a single component this
  // delegates to Run() and is bit-identical to it. num_threads <= 0
  // means hardware concurrency.
  SimResult RunParallel(const SimOptions& options, std::uint64_t seed,
                        int num_threads) const;

  // Component id per task under `options` (flow links can merge
  // components), ids dense and ordered by each component's smallest task
  // id. Exposed for tests and for shard-count reporting.
  std::vector<int> ComponentOf(const SimOptions& options) const;

  const std::vector<Task>& tasks() const { return tasks_; }
  int num_resources() const { return num_resources_; }

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succs_;
  int num_resources_;
  int num_gate_groups_ = 0;

  // Dense rank of each task's priority among the distinct finite
  // priorities present *on its resource* (kNoRank for kNoPriority).
  // Rank order == priority order within a resource — the only scope a
  // min-pick ever compares across — so selection semantics are unchanged
  // while total bucket storage stays bounded by the task count.
  // Resource r's bucket rows live at [bucket_offset_[r], ...).
  static constexpr int kNoRank = -1;
  std::vector<int> priority_rank_;
  std::vector<std::size_t> bucket_offset_;
  std::size_t bucket_count_ = 0;

  // Flattened per-group gate-rank slots: group g's slots live at
  // [gate_offset_[g], gate_offset_[g] + gate_group_size_[g]).
  std::vector<int> gate_group_size_;  // gated-task count per group
  std::vector<std::size_t> gate_offset_;
  std::size_t gate_slot_count_ = 0;
};

}  // namespace tictac::sim
