// Discrete-event multi-resource simulator.
//
// Executes a task graph under the paper's runtime semantics:
//   * each resource serves one task at a time;
//   * a task becomes *ready* when all predecessors have completed and its
//     enforcement gate (if any) is open;
//   * an idle resource picks uniformly at random among the ready tasks
//     holding the lowest priority number plus those without a priority —
//     exactly the ready-to-execute queue rule of Section 3.1;
//   * starting a gated task advances its group's hand-off counter.
//
// The engine is deterministic given (tasks, options, seed).
#pragma once

#include <vector>

#include "sim/task.h"
#include "util/rng.h"

namespace tictac::sim {

class TaskGraphSim {
 public:
  // `num_resources` must cover every task's resource index.
  TaskGraphSim(std::vector<Task> tasks, int num_resources);

  // Validates the graph once: in-range resources/preds, acyclicity,
  // dense gate ranks per group. Throws std::invalid_argument on failure.
  void Validate() const;

  SimResult Run(const SimOptions& options, std::uint64_t seed) const;

  const std::vector<Task>& tasks() const { return tasks_; }
  int num_resources() const { return num_resources_; }

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succs_;
  int num_resources_;
  int num_gate_groups_ = 0;
};

}  // namespace tictac::sim
