// Sharded execution of independent task-graph components (DESIGN.md §11).
//
// A merged multi-fabric lowering is many disjoint simulations glued into
// one task graph: fabrics share no tasks, resources, gates, or flow
// links, so their event loops never interact and can advance on separate
// threads. This file partitions the graph into such components (union
// over dependency edges, shared resources, shared gate groups, and — when
// flow fairness is on — shared flow links), runs each component's legacy
// serial loop with its own split random stream, and merges the results
// deterministically.
//
// Determinism discipline:
//   * each component's run depends only on (component tasks, options,
//     StreamSeed(seed, component)) — never on which thread executed it or
//     when, so any thread count yields bit-identical results;
//   * components are numbered by their smallest global task id, so the
//     stream assignment is a pure function of the graph;
//   * the merged start_order interleaves component orders by
//     (start time, global task id) — a total order, since ids are unique.
// A single-component graph (every real single-fabric lowering: all tasks
// connect through the PS CPUs) delegates to Run() outright and is
// therefore bit-identical to the serial engine.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/flow.h"
#include "util/rng.h"

namespace tictac::sim {

namespace {

// Union-find with path halving + union by size.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }

  int Find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void Unite(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[static_cast<std::size_t>(a)] <
        size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] +=
        size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

// One component's self-contained simulation: tasks with local ids (in
// increasing global-id order), densely remapped resources/gates/links,
// and the slice of the fault timeline and flow network it owns.
struct Shard {
  std::vector<Task> tasks;
  std::vector<TaskId> global;  // local task id -> global task id
  int num_resources = 0;
  int num_gates = 0;
  std::vector<ResourceFault> faults;
  FlowNetwork net;
  SimOptions options;
  SimResult result;
};

}  // namespace

std::vector<int> TaskGraphSim::ComponentOf(const SimOptions& options) const {
  const auto n = static_cast<int>(tasks_.size());
  Dsu dsu(tasks_.size());
  std::vector<int> resource_rep(static_cast<std::size_t>(num_resources_), -1);
  std::vector<int> gate_rep(static_cast<std::size_t>(num_gate_groups_), -1);
  const FlowNetwork* net =
      options.flow_fairness ? options.network : nullptr;
  std::vector<int> link_rep;
  if (net != nullptr) link_rep.assign(net->links.size(), -1);
  auto unite_rep = [&](std::vector<int>& rep, std::size_t key, int t) {
    if (rep[key] < 0) {
      rep[key] = t;
    } else {
      dsu.Unite(rep[key], t);
    }
  };
  for (int t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    for (TaskId p : task.preds) dsu.Unite(t, p);
    if (task.resource >= 0 && task.resource < num_resources_) {
      unite_rep(resource_rep, static_cast<std::size_t>(task.resource), t);
      if (net != nullptr &&
          static_cast<std::size_t>(task.resource) <
              net->resource_links.size()) {
        for (int l :
             net->resource_links[static_cast<std::size_t>(task.resource)]) {
          unite_rep(link_rep, static_cast<std::size_t>(l), t);
        }
      }
    }
    if (task.gate_group >= 0 && task.gate_group < num_gate_groups_) {
      unite_rep(gate_rep, static_cast<std::size_t>(task.gate_group), t);
    }
  }
  // Dense component ids in first-task order: the component holding task 0
  // is component 0, and so on.
  std::vector<int> component(tasks_.size(), -1);
  std::vector<int> root_id(tasks_.size(), -1);
  int next = 0;
  for (int t = 0; t < n; ++t) {
    const int root = dsu.Find(t);
    if (root_id[static_cast<std::size_t>(root)] < 0) {
      root_id[static_cast<std::size_t>(root)] = next++;
    }
    component[static_cast<std::size_t>(t)] =
        root_id[static_cast<std::size_t>(root)];
  }
  return component;
}

SimResult TaskGraphSim::RunParallel(const SimOptions& options,
                                    std::uint64_t seed,
                                    int num_threads) const {
  const std::vector<int> component = ComponentOf(options);
  const auto n = static_cast<int>(tasks_.size());
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  if (num_components <= 1) return Run(options, seed);

  const bool use_flows = options.flow_fairness && options.network != nullptr;
  std::vector<Shard> shards(static_cast<std::size_t>(num_components));

  // Local task ids, in increasing global-id order within each shard (so
  // predecessor ids — always smaller in-shard or not, either way already
  // assigned — remap with one pass).
  std::vector<TaskId> local_id(tasks_.size(), 0);
  for (int t = 0; t < n; ++t) {
    Shard& s = shards[static_cast<std::size_t>(component[
        static_cast<std::size_t>(t)])];
    local_id[static_cast<std::size_t>(t)] =
        static_cast<TaskId>(s.global.size());
    s.global.push_back(t);
  }
  // Resources, gate groups, and flow links each belong to exactly one
  // component (they union the tasks touching them); remap densely.
  std::vector<int> res_local(static_cast<std::size_t>(num_resources_), -1);
  std::vector<int> gate_local(static_cast<std::size_t>(num_gate_groups_), -1);
  std::vector<int> res_comp(static_cast<std::size_t>(num_resources_), -1);
  for (int t = 0; t < n; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    const int c = component[static_cast<std::size_t>(t)];
    Shard& s = shards[static_cast<std::size_t>(c)];
    const auto r = static_cast<std::size_t>(task.resource);
    if (res_local[r] < 0) {
      res_local[r] = s.num_resources++;
      res_comp[r] = c;
    }
    if (task.gate_group >= 0 &&
        gate_local[static_cast<std::size_t>(task.gate_group)] < 0) {
      gate_local[static_cast<std::size_t>(task.gate_group)] = s.num_gates++;
    }
    Task copy = task;
    copy.resource = res_local[r];
    if (copy.gate_group >= 0) {
      copy.gate_group = gate_local[static_cast<std::size_t>(copy.gate_group)];
    }
    for (TaskId& p : copy.preds) p = local_id[static_cast<std::size_t>(p)];
    s.tasks.push_back(std::move(copy));
  }
  // Fault timelines filter per shard, order (and therefore sortedness)
  // preserved. Faults on resources no task uses can never affect a run —
  // dropping them is exact.
  if (options.faults != nullptr) {
    for (const ResourceFault& f : *options.faults) {
      if (f.resource < 0 || f.resource >= num_resources_) continue;
      const auto r = static_cast<std::size_t>(f.resource);
      if (res_comp[r] < 0) continue;
      ResourceFault copy = f;
      copy.resource = res_local[r];
      shards[static_cast<std::size_t>(res_comp[r])].faults.push_back(copy);
    }
  }
  // Flow networks slice the same way; link ids remap densely per shard in
  // first-use order (resource order, then link order — deterministic).
  if (use_flows) {
    const FlowNetwork& net = *options.network;
    std::vector<int> link_local(net.links.size(), -1);
    for (int r = 0; r < num_resources_; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (res_comp[ri] < 0 || ri >= net.resource_links.size() ||
          net.resource_links[ri].empty()) {
        continue;
      }
      Shard& s = shards[static_cast<std::size_t>(res_comp[ri])];
      s.net.resource_links.resize(
          static_cast<std::size_t>(s.num_resources));
      s.net.resource_nominal_bps.resize(
          static_cast<std::size_t>(s.num_resources), 0.0);
      auto& local_links =
          s.net.resource_links[static_cast<std::size_t>(res_local[ri])];
      for (int l : net.resource_links[ri]) {
        const auto li = static_cast<std::size_t>(l);
        if (link_local[li] < 0) {
          link_local[li] = static_cast<int>(s.net.links.size());
          s.net.links.push_back(net.links[li]);
        }
        local_links.push_back(link_local[li]);
      }
      s.net.resource_nominal_bps[static_cast<std::size_t>(res_local[ri])] =
          net.resource_nominal_bps[ri];
    }
  }
  for (Shard& s : shards) {
    s.options = options;
    s.options.faults = s.faults.empty() ? nullptr : &s.faults;
    s.options.network = use_flows && s.net.HasFlows() ? &s.net : nullptr;
    if (s.options.network == nullptr) s.options.flow_fairness = false;
  }

  // Run shards over a work-stealing counter. Every shard's outcome is a
  // pure function of (shard, seed, component index), so the thread count
  // and interleaving cannot change any result.
  std::atomic<int> next_shard{0};
  std::exception_ptr failure;
  std::atomic<bool> failed{false};
  auto worker = [&] {
    for (int c; (c = next_shard.fetch_add(1)) < num_components;) {
      try {
        Shard& s = shards[static_cast<std::size_t>(c)];
        TaskGraphSim sim(s.tasks, s.num_resources);
        s.result = sim.Run(s.options,
                           util::Rng::StreamSeed(
                               seed, static_cast<std::uint64_t>(c)));
      } catch (...) {
        if (!failed.exchange(true)) failure = std::current_exception();
      }
    }
  };
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min(threads, num_components));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i) pool.emplace_back(worker);
    worker();
    for (std::thread& th : pool) th.join();
  }
  if (failed.load()) std::rethrow_exception(failure);

  // Deterministic merge: per-task times scatter by global id; the global
  // start order interleaves the (already time-sorted) shard orders by
  // (start time, global task id).
  SimResult out;
  out.start.assign(tasks_.size(), 0.0);
  out.end.assign(tasks_.size(), 0.0);
  out.start_order.reserve(tasks_.size());
  for (const Shard& s : shards) {
    out.makespan = std::max(out.makespan, s.result.makespan);
    for (std::size_t i = 0; i < s.global.size(); ++i) {
      const auto g = static_cast<std::size_t>(s.global[i]);
      out.start[g] = s.result.start[i];
      out.end[g] = s.result.end[i];
    }
  }
  struct MergeHead {
    double time;
    TaskId global;
    int shard;
    std::size_t index;
    bool operator>(const MergeHead& other) const {
      if (time != other.time) return time > other.time;
      return global > other.global;
    }
  };
  std::priority_queue<MergeHead, std::vector<MergeHead>,
                      std::greater<MergeHead>>
      heads;
  auto head_of = [&](int c, std::size_t index) {
    const Shard& s = shards[static_cast<std::size_t>(c)];
    const TaskId local = s.result.start_order[index];
    const TaskId g = s.global[static_cast<std::size_t>(local)];
    heads.push({s.result.start[static_cast<std::size_t>(local)], g, c, index});
  };
  for (int c = 0; c < num_components; ++c) {
    if (!shards[static_cast<std::size_t>(c)].result.start_order.empty()) {
      head_of(c, 0);
    }
  }
  while (!heads.empty()) {
    const MergeHead head = heads.top();
    heads.pop();
    out.start_order.push_back(head.global);
    const Shard& s = shards[static_cast<std::size_t>(head.shard)];
    if (head.index + 1 < s.result.start_order.size()) {
      head_of(head.shard, head.index + 1);
    }
  }
  return out;
}

}  // namespace tictac::sim
