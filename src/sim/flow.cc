#include "sim/flow.h"

#include <cmath>
#include <stdexcept>

namespace tictac::sim {

bool FlowNetwork::HasFlows() const {
  for (const std::vector<int>& links : resource_links) {
    if (!links.empty()) return true;
  }
  return false;
}

void FlowNetwork::Validate(int num_resources) const {
  if (resource_links.size() > static_cast<std::size_t>(num_resources)) {
    throw std::invalid_argument(
        "FlowNetwork: resource_links covers " +
        std::to_string(resource_links.size()) +
        " resources but the simulation has only " +
        std::to_string(num_resources));
  }
  if (resource_nominal_bps.size() < resource_links.size()) {
    throw std::invalid_argument(
        "FlowNetwork: resource_nominal_bps (" +
        std::to_string(resource_nominal_bps.size()) +
        " entries) must cover every resource in resource_links (" +
        std::to_string(resource_links.size()) + ")");
  }
  for (std::size_t l = 0; l < links.size(); ++l) {
    const double c = links[l].capacity_bps;
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument(
          "FlowNetwork: link " + std::to_string(l) +
          " capacity must be positive and finite, got " + std::to_string(c));
    }
  }
  for (std::size_t r = 0; r < resource_links.size(); ++r) {
    if (resource_links[r].empty()) continue;
    for (const int l : resource_links[r]) {
      if (l < 0 || static_cast<std::size_t>(l) >= links.size()) {
        throw std::invalid_argument(
            "FlowNetwork: resource " + std::to_string(r) +
            " references link " + std::to_string(l) + " of " +
            std::to_string(links.size()));
      }
    }
    const double nominal = resource_nominal_bps[r];
    if (!(nominal > 0.0) || !std::isfinite(nominal)) {
      throw std::invalid_argument(
          "FlowNetwork: resource " + std::to_string(r) +
          " needs a positive finite nominal rate, got " +
          std::to_string(nominal));
    }
  }
}

}  // namespace tictac::sim
