// Flow-level network model for max-min fair bandwidth sharing
// (DESIGN.md §11).
//
// The static lowering gives every worker-PS pair-channel a fixed
// bandwidth/T slice of its NIC. That is exact when every channel is busy
// and pessimistic otherwise: a job pulling parameters while its
// neighbours compute is still billed as if all T channels contended.
// FlowNetwork describes the real capacity constraints — which shared
// links (PS NICs, worker NICs, oversubscribed fat-tree core links) each
// channel's transfers traverse and what each link can carry — so the
// engine can hand idle channels' bandwidth to the active transfers via
// progressive-filling max-min allocation (sim/engine.cc, gated behind
// SimOptions::flow_fairness).
//
// Rates are expressed against each channel's *nominal* rate — the static
// per-channel bandwidth its task durations were computed with — so a
// fully-loaded link reproduces the static split (every flow at rate 1.0)
// and an underloaded one speeds its flows up by exactly the idle share.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tictac::sim {

// One shared capacity constraint (a NIC direction or a fat-tree core
// link), in absolute bytes/second.
struct FlowLink {
  double capacity_bps = 0.0;
};

struct FlowNetwork {
  std::vector<FlowLink> links;

  // resource -> ids of the links its transfers traverse, in link-id
  // order. Empty = not a flow resource: tasks on it run at their nominal
  // duration exactly as without a network. Indexed by resource id; may be
  // shorter than the simulation's resource count (missing tail entries =
  // not flow resources).
  std::vector<std::vector<int>> resource_links;

  // resource -> the static per-channel rate (bytes/second) its task
  // durations were computed with. Must be > 0 for every resource with a
  // non-empty link list; ignored for the rest. A flow allocated b bytes/s
  // progresses at b / nominal of its nominal service rate.
  std::vector<double> resource_nominal_bps;

  // True when at least one resource has a link list.
  bool HasFlows() const;

  // Structural checks: link ids in range, capacities and nominal rates
  // positive and finite for flow resources, resource tables sized
  // consistently and within `num_resources`. Throws std::invalid_argument
  // naming the offending entry.
  void Validate(int num_resources) const;
};

}  // namespace tictac::sim
