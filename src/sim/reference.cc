#include "sim/reference.h"

#include <algorithm>
#include <limits>

namespace tictac::sim {

SimResult ReferenceRun(const std::vector<Task>& tasks, int num_resources) {
  const std::size_t n = tasks.size();
  SimResult result;
  result.start.assign(n, 0.0);
  result.end.assign(n, 0.0);

  std::vector<int> missing(n);
  for (std::size_t t = 0; t < n; ++t) {
    missing[t] = static_cast<int>(tasks[t].preds.size());
  }
  std::vector<bool> started(n, false);
  std::vector<bool> done(n, false);
  // Per-resource: id of the in-flight task, or -1.
  std::vector<int> running(static_cast<std::size_t>(num_resources), -1);

  double now = 0.0;
  std::size_t completed = 0;
  while (completed < n) {
    // Start everything startable at `now`, deterministically.
    bool progress = true;
    while (progress) {
      progress = false;
      for (int r = 0; r < num_resources; ++r) {
        if (running[static_cast<std::size_t>(r)] >= 0) continue;
        int best = -1;
        for (std::size_t t = 0; t < n; ++t) {
          if (started[t] || missing[t] > 0 || tasks[t].resource != r) {
            continue;
          }
          if (best < 0 ||
              tasks[t].priority < tasks[static_cast<std::size_t>(best)].priority) {
            best = static_cast<int>(t);
          }
        }
        if (best >= 0) {
          started[static_cast<std::size_t>(best)] = true;
          running[static_cast<std::size_t>(r)] = best;
          result.start[static_cast<std::size_t>(best)] = now;
          result.end[static_cast<std::size_t>(best)] =
              now + tasks[static_cast<std::size_t>(best)].duration;
          result.start_order.push_back(best);
          progress = true;
        }
      }
    }
    // Advance to the earliest in-flight completion.
    double next = std::numeric_limits<double>::infinity();
    for (int r = 0; r < num_resources; ++r) {
      const int t = running[static_cast<std::size_t>(r)];
      if (t >= 0) next = std::min(next, result.end[static_cast<std::size_t>(t)]);
    }
    now = next;
    for (int r = 0; r < num_resources; ++r) {
      const int t = running[static_cast<std::size_t>(r)];
      if (t >= 0 && result.end[static_cast<std::size_t>(t)] <= now) {
        running[static_cast<std::size_t>(r)] = -1;
        done[static_cast<std::size_t>(t)] = true;
        ++completed;
        result.makespan = std::max(result.makespan, now);
        for (std::size_t s = 0; s < n; ++s) {
          for (const TaskId p : tasks[s].preds) {
            if (p == t) --missing[s];
          }
        }
      }
    }
  }
  return result;
}

}  // namespace tictac::sim
