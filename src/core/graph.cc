#include "core/graph.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <sstream>

namespace tictac::core {

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute: return "compute";
    case OpKind::kRecv: return "recv";
    case OpKind::kSend: return "send";
    case OpKind::kAggregate: return "aggregate";
    case OpKind::kRead: return "read";
    case OpKind::kUpdate: return "update";
  }
  return "unknown";
}

OpId Graph::AddOp(Op op) {
  const OpId id = static_cast<OpId>(ops_.size());
  op.id = id;
  ops_.push_back(std::move(op));
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

OpId Graph::AddCompute(std::string name, double cost) {
  Op op;
  op.name = std::move(name);
  op.kind = OpKind::kCompute;
  op.cost = cost;
  return AddOp(std::move(op));
}

OpId Graph::AddRecv(std::string name, std::int64_t bytes, int param) {
  Op op;
  op.name = std::move(name);
  op.kind = OpKind::kRecv;
  op.bytes = bytes;
  op.param = param;
  return AddOp(std::move(op));
}

OpId Graph::AddSend(std::string name, std::int64_t bytes, int param) {
  Op op;
  op.name = std::move(name);
  op.kind = OpKind::kSend;
  op.bytes = bytes;
  op.param = param;
  return AddOp(std::move(op));
}

void Graph::AddEdge(OpId from, OpId to) {
  assert(from >= 0 && static_cast<std::size_t>(from) < ops_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < ops_.size());
  assert(from != to);
  auto& out = succs_[static_cast<std::size_t>(from)];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  preds_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

std::vector<OpId> Graph::RecvOps() const { return OpsOfKind(OpKind::kRecv); }

std::vector<OpId> Graph::OpsOfKind(OpKind kind) const {
  std::vector<OpId> out;
  for (const Op& op : ops_) {
    if (op.kind == kind) out.push_back(op.id);
  }
  return out;
}

bool Graph::IsAcyclic() const {
  return TopologicalOrder().size() == ops_.size();
}

std::vector<OpId> Graph::TopologicalOrder() const {
  std::vector<int> indegree(ops_.size(), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    indegree[i] = static_cast<int>(preds_[i].size());
  }
  // Min-id queue keeps the order deterministic across runs.
  std::priority_queue<OpId, std::vector<OpId>, std::greater<>> ready;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<OpId>(i));
  }
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const OpId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (OpId succ : succs_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  return order;  // shorter than ops_.size() iff a cycle exists
}

bool Graph::IsTopologicalOrder(const std::vector<OpId>& order) const {
  if (order.size() != ops_.size()) return false;
  std::vector<int> position(ops_.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const OpId id = order[i];
    if (id < 0 || static_cast<std::size_t>(id) >= ops_.size()) return false;
    if (position[static_cast<std::size_t>(id)] != -1) return false;
    position[static_cast<std::size_t>(id)] = static_cast<int>(i);
  }
  for (std::size_t to = 0; to < ops_.size(); ++to) {
    for (OpId from : preds_[to]) {
      if (position[static_cast<std::size_t>(from)] >=
          position[to]) {
        return false;
      }
    }
  }
  return true;
}

std::int64_t Graph::TotalRecvBytes() const {
  std::int64_t total = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kRecv) total += op.bytes;
  }
  return total;
}

std::string Graph::DebugSummary() const {
  std::map<OpKind, int> counts;
  for (const Op& op : ops_) counts[op.kind]++;
  std::ostringstream os;
  os << "graph: " << ops_.size() << " ops, " << num_edges_ << " edges\n";
  for (const auto& [kind, count] : counts) {
    os << "  " << ToString(kind) << ": " << count << "\n";
  }
  return os.str();
}

}  // namespace tictac::core
