// Directed acyclic computational graph.
//
// This is the TicTac equivalent of a TensorFlow partition graph: a DAG of
// Ops with explicit edges, cheap predecessor/successor iteration, and
// topological-order utilities. All scheduling algorithms (Algorithms 1-3)
// and the simulator consume this representation.
#pragma once

#include <string>
#include <vector>

#include "core/op.h"

namespace tictac::core {

class Graph {
 public:
  Graph() = default;

  // --- construction -------------------------------------------------------

  // Adds an op; the returned id indexes into ops(). The id stored in `op`
  // is overwritten.
  OpId AddOp(Op op);

  // Convenience constructors for the common kinds.
  OpId AddCompute(std::string name, double cost);
  OpId AddRecv(std::string name, std::int64_t bytes, int param = -1);
  OpId AddSend(std::string name, std::int64_t bytes, int param = -1);

  // Adds a dependency edge from -> to ("to consumes from"). Duplicate
  // edges are ignored. Both ids must be valid.
  void AddEdge(OpId from, OpId to);

  // --- accessors -----------------------------------------------------------

  std::size_t size() const { return ops_.size(); }
  const Op& op(OpId id) const { return ops_[static_cast<std::size_t>(id)]; }
  Op& mutable_op(OpId id) { return ops_[static_cast<std::size_t>(id)]; }
  const std::vector<Op>& ops() const { return ops_; }

  const std::vector<OpId>& preds(OpId id) const {
    return preds_[static_cast<std::size_t>(id)];
  }
  const std::vector<OpId>& succs(OpId id) const {
    return succs_[static_cast<std::size_t>(id)];
  }

  // All recv ops, in id order.
  std::vector<OpId> RecvOps() const;
  // All ops of the given kind, in id order.
  std::vector<OpId> OpsOfKind(OpKind kind) const;

  std::size_t num_edges() const { return num_edges_; }

  // --- structure -----------------------------------------------------------

  // True if the graph contains no cycle. (AddEdge does not check; callers
  // building graphs programmatically validate once.)
  bool IsAcyclic() const;

  // One topological order (Kahn). Requires IsAcyclic().
  std::vector<OpId> TopologicalOrder() const;

  // True if `order` is a permutation of all ops respecting every edge.
  bool IsTopologicalOrder(const std::vector<OpId>& order) const;

  // Total bytes across all recv ops (the per-iteration parameter volume).
  std::int64_t TotalRecvBytes() const;

  // Human-readable multi-line summary (op/edge counts per kind).
  std::string DebugSummary() const;

 private:
  std::vector<Op> ops_;
  std::vector<std::vector<OpId>> preds_;
  std::vector<std::vector<OpId>> succs_;
  std::size_t num_edges_ = 0;
};

}  // namespace tictac::core
