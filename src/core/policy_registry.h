// String-keyed registry of scheduling policies.
//
// Policy selection everywhere above core (runner, harness, CLI, bench)
// goes through this registry, so adding a policy is one Register() call
// instead of an enum + switch edit in six files.
//
// A policy *spec* is "name" or "name:arg"; the part after the first ':'
// is passed to the factory verbatim. Built-ins:
//   baseline         no priorities (TensorFlow's arbitrary order)
//   tic              Algorithm 2, DAG structure only
//   tac              Algorithm 3, timing-aware (needs a time oracle)
//   random[:seed]    fixed random permutation (default seed 99)
//   smallest-first   ascending transfer bytes
//   largest-first    descending transfer bytes
//   reverse[:spec]   reverse of another policy's order (default "tic");
//                    nests, e.g. "reverse:random:7"
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"

namespace tictac::core {

class PolicyRegistry {
 public:
  // Builds a policy from the spec's argument part ("" when the spec has
  // no ':'). Factories must throw std::invalid_argument on a bad arg.
  using Factory =
      std::function<std::unique_ptr<SchedulingPolicy>(const std::string&)>;

  // The process-wide registry, with the built-ins pre-registered.
  static PolicyRegistry& Global();

  // Registers a factory under `name` (no ':' allowed). Throws
  // std::invalid_argument on duplicates or malformed names.
  void Register(const std::string& name, Factory factory);

  bool Contains(const std::string& name) const;

  // Creates the policy for a spec ("name" or "name:arg"). Throws
  // std::invalid_argument for unknown names, listing what is available.
  std::unique_ptr<SchedulingPolicy> Create(const std::string& spec) const;

  // Registered names, in registration order.
  std::vector<std::string> List() const { return order_; }

 private:
  std::vector<std::string> order_;
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace tictac::core
