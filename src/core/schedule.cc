#include "core/schedule.h"

#include <algorithm>

namespace tictac::core {

std::vector<OpId> Schedule::RecvOrder(const Graph& graph) const {
  std::vector<OpId> recvs = graph.RecvOps();
  std::stable_sort(recvs.begin(), recvs.end(), [&](OpId a, OpId b) {
    if (priority(a) != priority(b)) return priority(a) < priority(b);
    return a < b;
  });
  return recvs;
}

std::unordered_map<OpId, int> Schedule::NormalizedRecvRank(
    const Graph& graph) const {
  std::unordered_map<OpId, int> rank;
  const std::vector<OpId> order = RecvOrder(graph);
  rank.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<int>(i);
  }
  return rank;
}

bool Schedule::CoversAllRecvs(const Graph& graph) const {
  for (OpId r : graph.RecvOps()) {
    if (!HasPriority(r)) return false;
  }
  return true;
}

}  // namespace tictac::core
