// Plain-text serialization for graphs and schedules.
//
// The paper's ordering wizard is an offline tool: it consumes the frozen
// model graph, emits a priority list, and the enforcement module loads
// that list at runtime (§5). These functions give the same workflow a
// stable on-disk format:
//
//   # tictac-graph v1
//   op <id> <kind> <bytes> <cost> <param> <name>
//   edge <from> <to>
//
//   # tictac-schedule v1
//   priority <op-id> <priority>
//
// plus Graphviz DOT export for visual inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "core/graph.h"
#include "core/schedule.h"

namespace tictac::core {

void WriteGraph(const Graph& graph, std::ostream& os);
std::string GraphToString(const Graph& graph);

// Parses the format above. Throws std::runtime_error on malformed input
// (unknown directive, bad kind, out-of-range edge, non-contiguous ids).
Graph ReadGraph(std::istream& is);
Graph GraphFromString(const std::string& text);

void WriteSchedule(const Schedule& schedule, const Graph& graph,
                   std::ostream& os);
std::string ScheduleToString(const Schedule& schedule, const Graph& graph);

// Requires the graph the schedule refers to (for sizing/validation).
Schedule ReadSchedule(std::istream& is, const Graph& graph);
Schedule ScheduleFromString(const std::string& text, const Graph& graph);

// Graphviz DOT rendering: recv ops as boxes (labelled with bytes), sends
// as diamonds, computes as ellipses; priorities annotated when present.
std::string ToDot(const Graph& graph, const Schedule* schedule = nullptr);

}  // namespace tictac::core
