#include "core/policies.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace tictac::core {

Schedule FixedRandomOrder(const Graph& graph, std::uint64_t seed) {
  std::vector<OpId> recvs = graph.RecvOps();
  util::Rng rng(seed);
  rng.Shuffle(recvs);
  Schedule schedule(graph.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    schedule.SetPriority(recvs[i], static_cast<int>(i));
  }
  return schedule;
}

namespace {

Schedule ByBytes(const Graph& graph, bool ascending) {
  std::vector<OpId> recvs = graph.RecvOps();
  std::stable_sort(recvs.begin(), recvs.end(), [&](OpId a, OpId b) {
    const auto ba = graph.op(a).bytes;
    const auto bb = graph.op(b).bytes;
    return ascending ? ba < bb : ba > bb;
  });
  Schedule schedule(graph.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    schedule.SetPriority(recvs[i], static_cast<int>(i));
  }
  return schedule;
}

}  // namespace

Schedule SmallestFirst(const Graph& graph) { return ByBytes(graph, true); }

Schedule LargestFirst(const Graph& graph) { return ByBytes(graph, false); }

Schedule ReverseOrder(const Graph& graph, const Schedule& schedule) {
  const std::vector<OpId> order = schedule.RecvOrder(graph);
  Schedule reversed(graph.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    reversed.SetPriority(order[i], static_cast<int>(order.size() - 1 - i));
  }
  return reversed;
}

}  // namespace tictac::core
