#include "core/tac.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/incremental_properties.h"

namespace tictac::core {

bool TacBefore(const RecvProperties& a, const RecvProperties& b) {
  // Eq. 6: A ≺ B  <=>  min{P_B, M_A} < min{P_A, M_B}.
  const double lhs = std::min(b.P, a.M);
  const double rhs = std::min(a.P, b.M);
  if (lhs != rhs) return lhs < rhs;
  // Case 2 tie-break: the transfer whose cheapest jointly-dependent
  // computation needs less total communication goes first.
  if (a.Mplus != b.Mplus) return a.Mplus < b.Mplus;
  return a.op < b.op;
}

Schedule Tac(const Graph& graph, const TimeOracle& oracle) {
  return Tac(PropertyIndex(graph), oracle);
}

namespace {

// Argmin over outstanding recvs w.r.t. TacBefore. Shared by the
// incremental and the reference path: TacBefore is not transitive, so
// the result depends on scan order, and the two paths are bit-identical
// only because they run the *same* scan.
template <typename IsOutstanding>
int BestOutstanding(const std::vector<RecvProperties>& props,
                    const IsOutstanding& outstanding) {
  int best = -1;
  for (std::size_t i = 0; i < props.size(); ++i) {
    if (!outstanding(i)) continue;
    if (best < 0 ||
        TacBefore(props[i], props[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

Schedule Tac(const PropertyIndex& index, const TimeOracle& oracle) {
  // The incremental state assumes recvs are communication roots (every
  // producer in this repo builds them that way); for exotic graphs with
  // recv→recv ancestry, stay correct via the reference path.
  if (!index.recvs_are_roots()) return TacFullRecompute(index, oracle);

  const Graph& graph = index.graph();
  const auto& recvs = index.recvs();

  Schedule schedule(graph.size());
  IncrementalProperties state(index, oracle);
  int count = 0;
  while (state.remaining() > 0) {
    // Block-pruned fold; bit-identical to BestOutstanding over props()
    // (see IncrementalProperties::BestRecv), sub-O(R) per round when
    // whole blocks provably cannot beat the running best.
    const int best = state.BestRecv();
    assert(best >= 0);
    schedule.SetPriority(recvs[static_cast<std::size_t>(best)], count++);
    state.CompleteRecv(static_cast<std::size_t>(best));
  }
  return schedule;
}

Schedule TacFullRecompute(const PropertyIndex& index,
                          const TimeOracle& oracle) {
  const Graph& graph = index.graph();
  const auto& recvs = index.recvs();

  Schedule schedule(graph.size());
  std::vector<bool> outstanding(recvs.size(), true);
  std::size_t remaining = recvs.size();
  int count = 0;
  while (remaining > 0) {
    const std::vector<RecvProperties> props =
        index.UpdateProperties(oracle, outstanding);
    const int best = BestOutstanding(
        props, [&](std::size_t i) { return outstanding[i]; });
    assert(best >= 0);
    schedule.SetPriority(recvs[static_cast<std::size_t>(best)], count++);
    outstanding[static_cast<std::size_t>(best)] = false;
    --remaining;
  }
  return schedule;
}

}  // namespace tictac::core
