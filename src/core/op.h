// Operation (vertex) types for TicTac computational graphs.
//
// The paper's Model-Replica / Parameter-Server decomposition (Section 2.2)
// uses six op kinds: worker-side compute, the network transfer pair
// send/recv, and the three lightweight PS-side ops (aggregate, read,
// update). Every op carries a resource tag: computation ops execute on a
// computation resource, communication ops on a communication channel.
#pragma once

#include <cstdint>
#include <string>

namespace tictac::core {

using OpId = std::int32_t;
inline constexpr OpId kInvalidOp = -1;

enum class OpKind : std::uint8_t {
  kCompute,    // forward/backward computation on a worker
  kRecv,       // network receive (root in the worker partition)
  kSend,       // network send (leaf in the worker partition)
  kAggregate,  // PS-side gradient aggregation
  kRead,       // PS-side parameter read
  kUpdate,     // PS-side parameter update
};

const char* ToString(OpKind kind);

// True for ops that occupy a communication channel rather than a
// computation resource.
inline bool IsCommunication(OpKind kind) {
  return kind == OpKind::kRecv || kind == OpKind::kSend;
}

// A vertex in the partitioned computational graph.
struct Op {
  OpId id = kInvalidOp;
  std::string name;
  OpKind kind = OpKind::kCompute;

  // Device the op is placed on (assigned by the runtime partitioner;
  // -1 when the graph is a single-device partition).
  int device = -1;

  // Resource tag within the device: computation resource or communication
  // channel index. Used by the L-makespan bound (Eq. 2) and the simulator.
  int resource = -1;

  // Transfer size for communication ops (bytes). Zero for compute ops.
  std::int64_t bytes = 0;

  // Analytic cost hint for computation ops, in abstract work units.
  // Converted to seconds by AnalyticalTimeOracle / the simulator.
  double cost = 0.0;

  // Index of the model parameter this op moves/updates; -1 if none.
  int param = -1;
};

}  // namespace tictac::core
