// Alternative transfer-ordering policies.
//
// The paper evaluates TIC/TAC against TensorFlow's arbitrary order only.
// These additional policies bracket the design space for the ordering
// ablation: a fixed random order isolates *consistency* benefits from
// *quality* benefits, byte-based orders are the obvious straw men, and
// the reverse of TIC approximates the worst feasible order.
#pragma once

#include <cstdint>

#include "core/schedule.h"

namespace tictac::core {

// One random permutation of the recv ops, fixed across iterations.
// Separates "any enforced order" (which already kills stragglers, §6.3)
// from "a good order" (which also improves overlap).
Schedule FixedRandomOrder(const Graph& graph, std::uint64_t seed);

// Transfers sorted by ascending byte size (shortest-job-first intuition).
Schedule SmallestFirst(const Graph& graph);

// Transfers sorted by descending byte size.
Schedule LargestFirst(const Graph& graph);

// The exact reverse of another schedule's recv order — applied to TIC
// this approximates the most blocking feasible order.
Schedule ReverseOrder(const Graph& graph, const Schedule& schedule);

}  // namespace tictac::core
