// Incremental maintenance of the Algorithm-1 properties across a
// sequence of recv completions.
//
// TAC schedules one recv per round; recomputing every property from
// scratch each round costs O(R·V) per round — O(R²·V) for a full
// schedule. This state object maintains, per op, the outstanding
// dependency count and communication time M, and, per outstanding recv,
// the P / M+ properties, updating only the ops whose dep set contains
// the completed recv (via PropertyIndex::consumers). Oracle times are
// cached in a flat vector at construction, so the virtual Time() call is
// made once per op instead of once per op per round.
//
// The results are bit-identical to PropertyIndex::UpdateProperties on
// the same outstanding set:
//   * M is re-summed over the op's dep bitset in the same (increasing
//     recv-index) order as the full pass, never maintained by
//     subtraction, so float rounding matches exactly;
//   * P is re-summed over consumers(q) in op-id order — the same order
//     the full pass's G−R scan accumulates it in;
//   * M+ is a min, which is order-independent: when a contributor's M
//     shrinks its new value is folded in with min(); when a contributor
//     leaves (its dep count drops to 1) the one recv it still covers is
//     recomputed from scratch.
// The full recompute stays available as the reference oracle for
// differential testing (tests/incremental_properties_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "core/properties.h"
#include "core/time_oracle.h"

namespace tictac::core {

class IncrementalProperties {
 public:
  // Caches oracle times and computes the initial properties with every
  // recv outstanding (one full Algorithm-1 pass). Requires
  // index.recvs_are_roots(); callers (Tac) fall back to the full
  // recompute for graphs where recvs have recv ancestors.
  IncrementalProperties(const PropertyIndex& index, const TimeOracle& oracle);

  // Current properties per recv, in index.recvs() order; entries for
  // completed recvs are reset to the default (op == kInvalidOp), exactly
  // like the full recompute's output.
  const std::vector<RecvProperties>& props() const { return props_; }

  bool outstanding(std::size_t ri) const { return outstanding_[ri] != 0; }
  std::size_t remaining() const { return remaining_; }

  // Marks recv index `ri` (which must be outstanding) as transferred and
  // updates the properties of the affected ops only: O(V/64 + Σ|dep|)
  // over consumers(ri) instead of a full O(V·R) pass.
  void CompleteRecv(std::size_t ri);

 private:
  // Fresh P / M+ for outstanding recv `q` from its consumer set.
  void RecomputeRecv(std::size_t q);

  const PropertyIndex* index_;
  std::vector<double> time_;       // op id -> cached oracle time
  std::vector<double> recv_time_;  // recv index -> cached oracle time
  std::vector<char> outstanding_;  // recv index -> still to transfer
  RecvSet outstanding_set_;        // same, as a bitset for masked scans
  std::vector<int> dep_count_;     // op id -> |dep ∩ outstanding|
  // op id -> Σ of outstanding recv indices in dep; when dep_count_ hits 1
  // this IS the surviving recv index, found in O(1).
  std::vector<std::int64_t> dep_sum_;
  std::vector<double> op_M_;       // op id -> outstanding communication time
  std::vector<RecvProperties> props_;
  std::size_t remaining_ = 0;

  // Scratch for CompleteRecv (reused across calls; no per-call allocation).
  std::vector<std::size_t> dirty_;
  std::vector<char> dirty_flag_;
  std::vector<std::uint32_t> surviving_;  // one op's dep ∩ outstanding
};

}  // namespace tictac::core
