// Incremental maintenance of the Algorithm-1 properties across a
// sequence of recv completions.
//
// TAC schedules one recv per round; recomputing every property from
// scratch each round costs O(R·V) per round — O(R²·V) for a full
// schedule. This state object maintains, per op, the outstanding
// dependency count and communication time M, and, per outstanding recv,
// the P / M+ properties, updating only the ops whose dep set contains
// the completed recv (via PropertyIndex::consumers). Oracle times are
// cached in a flat vector at construction, so the virtual Time() call is
// made once per op instead of once per op per round.
//
// The results are bit-identical to PropertyIndex::UpdateProperties on
// the same outstanding set:
//   * M is re-summed over the op's dep set in the same (increasing
//     recv-index) order as the full pass, never maintained by
//     subtraction, so float rounding matches exactly;
//   * P is re-summed over consumers(q) in op-id order — the same order
//     the full pass's G−R scan accumulates it in;
//   * M+ is a min, which is order-independent: when a contributor's M
//     shrinks its new value is folded in with min(); when a contributor
//     leaves (its dep count drops to 1) the one recv it still covers is
//     recomputed from scratch.
// The full recompute stays available as the reference oracle for
// differential testing (tests/incremental_properties_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "core/properties.h"
#include "core/time_oracle.h"

namespace tictac::core {

class IncrementalProperties {
 public:
  // Caches oracle times and computes the initial properties with every
  // recv outstanding (one full Algorithm-1 pass). Requires
  // index.recvs_are_roots(); callers (Tac) fall back to the full
  // recompute for graphs where recvs have recv ancestors.
  IncrementalProperties(const PropertyIndex& index, const TimeOracle& oracle);

  // Current properties per recv, in index.recvs() order; entries for
  // completed recvs are reset to the default (op == kInvalidOp), exactly
  // like the full recompute's output.
  const std::vector<RecvProperties>& props() const { return props_; }

  bool outstanding(std::size_t ri) const { return outstanding_[ri] != 0; }
  std::size_t remaining() const { return remaining_; }

  // Marks recv index `ri` (which must be outstanding) as transferred and
  // updates the properties of the affected ops only: O(V/64 + Σ|dep|)
  // over consumers(ri) instead of a full O(V·R) pass.
  void CompleteRecv(std::size_t ri);

  // The recv tac.cc's flat left-to-right TacBefore fold over props()
  // would pick, or -1 with nothing outstanding. Computed with per-block
  // pruning: recvs are grouped into 256-wide blocks carrying exact
  // aggregates over their outstanding members, refreshed lazily. A
  // candidate i beats the running best b iff
  // min(b.P, M_i) < min(P_i, b.M); splitting on where the left min
  // lands gives the block-skip conditions (all three must hold):
  //   * M_i <= b.P path: needs M_i < min(P_i, b.M), so no member
  //     strictly beats when min over members of
  //     (M_i if M_i < P_i else +inf) >= b.M — most recvs have P == 0
  //     (no op depends solely on them yet), so this aggregate is
  //     usually +inf and the clause usually holds;
  //   * M_i > b.P path: needs b.P < P_i and b.P < b.M, killed by
  //     b.P >= b.M or max-P <= b.P;
  //   * M+ tie path: needs exact lhs == rhs, which decomposes over
  //     which side each min lands on into four equality combos:
  //     b.P == b.M; P_i == b.P (needs b.P <= b.M, and the block to
  //     bracket b.P in both its P and M ranges); M_i == P_i (a
  //     per-block flag); and M_i == b.M (needs b.M <= b.P). The first
  //     three use block aggregates; the last is checked *exactly* —
  //     recv M is static, so a sorted (M, idx) table gives the recvs
  //     whose M equals b.M by equal_range, and the combo fires only in
  //     blocks actually containing one. (A 256-wide min/max bracket
  //     over broad-spectrum M values almost always contains b.M even
  //     though exact equality is rare — the bracket version skipped
  //     almost nothing.) Any tie still needs min-M+ < b.Mplus to
  //     matter, and the final op-id tie-break never flips a verdict:
  //     candidates always carry a larger recv index than the running
  //     best.
  // Skipped blocks provably contribute no fold update, and surviving
  // blocks are scanned with the exact scalar fold — the result is
  // bit-identical to the full scan at every step, which is what keeps
  // Tac() == TacFullRecompute() pinnable while the per-round argmin
  // drops below O(R) whenever blocks prune.
  int BestRecv();

 private:
  // Fresh P / M+ for outstanding recv `q` from its consumer set.
  void RecomputeRecv(std::size_t q);

  std::vector<double> time_;       // op id -> cached oracle time
  std::vector<double> recv_time_;  // recv index -> cached oracle time
  std::vector<char> outstanding_;  // recv index -> still to transfer
  std::vector<int> dep_count_;     // op id -> |dep ∩ outstanding|
  // Sparse mirrors of PropertyIndex's dep/consumer bitsets, in the same
  // increasing-index order the bitset ForEach visits — O(members) per
  // scan instead of O(bits/64) words, which is what the per-completion
  // update actually pays at 100k recvs.
  std::vector<std::vector<std::uint32_t>> dep_recvs_;     // op -> recv idxs
  std::vector<std::vector<std::uint32_t>> consumer_ops_;  // recv -> op ids
  // op id -> Σ of outstanding recv indices in dep; when dep_count_ hits 1
  // this IS the surviving recv index, found in O(1).
  std::vector<std::int64_t> dep_sum_;
  std::vector<double> op_M_;       // op id -> outstanding communication time
  std::vector<RecvProperties> props_;
  std::size_t remaining_ = 0;

  // Scratch for CompleteRecv (reused across calls; no per-call allocation).
  std::vector<std::size_t> dirty_;
  std::vector<char> dirty_flag_;
  std::vector<std::uint32_t> surviving_;  // one op's dep ∩ outstanding

  // BestRecv's block-pruning state (see the method comment).
  static constexpr std::size_t kBlockShift = 8;  // 256 recvs per block
  void RefreshBlock(std::size_t blk);
  void MarkBlockDirty(std::size_t ri) {
    blk_dirty_[ri >> kBlockShift] = 1;
  }
  std::vector<char> blk_dirty_;
  std::vector<int> blk_count_;          // outstanding members
  std::vector<double> blk_max_p_;
  std::vector<double> blk_min_mplus_;
  std::vector<double> blk_min_u_;       // min of (M if M < P else +inf)
  std::vector<double> blk_max_m_;
  std::vector<char> blk_any_m_eq_p_;    // any outstanding member with M == P
  // (M, recv idx) sorted pairs over all recvs; recv M is static, so the
  // recvs whose M is exactly equal to the running best's — the only way
  // the M_i == b.M tie combo can fire — are found by equal_range
  // instead of per-block brackets (a bracket over 256 broad-spectrum M
  // values almost always contains b.M; exact equality almost never).
  std::vector<std::pair<double, std::uint32_t>> m_sorted_;
};

}  // namespace tictac::core
