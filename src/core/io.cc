#include "core/io.h"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tictac::core {
namespace {

OpKind KindFromString(const std::string& token) {
  static const std::map<std::string, OpKind> kKinds = {
      {"compute", OpKind::kCompute},     {"recv", OpKind::kRecv},
      {"send", OpKind::kSend},           {"aggregate", OpKind::kAggregate},
      {"read", OpKind::kRead},           {"update", OpKind::kUpdate},
  };
  const auto it = kKinds.find(token);
  if (it == kKinds.end()) {
    throw std::runtime_error("unknown op kind: " + token);
  }
  return it->second;
}

}  // namespace

void WriteGraph(const Graph& graph, std::ostream& os) {
  // Costs must survive the round trip bit-for-bit.
  os.precision(17);
  os << "# tictac-graph v1\n";
  for (const Op& op : graph.ops()) {
    os << "op " << op.id << ' ' << ToString(op.kind) << ' ' << op.bytes
       << ' ' << op.cost << ' ' << op.param << ' ' << op.name << '\n';
  }
  for (const Op& op : graph.ops()) {
    for (const OpId succ : graph.succs(op.id)) {
      os << "edge " << op.id << ' ' << succ << '\n';
    }
  }
}

std::string GraphToString(const Graph& graph) {
  std::ostringstream os;
  WriteGraph(graph, os);
  return os.str();
}

Graph ReadGraph(std::istream& is) {
  Graph graph;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "op") {
      OpId id;
      std::string kind;
      Op op;
      if (!(tokens >> id >> kind >> op.bytes >> op.cost >> op.param)) {
        throw std::runtime_error("malformed op line: " + line);
      }
      op.kind = KindFromString(kind);
      std::getline(tokens, op.name);
      if (!op.name.empty() && op.name.front() == ' ') op.name.erase(0, 1);
      const OpId assigned = graph.AddOp(std::move(op));
      if (assigned != id) {
        throw std::runtime_error("op ids must be contiguous from 0");
      }
    } else if (directive == "edge") {
      OpId from;
      OpId to;
      if (!(tokens >> from >> to)) {
        throw std::runtime_error("malformed edge line: " + line);
      }
      if (from < 0 || to < 0 ||
          static_cast<std::size_t>(from) >= graph.size() ||
          static_cast<std::size_t>(to) >= graph.size()) {
        throw std::runtime_error("edge references unknown op: " + line);
      }
      graph.AddEdge(from, to);
    } else {
      throw std::runtime_error("unknown directive: " + directive);
    }
  }
  if (!graph.IsAcyclic()) {
    throw std::runtime_error("serialized graph contains a cycle");
  }
  return graph;
}

Graph GraphFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadGraph(is);
}

void WriteSchedule(const Schedule& schedule, const Graph& graph,
                   std::ostream& os) {
  os << "# tictac-schedule v1\n";
  for (const Op& op : graph.ops()) {
    if (schedule.HasPriority(op.id)) {
      os << "priority " << op.id << ' ' << schedule.priority(op.id) << '\n';
    }
  }
}

std::string ScheduleToString(const Schedule& schedule, const Graph& graph) {
  std::ostringstream os;
  WriteSchedule(schedule, graph, os);
  return os.str();
}

Schedule ReadSchedule(std::istream& is, const Graph& graph) {
  Schedule schedule(graph.size());
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string directive;
    OpId op;
    int priority;
    if (!(tokens >> directive >> op >> priority) ||
        directive != "priority") {
      throw std::runtime_error("malformed schedule line: " + line);
    }
    if (op < 0 || static_cast<std::size_t>(op) >= graph.size()) {
      throw std::runtime_error("priority references unknown op: " + line);
    }
    schedule.SetPriority(op, priority);
  }
  return schedule;
}

Schedule ScheduleFromString(const std::string& text, const Graph& graph) {
  std::istringstream is(text);
  return ReadSchedule(is, graph);
}

std::string ToDot(const Graph& graph, const Schedule* schedule) {
  std::ostringstream os;
  os << "digraph tictac {\n  rankdir=LR;\n";
  for (const Op& op : graph.ops()) {
    os << "  n" << op.id << " [label=\"" << op.name;
    if (op.kind == OpKind::kRecv || op.kind == OpKind::kSend) {
      os << "\\n" << op.bytes << "B";
    }
    if (schedule != nullptr && schedule->HasPriority(op.id)) {
      os << "\\np" << schedule->priority(op.id);
    }
    os << "\"";
    switch (op.kind) {
      case OpKind::kRecv: os << ", shape=box, style=filled, fillcolor=lightblue"; break;
      case OpKind::kSend: os << ", shape=diamond, style=filled, fillcolor=lightsalmon"; break;
      default: os << ", shape=ellipse"; break;
    }
    os << "];\n";
  }
  for (const Op& op : graph.ops()) {
    for (const OpId succ : graph.succs(op.id)) {
      os << "  n" << op.id << " -> n" << succ << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace tictac::core
