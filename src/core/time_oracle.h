// Time oracles (Section 3.1): Time(op) predicts the execution time of an
// op assuming the resource is dedicated to it. Computation ops report
// elapsed compute time, communication ops report transfer time.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/graph.h"

namespace tictac::core {

class TimeOracle {
 public:
  virtual ~TimeOracle() = default;

  // Predicted execution time of `op` in `graph`, in seconds (or abstract
  // units, as long as callers are consistent).
  virtual double Time(const Graph& graph, OpId op) const = 0;

  // Sum of Time over all ops — the U bound input (Eq. 1).
  double TotalTime(const Graph& graph) const;
};

// Eq. 5, the oracle used by TIC: recv ops cost 1, everything else 0.
// With this oracle, priorities depend only on DAG structure.
class GeneralTimeOracle final : public TimeOracle {
 public:
  double Time(const Graph& graph, OpId op) const override;
};

// Explicit per-op times, the output of the trace-based estimator (§5).
// Ops absent from the map fall back to `default_time`.
class MapTimeOracle final : public TimeOracle {
 public:
  explicit MapTimeOracle(std::unordered_map<OpId, double> times,
                         double default_time = 0.0)
      : times_(std::move(times)), default_time_(default_time) {}

  double Time(const Graph& graph, OpId op) const override;

  void Set(OpId op, double time) { times_[op] = time; }

 private:
  std::unordered_map<OpId, double> times_;
  double default_time_;
};

// Platform cost model: compute ops take cost/compute_rate, transfers take
// latency + bytes/bandwidth, PS-side bookkeeping ops take `ps_op_time`.
// This models the paper's envG/envC hardware parametrically.
struct PlatformModel {
  double compute_rate = 1.0;      // abstract work units per second
  double bandwidth_bps = 1.25e8;  // bytes/second (default: 1 GbE)
  double latency_s = 100e-6;      // per-transfer setup latency
  double ps_op_time_s = 1e-6;     // aggregate/read/update ops (lightweight)
};

class AnalyticalTimeOracle final : public TimeOracle {
 public:
  explicit AnalyticalTimeOracle(PlatformModel platform)
      : platform_(platform) {}

  double Time(const Graph& graph, OpId op) const override;

  const PlatformModel& platform() const { return platform_; }

 private:
  PlatformModel platform_;
};

// Wraps another oracle and perturbs each op's time with multiplicative
// lognormal noise, fixed per op (deterministic in `seed`). Models an
// imperfect trace-based estimate; used by the oracle-sensitivity ablation.
class NoisyTimeOracle final : public TimeOracle {
 public:
  NoisyTimeOracle(const TimeOracle& base, double sigma, std::uint64_t seed);

  double Time(const Graph& graph, OpId op) const override;

 private:
  const TimeOracle& base_;
  double sigma_;
  std::uint64_t seed_;
};

}  // namespace tictac::core
