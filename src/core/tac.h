// Algorithm 3 — Timing-Aware Communication scheduling (TAC).
//
// TAC greedily orders recv ops to maximize computation/communication
// overlap, combining the pairwise rule of Case 1 (Eq. 6) with the
// impending-communication-load tie-break of Case 2:
//
//   A precedes B  <=>  min{P_B, M_A} < min{P_A, M_B}
//   ties broken by the smaller M+.
//
// Note on the printed Algorithm 3: its comparator computes
// `min(P_A, M_B) < min(P_B, M_A)`, the reverse of the Case-1 derivation it
// cites. The derivation is the consistent one (check P_A -> inf, P_B = 0:
// completing A first unblocks a large compute load, so A must precede B;
// Eq. 6 yields exactly that). We implement Eq. 6. See DESIGN.md §2.
#pragma once

#include "core/properties.h"
#include "core/schedule.h"

namespace tictac::core {

// Pairwise ordering rule: true if `a` should be scheduled before `b`.
// Final tie-break on op id keeps the result deterministic.
bool TacBefore(const RecvProperties& a, const RecvProperties& b);

// Computes TAC priorities for all recv ops of `graph`: repeatedly update
// properties over the outstanding set, emit the minimum recv w.r.t.
// TacBefore, assign it the next sequential priority number. Properties
// are maintained incrementally (core/incremental_properties.h), so the
// total property work is O(Σ affected ops) rather than O(R²·V).
Schedule Tac(const Graph& graph, const TimeOracle& oracle);

// Same, reusing a prebuilt dependency index.
Schedule Tac(const PropertyIndex& index, const TimeOracle& oracle);

// Reference implementation: re-runs the full Algorithm-1 pass for every
// scheduled recv, exactly as the paper's Python implementation does.
// O(R²·V); kept as the differential-testing oracle for the incremental
// path — both must produce bit-identical schedules.
Schedule TacFullRecompute(const PropertyIndex& index,
                          const TimeOracle& oracle);

}  // namespace tictac::core
