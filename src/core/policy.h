// Pluggable transfer-ordering policies.
//
// The paper's contribution is a *family* of ordering heuristics (TIC,
// TAC, baseline) evaluated against each other; the repo grows that family
// further (fixed random, byte-size orders, reversed orders). Every member
// implements one interface: given a prebuilt communication-dependency
// index and a time oracle, produce a priority Schedule. Policies that use
// DAG structure only (TIC, byte orders) simply ignore the oracle and
// report RequiresOracle() == false.
//
// Policies are usually obtained by name from the PolicyRegistry
// (core/policy_registry.h) rather than constructed directly; the concrete
// classes below are exposed for tests and for callers that need
// non-default parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/properties.h"
#include "core/schedule.h"
#include "core/time_oracle.h"

namespace tictac::core {

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  // Produces the priority schedule for index.graph(). `oracle` predicts
  // per-op execution times; timing-independent policies ignore it.
  virtual Schedule Compute(const PropertyIndex& index,
                           const TimeOracle& oracle) const = 0;

  // Canonical spec of this policy: PolicyRegistry::Global().Create(name())
  // reconstructs an equivalent instance (e.g. "tac", "random:99",
  // "reverse:tic").
  virtual std::string name() const = 0;

  // True if Compute's result depends on the oracle's times. Callers use
  // this to decide whether oracle quality (noise, calibration) matters.
  virtual bool RequiresOracle() const { return false; }
};

// No priorities at all — TensorFlow's arbitrary order. Returns a
// default-constructed (empty) Schedule, which downstream layers read as
// "unscheduled": no gates, random ready-queue picks.
class BaselinePolicy final : public SchedulingPolicy {
 public:
  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override { return "baseline"; }
};

// Algorithm 2 (core/tic.h): timing-independent, DAG structure only.
class TicPolicy final : public SchedulingPolicy {
 public:
  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override { return "tic"; }
};

// Algorithm 3 (core/tac.h): timing-aware greedy overlap maximization.
class TacPolicy final : public SchedulingPolicy {
 public:
  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override { return "tac"; }
  bool RequiresOracle() const override { return true; }
};

// One random permutation of the recvs, fixed by `seed` (core/policies.h).
class FixedRandomOrderPolicy final : public SchedulingPolicy {
 public:
  static constexpr std::uint64_t kDefaultSeed = 99;

  explicit FixedRandomOrderPolicy(std::uint64_t seed = kDefaultSeed)
      : seed_(seed) {}

  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

// Transfers sorted by ascending byte size.
class SmallestFirstPolicy final : public SchedulingPolicy {
 public:
  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override { return "smallest-first"; }
};

// Transfers sorted by descending byte size.
class LargestFirstPolicy final : public SchedulingPolicy {
 public:
  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override { return "largest-first"; }
};

// Combinator: the exact reverse of another policy's recv order. Applied
// to TIC this approximates the worst feasible order (the A3 ablation).
class ReversePolicy final : public SchedulingPolicy {
 public:
  explicit ReversePolicy(std::unique_ptr<SchedulingPolicy> inner);

  Schedule Compute(const PropertyIndex& index,
                   const TimeOracle& oracle) const override;
  std::string name() const override;
  bool RequiresOracle() const override { return inner_->RequiresOracle(); }

  const SchedulingPolicy& inner() const { return *inner_; }

 private:
  std::unique_ptr<SchedulingPolicy> inner_;
};

}  // namespace tictac::core
