#include "core/policy.h"

#include <stdexcept>
#include <utility>

#include "core/policies.h"
#include "core/tac.h"
#include "core/tic.h"

namespace tictac::core {

Schedule BaselinePolicy::Compute(const PropertyIndex& index,
                                 const TimeOracle& oracle) const {
  (void)index;
  (void)oracle;
  return Schedule();
}

Schedule TicPolicy::Compute(const PropertyIndex& index,
                            const TimeOracle& oracle) const {
  (void)oracle;  // TIC is timing-independent by construction (Eq. 5).
  return Tic(index);
}

Schedule TacPolicy::Compute(const PropertyIndex& index,
                            const TimeOracle& oracle) const {
  return Tac(index, oracle);
}

Schedule FixedRandomOrderPolicy::Compute(const PropertyIndex& index,
                                         const TimeOracle& oracle) const {
  (void)oracle;
  return FixedRandomOrder(index.graph(), seed_);
}

std::string FixedRandomOrderPolicy::name() const {
  return "random:" + std::to_string(seed_);
}

Schedule SmallestFirstPolicy::Compute(const PropertyIndex& index,
                                      const TimeOracle& oracle) const {
  (void)oracle;
  return SmallestFirst(index.graph());
}

Schedule LargestFirstPolicy::Compute(const PropertyIndex& index,
                                     const TimeOracle& oracle) const {
  (void)oracle;
  return LargestFirst(index.graph());
}

ReversePolicy::ReversePolicy(std::unique_ptr<SchedulingPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("ReversePolicy requires an inner policy");
  }
}

Schedule ReversePolicy::Compute(const PropertyIndex& index,
                                const TimeOracle& oracle) const {
  return ReverseOrder(index.graph(), inner_->Compute(index, oracle));
}

std::string ReversePolicy::name() const {
  return "reverse:" + inner_->name();
}

}  // namespace tictac::core
