// Op properties used by the scheduling heuristics (Section 4.1) and the
// property-update procedure (Algorithm 1).
//
// For every op:
//   dep  — the set of recv ops it directly or transitively depends on.
//   M    — communication time: total transfer time of its outstanding
//          recv dependencies.
// For every outstanding recv op additionally:
//   P    — directly-dependent compute load: total compute time of the ops
//          activated by completing this recv alone.
//   M+   — impending communication load: the minimum M over computation
//          ops with more than one outstanding recv dependency that include
//          this recv (M+ therefore includes this recv's own time).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/graph.h"
#include "core/time_oracle.h"

namespace tictac::core {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Fixed-width bitset over dense indices. Dep sets (bits = recv indices)
// and the inverted consumer index (bits = op ids) are dense, so packed
// words beat hash sets by a wide margin.
class RecvSet {
 public:
  RecvSet() = default;
  explicit RecvSet(std::size_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  void Set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  // Requires size_bits() == other.size_bits(). Kept inline: this is the
  // inner loop of the dependency analysis (one call per edge).
  void UnionWith(const RecvSet& other) {
    assert(bits_ == other.bits_ && "RecvSet size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }
  std::size_t Count() const;
  // Number of bits set in both this and `other`.
  // Requires size_bits() == other.size_bits().
  std::size_t IntersectCount(const RecvSet& other) const;
  std::size_t size_bits() const { return bits_; }

  // Calls fn(bit_index) for every set bit, in increasing index order.
  // Scans 4-word blocks and skips a whole block when its OR is zero —
  // the common case late in a TAC run, when most recvs have completed —
  // falling back to per-word bit extraction only for blocks with
  // survivors. The visit order is exactly the naive per-word order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::size_t nw = words_.size();
    std::size_t w = 0;
    for (; w + 4 <= nw; w += 4) {
      if ((words_[w] | words_[w + 1] | words_[w + 2] | words_[w + 3]) == 0) {
        continue;
      }
      for (std::size_t k = w; k < w + 4; ++k) EmitWord(words_[k], k, fn);
    }
    for (; w < nw; ++w) EmitWord(words_[w], w, fn);
  }

  // Calls fn(bit_index) for every bit set in both this and `mask`, in
  // increasing index order — the masked bits are visited in exactly the
  // order ForEach would visit them, so float accumulations over the
  // intersection are bit-identical to a filtered ForEach. Word-wise AND
  // skips cleared bits for free, and the same 4-word block skip as
  // ForEach drops fully-masked-out blocks on the OR of their ANDs, which
  // is what keeps the incremental property updates cheap once most recvs
  // have completed. Requires size_bits() == mask.size_bits().
  template <typename Fn>
  void ForEachAnd(const RecvSet& mask, Fn&& fn) const {
    assert(bits_ == mask.bits_ && "RecvSet size mismatch");
    const std::size_t nw = words_.size();
    std::size_t w = 0;
    for (; w + 4 <= nw; w += 4) {
      const std::uint64_t a0 = words_[w] & mask.words_[w];
      const std::uint64_t a1 = words_[w + 1] & mask.words_[w + 1];
      const std::uint64_t a2 = words_[w + 2] & mask.words_[w + 2];
      const std::uint64_t a3 = words_[w + 3] & mask.words_[w + 3];
      if ((a0 | a1 | a2 | a3) == 0) continue;
      EmitWord(a0, w, fn);
      EmitWord(a1, w + 1, fn);
      EmitWord(a2, w + 2, fn);
      EmitWord(a3, w + 3, fn);
    }
    for (; w < nw; ++w) EmitWord(words_[w] & mask.words_[w], w, fn);
  }

 private:
  template <typename Fn>
  static void EmitWord(std::uint64_t word, std::size_t w, Fn& fn) {
    while (word) {
      const int b = __builtin_ctzll(word);
      fn(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

// Per-recv scheduling properties after an UpdateProperties pass.
struct RecvProperties {
  OpId op = kInvalidOp;
  double M = 0.0;             // own outstanding transfer time
  double P = 0.0;             // directly-dependent compute load
  double Mplus = kInfinity;   // impending communication load
};

// Communication-dependency index for a graph. Computed once per graph
// (FindDependencies in Algorithms 2-3); UpdateProperties is then re-run
// against shrinking outstanding sets by TAC.
class PropertyIndex {
 public:
  // Builds op.dep for every op via one topological sweep.
  explicit PropertyIndex(const Graph& graph);

  const Graph& graph() const { return *graph_; }

  // Recv ops in id order; `recv_index(op)` inverts the mapping.
  const std::vector<OpId>& recvs() const { return recvs_; }
  int recv_index(OpId op) const { return recv_index_[static_cast<std::size_t>(op)]; }

  // The dep set of `op`, as indices into recvs().
  const RecvSet& dep(OpId op) const { return dep_[static_cast<std::size_t>(op)]; }

  // Inverted index: the non-recv ops (as a bitset over op ids) whose dep
  // set contains recv index `ri`. Recv ops are excluded — a completed
  // recv never contributes to P or M+, and an outstanding one is skipped
  // by Algorithm 1's G−R scan. This is what lets IncrementalProperties
  // touch only the affected ops when one recv completes.
  const RecvSet& consumers(std::size_t ri) const { return consumers_[ri]; }

  // True when every recv's dep set is exactly {itself} — i.e. no recv has
  // a recv ancestor. All graph producers in this repo build recvs as
  // communication roots, but Graph::AddEdge does not forbid edges into a
  // recv. IncrementalProperties assumes this invariant (a recv's M is
  // then constant while outstanding and completed recvs never join the
  // G−R scan); Tac() falls back to the full recompute when it is false.
  bool recvs_are_roots() const { return recvs_are_roots_; }

  // Algorithm 1. `outstanding` flags recvs (by recv index) that are still
  // to be transferred. Returns properties for each outstanding recv, in
  // recvs() order; entries for completed recvs have op == kInvalidOp.
  //
  // Also exposes op.M for every op via `op_M` when non-null (needed by
  // tests and by M+ computation internally).
  std::vector<RecvProperties> UpdateProperties(
      const TimeOracle& oracle, const std::vector<bool>& outstanding,
      std::vector<double>* op_M = nullptr) const;

 private:
  const Graph* graph_;
  std::vector<OpId> recvs_;
  std::vector<int> recv_index_;   // op id -> recv index or -1
  std::vector<RecvSet> dep_;      // op id -> recv-index set
  std::vector<RecvSet> consumers_;  // recv index -> op-id set (transpose)
  bool recvs_are_roots_ = true;
};

}  // namespace tictac::core
