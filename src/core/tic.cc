#include "core/tic.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tictac::core {

Schedule Tic(const Graph& graph) { return Tic(PropertyIndex(graph)); }

Schedule Tic(const PropertyIndex& index) {
  const Graph& graph = index.graph();
  const auto& recvs = index.recvs();

  GeneralTimeOracle oracle;
  std::vector<bool> outstanding(recvs.size(), true);
  const std::vector<RecvProperties> props =
      index.UpdateProperties(oracle, outstanding);

  // Rank-compress M+ so priority numbers are small consecutive integers;
  // infinite M+ lands after every finite value.
  std::vector<double> finite;
  finite.reserve(props.size());
  for (const RecvProperties& p : props) {
    if (std::isfinite(p.Mplus)) finite.push_back(p.Mplus);
  }
  std::sort(finite.begin(), finite.end());
  finite.erase(std::unique(finite.begin(), finite.end()), finite.end());

  Schedule schedule(graph.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    int rank;
    if (std::isfinite(props[i].Mplus)) {
      rank = static_cast<int>(
          std::lower_bound(finite.begin(), finite.end(), props[i].Mplus) -
          finite.begin());
    } else {
      rank = static_cast<int>(finite.size());
    }
    schedule.SetPriority(recvs[i], rank);
  }
  return schedule;
}

}  // namespace tictac::core
