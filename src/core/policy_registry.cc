#include "core/policy_registry.h"

#include <stdexcept>
#include <utility>

namespace tictac::core {
namespace {

std::uint64_t ParseSeed(const std::string& arg) {
  if (arg.empty()) return FixedRandomOrderPolicy::kDefaultSeed;
  // Digits only: std::stoull alone would accept (and wrap) "-1" or skip
  // leading whitespace, making the effective seed differ from the spec.
  const bool digits_only =
      arg.find_first_not_of("0123456789") == std::string::npos;
  try {
    if (!digits_only) throw std::invalid_argument(arg);
    return static_cast<std::uint64_t>(std::stoull(arg));
  } catch (const std::exception&) {
    throw std::invalid_argument(
        "policy \"random\" expects a non-negative integer seed, got \"" +
        arg + "\"");
  }
}

// Adapts a no-argument policy: rejects a non-empty arg with a clear error
// instead of silently ignoring it.
template <typename PolicyT>
PolicyRegistry::Factory NoArg(const char* name) {
  return [name](const std::string& arg) -> std::unique_ptr<SchedulingPolicy> {
    if (!arg.empty()) {
      throw std::invalid_argument("policy \"" + std::string(name) +
                                  "\" takes no argument, got \"" + arg + "\"");
    }
    return std::make_unique<PolicyT>();
  };
}

void RegisterBuiltins(PolicyRegistry& registry) {
  registry.Register("baseline", NoArg<BaselinePolicy>("baseline"));
  registry.Register("tic", NoArg<TicPolicy>("tic"));
  registry.Register("tac", NoArg<TacPolicy>("tac"));
  registry.Register("random", [](const std::string& arg) {
    return std::make_unique<FixedRandomOrderPolicy>(ParseSeed(arg));
  });
  registry.Register("smallest-first",
                    NoArg<SmallestFirstPolicy>("smallest-first"));
  registry.Register("largest-first",
                    NoArg<LargestFirstPolicy>("largest-first"));
  registry.Register("reverse", [](const std::string& arg) {
    const std::string inner = arg.empty() ? "tic" : arg;
    return std::make_unique<ReversePolicy>(
        PolicyRegistry::Global().Create(inner));
  });
}

}  // namespace

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void PolicyRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty() || name.find(':') != std::string::npos) {
    throw std::invalid_argument("invalid policy name \"" + name +
                                "\" (must be non-empty, no ':')");
  }
  if (!factory) {
    throw std::invalid_argument("null factory for policy \"" + name + "\"");
  }
  if (factories_.count(name) != 0) {
    throw std::invalid_argument("duplicate policy name \"" + name + "\"");
  }
  factories_.emplace(name, std::move(factory));
  order_.push_back(name);
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::Create(
    const std::string& spec) const {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string available;
    for (const std::string& n : order_) {
      if (!available.empty()) available += ", ";
      available += n;
    }
    throw std::invalid_argument("unknown scheduling policy \"" + name +
                                "\"; available: " + available);
  }
  return it->second(arg);
}

}  // namespace tictac::core
