// Scheduling-efficiency metrics (Section 3.2).
//
//   UMakespan (Eq. 1) — serial execution: sum of all op times.
//   LMakespan (Eq. 2) — perfect overlap: the busiest resource's total.
//   E (Eq. 3)         — (U - m) / (U - L); 1 = perfect, 0 = worst.
//   S (Eq. 4)         — (U - L) / L; the best-over-worst speedup headroom.
//
// Both bounds ignore DAG dependencies, so E can exceed [0,1] slightly in
// pathological measurements; callers that need a bounded value clamp.
#pragma once

#include <vector>

#include "core/graph.h"
#include "core/time_oracle.h"

namespace tictac::core {

struct MakespanBounds {
  double upper = 0.0;  // Eq. 1
  double lower = 0.0;  // Eq. 2
};

// Computes both bounds. Resource grouping for the lower bound uses each
// op's `resource` tag; untagged ops (-1) default to resource 0 for
// computation kinds and resource 1 for communication kinds, matching the
// two-resource device model of Figure 1.
MakespanBounds ComputeBounds(const Graph& graph, const TimeOracle& oracle);

// Eq. 3. Returns 1 when upper == lower (no scheduling headroom).
double Efficiency(const MakespanBounds& bounds, double makespan);

// Eq. 4. Returns 0 when lower == 0.
double Speedup(const MakespanBounds& bounds);

// --- multi-job fairness / interference (DESIGN.md §6) ----------------------

// Jain's fairness index over per-job resource shares:
//   J = (Σ x)² / (n · Σ x²)
// 1 = perfectly fair, 1/n = one job takes everything. Shares must be
// >= 0 (throws std::invalid_argument otherwise); an empty or all-zero
// sample carries no contention information and returns 1.
double JainFairness(const std::vector<double>& shares);

// Per-job slowdown of a shared-cluster run against the same jobs run in
// isolation, plus the aggregate fairness of the contention outcome.
struct InterferenceStats {
  // shared_time / isolated_time per job; > 1 = the job lost time to
  // contention, 1 = unaffected.
  std::vector<double> slowdown;
  // isolated_time / shared_time per job (the "normalized progress" of
  // co-scheduling literature); <= 1 in the common case.
  std::vector<double> normalized_progress;
  double mean_slowdown = 1.0;
  double max_slowdown = 1.0;
  // Jain index over normalized progress: 1 = contention hit every job
  // equally, lower = some jobs absorbed most of the interference.
  double fairness = 1.0;
};

// `shared` and `isolated` hold one per-job iteration time each (same
// order). Sizes must match and be >= 1, and every time must be > 0;
// throws std::invalid_argument naming the offending entry otherwise.
InterferenceStats ComputeInterference(const std::vector<double>& shared,
                                      const std::vector<double>& isolated);

}  // namespace tictac::core
