// Scheduling-efficiency metrics (Section 3.2).
//
//   UMakespan (Eq. 1) — serial execution: sum of all op times.
//   LMakespan (Eq. 2) — perfect overlap: the busiest resource's total.
//   E (Eq. 3)         — (U - m) / (U - L); 1 = perfect, 0 = worst.
//   S (Eq. 4)         — (U - L) / L; the best-over-worst speedup headroom.
//
// Both bounds ignore DAG dependencies, so E can exceed [0,1] slightly in
// pathological measurements; callers that need a bounded value clamp.
#pragma once

#include "core/graph.h"
#include "core/time_oracle.h"

namespace tictac::core {

struct MakespanBounds {
  double upper = 0.0;  // Eq. 1
  double lower = 0.0;  // Eq. 2
};

// Computes both bounds. Resource grouping for the lower bound uses each
// op's `resource` tag; untagged ops (-1) default to resource 0 for
// computation kinds and resource 1 for communication kinds, matching the
// two-resource device model of Figure 1.
MakespanBounds ComputeBounds(const Graph& graph, const TimeOracle& oracle);

// Eq. 3. Returns 1 when upper == lower (no scheduling headroom).
double Efficiency(const MakespanBounds& bounds, double makespan);

// Eq. 4. Returns 0 when lower == 0.
double Speedup(const MakespanBounds& bounds);

}  // namespace tictac::core
