#include "core/properties.h"

#include <cassert>

namespace tictac::core {

// Count/IntersectCount accumulate four independent lane counters over
// 4-word blocks: the per-word popcounts no longer chain through a single
// accumulator, so the compiler can pipeline or vectorize them (pinned
// against the scalar loop in core_test, measured in BM_RecvSetScan).

std::size_t RecvSet::Count() const {
  const std::size_t nw = words_.size();
  std::size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    n0 += static_cast<std::size_t>(__builtin_popcountll(words_[w + 0]));
    n1 += static_cast<std::size_t>(__builtin_popcountll(words_[w + 1]));
    n2 += static_cast<std::size_t>(__builtin_popcountll(words_[w + 2]));
    n3 += static_cast<std::size_t>(__builtin_popcountll(words_[w + 3]));
  }
  for (; w < nw; ++w) {
    n0 += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
  }
  return n0 + n1 + n2 + n3;
}

std::size_t RecvSet::IntersectCount(const RecvSet& other) const {
  assert(bits_ == other.bits_ && "RecvSet size mismatch");
  const std::size_t nw = words_.size();
  std::size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    n0 += static_cast<std::size_t>(
        __builtin_popcountll(words_[w + 0] & other.words_[w + 0]));
    n1 += static_cast<std::size_t>(
        __builtin_popcountll(words_[w + 1] & other.words_[w + 1]));
    n2 += static_cast<std::size_t>(
        __builtin_popcountll(words_[w + 2] & other.words_[w + 2]));
    n3 += static_cast<std::size_t>(
        __builtin_popcountll(words_[w + 3] & other.words_[w + 3]));
  }
  for (; w < nw; ++w) {
    n0 += static_cast<std::size_t>(
        __builtin_popcountll(words_[w] & other.words_[w]));
  }
  return n0 + n1 + n2 + n3;
}

PropertyIndex::PropertyIndex(const Graph& graph) : graph_(&graph) {
  recvs_ = graph.RecvOps();
  recv_index_.assign(graph.size(), -1);
  for (std::size_t i = 0; i < recvs_.size(); ++i) {
    recv_index_[static_cast<std::size_t>(recvs_[i])] = static_cast<int>(i);
  }
  // op.dep: union of predecessors' deps, plus the op itself if it is a
  // recv. One pass in topological order suffices.
  dep_.assign(graph.size(), RecvSet(recvs_.size()));
  const std::vector<OpId> order = graph.TopologicalOrder();
  assert(order.size() == graph.size() && "graph must be acyclic");
  for (OpId id : order) {
    RecvSet& set = dep_[static_cast<std::size_t>(id)];
    for (OpId pred : graph.preds(id)) {
      set.UnionWith(dep_[static_cast<std::size_t>(pred)]);
    }
    const int ri = recv_index_[static_cast<std::size_t>(id)];
    if (ri >= 0) set.Set(static_cast<std::size_t>(ri));
  }
  // Transpose: for each recv, the non-recv ops that (transitively) depend
  // on it. Stored as bitsets over op ids — O(R·V/64) memory, and iterating
  // consumers(ri) is a word scan instead of a full-graph sweep.
  consumers_.assign(recvs_.size(), RecvSet(graph.size()));
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (recv_index_[id] >= 0) {
      recvs_are_roots_ = recvs_are_roots_ && dep_[id].Count() == 1;
      continue;
    }
    dep_[id].ForEach([&](std::size_t ri) { consumers_[ri].Set(id); });
  }
}

std::vector<RecvProperties> PropertyIndex::UpdateProperties(
    const TimeOracle& oracle, const std::vector<bool>& outstanding,
    std::vector<double>* op_M) const {
  const Graph& g = *graph_;
  assert(outstanding.size() == recvs_.size());

  // Cache Time(r) for outstanding recvs, indexed by recv index.
  std::vector<double> recv_time(recvs_.size(), 0.0);
  for (std::size_t i = 0; i < recvs_.size(); ++i) {
    if (outstanding[i]) recv_time[i] = oracle.Time(g, recvs_[i]);
  }

  // op.M = sum of Time(r) over outstanding recv dependencies (Alg. 1 l.3).
  std::vector<double> M(g.size(), 0.0);
  for (std::size_t id = 0; id < g.size(); ++id) {
    double m = 0.0;
    dep_[id].ForEach([&](std::size_t ri) {
      if (outstanding[ri]) m += recv_time[ri];
    });
    M[id] = m;
  }

  // Initialize outstanding recv properties (Alg. 1 l.5-8).
  std::vector<RecvProperties> props(recvs_.size());
  for (std::size_t i = 0; i < recvs_.size(); ++i) {
    if (!outstanding[i]) continue;
    props[i].op = recvs_[i];
    props[i].M = M[static_cast<std::size_t>(recvs_[i])];
    props[i].P = 0.0;
    props[i].Mplus = kInfinity;
  }

  // Scan non-outstanding ops (G - R): accumulate P for single-dependency
  // ops, tighten M+ for multi-dependency ops (Alg. 1 l.9-17).
  for (const Op& op : g.ops()) {
    const std::size_t id = static_cast<std::size_t>(op.id);
    const int ri = recv_index_[id];
    if (ri >= 0 && outstanding[static_cast<std::size_t>(ri)]) continue;  // op in R

    // D = op.dep ∩ R
    std::size_t d_count = 0;
    std::size_t only = 0;
    dep_[id].ForEach([&](std::size_t r) {
      if (outstanding[r]) {
        ++d_count;
        only = r;
      }
    });
    if (d_count == 1) {
      props[only].P += oracle.Time(g, op.id);
    } else if (d_count > 1) {
      dep_[id].ForEach([&](std::size_t r) {
        if (outstanding[r] && M[id] < props[r].Mplus) {
          props[r].Mplus = M[id];
        }
      });
    }
  }

  if (op_M != nullptr) *op_M = std::move(M);
  return props;
}

}  // namespace tictac::core
