#include "core/time_oracle.h"

#include <cmath>

namespace tictac::core {

double TimeOracle::TotalTime(const Graph& graph) const {
  double total = 0.0;
  for (const Op& op : graph.ops()) total += Time(graph, op.id);
  return total;
}

double GeneralTimeOracle::Time(const Graph& graph, OpId op) const {
  return graph.op(op).kind == OpKind::kRecv ? 1.0 : 0.0;
}

double MapTimeOracle::Time(const Graph&, OpId op) const {
  auto it = times_.find(op);
  return it == times_.end() ? default_time_ : it->second;
}

double AnalyticalTimeOracle::Time(const Graph& graph, OpId op) const {
  const Op& o = graph.op(op);
  switch (o.kind) {
    case OpKind::kCompute:
      return o.cost / platform_.compute_rate;
    case OpKind::kRecv:
    case OpKind::kSend:
      return platform_.latency_s +
             static_cast<double>(o.bytes) / platform_.bandwidth_bps;
    case OpKind::kAggregate:
    case OpKind::kRead:
    case OpKind::kUpdate:
      return platform_.ps_op_time_s;
  }
  return 0.0;
}

NoisyTimeOracle::NoisyTimeOracle(const TimeOracle& base, double sigma,
                                 std::uint64_t seed)
    : base_(base), sigma_(sigma), seed_(seed) {}

double NoisyTimeOracle::Time(const Graph& graph, OpId op) const {
  // SplitMix64 over (seed, op) gives a per-op deterministic draw without
  // storing state; two uniforms -> one normal via Box-Muller.
  auto splitmix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t h1 = splitmix(seed_ ^ static_cast<std::uint64_t>(op));
  const std::uint64_t h2 = splitmix(h1);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) / 9007199254740992.0;
  const double u2 =
      (static_cast<double>(h2 >> 11) + 0.5) / 9007199254740992.0;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return base_.Time(graph, op) * std::exp(sigma_ * z);
}

}  // namespace tictac::core
