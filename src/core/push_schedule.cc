#include "core/push_schedule.h"

#include <unordered_map>

namespace tictac::core {

Schedule OrderSends(const Graph& graph, const Schedule& recv_schedule) {
  // Pull rank per parameter: the earliest normalized rank among the
  // parameter's recvs (chunked graphs have several recvs per parameter).
  const std::unordered_map<OpId, int> recv_rank =
      recv_schedule.NormalizedRecvRank(graph);
  std::unordered_map<int, int> param_rank;
  for (const auto& [op, rank] : recv_rank) {
    const int param = graph.op(op).param;
    if (param < 0) continue;
    auto [it, inserted] = param_rank.try_emplace(param, rank);
    if (!inserted && rank < it->second) it->second = rank;
  }

  Schedule out = recv_schedule;
  for (const Op& op : graph.ops()) {
    if (op.kind != OpKind::kSend) continue;
    const auto it = param_rank.find(op.param);
    if (it != param_rank.end()) out.SetPriority(op.id, it->second);
  }
  return out;
}

}  // namespace tictac::core
