#include "core/chunking.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace tictac::core {

void ChunkingOptions::Validate() const {
  if (max_chunk_bytes <= 0) {
    throw std::invalid_argument(
        "ChunkingOptions: max_chunk_bytes must be > 0 to chunk, got " +
        std::to_string(max_chunk_bytes) +
        " (use chunk_bytes = 0 / omit chunk= to disable chunking)");
  }
}
namespace {

// Splits `bytes` into near-equal chunks no larger than `max`.
std::vector<std::int64_t> SplitBytes(std::int64_t bytes, std::int64_t max) {
  const auto chunks =
      static_cast<std::int64_t>((bytes + max - 1) / max);
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(chunks),
                                  bytes / chunks);
  for (std::int64_t i = 0; i < bytes % chunks; ++i) {
    sizes[static_cast<std::size_t>(i)] += 1;
  }
  return sizes;
}

}  // namespace

Graph ChunkTransfers(const Graph& graph, const ChunkingOptions& options) {
  const std::int64_t max = options.max_chunk_bytes;
  Graph out;
  // For edge rewiring: the op a consumer should depend on (concat for
  // chunked recvs, the op itself otherwise), and the op a producer edge
  // should point at (split for chunked sends).
  std::vector<OpId> as_pred(graph.size(), kInvalidOp);
  std::vector<OpId> as_succ(graph.size(), kInvalidOp);

  for (const Op& op : graph.ops()) {
    const bool oversized =
        max > 0 && IsCommunication(op.kind) && op.bytes > max;
    if (!oversized) {
      Op copy = op;
      copy.id = kInvalidOp;
      const OpId id = out.AddOp(std::move(copy));
      as_pred[static_cast<std::size_t>(op.id)] = id;
      as_succ[static_cast<std::size_t>(op.id)] = id;
      continue;
    }
    const std::vector<std::int64_t> sizes = SplitBytes(op.bytes, max);
    if (op.kind == OpKind::kRecv) {
      // chunk recvs -> concat; consumers hang off the concat.
      const OpId concat = out.AddCompute(op.name + "/concat", 0.0);
      for (std::size_t c = 0; c < sizes.size(); ++c) {
        const OpId chunk = out.AddRecv(
            op.name + "/chunk" + std::to_string(c), sizes[c], op.param);
        out.AddEdge(chunk, concat);
      }
      as_pred[static_cast<std::size_t>(op.id)] = concat;
      as_succ[static_cast<std::size_t>(op.id)] = concat;  // recvs: no preds
    } else {
      // split -> chunk sends; producers feed the split.
      const OpId split = out.AddCompute(op.name + "/split", 0.0);
      for (std::size_t c = 0; c < sizes.size(); ++c) {
        const OpId chunk = out.AddSend(
            op.name + "/chunk" + std::to_string(c), sizes[c], op.param);
        out.AddEdge(split, chunk);
      }
      as_pred[static_cast<std::size_t>(op.id)] = split;  // sends: no succs
      as_succ[static_cast<std::size_t>(op.id)] = split;
    }
  }

  for (const Op& op : graph.ops()) {
    for (const OpId succ : graph.succs(op.id)) {
      out.AddEdge(as_pred[static_cast<std::size_t>(op.id)],
                  as_succ[static_cast<std::size_t>(succ)]);
    }
  }
  return out;
}

}  // namespace tictac::core
