// Gradient-push ordering (the P3/ByteScheduler-style counterpart of
// TicTac's pull ordering).
//
// bench_pipeline shows the limitation this addresses: in pipelined
// execution, iteration k+1's pull of parameter p waits for p's update,
// which waits for every worker's gradient *push* of p. Backward passes
// produce last-layer gradients first, so front-layer updates — the ones
// the next forward pass needs first — land last, and TicTac's pull gate
// serializes iterations. Prioritizing pushes by the *pull* order (and
// chunking, so small front-layer gradients can jump half-sent large
// tensors) moves front-layer updates earlier and re-opens the pipeline.
#pragma once

#include "core/schedule.h"

namespace tictac::core {

// Returns a copy of `recv_schedule` that additionally assigns every send
// op the normalized pull rank of its parameter: the earlier a parameter
// is needed by the next forward pass, the higher its gradient-push
// priority. Sends whose parameter has no recv keep no priority.
Schedule OrderSends(const Graph& graph, const Schedule& recv_schedule);

}  // namespace tictac::core
