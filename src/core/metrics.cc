#include "core/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace tictac::core {

MakespanBounds ComputeBounds(const Graph& graph, const TimeOracle& oracle) {
  MakespanBounds bounds;
  std::unordered_map<int, double> per_resource;
  for (const Op& op : graph.ops()) {
    const double t = oracle.Time(graph, op.id);
    bounds.upper += t;
    int resource = op.resource;
    if (resource < 0) resource = IsCommunication(op.kind) ? 1 : 0;
    per_resource[resource] += t;
  }
  for (const auto& [resource, total] : per_resource) {
    bounds.lower = std::max(bounds.lower, total);
  }
  return bounds;
}

double Efficiency(const MakespanBounds& bounds, double makespan) {
  const double range = bounds.upper - bounds.lower;
  if (range <= 0.0) return 1.0;
  return (bounds.upper - makespan) / range;
}

double Speedup(const MakespanBounds& bounds) {
  if (bounds.lower <= 0.0) return 0.0;
  return (bounds.upper - bounds.lower) / bounds.lower;
}

}  // namespace tictac::core
