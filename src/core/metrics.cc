#include "core/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace tictac::core {

MakespanBounds ComputeBounds(const Graph& graph, const TimeOracle& oracle) {
  MakespanBounds bounds;
  std::unordered_map<int, double> per_resource;
  for (const Op& op : graph.ops()) {
    const double t = oracle.Time(graph, op.id);
    bounds.upper += t;
    int resource = op.resource;
    if (resource < 0) resource = IsCommunication(op.kind) ? 1 : 0;
    per_resource[resource] += t;
  }
  for (const auto& [resource, total] : per_resource) {
    bounds.lower = std::max(bounds.lower, total);
  }
  return bounds;
}

double Efficiency(const MakespanBounds& bounds, double makespan) {
  const double range = bounds.upper - bounds.lower;
  if (range <= 0.0) return 1.0;
  return (bounds.upper - makespan) / range;
}

double Speedup(const MakespanBounds& bounds) {
  if (bounds.lower <= 0.0) return 0.0;
  return (bounds.upper - bounds.lower) / bounds.lower;
}

double JainFairness(const std::vector<double>& shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!(shares[i] >= 0.0)) {  // negation also rejects NaN
      throw std::invalid_argument("JainFairness: shares[" + std::to_string(i) +
                                  "] must be >= 0, got " +
                                  std::to_string(shares[i]));
    }
    sum += shares[i];
    sum_sq += shares[i] * shares[i];
  }
  if (sum_sq == 0.0) return 1.0;  // empty or all-zero: nothing to divide
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

InterferenceStats ComputeInterference(const std::vector<double>& shared,
                                      const std::vector<double>& isolated) {
  if (shared.empty() || shared.size() != isolated.size()) {
    throw std::invalid_argument(
        "ComputeInterference: need matching non-empty per-job times, got " +
        std::to_string(shared.size()) + " shared vs " +
        std::to_string(isolated.size()) + " isolated");
  }
  InterferenceStats stats;
  stats.slowdown.reserve(shared.size());
  stats.normalized_progress.reserve(shared.size());
  double sum = 0.0;
  double max = 0.0;
  for (std::size_t j = 0; j < shared.size(); ++j) {
    if (!(shared[j] > 0.0) || !(isolated[j] > 0.0)) {
      throw std::invalid_argument(
          "ComputeInterference: job " + std::to_string(j) +
          " iteration times must be > 0, got shared=" +
          std::to_string(shared[j]) + " isolated=" +
          std::to_string(isolated[j]));
    }
    const double slowdown = shared[j] / isolated[j];
    stats.slowdown.push_back(slowdown);
    stats.normalized_progress.push_back(isolated[j] / shared[j]);
    sum += slowdown;
    max = std::max(max, slowdown);
  }
  stats.mean_slowdown = sum / static_cast<double>(shared.size());
  stats.max_slowdown = max;
  stats.fairness = JainFairness(stats.normalized_progress);
  return stats;
}

}  // namespace tictac::core
