// Transfer chunking: split large tensors into bounded-size slices.
//
// TicTac orders whole-tensor transfers; once a multi-hundred-megabyte
// tensor occupies the channel it cannot be preempted, so a late-arriving
// higher-priority transfer waits for the full residual (head-of-line
// blocking). The successor line of work (P3, ByteScheduler) splits
// tensors into chunks so priority decisions apply at chunk granularity.
// ChunkTransfers rewrites a worker graph accordingly; the scheduling
// algorithms and the runtime work on the rewritten graph unchanged.
#pragma once

#include <cstdint>

#include "core/graph.h"

namespace tictac::core {

struct ChunkingOptions {
  // Transfers larger than this are split into ceil(bytes / max) chunks.
  // <= 0 disables chunking (ChunkTransfers becomes the identity copy).
  std::int64_t max_chunk_bytes = 4ll << 20;

  // For callers that mean to chunk (the ir::chunk_transfers pass, spec
  // chunk= values): rejects non-positive sizes with an actionable
  // message, in the ClusterConfig::Validate style. ChunkTransfers itself
  // keeps treating <= 0 as "off" — a valid steady state — so only code
  // paths where chunking was explicitly requested call this. Throws
  // std::invalid_argument.
  void Validate() const;
};

// Returns a graph where every oversized recv is replaced by chunk recvs
// feeding a zero-cost concat compute, and every oversized send by a
// zero-cost split compute feeding chunk sends. Chunk ops inherit the
// original op's param index (they shard to the same PS). All other ops,
// costs and edges are preserved; op ids are NOT stable across the
// rewrite.
Graph ChunkTransfers(const Graph& graph, const ChunkingOptions& options);

}  // namespace tictac::core
