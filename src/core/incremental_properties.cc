#include "core/incremental_properties.h"

#include <algorithm>
#include <cassert>

namespace tictac::core {

IncrementalProperties::IncrementalProperties(const PropertyIndex& index,
                                             const TimeOracle& oracle)
    : index_(&index) {
  // Precondition: recvs have no recv ancestors, so a recv's own M is its
  // transfer time (constant while outstanding) and completed recvs never
  // contribute to P or M+. Tac() routes graphs violating this to the
  // full-recompute reference instead of constructing this state.
  assert(index.recvs_are_roots());
  const Graph& g = index.graph();
  const auto& recvs = index.recvs();

  time_.resize(g.size());
  for (std::size_t id = 0; id < g.size(); ++id) {
    time_[id] = oracle.Time(g, static_cast<OpId>(id));
  }
  recv_time_.resize(recvs.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    recv_time_[i] = time_[static_cast<std::size_t>(recvs[i])];
  }

  outstanding_.assign(recvs.size(), 1);
  outstanding_set_ = RecvSet(recvs.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) outstanding_set_.Set(i);
  remaining_ = recvs.size();
  dirty_flag_.assign(recvs.size(), 0);
  dirty_.reserve(recvs.size());
  surviving_.reserve(recvs.size());

  dep_count_.resize(g.size());
  dep_sum_.assign(g.size(), 0);
  for (std::size_t id = 0; id < g.size(); ++id) {
    const RecvSet& dep = index.dep(static_cast<OpId>(id));
    dep_count_[id] = static_cast<int>(dep.Count());
    dep.ForEach([&](std::size_t ri) {
      dep_sum_[id] += static_cast<std::int64_t>(ri);
    });
  }

  // Initial properties via the reference pass — by construction identical
  // to what the full recompute reports for the all-outstanding set.
  props_ = index.UpdateProperties(
      oracle, std::vector<bool>(recvs.size(), true), &op_M_);
}

void IncrementalProperties::CompleteRecv(std::size_t ri) {
  assert(ri < outstanding_.size() && outstanding_[ri] != 0);
  outstanding_[ri] = 0;
  outstanding_set_.Clear(ri);
  props_[ri] = RecvProperties{};
  --remaining_;
  dirty_.clear();

  index_->consumers(ri).ForEach([&](std::size_t id) {
    const int d = --dep_count_[id];
    dep_sum_[id] -= static_cast<std::int64_t>(ri);
    if (d == 0) return;  // its whole P contribution went to `ri` itself
    if (d == 1) {
      // The op leaves the M+ pool and joins the P pool of its one
      // surviving recv; both of that recv's properties need a rebuild.
      const auto q = static_cast<std::size_t>(dep_sum_[id]);
      if (dirty_flag_[q] == 0) {
        dirty_flag_[q] = 1;
        dirty_.push_back(q);
      }
      return;
    }
    // d >= 2: still an M+ contributor, but its outstanding communication
    // time shrank. Re-sum M over dep ∩ outstanding — the masked scan
    // visits the surviving bits in the full pass's order, so the sum is
    // bit-identical — then fold the new value into the M+ of every recv
    // the op still depends on: a pure min() update, exact because
    // contributions only ever decrease.
    double m = 0.0;
    surviving_.clear();
    index_->dep(static_cast<OpId>(id))
        .ForEachAnd(outstanding_set_, [&](std::size_t r) {
          m += recv_time_[r];
          surviving_.push_back(static_cast<std::uint32_t>(r));
        });
    op_M_[id] = m;
    for (const std::uint32_t r : surviving_) {
      if (m < props_[r].Mplus) props_[r].Mplus = m;
    }
  });

  // Rebuilds run after every count/M update so they see the final state.
  for (const std::size_t q : dirty_) {
    dirty_flag_[q] = 0;
    RecomputeRecv(q);
  }
}

void IncrementalProperties::RecomputeRecv(std::size_t q) {
  assert(outstanding_[q] != 0);
  double p = 0.0;
  double mplus = kInfinity;
  index_->consumers(q).ForEach([&](std::size_t id) {
    const int d = dep_count_[id];
    if (d == 1) {
      p += time_[id];  // q is its only outstanding dependency
    } else if (d >= 2) {
      mplus = std::min(mplus, op_M_[id]);
    }
  });
  props_[q].P = p;
  props_[q].Mplus = mplus;
}

}  // namespace tictac::core
