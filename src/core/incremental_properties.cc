#include "core/incremental_properties.h"

#include <algorithm>
#include <cassert>

#include "core/tac.h"

namespace tictac::core {

IncrementalProperties::IncrementalProperties(const PropertyIndex& index,
                                             const TimeOracle& oracle) {
  // Precondition: recvs have no recv ancestors, so a recv's own M is its
  // transfer time (constant while outstanding) and completed recvs never
  // contribute to P or M+. Tac() routes graphs violating this to the
  // full-recompute reference instead of constructing this state.
  assert(index.recvs_are_roots());
  const Graph& g = index.graph();
  const auto& recvs = index.recvs();

  time_.resize(g.size());
  for (std::size_t id = 0; id < g.size(); ++id) {
    time_[id] = oracle.Time(g, static_cast<OpId>(id));
  }
  recv_time_.resize(recvs.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    recv_time_[i] = time_[static_cast<std::size_t>(recvs[i])];
  }

  outstanding_.assign(recvs.size(), 1);
  remaining_ = recvs.size();
  dirty_flag_.assign(recvs.size(), 0);
  dirty_.reserve(recvs.size());
  surviving_.reserve(recvs.size());

  // Sparse mirrors of the dep/consumer bitsets. The bitset scans cost
  // O(bits/64) words regardless of population; at 100k recvs that is
  // ~1.6k words per op per completion — the dominant cost of the whole
  // schedule. The mirrors are built once here (ForEach visits bits in
  // increasing order, so iterating them reproduces the bitset scan
  // order exactly) and CompleteRecv touches only real members.
  dep_count_.resize(g.size());
  dep_sum_.assign(g.size(), 0);
  dep_recvs_.resize(g.size());
  for (std::size_t id = 0; id < g.size(); ++id) {
    const RecvSet& dep = index.dep(static_cast<OpId>(id));
    dep_count_[id] = static_cast<int>(dep.Count());
    dep_recvs_[id].reserve(static_cast<std::size_t>(dep_count_[id]));
    dep.ForEach([&](std::size_t ri) {
      dep_sum_[id] += static_cast<std::int64_t>(ri);
      dep_recvs_[id].push_back(static_cast<std::uint32_t>(ri));
    });
  }
  consumer_ops_.resize(recvs.size());
  for (std::size_t ri = 0; ri < recvs.size(); ++ri) {
    const RecvSet& consumers = index.consumers(ri);
    consumer_ops_[ri].reserve(consumers.Count());
    consumers.ForEach([&](std::size_t id) {
      consumer_ops_[ri].push_back(static_cast<std::uint32_t>(id));
    });
  }

  // Initial properties via the reference pass — by construction identical
  // to what the full recompute reports for the all-outstanding set.
  props_ = index.UpdateProperties(
      oracle, std::vector<bool>(recvs.size(), true), &op_M_);

  const std::size_t blocks =
      (recvs.size() + (std::size_t{1} << kBlockShift) - 1) >> kBlockShift;
  blk_dirty_.assign(blocks, 1);  // refreshed lazily on the first BestRecv
  blk_count_.resize(blocks);
  blk_max_p_.resize(blocks);
  blk_min_mplus_.resize(blocks);
  blk_min_u_.resize(blocks);
  blk_max_m_.resize(blocks);
  blk_any_m_eq_p_.resize(blocks);

  m_sorted_.reserve(recvs.size());
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    m_sorted_.emplace_back(recv_time_[i], static_cast<std::uint32_t>(i));
  }
  std::sort(m_sorted_.begin(), m_sorted_.end());
}

void IncrementalProperties::CompleteRecv(std::size_t ri) {
  assert(ri < outstanding_.size() && outstanding_[ri] != 0);
  outstanding_[ri] = 0;
  props_[ri] = RecvProperties{};
  MarkBlockDirty(ri);
  --remaining_;
  dirty_.clear();

  for (const std::uint32_t id : consumer_ops_[ri]) {
    const int d = --dep_count_[id];
    dep_sum_[id] -= static_cast<std::int64_t>(ri);
    if (d == 0) continue;  // its whole P contribution went to `ri` itself
    if (d == 1) {
      // The op leaves the M+ pool and joins the P pool of its one
      // surviving recv; both of that recv's properties need a rebuild.
      const auto q = static_cast<std::size_t>(dep_sum_[id]);
      if (dirty_flag_[q] == 0) {
        dirty_flag_[q] = 1;
        dirty_.push_back(q);
      }
      continue;
    }
    // d >= 2: still an M+ contributor, but its outstanding communication
    // time shrank. Re-sum M over dep ∩ outstanding — the sparse list is
    // in increasing recv order, the full pass's order, so the sum is
    // bit-identical — then fold the new value into the M+ of every recv
    // the op still depends on: a pure min() update, exact because
    // contributions only ever decrease.
    double m = 0.0;
    surviving_.clear();
    for (const std::uint32_t r : dep_recvs_[id]) {
      if (outstanding_[r] == 0) continue;
      m += recv_time_[r];
      surviving_.push_back(r);
    }
    op_M_[id] = m;
    for (const std::uint32_t r : surviving_) {
      if (m < props_[r].Mplus) {
        props_[r].Mplus = m;
        // Lowering a member's M+ moves the block's min to
        // min(old min, m) exactly, so the aggregate is maintained in
        // O(1) instead of dirtying the block — this fold touches most
        // outstanding recvs every round, and re-scanning every touched
        // block would cost more than the pruning saves.
        if (m < blk_min_mplus_[r >> kBlockShift]) {
          blk_min_mplus_[r >> kBlockShift] = m;
        }
      }
    }
  }

  // Rebuilds run after every count/M update so they see the final state.
  for (const std::size_t q : dirty_) {
    dirty_flag_[q] = 0;
    RecomputeRecv(q);
  }
}

void IncrementalProperties::RecomputeRecv(std::size_t q) {
  assert(outstanding_[q] != 0);
  double p = 0.0;
  double mplus = kInfinity;
  for (const std::uint32_t id : consumer_ops_[q]) {
    const int d = dep_count_[id];
    if (d == 1) {
      p += time_[id];  // q is its only outstanding dependency
    } else if (d >= 2) {
      mplus = std::min(mplus, op_M_[id]);
    }
  }
  props_[q].P = p;
  props_[q].Mplus = mplus;
  MarkBlockDirty(q);
}

void IncrementalProperties::RefreshBlock(std::size_t blk) {
  const std::size_t lo = blk << kBlockShift;
  const std::size_t hi =
      std::min(props_.size(), lo + (std::size_t{1} << kBlockShift));
  int count = 0;
  double max_p = -kInfinity;
  double min_mplus = kInfinity;
  double min_u = kInfinity;
  double max_m = -kInfinity;
  char any_m_eq_p = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (outstanding_[i] == 0) continue;
    ++count;
    max_m = std::max(max_m, props_[i].M);
    max_p = std::max(max_p, props_[i].P);
    min_mplus = std::min(min_mplus, props_[i].Mplus);
    if (props_[i].M < props_[i].P) min_u = std::min(min_u, props_[i].M);
    if (props_[i].M == props_[i].P) any_m_eq_p = 1;
  }
  blk_count_[blk] = count;
  blk_max_p_[blk] = max_p;
  blk_min_mplus_[blk] = min_mplus;
  blk_min_u_[blk] = min_u;
  blk_max_m_[blk] = max_m;
  blk_any_m_eq_p_[blk] = any_m_eq_p;
  blk_dirty_[blk] = 0;
}

namespace {
// Heterogeneous comparator for equal_range over (M, idx) pairs keyed
// by M alone.
struct MKeyLess {
  bool operator()(const std::pair<double, std::uint32_t>& a, double b) const {
    return a.first < b;
  }
  bool operator()(double a, const std::pair<double, std::uint32_t>& b) const {
    return a < b.first;
  }
};
}  // namespace

int IncrementalProperties::BestRecv() {
  const std::size_t n = props_.size();
  int best = -1;
  // Cached equal-M range for the current best's M (recomputed whenever
  // the best — and hence b.M — changes mid-fold).
  double eq_key = kInfinity;
  auto eq_lo = m_sorted_.cend();
  auto eq_hi = m_sorted_.cend();
  for (std::size_t blk = 0; blk < blk_dirty_.size(); ++blk) {
    if (blk_dirty_[blk] != 0) RefreshBlock(blk);
    if (blk_count_[blk] == 0) continue;
    const std::size_t lo = blk << kBlockShift;
    const std::size_t hi = std::min(n, lo + (std::size_t{1} << kBlockShift));
    if (best >= 0) {
      // Skip when no member can beat the best via any TacBefore path
      // (the exact case split in the BestRecv declaration comment).
      const RecvProperties& b = props_[static_cast<std::size_t>(best)];
      const bool no_m_path = blk_min_u_[blk] >= b.M;
      const bool no_p_path = b.P >= b.M || blk_max_p_[blk] <= b.P;
      if (no_m_path && no_p_path) {
        // Strict paths are closed; a tie needs exact lhs == rhs with a
        // strictly smaller M+ — check the four equality combos.
        bool tie = false;
        if (blk_min_mplus_[blk] < b.Mplus) {
          tie = b.P == b.M ||
                (b.P <= b.M && blk_max_p_[blk] >= b.P &&
                 blk_max_m_[blk] >= b.P) ||
                blk_any_m_eq_p_[blk] != 0;
          if (!tie && b.M <= b.P) {
            // M_i == b.M combo: exact lookup in the static M table.
            if (b.M != eq_key) {
              const auto range = std::equal_range(
                  m_sorted_.cbegin(), m_sorted_.cend(), b.M, MKeyLess{});
              eq_key = b.M;
              eq_lo = range.first;
              eq_hi = range.second;
            }
            for (auto it = eq_lo; it != eq_hi; ++it) {
              const std::size_t idx = it->second;
              if (idx >= lo && idx < hi && outstanding_[idx] != 0) {
                tie = true;
                break;
              }
            }
          }
        }
        if (!tie) continue;
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      if (outstanding_[i] == 0) continue;
      if (best < 0 ||
          TacBefore(props_[i], props_[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

}  // namespace tictac::core
