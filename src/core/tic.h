// Algorithm 2 — Timing-Independent Communication scheduling (TIC).
//
// TIC prioritizes the transfers that unblock computation after the least
// amount of communication, using DAG structure alone: every op is costed
// with the general time oracle (recv = 1, everything else = 0), and each
// recv's priority is its impending communication load M+ (the minimum
// number of outstanding transfers needed to activate some multi-recv
// computation it participates in).
#pragma once

#include "core/properties.h"
#include "core/schedule.h"

namespace tictac::core {

// Computes TIC priorities for all recv ops of `graph`.
//
// Recvs whose M+ is infinite (no multi-recv consumer anywhere downstream;
// only possible in degenerate DAGs without a common sink) are ranked after
// every finite M+ value. Equal M+ values share a priority number, which the
// paper permits when relative order is insignificant.
Schedule Tic(const Graph& graph);

// Same, reusing a prebuilt dependency index.
Schedule Tic(const PropertyIndex& index);

}  // namespace tictac::core
