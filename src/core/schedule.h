// Priority schedules (Section 3.1).
//
// A schedule assigns positive priority numbers to ops: a *lower* priority
// number means *higher* priority. Ops may share a number (relative order
// insignificant) or carry no number (unordered). At runtime a resource
// picks randomly among ready ops holding the lowest priority number plus
// those without any number; the result always respects DAG order.
#pragma once

#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"

namespace tictac::core {

class Schedule {
 public:
  static constexpr int kNoPriority = std::numeric_limits<int>::max();

  Schedule() = default;
  explicit Schedule(std::size_t num_ops)
      : priority_(num_ops, kNoPriority) {}

  // Ops beyond the constructed size — every op, for a default-constructed
  // Schedule — report kNoPriority instead of reading out of bounds, so an
  // empty Schedule uniformly means "nothing is prioritized".
  int priority(OpId op) const {
    const auto i = static_cast<std::size_t>(op);
    return i < priority_.size() ? priority_[i] : kNoPriority;
  }
  bool HasPriority(OpId op) const { return priority(op) != kNoPriority; }
  // Writes outside the constructed size are a caller bug (a schedule
  // sized for the wrong graph); fail loudly in every build type rather
  // than corrupt memory.
  void SetPriority(OpId op, int priority) {
    const auto i = static_cast<std::size_t>(op);
    if (i >= priority_.size()) {
      throw std::out_of_range("Schedule::SetPriority: op " +
                              std::to_string(op) + " outside schedule of " +
                              std::to_string(priority_.size()) + " ops");
    }
    priority_[i] = priority;
  }

  std::size_t size() const { return priority_.size(); }

  // Recv ops sorted by (priority, op id). Ops without priority sort last.
  // This is the total order the enforcement module gates transfers with.
  std::vector<OpId> RecvOrder(const Graph& graph) const;

  // Normalized priorities for enforcement (§5.1): the recv order above
  // re-numbered sequentially in [0, n). The normalized number of a
  // transfer equals the count of transfers that must complete before it.
  std::unordered_map<OpId, int> NormalizedRecvRank(const Graph& graph) const;

  // True if every recv op carries a priority.
  bool CoversAllRecvs(const Graph& graph) const;

 private:
  std::vector<int> priority_;
};

}  // namespace tictac::core
