// Priority schedules (Section 3.1).
//
// A schedule assigns positive priority numbers to ops: a *lower* priority
// number means *higher* priority. Ops may share a number (relative order
// insignificant) or carry no number (unordered). At runtime a resource
// picks randomly among ready ops holding the lowest priority number plus
// those without any number; the result always respects DAG order.
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "core/graph.h"

namespace tictac::core {

class Schedule {
 public:
  static constexpr int kNoPriority = std::numeric_limits<int>::max();

  Schedule() = default;
  explicit Schedule(std::size_t num_ops)
      : priority_(num_ops, kNoPriority) {}

  int priority(OpId op) const {
    return priority_[static_cast<std::size_t>(op)];
  }
  bool HasPriority(OpId op) const { return priority(op) != kNoPriority; }
  void SetPriority(OpId op, int priority) {
    priority_[static_cast<std::size_t>(op)] = priority;
  }

  std::size_t size() const { return priority_.size(); }

  // Recv ops sorted by (priority, op id). Ops without priority sort last.
  // This is the total order the enforcement module gates transfers with.
  std::vector<OpId> RecvOrder(const Graph& graph) const;

  // Normalized priorities for enforcement (§5.1): the recv order above
  // re-numbered sequentially in [0, n). The normalized number of a
  // transfer equals the count of transfers that must complete before it.
  std::unordered_map<OpId, int> NormalizedRecvRank(const Graph& graph) const;

  // True if every recv op carries a priority.
  bool CoversAllRecvs(const Graph& graph) const;

 private:
  std::vector<int> priority_;
};

}  // namespace tictac::core
