// Model zoo: the ten DNNs of the paper's Table 1.
//
// We regenerate each network as a synthetic architecture whose scheduling-
// relevant characteristics match the paper exactly: number of parameters,
// aggregate parameter bytes, op counts in inference and training graphs,
// and the standard batch size. The DAG shape follows the model family
// (sequential chain, Inception-style branch-and-concat modules, or ResNet
// blocks with skip connections), and per-op compute costs follow the
// model's published per-sample FLOP budget. See DESIGN.md §1 for why this
// substitution preserves the paper's scheduling behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tictac::models {

enum class Family {
  kChain,      // AlexNet, VGG: sequential conv/fc stack
  kInception,  // GoogLeNet family: 4-way branch modules joined by concat
  kResNet,     // residual blocks with skip connections
};

const char* ToString(Family family);

// Static characteristics of one model (Table 1 plus a FLOP budget).
struct ModelInfo {
  std::string name;
  Family family = Family::kChain;
  int num_params = 0;           // Table 1 "#Par"
  double total_param_mib = 0;   // Table 1 "Total Par Size (MiB)"
  int ops_inference = 0;        // Table 1 "#Ops Inference"
  int ops_training = 0;         // Table 1 "#Ops Training"
  int standard_batch = 0;       // Table 1 "Batch Size"
  double gflops_per_sample = 0; // forward-pass cost per input sample
  // Shape of the parameter-size profile: bytes of param i grow like
  // ((i+1)/n)^alpha. Chain models are back-heavy (fully-connected
  // classifier dominates); Inception/ResNet are flatter.
  double param_profile_alpha = 1.5;

  std::int64_t total_param_bytes() const {
    return static_cast<std::int64_t>(total_param_mib * 1024.0 * 1024.0);
  }
};

// All ten models, in Table 1 order.
const std::vector<ModelInfo>& ModelZoo();

// Lookup by name (exact match, e.g. "ResNet-50 v2"). Throws
// std::out_of_range for unknown names.
const ModelInfo& FindModel(std::string_view name);

// Deterministic per-parameter byte sizes: exactly info.num_params entries,
// each a positive multiple of 4, summing to info.total_param_bytes().
std::vector<std::int64_t> ParamSizes(const ModelInfo& info);

}  // namespace tictac::models
