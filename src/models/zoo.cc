#include "models/zoo.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tictac::models {

const char* ToString(Family family) {
  switch (family) {
    case Family::kChain: return "chain";
    case Family::kInception: return "inception";
    case Family::kResNet: return "resnet";
  }
  return "unknown";
}

const std::vector<ModelInfo>& ModelZoo() {
  // #Par / size / op counts / batch are Table 1 of the paper verbatim.
  // gflops_per_sample is the published forward cost of each architecture
  // at 224x224 (299x299 for Inception v3), used only to set the relative
  // computation/communication ratio.
  static const std::vector<ModelInfo> kZoo = {
      {"AlexNet v2", Family::kChain, 16, 191.89, 235, 483, 512, 0.7, 4.0},
      {"Inception v1", Family::kInception, 116, 25.24, 1114, 2246, 128, 1.5,
       1.2},
      {"Inception v2", Family::kInception, 141, 42.64, 1369, 2706, 128, 2.0,
       1.2},
      {"Inception v3", Family::kInception, 196, 103.54, 1904, 3672, 32, 5.7,
       1.2},
      {"ResNet-50 v1", Family::kResNet, 108, 97.39, 1114, 2096, 32, 4.1, 1.5},
      {"ResNet-101 v1", Family::kResNet, 210, 169.74, 2083, 3898, 64, 7.8,
       1.5},
      {"ResNet-50 v2", Family::kResNet, 125, 97.45, 1423, 2813, 64, 4.1, 1.5},
      {"ResNet-101 v2", Family::kResNet, 244, 169.86, 2749, 5380, 32, 7.8,
       1.5},
      {"VGG-16", Family::kChain, 32, 527.79, 388, 758, 32, 15.5, 4.0},
      {"VGG-19", Family::kChain, 38, 548.05, 442, 857, 32, 19.6, 4.0},
  };
  return kZoo;
}

const ModelInfo& FindModel(std::string_view name) {
  for (const ModelInfo& info : ModelZoo()) {
    if (info.name == name) return info;
  }
  throw std::out_of_range("unknown model: " + std::string(name));
}

std::vector<std::int64_t> ParamSizes(const ModelInfo& info) {
  const int n = info.num_params;
  assert(n > 0);
  const std::int64_t total = info.total_param_bytes();

  // Profile weights ((i+1)/n)^alpha, plus a floor so early parameters
  // (conv kernels, biases) keep realistic non-trivial sizes, and a
  // deterministic per-parameter modulation: real networks interleave
  // large kernels with small biases/scales, so sizes must not grow
  // monotonically with depth (otherwise "smallest transfer first" would
  // coincide with layer order, which it does not in practice).
  auto modulation = [](int i) {
    std::uint64_t x = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 1;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return 0.55 + 0.9 * static_cast<double>((x ^ (x >> 31)) >> 11) /
                      9007199254740992.0;  // in [0.55, 1.45)
  };
  std::vector<double> weight(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i + 1) / static_cast<double>(n);
    weight[static_cast<std::size_t>(i)] =
        (std::pow(frac, info.param_profile_alpha) + 0.02) * modulation(i);
    sum += weight[static_cast<std::size_t>(i)];
  }

  std::vector<std::int64_t> bytes(static_cast<std::size_t>(n));
  std::int64_t assigned = 0;
  for (int i = 0; i < n; ++i) {
    // Multiples of 4 (float32 elements); at least one element.
    auto b = static_cast<std::int64_t>(
        static_cast<double>(total) * weight[static_cast<std::size_t>(i)] /
        sum);
    b = std::max<std::int64_t>(4, (b / 4) * 4);
    bytes[static_cast<std::size_t>(i)] = b;
    assigned += b;
  }
  // Fold the rounding residue into the largest (last) parameter so the
  // total matches Table 1 exactly.
  bytes[static_cast<std::size_t>(n - 1)] += total - assigned;
  assert(bytes[static_cast<std::size_t>(n - 1)] > 0);
  return bytes;
}

}  // namespace tictac::models
