#include "models/builder.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace tictac::models {
namespace {

using core::Graph;
using core::OpId;

// Per-layer share of the forward FLOP budget. Chain models (AlexNet/VGG)
// are front-heavy — early convolutions over large spatial extents dominate
// — while Inception/ResNet spread work more evenly.
std::vector<double> LayerWeights(const ModelInfo& info, int layers) {
  std::vector<double> w(static_cast<std::size_t>(layers));
  double sum = 0.0;
  for (int i = 0; i < layers; ++i) {
    const double frac =
        layers > 1 ? static_cast<double>(i) / static_cast<double>(layers - 1)
                   : 0.0;
    w[static_cast<std::size_t>(i)] =
        info.family == Family::kChain ? std::exp(-1.5 * frac) + 0.2 : 1.0;
    sum += w[static_cast<std::size_t>(i)];
  }
  for (double& x : w) x /= sum;
  return w;
}

// Splits `total` into `bins` integers differing by at most one.
std::vector<int> SpreadEvenly(int total, int bins) {
  assert(bins > 0);
  std::vector<int> out(static_cast<std::size_t>(bins), total / bins);
  for (int i = 0; i < total % bins; ++i) out[static_cast<std::size_t>(i)]++;
  return out;
}

// Appends a chain of `count` auxiliary compute ops after `head`, splitting
// `total_cost` across them. Returns the new chain tail.
OpId AppendAuxChain(Graph& graph, OpId head, int count, double total_cost,
                    const std::string& prefix) {
  OpId tail = head;
  for (int i = 0; i < count; ++i) {
    const OpId aux = graph.AddCompute(prefix + "/aux" + std::to_string(i),
                                      total_cost / count);
    graph.AddEdge(tail, aux);
    tail = aux;
  }
  return tail;
}

}  // namespace

double TotalComputeGflops(const ModelInfo& info, const BuildOptions& options) {
  const double batch = info.standard_batch * options.batch_factor;
  const double forward = info.gflops_per_sample * batch;
  return options.training ? forward * 3.0 : forward;  // backward ~ 2x forward
}

core::Graph BuildWorkerGraph(const ModelInfo& info,
                             const BuildOptions& options) {
  const int P = info.num_params;
  const int L = (P + 1) / 2;  // two parameters (weight, bias/scale) per layer
  if (P <= 0) throw std::invalid_argument("model has no parameters");

  const std::vector<std::int64_t> param_bytes = ParamSizes(info);
  const std::vector<double> weight = LayerWeights(info, L);
  const double batch = info.standard_batch * options.batch_factor;
  const double fwd_cost = info.gflops_per_sample * batch;

  // --- skeleton size, then padding budget --------------------------------
  int joins = 0;  // concat (inception) or residual-add (resnet) ops
  if (info.family == Family::kInception) joins = (L + 3) / 4;
  if (info.family == Family::kResNet) joins = (L + 1) / 2;
  const int base_inference = 1 /*input*/ + L /*cores*/ + joins +
                             1 /*classifier*/ + P /*recvs*/;
  const int pad_inference = info.ops_inference - base_inference;
  if (pad_inference < 0) {
    throw std::logic_error(info.name + ": inference skeleton exceeds Table 1");
  }
  const std::vector<int> aux_fwd = SpreadEvenly(pad_inference, L);

  Graph graph;

  // --- recvs (roots) ------------------------------------------------------
  std::vector<OpId> recv(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    recv[static_cast<std::size_t>(p)] =
        graph.AddRecv("recv/p" + std::to_string(p),
                      param_bytes[static_cast<std::size_t>(p)], p);
  }

  // --- forward pass --------------------------------------------------------
  const OpId input = graph.AddCompute("input", 0.002 * fwd_cost);

  std::vector<OpId> core(static_cast<std::size_t>(L));
  std::vector<OpId> layer_out(static_cast<std::size_t>(L));
  auto build_layer = [&](int layer, OpId upstream) {
    const std::string prefix = "layer" + std::to_string(layer);
    const double share = 0.92 * fwd_cost * weight[static_cast<std::size_t>(layer)];
    const OpId c = graph.AddCompute(prefix + "/core", 0.85 * share);
    graph.AddEdge(upstream, c);
    for (int p = 2 * layer; p < std::min(P, 2 * layer + 2); ++p) {
      graph.AddEdge(recv[static_cast<std::size_t>(p)], c);
    }
    core[static_cast<std::size_t>(layer)] = c;
    layer_out[static_cast<std::size_t>(layer)] = AppendAuxChain(
        graph, c, aux_fwd[static_cast<std::size_t>(layer)], 0.15 * share,
        prefix);
  };

  OpId cursor = input;  // output of the previous structural unit
  const double join_cost = joins > 0 ? 0.002 * fwd_cost / joins : 0.0;
  switch (info.family) {
    case Family::kChain:
      for (int l = 0; l < L; ++l) {
        build_layer(l, cursor);
        cursor = layer_out[static_cast<std::size_t>(l)];
      }
      break;
    case Family::kInception:
      for (int module = 0; module * 4 < L; ++module) {
        const int lo = module * 4;
        const int hi = std::min(L, lo + 4);
        const OpId concat =
            graph.AddCompute("module" + std::to_string(module) + "/concat",
                             join_cost);
        for (int l = lo; l < hi; ++l) {
          build_layer(l, cursor);  // branches fan out of the module input
          graph.AddEdge(layer_out[static_cast<std::size_t>(l)], concat);
        }
        cursor = concat;
      }
      break;
    case Family::kResNet:
      for (int block = 0; block * 2 < L; ++block) {
        const int lo = block * 2;
        const int hi = std::min(L, lo + 2);
        const OpId block_in = cursor;
        OpId through = block_in;
        for (int l = lo; l < hi; ++l) {
          build_layer(l, through);
          through = layer_out[static_cast<std::size_t>(l)];
        }
        const OpId add = graph.AddCompute(
            "block" + std::to_string(block) + "/add", join_cost);
        graph.AddEdge(through, add);
        graph.AddEdge(block_in, add);  // skip connection
        cursor = add;
      }
      break;
  }

  const OpId classifier = graph.AddCompute("classifier", 0.002 * fwd_cost);
  graph.AddEdge(cursor, classifier);

  if (!options.training) {
    assert(static_cast<int>(graph.size()) == info.ops_inference);
    return graph;
  }

  // --- backward pass -------------------------------------------------------
  const int base_backward = 1 /*loss*/ + L /*grad cores*/ + P /*param grads*/ +
                            P /*sends*/;
  const int pad_training =
      info.ops_training - info.ops_inference - base_backward;
  if (pad_training < 0) {
    throw std::logic_error(info.name + ": training skeleton exceeds Table 1");
  }
  const std::vector<int> aux_bwd = SpreadEvenly(pad_training, L);

  const double bwd_cost = 2.0 * fwd_cost;
  const OpId loss = graph.AddCompute("loss", 0.002 * bwd_cost);
  graph.AddEdge(classifier, loss);

  OpId grad_cursor = loss;
  for (int l = L - 1; l >= 0; --l) {
    const std::string prefix = "grad" + std::to_string(l);
    const double share = 0.9 * bwd_cost * weight[static_cast<std::size_t>(l)];
    const OpId g = graph.AddCompute(prefix + "/core", 0.75 * share);
    graph.AddEdge(grad_cursor, g);
    // Gradient needs the layer's forward activation.
    graph.AddEdge(core[static_cast<std::size_t>(l)], g);
    grad_cursor = AppendAuxChain(graph, g,
                                 aux_bwd[static_cast<std::size_t>(l)],
                                 0.05 * share, prefix);
    for (int p = 2 * l; p < std::min(P, 2 * l + 2); ++p) {
      const OpId pg = graph.AddCompute("pgrad/p" + std::to_string(p),
                                       0.10 * share);
      graph.mutable_op(pg).param = p;
      graph.AddEdge(g, pg);
      const OpId send =
          graph.AddSend("send/p" + std::to_string(p),
                        param_bytes[static_cast<std::size_t>(p)], p);
      graph.AddEdge(pg, send);
    }
  }

  assert(static_cast<int>(graph.size()) == info.ops_training);
  return graph;
}

}  // namespace tictac::models
