// Random layered DAG generator for property-based testing and fuzzing.
//
// Produces graphs with the same structural contract as real worker
// partitions — recv ops are roots, computes form a layered DAG with a
// common sink, optional sends are leaves — but with randomized shape,
// fan-in, costs, and transfer sizes. Deterministic in the seed.
#pragma once

#include <cstdint>

#include "core/graph.h"

namespace tictac::models {

struct RandomDagOptions {
  int num_recvs = 6;
  int num_computes = 12;
  int num_layers = 4;          // computes are spread across layers
  double edge_probability = 0.4;  // extra compute->compute edges
  bool with_sends = false;     // one send per recv, fed from the last layer
  double max_cost = 4.0;       // compute cost ~ U(0.1, max_cost)
  std::int64_t max_bytes = 1 << 20;  // transfer size ~ U(1KiB, max_bytes)
};

// Invariants of the returned graph (asserted in tests):
//   * acyclic; recvs are roots; every recv has at least one consumer;
//   * a single terminal compute (the "sink") every compute can reach;
//   * if with_sends, exactly num_recvs sends, all leaves.
core::Graph MakeRandomDag(const RandomDagOptions& options,
                          std::uint64_t seed);

}  // namespace tictac::models
