#include "models/random_dag.h"

#include <cassert>
#include <vector>

#include "util/rng.h"

namespace tictac::models {

core::Graph MakeRandomDag(const RandomDagOptions& options,
                          std::uint64_t seed) {
  assert(options.num_recvs >= 1);
  assert(options.num_computes >= 2);
  assert(options.num_layers >= 1);
  util::Rng rng(seed);
  core::Graph g;

  std::vector<core::OpId> recvs;
  recvs.reserve(static_cast<std::size_t>(options.num_recvs));
  for (int r = 0; r < options.num_recvs; ++r) {
    const auto bytes = static_cast<std::int64_t>(
        rng.UniformInt(1024, options.max_bytes));
    recvs.push_back(g.AddRecv("r" + std::to_string(r), bytes, r));
  }

  // Computes spread across layers; the final compute is the common sink.
  const int body = options.num_computes - 1;
  std::vector<std::vector<core::OpId>> layer(
      static_cast<std::size_t>(options.num_layers));
  std::vector<core::OpId> computes;
  for (int c = 0; c < body; ++c) {
    // The first compute anchors layer 0 so the body always has a root
    // layer; every compute belongs to exactly one layer (acyclicity by
    // construction).
    const int l = c == 0 ? 0
                         : static_cast<int>(rng.Index(
                               static_cast<std::size_t>(options.num_layers)));
    const core::OpId id =
        g.AddCompute("c" + std::to_string(c), rng.Uniform(0.1, options.max_cost));
    layer[static_cast<std::size_t>(l)].push_back(id);
    computes.push_back(id);
  }

  // Each compute gets at least one predecessor: layer-0 computes read a
  // random recv; deeper computes read something from an earlier layer
  // (and maybe a recv too).
  for (std::size_t l = 0; l < layer.size(); ++l) {
    for (const core::OpId id : layer[l]) {
      if (l == 0) {
        g.AddEdge(recvs[rng.Index(recvs.size())], id);
      } else {
        // Predecessor from a random earlier layer with members.
        for (int attempts = 0; attempts < 16; ++attempts) {
          const auto& earlier = layer[rng.Index(l)];
          if (!earlier.empty()) {
            g.AddEdge(earlier[rng.Index(earlier.size())], id);
            break;
          }
        }
        if (g.preds(id).empty()) {
          g.AddEdge(recvs[rng.Index(recvs.size())], id);
        }
        if (rng.Chance(0.5)) {
          g.AddEdge(recvs[rng.Index(recvs.size())], id);
        }
      }
      // Extra intra-body edges for density (always earlier layer -> later,
      // so acyclicity holds by construction).
      if (l > 0 && rng.Chance(options.edge_probability)) {
        const auto& earlier = layer[rng.Index(l)];
        if (!earlier.empty()) {
          g.AddEdge(earlier[rng.Index(earlier.size())], id);
        }
      }
    }
  }

  // Every recv must have a consumer.
  for (const core::OpId r : recvs) {
    if (g.succs(r).empty()) {
      g.AddEdge(r, computes[rng.Index(computes.size())]);
    }
  }

  // Common sink: consumes every compute without successors (and thus,
  // transitively, every recv).
  const core::OpId sink =
      g.AddCompute("sink", rng.Uniform(0.1, options.max_cost));
  for (const core::OpId id : computes) {
    if (g.succs(id).empty()) g.AddEdge(id, sink);
  }

  if (options.with_sends) {
    for (int r = 0; r < options.num_recvs; ++r) {
      const auto bytes = g.op(recvs[static_cast<std::size_t>(r)]).bytes;
      const core::OpId send = g.AddSend("s" + std::to_string(r), bytes, r);
      g.AddEdge(sink, send);
    }
  }
  assert(g.IsAcyclic());
  return g;
}

}  // namespace tictac::models
