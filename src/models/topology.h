// Synthetic datacenter topologies for the flow-level contention model
// (DESIGN.md §11).
//
// The PS-fabric lowering (runtime/lowering.h) gives every worker-PS
// pair-channel a static bandwidth/T slice. BuildFatTreeFlowNetwork turns
// the same fabric into an explicit capacity graph the simulator's
// max-min flow model can share dynamically:
//
//   * per-host NIC links — one ingress and one egress per worker and per
//     PS, each at the fabric's full line rate;
//   * an optional two-level fat tree — hosts are split contiguously
//     across `pods` leaf pods, and traffic between pods crosses the
//     source pod's core uplink and the destination pod's core downlink,
//     each provisioned at (pod host count x line rate) / oversubscription.
//
// With pods <= 1 (or every pair pod-local) the model reduces to pure NIC
// contention; a fully-loaded NIC then reproduces the static split
// exactly, which is the differential anchor tests/flow_test.cc pins.
#pragma once

#include "sim/flow.h"

namespace tictac::models {

// One PS fabric's resource block, in the shared layout of
// runtime/lowering.h (and of merge_jobs for co-located jobs, where
// num_workers is the merged total T):
//   [base, base+T)                 worker compute
//   [base+T, base+T+T*S)           downlink channels, base+T + w*S + s
//   [base+T+T*S, base+T+2*T*S)     uplink channels, base+T+T*S + w*S + s
//   [base+T+2*T*S, ...+S)          PS CPUs
// Channel durations were computed against the static per-channel rate
// bandwidth_bps / num_workers, which becomes the channels' nominal rate
// in the flow model. `bandwidth_bps` is the ORIGINAL line rate of the
// fabric hardware — for merged multi-job configs, undo the W_j/T
// contention prescale before passing it here.
struct FabricShape {
  int num_workers = 0;
  int num_ps = 0;
  double bandwidth_bps = 0.0;
  int resource_base = 0;
};

struct FatTreeOptions {
  // Leaf pods the fabric's hosts (workers first, then PSes, each split
  // contiguously) are distributed across. 1 = a single non-blocking
  // switch: no core links, NIC contention only.
  int pods = 1;
  // Core oversubscription ratio: a pod's core uplink/downlink carries
  // (hosts in pod x line rate) / oversubscription. 1 = full bisection
  // bandwidth; 4 = the classic 4:1 oversubscribed tree. Must be > 0;
  // values below 1 model an overprovisioned core.
  double oversubscription = 1.0;

  // Throws std::invalid_argument naming the offending knob and value.
  void Validate() const;
};

// Pod of a host given `index` within its contiguous class of `count`
// hosts: floor(index * pods / count). Exposed for tests.
int PodOf(int index, int count, int pods);

// Builds the capacity graph for one fabric. Throws std::invalid_argument
// (via FatTreeOptions::Validate or for a degenerate shape) on bad input.
sim::FlowNetwork BuildFatTreeFlowNetwork(const FabricShape& shape,
                                         const FatTreeOptions& options);

// Appends one fabric's links and channel mappings to an existing network
// (the multi-fabric cluster sweep builds one FlowNetwork spanning every
// fabric's resource block). Tables grow to cover the fabric's block;
// resources before `shape.resource_base` that the network does not
// already map stay non-flow.
void AppendFatTreeFabric(const FabricShape& shape,
                         const FatTreeOptions& options,
                         sim::FlowNetwork* network);

}  // namespace tictac::models
