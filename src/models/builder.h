// Builds worker-partition computational graphs from model specs.
//
// The generated graph is the Model-Replica worker partition of §2.2:
// recv ops are the roots (one per parameter), computation follows the
// family structure (chain / inception modules / residual blocks), and —
// in training mode — gradient send ops are the leaves. Op counts match
// Table 1 exactly: the builder first lays down the structural skeleton
// (cores, joins, classifier/loss) and then pads each layer with auxiliary
// chain ops (the BN/ReLU/identity/shape bookkeeping that dominates real
// TensorFlow graphs) until the Table 1 count is reached.
#pragma once

#include "core/graph.h"
#include "models/zoo.h"

namespace tictac::models {

struct BuildOptions {
  // Training graph (forward + backward + gradient sends) vs inference
  // (forward only).
  bool training = false;
  // Multiplies the standard batch size (the paper sweeps {0.5, 1, 2}).
  double batch_factor = 1.0;
};

// Returns the worker partition DAG. Compute costs are in GFLOPs for the
// whole (scaled) batch; transfer sizes are parameter bytes.
//
// Postconditions (covered by tests):
//   * graph.size() == info.ops_inference or info.ops_training
//   * number of recv ops == info.num_params, total recv bytes match
//   * acyclic, single forward sink before loss, sends are leaves
core::Graph BuildWorkerGraph(const ModelInfo& info,
                             const BuildOptions& options = {});

// Total forward compute cost (GFLOPs) of one iteration at the scaled
// batch; training adds the usual 2x backward multiplier.
double TotalComputeGflops(const ModelInfo& info, const BuildOptions& options);

}  // namespace tictac::models
