#include "models/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace tictac::models {

void FatTreeOptions::Validate() const {
  if (pods < 1) {
    throw std::invalid_argument(
        "FatTreeOptions: pods must be >= 1 (1 = single non-blocking "
        "switch), got " +
        std::to_string(pods));
  }
  if (!(oversubscription > 0.0) || !std::isfinite(oversubscription)) {
    throw std::invalid_argument(
        "FatTreeOptions: oversubscription must be a positive finite ratio "
        "(1 = full bisection bandwidth), got " +
        std::to_string(oversubscription));
  }
}

int PodOf(int index, int count, int pods) {
  return static_cast<int>(
      (static_cast<long long>(index) * pods) / count);
}

namespace {

void ValidateShape(const FabricShape& shape, const FatTreeOptions& options) {
  options.Validate();
  if (shape.num_workers < 1 || shape.num_ps < 1) {
    throw std::invalid_argument(
        "FabricShape: needs at least one worker and one PS, got workers=" +
        std::to_string(shape.num_workers) +
        " ps=" + std::to_string(shape.num_ps));
  }
  if (!(shape.bandwidth_bps > 0.0) || !std::isfinite(shape.bandwidth_bps)) {
    throw std::invalid_argument(
        "FabricShape: bandwidth_bps must be positive and finite, got " +
        std::to_string(shape.bandwidth_bps));
  }
  if (shape.resource_base < 0) {
    throw std::invalid_argument("FabricShape: resource_base must be >= 0, got " +
                                std::to_string(shape.resource_base));
  }
  const int hosts = shape.num_workers + shape.num_ps;
  if (options.pods > hosts) {
    throw std::invalid_argument(
        "FatTreeOptions: pods=" + std::to_string(options.pods) +
        " exceeds the fabric's " + std::to_string(hosts) +
        " hosts (" + std::to_string(shape.num_workers) + " workers + " +
        std::to_string(shape.num_ps) +
        " PSes) — some pods would be empty; lower pods= or grow the "
        "cluster");
  }
}

}  // namespace

void AppendFatTreeFabric(const FabricShape& shape,
                         const FatTreeOptions& options,
                         sim::FlowNetwork* network) {
  ValidateShape(shape, options);
  const int W = shape.num_workers;
  const int S = shape.num_ps;
  const int pods = options.pods;
  const double line_rate = shape.bandwidth_bps;

  // Link layout for this fabric, offset by the links already present:
  // worker ingress [0,W), worker egress [W,2W), PS egress [2W,2W+S),
  // PS ingress [2W+S,2W+2S), then per-pod core uplinks and downlinks
  // (only when pods > 1).
  const int link_base = static_cast<int>(network->links.size());
  const int worker_in = link_base;
  const int worker_out = worker_in + W;
  const int ps_out = worker_out + W;
  const int ps_in = ps_out + S;
  const int core_up = ps_in + S;
  const int core_down = core_up + (pods > 1 ? pods : 0);
  const int total_links = core_down + (pods > 1 ? pods : 0) - link_base;
  network->links.reserve(network->links.size() +
                         static_cast<std::size_t>(total_links));
  for (int i = 0; i < 2 * W + 2 * S; ++i) {
    network->links.push_back({line_rate});
  }
  std::vector<int> worker_pod(static_cast<std::size_t>(W), 0);
  std::vector<int> ps_pod(static_cast<std::size_t>(S), 0);
  if (pods > 1) {
    // Hosts split contiguously: workers first, then PSes, each class on
    // its own floor(index*pods/count) assignment, so co-located jobs'
    // contiguous worker ranges land in contiguous pods.
    std::vector<int> pod_hosts(static_cast<std::size_t>(pods), 0);
    for (int w = 0; w < W; ++w) {
      worker_pod[static_cast<std::size_t>(w)] = PodOf(w, W, pods);
      ++pod_hosts[static_cast<std::size_t>(worker_pod[
          static_cast<std::size_t>(w)])];
    }
    for (int s = 0; s < S; ++s) {
      ps_pod[static_cast<std::size_t>(s)] = PodOf(s, S, pods);
      ++pod_hosts[static_cast<std::size_t>(ps_pod[
          static_cast<std::size_t>(s)])];
    }
    for (int direction = 0; direction < 2; ++direction) {
      for (int p = 0; p < pods; ++p) {
        network->links.push_back(
            {pod_hosts[static_cast<std::size_t>(p)] * line_rate /
             options.oversubscription});
      }
    }
  }

  // Channel resource ids (runtime/lowering.h layout) -> traversed links.
  const int base = shape.resource_base;
  const int downlink_base = base + W;
  const int uplink_base = base + W + W * S;
  const int block_end = base + W + 2 * W * S + S;
  if (static_cast<int>(network->resource_links.size()) < block_end) {
    network->resource_links.resize(static_cast<std::size_t>(block_end));
    network->resource_nominal_bps.resize(static_cast<std::size_t>(block_end),
                                         0.0);
  }
  const double nominal = line_rate / W;
  for (int w = 0; w < W; ++w) {
    for (int s = 0; s < S; ++s) {
      const bool cross_pod =
          pods > 1 && worker_pod[static_cast<std::size_t>(w)] !=
                          ps_pod[static_cast<std::size_t>(s)];
      const auto down = static_cast<std::size_t>(downlink_base + w * S + s);
      auto& down_links = network->resource_links[down];
      down_links = {ps_out + s, worker_in + w};
      if (cross_pod) {
        down_links.push_back(core_up + ps_pod[static_cast<std::size_t>(s)]);
        down_links.push_back(core_down +
                             worker_pod[static_cast<std::size_t>(w)]);
      }
      std::sort(down_links.begin(), down_links.end());
      network->resource_nominal_bps[down] = nominal;

      const auto up = static_cast<std::size_t>(uplink_base + w * S + s);
      auto& up_links = network->resource_links[up];
      up_links = {worker_out + w, ps_in + s};
      if (cross_pod) {
        up_links.push_back(core_up + worker_pod[static_cast<std::size_t>(w)]);
        up_links.push_back(core_down + ps_pod[static_cast<std::size_t>(s)]);
      }
      std::sort(up_links.begin(), up_links.end());
      network->resource_nominal_bps[up] = nominal;
    }
  }
}

sim::FlowNetwork BuildFatTreeFlowNetwork(const FabricShape& shape,
                                         const FatTreeOptions& options) {
  sim::FlowNetwork network;
  AppendFatTreeFabric(shape, options, &network);
  return network;
}

}  // namespace tictac::models
