#include "harness/experiments.h"

// The wrappers below are themselves deprecated; defining them must not
// warn.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace tictac::harness {

double MeasureThroughput(const models::ModelInfo& model,
                         const runtime::ClusterConfig& config,
                         const std::string& policy, std::uint64_t seed,
                         int iterations) {
  runtime::Runner runner(model, config);
  return runner.Run(policy, iterations, seed).Throughput();
}

SpeedupRow MeasureSpeedup(const models::ModelInfo& model,
                          const runtime::ClusterConfig& config,
                          const std::string& policy, std::uint64_t seed,
                          int iterations) {
  runtime::Runner runner(model, config);
  SpeedupRow row;
  row.model = model.name;
  row.baseline_throughput =
      runner.Run("baseline", iterations, seed).Throughput();
  row.scheduled_throughput = runner.Run(policy, iterations, seed).Throughput();
  return row;
}

runtime::ExperimentResult RunExperiment(const models::ModelInfo& model,
                                        const runtime::ClusterConfig& config,
                                        const std::string& policy,
                                        std::uint64_t seed, int iterations) {
  runtime::Runner runner(model, config);
  return runner.Run(policy, iterations, seed);
}

}  // namespace tictac::harness
