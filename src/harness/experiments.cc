#include "harness/experiments.h"

namespace tictac::harness {

std::vector<std::string> FigureModels() {
  return {
      "AlexNet v2",    "Inception v1", "Inception v2",
      "Inception v3",  "ResNet-50 v1", "ResNet-101 v1",
      "ResNet-50 v2",  "VGG-16",       "VGG-19",
  };
}

double MeasureThroughput(const models::ModelInfo& model,
                         const runtime::ClusterConfig& config,
                         const std::string& policy, std::uint64_t seed,
                         int iterations) {
  runtime::Runner runner(model, config);
  return runner.Run(policy, iterations, seed).Throughput();
}

SpeedupRow MeasureSpeedup(const models::ModelInfo& model,
                          const runtime::ClusterConfig& config,
                          const std::string& policy, std::uint64_t seed,
                          int iterations) {
  runtime::Runner runner(model, config);
  SpeedupRow row;
  row.model = model.name;
  row.baseline_throughput =
      runner.Run("baseline", iterations, seed).Throughput();
  row.scheduled_throughput = runner.Run(policy, iterations, seed).Throughput();
  return row;
}

runtime::ExperimentResult RunExperiment(const models::ModelInfo& model,
                                        const runtime::ClusterConfig& config,
                                        const std::string& policy,
                                        std::uint64_t seed, int iterations) {
  runtime::Runner runner(model, config);
  return runner.Run(policy, iterations, seed);
}

}  // namespace tictac::harness
