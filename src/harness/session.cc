#include "harness/session.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "models/zoo.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/stats.h"

namespace tictac::harness {
namespace {

// Lossless (shortest-round-trip) double formatting so emitted tables
// support bit-identity comparisons across runs.
using runtime::FormatDouble;
using util::JsonEscape;

ResultRow MakeRow(const runtime::ExperimentSpec& spec,
                  const runtime::ExperimentResult& result) {
  ResultRow row;
  row.spec = spec;
  row.mean_iteration_s = result.MeanIterationTime();
  row.throughput = result.Throughput();
  row.mean_efficiency = result.MeanEfficiency();
  row.mean_overlap = result.MeanOverlap();
  row.max_straggler_pct = result.MaxStragglerPct();
  row.mean_straggler_pct = result.MeanStragglerPct();
  row.unique_recv_orders = result.UniqueRecvOrders();
  return row;
}

}  // namespace

std::vector<std::string> FigureModels() {
  return {
      "AlexNet v2",    "Inception v1", "Inception v2",
      "Inception v3",  "ResNet-50 v1", "ResNet-101 v1",
      "ResNet-50 v2",  "VGG-16",       "VGG-19",
  };
}

double ResultTable::SpeedupVsBaseline(const ResultRow& row) const {
  runtime::ExperimentSpec baseline = row.spec;
  baseline.policy = "baseline";
  for (const ResultRow& candidate : rows_) {
    if (candidate.spec == baseline) {
      return candidate.throughput > 0.0
                 ? row.throughput / candidate.throughput - 1.0
                 : 0.0;
    }
  }
  throw std::invalid_argument(
      "ResultTable: no baseline row matches '" + baseline.ToString() +
      "' — include policy \"baseline\" in the sweep to compute speedups");
}

std::string ResultTable::ToCsv() const {
  std::string csv =
      "spec,model,env,workers,ps,task,batch_factor,chunk_bytes,enforcement,"
      "policy,iterations,seed,mean_iteration_s,throughput,mean_efficiency,"
      "mean_overlap,max_straggler_pct,mean_straggler_pct,"
      "unique_recv_orders\n";
  for (const ResultRow& row : rows_) {
    const runtime::ClusterSpec& cluster = row.spec.cluster;
    csv += util::CsvEscape(row.spec.ToString());
    csv += ',' + util::CsvEscape(row.spec.model);
    csv += ',' + cluster.env;
    csv += ',' + std::to_string(cluster.workers);
    csv += ',' + std::to_string(cluster.ps);
    csv += ',' + std::string(cluster.training ? "training" : "inference");
    csv += ',' + FormatDouble(cluster.batch_factor);
    csv += ',' + std::to_string(cluster.chunk_bytes);
    csv += ',' + std::string(runtime::EnforcementToken(cluster.enforcement));
    csv += ',' + util::CsvEscape(row.spec.policy);
    csv += ',' + std::to_string(row.spec.iterations);
    csv += ',' + std::to_string(row.spec.seed);
    csv += ',' + FormatDouble(row.mean_iteration_s);
    csv += ',' + FormatDouble(row.throughput);
    csv += ',' + FormatDouble(row.mean_efficiency);
    csv += ',' + FormatDouble(row.mean_overlap);
    csv += ',' + FormatDouble(row.max_straggler_pct);
    csv += ',' + FormatDouble(row.mean_straggler_pct);
    csv += ',' + std::to_string(row.unique_recv_orders);
    csv += '\n';
  }
  return csv;
}

std::string ResultTable::ToJson() const {
  std::string json = "[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const ResultRow& row = rows_[i];
    const runtime::ClusterSpec& cluster = row.spec.cluster;
    json += i == 0 ? "\n" : ",\n";
    json += "  {\"spec\": \"" + JsonEscape(row.spec.ToString()) + "\"";
    json += ", \"model\": \"" + JsonEscape(row.spec.model) + "\"";
    json += ", \"env\": \"" + cluster.env + "\"";
    json += ", \"workers\": " + std::to_string(cluster.workers);
    json += ", \"ps\": " + std::to_string(cluster.ps);
    json += ", \"task\": \"" +
            std::string(cluster.training ? "training" : "inference") + "\"";
    json += ", \"batch_factor\": " + FormatDouble(cluster.batch_factor);
    json += ", \"chunk_bytes\": " + std::to_string(cluster.chunk_bytes);
    json += ", \"enforcement\": \"" +
            std::string(runtime::EnforcementToken(cluster.enforcement)) +
            "\"";
    json += ", \"policy\": \"" + JsonEscape(row.spec.policy) + "\"";
    json += ", \"iterations\": " + std::to_string(row.spec.iterations);
    json += ", \"seed\": " + std::to_string(row.spec.seed);
    json += ", \"mean_iteration_s\": " + FormatDouble(row.mean_iteration_s);
    json += ", \"throughput\": " + FormatDouble(row.throughput);
    json += ", \"mean_efficiency\": " + FormatDouble(row.mean_efficiency);
    json += ", \"mean_overlap\": " + FormatDouble(row.mean_overlap);
    json += ", \"max_straggler_pct\": " + FormatDouble(row.max_straggler_pct);
    json +=
        ", \"mean_straggler_pct\": " + FormatDouble(row.mean_straggler_pct);
    json +=
        ", \"unique_recv_orders\": " + std::to_string(row.unique_recv_orders);
    json += "}";
  }
  json += "\n]\n";
  return json;
}

util::Table ResultTable::ToTable() const {
  util::Table table({"Model", "Cluster", "Policy", "Iter (ms)",
                     "Throughput", "E", "Overlap", "Max straggler %"});
  for (const ResultRow& row : rows_) {
    table.AddRow({row.spec.model, row.spec.cluster.ToString(),
                  row.spec.policy, util::Fmt(row.mean_iteration_s * 1e3, 2),
                  util::Fmt(row.throughput, 1),
                  util::Fmt(row.mean_efficiency, 3),
                  util::Fmt(row.mean_overlap, 3),
                  util::Fmt(row.max_straggler_pct, 1)});
  }
  return table;
}

std::vector<double> MultiJobReport::IterationSlowdowns(std::size_t j) const {
  std::vector<double> ratios;
  if (j >= isolated.size() || j >= result.jobs.size()) return ratios;
  const auto& shared = result.jobs[j].iterations;
  const auto& alone = isolated[j].iterations;
  const std::size_t n = std::min(shared.size(), alone.size());
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (alone[i].makespan > 0.0) {
      ratios.push_back(shared[i].makespan / alone[i].makespan);
    }
  }
  return ratios;
}

util::Table MultiJobReport::ToTable() const {
  const bool have_isolated = !isolated.empty();
  std::vector<std::string> headers = {"Job",     "Model",     "Policy",
                                      "Offset",  "Iter (ms)", "Throughput",
                                      "E",       "Overlap"};
  if (have_isolated) {
    headers.push_back("Slowdown");
    headers.push_back("p50");
    headers.push_back("p99");
  }
  util::Table table(headers);
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const runtime::ExperimentSpec& job = spec.jobs[j].spec;
    std::vector<std::string> row = {
        std::to_string(j),
        job.model,
        job.policy,
        util::Fmt(spec.jobs[j].start_offset * 1e3, 1) + " ms",
        util::Fmt(result.jobs[j].MeanIterationTime() * 1e3, 2),
        util::Fmt(result.jobs[j].Throughput(), 1),
        util::Fmt(result.jobs[j].MeanEfficiency(), 3),
        util::Fmt(result.jobs[j].MeanOverlap(), 3)};
    if (have_isolated) {
      const std::vector<double> ratios = IterationSlowdowns(j);
      row.push_back(util::Fmt(interference.slowdown[j], 3) + "x");
      row.push_back(util::Fmt(util::Percentile(ratios, 0.5), 3) + "x");
      row.push_back(util::Fmt(util::Percentile(ratios, 0.99), 3) + "x");
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::string MultiJobReport::ToJson() const {
  const bool have_isolated = !isolated.empty();
  std::string json = "{\n";
  json += "  \"spec\": \"" + JsonEscape(spec.ToString()) + "\",\n";
  json += "  \"combined\": {\"mean_iteration_s\": " +
          FormatDouble(result.combined.MeanIterationTime()) +
          ", \"throughput\": " + FormatDouble(result.combined.Throughput()) +
          "},\n";
  json += "  \"jobs\": [";
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const runtime::ExperimentSpec& job = spec.jobs[j].spec;
    json += j == 0 ? "\n" : ",\n";
    json += "    {\"job\": " + std::to_string(j);
    json += ", \"model\": \"" + JsonEscape(job.model) + "\"";
    json += ", \"policy\": \"" + JsonEscape(job.policy) + "\"";
    json += ", \"start_offset_s\": " +
            FormatDouble(spec.jobs[j].start_offset);
    json += ", \"mean_iteration_s\": " +
            FormatDouble(result.jobs[j].MeanIterationTime());
    json += ", \"throughput\": " + FormatDouble(result.jobs[j].Throughput());
    json += ", \"mean_efficiency\": " +
            FormatDouble(result.jobs[j].MeanEfficiency());
    json += ", \"mean_overlap\": " +
            FormatDouble(result.jobs[j].MeanOverlap());
    if (have_isolated) {
      const std::vector<double> ratios = IterationSlowdowns(j);
      json += ", \"isolated_iteration_s\": " +
              FormatDouble(isolated[j].MeanIterationTime());
      json += ", \"slowdown\": " + FormatDouble(interference.slowdown[j]);
      json += ", \"p50_slowdown\": " +
              FormatDouble(util::Percentile(ratios, 0.5));
      json += ", \"p99_slowdown\": " +
              FormatDouble(util::Percentile(ratios, 0.99));
    }
    json += "}";
  }
  json += "\n  ]";
  if (have_isolated) {
    json += ",\n  \"mean_slowdown\": " +
            FormatDouble(interference.mean_slowdown);
    json += ",\n  \"max_slowdown\": " +
            FormatDouble(interference.max_slowdown);
    json += ",\n  \"p50_slowdown\": " +
            FormatDouble(util::Percentile(interference.slowdown, 0.5));
    json += ",\n  \"p99_slowdown\": " +
            FormatDouble(util::Percentile(interference.slowdown, 0.99));
    json += ",\n  \"fairness\": " + FormatDouble(interference.fairness);
  }
  json += "\n}\n";
  return json;
}

MultiJobReport Session::RunMultiJob(const runtime::MultiJobSpec& spec,
                                    bool with_isolated) {
  return RunMultiJob(runtime::MultiJobRunner(spec),  // validates the spec
                     with_isolated);
}

MultiJobReport Session::RunMultiJob(const runtime::MultiJobRunner& runner,
                                    bool with_isolated) {
  const runtime::MultiJobSpec& spec = runner.spec();
  MultiJobReport report;
  report.spec = spec;
  report.result = runner.Run();
  if (with_isolated) {
    report.isolated.reserve(spec.jobs.size());
    std::vector<double> shared;
    std::vector<double> isolated;
    for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
      // One job alone on the fabric IS the single-job path (the
      // bandwidth scale degenerates to 1), so Run()'s cached Runner is
      // the isolated reference. Replicas ("2x{...}") are deterministic
      // duplicates of the same spec — simulate once, reuse the result.
      std::size_t twin = j;
      for (std::size_t k = 0; k < j; ++k) {
        if (spec.jobs[k].spec == spec.jobs[j].spec) {
          twin = k;
          break;
        }
      }
      if (twin < j) {
        report.isolated.push_back(report.isolated[twin]);
      } else {
        report.isolated.push_back(Run(spec.jobs[j].spec));
      }
      shared.push_back(report.result.jobs[j].MeanIterationTime());
      isolated.push_back(report.isolated.back().MeanIterationTime());
    }
    report.interference = core::ComputeInterference(shared, isolated);
  }
  return report;
}

sched::ServiceReport Session::RunService(const sched::ServiceConfig& config) {
  sched::SchedulerService service(config);
  return service.Run();
}

exec::ExecReport Session::RunExec(const exec::ExecSpec& spec) {
  return exec::ValidateAgainstSim(spec);
}

const runtime::Runner& Session::runner(const runtime::ExperimentSpec& spec) {
  // '\n' cannot appear in a model name or a cluster spec, so the key is
  // collision-free.
  const std::string key = spec.model + '\n' + spec.cluster.ToString();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = cache_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  try {
    std::call_once(entry->once, [&] {
      entry->runner = std::make_unique<runtime::Runner>(
          models::FindModel(spec.model), spec.cluster.Build());
    });
  } catch (...) {
    // Construction failed (unknown model, invalid cluster): drop the
    // dead entry so cached_runners() counts only analyzed graphs. The
    // entry-identity check tolerates a concurrent retry that already
    // replaced it.
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second == entry) cache_.erase(it);
    throw;
  }
  return *entry->runner;
}

runtime::ExperimentResult Session::Run(const runtime::ExperimentSpec& spec) {
  if (spec.iterations < 1) {
    throw std::invalid_argument("Session: iterations must be >= 1, got " +
                                std::to_string(spec.iterations) + " in '" +
                                spec.ToString() + "'");
  }
  return runner(spec).Run(spec.policy, spec.iterations, spec.seed);
}

ResultTable Session::RunAll(const std::vector<runtime::ExperimentSpec>& specs,
                            int parallelism) {
  if (parallelism < 1) {
    throw std::invalid_argument("Session: parallelism must be >= 1, got " +
                                std::to_string(parallelism));
  }
  std::vector<ResultRow> rows(specs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;

  const auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      try {
        rows[i] = MakeRow(specs[i], Run(specs[i]));
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(parallelism),
                            specs.size()));
  if (threads <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    try {
      for (int t = 0; t < threads; ++t) pool.emplace_back(work);
    } catch (...) {
      // Thread spawn failed (resource exhaustion): stop the workers that
      // did start and surface a catchable error instead of terminating
      // via the vector's joinable-thread destructor.
      failed.store(true, std::memory_order_relaxed);
      for (std::thread& thread : pool) thread.join();
      throw;
    }
    for (std::thread& thread : pool) thread.join();
  }
  if (error) std::rethrow_exception(error);
  return ResultTable(std::move(rows));
}

ResultTable Session::RunAll(const runtime::SweepSpec& sweep,
                            int parallelism) {
  return RunAll(sweep.Expand(), parallelism);
}

int Session::DefaultParallelism() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 4 : static_cast<int>(hardware);
}

std::size_t Session::cached_runners() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace tictac::harness
