// Session: the experiment execution engine behind the declarative
// ExperimentSpec/SweepSpec API (DESIGN.md §5).
//
// A Session owns a cache of runtime::Runners keyed by (model, cluster),
// so the PropertyIndex dependency analysis — the expensive part of
// setting up a run — is built once per distinct (model, cluster)
// configuration and reused across every policy and seed that touches
// it. (A Runner binds its full ClusterConfig at construction, so
// sweeping a sim-only axis such as sigma= or enforce= still builds one
// Runner per value; only the policy/seed dimensions share.) Run() executes one spec;
// RunAll() executes a grid on a thread pool and returns a ResultTable
// whose rows are in spec order regardless of parallelism, bit-identical
// to serial execution (each run is deterministic in its spec alone, and
// runs share no mutable state).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "exec/validate.h"
#include "runtime/multijob.h"
#include "runtime/runner.h"
#include "runtime/spec.h"
#include "sched/service.h"
#include "util/table.h"

namespace tictac::harness {

// Number of measured iterations per configuration, matching §6 (the paper
// records 10 iterations after warm-up; our simulator has no warm-up).
inline constexpr int kIterations = 10;

// The nine models of Figures 7/9/10 (Table 1 minus ResNet-101 v2, which
// the figures omit), in Table 1 order.
std::vector<std::string> FigureModels();

// One executed spec with its summary metrics (the scalar statistics the
// paper's tables report; per-iteration detail comes from Session::Run).
struct ResultRow {
  runtime::ExperimentSpec spec;
  double mean_iteration_s = 0.0;
  double throughput = 0.0;       // samples / second
  double mean_efficiency = 0.0;  // E (Eq. 3)
  double mean_overlap = 0.0;
  double max_straggler_pct = 0.0;
  double mean_straggler_pct = 0.0;
  int unique_recv_orders = 0;
};

// Deterministically-ordered results of a sweep, with uniform emitters
// replacing the per-bench printf tables.
class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(std::vector<ResultRow> rows) : rows_(std::move(rows)) {}

  const std::vector<ResultRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const ResultRow& row(std::size_t i) const { return rows_.at(i); }

  // Throughput of `row` relative to its baseline twin — the row with an
  // identical spec except policy == "baseline" — as a fraction
  // (0.2 = +20%). Throws std::invalid_argument if the table holds no
  // matching baseline row.
  double SpeedupVsBaseline(const ResultRow& row) const;

  // RFC-4180 CSV with a header row; one line per row, spec first.
  std::string ToCsv() const;
  // JSON array of flat objects, one per row.
  std::string ToJson() const;
  // Human-readable summary (model, cluster, policy, metrics).
  util::Table ToTable() const;

 private:
  std::vector<ResultRow> rows_;
};

// One executed multi-job experiment: the shared-fabric result, the
// per-job isolated references (each job alone on the fabric — exactly
// the single-job Session path, so cached Runners are reused), and the
// interference statistics derived from the two.
struct MultiJobReport {
  runtime::MultiJobSpec spec;
  runtime::MultiJobResult result;
  // isolated[j] matches result.jobs[j]; empty when isolated references
  // were not requested.
  std::vector<runtime::ExperimentResult> isolated;
  // From mean iteration times, shared vs isolated; default-initialized
  // (slowdown 1, fairness 1) when isolated references were skipped.
  core::InterferenceStats interference;

  // Per-iteration slowdown distribution of job `j`: the paired ratios
  // shared.iterations[i].makespan / isolated.iterations[i].makespan
  // (both runs execute the same iteration count with the same seeds, so
  // the pairing is exact). Empty when isolated references were skipped.
  std::vector<double> IterationSlowdowns(std::size_t j) const;

  // Human-readable per-job summary (job, model, policy, offset, iter
  // time, throughput, and — when isolated references exist — mean plus
  // p50/p99 per-iteration slowdown).
  util::Table ToTable() const;
  // JSON object: spec, combined metrics, per-job array, interference.
  std::string ToJson() const;
};

class Session {
 public:
  Session() = default;
  // The runner cache holds pointers handed out by runner(); moving or
  // copying a Session would invalidate them.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // The cached Runner for the spec's (model, cluster); built on first
  // use, shared by every later spec with the same key. The reference
  // stays valid for the Session's lifetime. Thread-safe.
  const runtime::Runner& runner(const runtime::ExperimentSpec& spec);

  // Executes one spec (validates it first). Thread-safe.
  runtime::ExperimentResult Run(const runtime::ExperimentSpec& spec);

  // Executes every spec on `parallelism` threads (1 = serial in the
  // calling thread). Rows come back in input order; the table is
  // bit-identical for every parallelism level. The first failing spec's
  // exception is rethrown after in-flight runs drain.
  ResultTable RunAll(const std::vector<runtime::ExperimentSpec>& specs,
                     int parallelism = 1);
  ResultTable RunAll(const runtime::SweepSpec& sweep, int parallelism = 1);

  // Executes a multi-job experiment on the shared fabric
  // (runtime::MultiJobRunner) and, when `with_isolated` is true, each
  // job alone through Run() — reusing this Session's Runner cache — to
  // derive per-job slowdown and Jain fairness. The multi-job runner
  // itself is not cached: its schedules depend on the co-located worker
  // total, not on any one (model, cluster) key. The second overload
  // reuses a caller-built runner (its construction — per-job scheduling
  // and the shared-fabric lowering — is the expensive part). Thread-safe.
  MultiJobReport RunMultiJob(const runtime::MultiJobSpec& spec,
                             bool with_isolated = true);
  MultiJobReport RunMultiJob(const runtime::MultiJobRunner& runner,
                             bool with_isolated = true);

  // Plays a cluster-scheduler service run (sched::SchedulerService) to
  // completion: open-system arrivals, admission, placement over K
  // fabrics, SLO metrics. The service maintains its own Runner cache —
  // shared-fabric runners are keyed by contention level, not only by
  // (model, cluster) — so this call does not touch this Session's cache.
  // Deterministic in the config alone.
  sched::ServiceReport RunService(const sched::ServiceConfig& config);

  // Executes the spec's lowered task graphs for real on the in-process
  // parameter-server backend (exec::PsBackend) and closes the sim-to-real
  // loop: calibrate platform constants from the measured trace, re-simulate,
  // and report predicted vs measured iteration time per policy
  // (exec::ValidateAgainstSim). Builds its own Runner — the exec spec's
  // cluster shape does not reuse this Session's cache. Deterministic in
  // the spec alone when spec.deterministic is set.
  exec::ExecReport RunExec(const exec::ExecSpec& spec);

  // Hardware concurrency, with a floor of 1 (and 4 when unknown).
  static int DefaultParallelism();

  // Distinct (model, cluster) graphs analyzed so far.
  std::size_t cached_runners() const;

 private:
  // Entries are created under mu_ but constructed outside it via
  // call_once, so two clusters can build their PropertyIndexes
  // concurrently while later lookups of the same key block only on the
  // one entry they need.
  struct Entry {
    std::once_flag once;
    std::unique_ptr<runtime::Runner> runner;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> cache_;
};

}  // namespace tictac::harness
