// Shared helpers for the benchmark harness: each bench binary regenerates
// one table or figure from the paper; the common measurement plumbing
// lives here.
//
// Policies are selected by name (a core::PolicyRegistry spec such as
// "tic", "tac", "random:7"), so benches iterate registry entries instead
// of enum literals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "runtime/runner.h"

namespace tictac::harness {

// Number of measured iterations per configuration, matching §6 (the paper
// records 10 iterations after warm-up; our simulator has no warm-up).
inline constexpr int kIterations = 10;

// The nine models of Figures 7/9/10 (Table 1 minus ResNet-101 v2, which
// the figures omit), in Table 1 order.
std::vector<std::string> FigureModels();

// Throughput (samples/s) of `policy` on `model` under `config`.
double MeasureThroughput(const models::ModelInfo& model,
                         const runtime::ClusterConfig& config,
                         const std::string& policy, std::uint64_t seed,
                         int iterations = kIterations);

struct SpeedupRow {
  std::string model;
  double baseline_throughput = 0.0;
  double scheduled_throughput = 0.0;
  // (scheduled - baseline) / baseline.
  double speedup() const {
    return baseline_throughput > 0.0
               ? scheduled_throughput / baseline_throughput - 1.0
               : 0.0;
  }
};

// Baseline vs `policy` under identical seeds.
SpeedupRow MeasureSpeedup(const models::ModelInfo& model,
                          const runtime::ClusterConfig& config,
                          const std::string& policy, std::uint64_t seed,
                          int iterations = kIterations);

// Full per-iteration results for metric-level experiments (Figs. 11/12).
runtime::ExperimentResult RunExperiment(const models::ModelInfo& model,
                                        const runtime::ClusterConfig& config,
                                        const std::string& policy,
                                        std::uint64_t seed,
                                        int iterations = kIterations);

}  // namespace tictac::harness
