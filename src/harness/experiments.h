// Deprecated measurement free functions, kept for one PR so external
// callers can migrate to the declarative API at their own pace.
//
// New code describes runs as runtime::ExperimentSpec / runtime::SweepSpec
// and executes them through harness::Session (harness/session.h), which
// caches the per-graph dependency analysis across policies and seeds and
// can fan a sweep out over a thread pool. These wrappers rebuild a
// Runner per call — correct, but they redo the analysis every time.
#pragma once

#include <cstdint>
#include <string>

#include "harness/session.h"
#include "models/zoo.h"
#include "runtime/runner.h"

namespace tictac::harness {

// Throughput (samples/s) of `policy` on `model` under `config`.
[[deprecated("describe the run as an ExperimentSpec and use "
             "harness::Session::Run")]]
double MeasureThroughput(const models::ModelInfo& model,
                         const runtime::ClusterConfig& config,
                         const std::string& policy, std::uint64_t seed,
                         int iterations = kIterations);

struct SpeedupRow {
  std::string model;
  double baseline_throughput = 0.0;
  double scheduled_throughput = 0.0;
  // (scheduled - baseline) / baseline.
  double speedup() const {
    return baseline_throughput > 0.0
               ? scheduled_throughput / baseline_throughput - 1.0
               : 0.0;
  }
};

// Baseline vs `policy` under identical seeds.
[[deprecated("run a sweep including policy \"baseline\" through "
             "harness::Session and use ResultTable::SpeedupVsBaseline")]]
SpeedupRow MeasureSpeedup(const models::ModelInfo& model,
                          const runtime::ClusterConfig& config,
                          const std::string& policy, std::uint64_t seed,
                          int iterations = kIterations);

// Full per-iteration results for metric-level experiments.
[[deprecated("describe the run as an ExperimentSpec and use "
             "harness::Session::Run")]]
runtime::ExperimentResult RunExperiment(const models::ModelInfo& model,
                                        const runtime::ClusterConfig& config,
                                        const std::string& policy,
                                        std::uint64_t seed,
                                        int iterations = kIterations);

}  // namespace tictac::harness
