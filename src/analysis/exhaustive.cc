#include "analysis/exhaustive.h"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.h"

namespace tictac::analysis {

using core::Op;
using core::OpKind;

double EvaluateOrder(const Graph& graph, const TimeOracle& oracle,
                     const std::vector<OpId>& recv_order) {
  // Rank per recv op.
  std::vector<int> rank(graph.size(), -1);
  for (std::size_t i = 0; i < recv_order.size(); ++i) {
    rank[static_cast<std::size_t>(recv_order[i])] = static_cast<int>(i);
  }

  // Deterministic compute priorities: topological position.
  const std::vector<OpId> topo = graph.TopologicalOrder();
  std::vector<int> topo_pos(graph.size(), 0);
  for (std::size_t i = 0; i < topo.size(); ++i) {
    topo_pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  }

  std::vector<sim::Task> tasks(graph.size());
  for (const Op& op : graph.ops()) {
    sim::Task& task = tasks[static_cast<std::size_t>(op.id)];
    task.duration = oracle.Time(graph, op.id);
    task.op = op.id;
    task.kind = op.kind;
    switch (op.kind) {
      case OpKind::kRecv:
        task.resource = 1;
        task.priority = rank[static_cast<std::size_t>(op.id)];
        task.gate_group = 0;
        task.gate_rank = task.priority;
        break;
      case OpKind::kSend:
        task.resource = 2;
        task.priority = topo_pos[static_cast<std::size_t>(op.id)];
        break;
      default:
        task.resource = 0;
        task.priority = topo_pos[static_cast<std::size_t>(op.id)];
        break;
    }
    for (OpId pred : graph.preds(op.id)) {
      task.preds.push_back(pred);
    }
  }
  sim::TaskGraphSim sim(std::move(tasks), 3);
  sim::SimOptions options;
  options.enforce_gates = true;
  return sim.Run(options, /*seed=*/0).makespan;
}

double EvaluateSchedule(const Graph& graph, const TimeOracle& oracle,
                        const Schedule& schedule) {
  return EvaluateOrder(graph, oracle, schedule.RecvOrder(graph));
}

ExhaustiveResult ExhaustiveSearch(const Graph& graph,
                                  const TimeOracle& oracle, int max_recvs) {
  std::vector<OpId> recvs = graph.RecvOps();
  if (static_cast<int>(recvs.size()) > max_recvs) {
    throw std::invalid_argument("too many recvs for exhaustive search");
  }
  std::sort(recvs.begin(), recvs.end());

  ExhaustiveResult result;
  double total = 0.0;
  do {
    const double makespan = EvaluateOrder(graph, oracle, recvs);
    total += makespan;
    ++result.orders_evaluated;
    if (result.orders_evaluated == 1 || makespan < result.best) {
      result.best = makespan;
      result.best_order = recvs;
    }
    if (result.orders_evaluated == 1 || makespan > result.worst) {
      result.worst = makespan;
      result.worst_order = recvs;
    }
  } while (std::next_permutation(recvs.begin(), recvs.end()));
  result.mean = total / static_cast<double>(result.orders_evaluated);
  return result;
}

}  // namespace tictac::analysis
