// Exhaustive schedule search for small graphs.
//
// The scheduling problem is NP-hard (§3.1 maps it to flowshop), so the
// paper cannot validate TIC/TAC against the optimum on real models. On
// small DAGs we can: enumerate every permutation of recv ops, evaluate
// each order's makespan on the canonical one-NIC/one-CPU device, and
// compare the heuristics against the true best/worst. Property tests use
// this to certify near-optimality of TAC on thousands of random DAGs.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "core/time_oracle.h"

namespace tictac::analysis {

using core::Graph;
using core::OpId;
using core::Schedule;
using core::TimeOracle;

// Deterministic makespan of executing `graph` on a two-channel device
// (downlink NIC for recvs, uplink NIC for sends, one compute resource)
// with recv transfers wired in exactly `recv_order`. Compute ops run in
// deterministic topological tie-break order.
double EvaluateOrder(const Graph& graph, const TimeOracle& oracle,
                     const std::vector<OpId>& recv_order);

// Same, for the recv order a Schedule induces.
double EvaluateSchedule(const Graph& graph, const TimeOracle& oracle,
                        const Schedule& schedule);

struct ExhaustiveResult {
  double best = 0.0;
  double worst = 0.0;
  double mean = 0.0;
  std::vector<OpId> best_order;
  std::vector<OpId> worst_order;
  std::size_t orders_evaluated = 0;
};

// Evaluates every permutation of the graph's recv ops. Throws
// std::invalid_argument if the graph has more than `max_recvs` recvs
// (factorial blow-up guard).
ExhaustiveResult ExhaustiveSearch(const Graph& graph,
                                  const TimeOracle& oracle,
                                  int max_recvs = 8);

}  // namespace tictac::analysis
