// Fault-injection specs for the cluster-scheduler service (DESIGN.md §8).
//
// The paper's TIC/TAC schedules assume a healthy cluster; production PS
// fabrics lose workers, see NICs flap, and grow stragglers mid-iteration.
// A FaultSpec is a deterministic timeline of such events against the
// service's shared PS fabrics, in a compact text grammar that round-trips
// exactly (Parse(ToString()) == *this), one event per `;`-separated
// clause:
//
//   straggler:worker=2:factor=3:at=1.0:for=2.0   worker slot 2 computes
//                                                3x slower over [1, 3)
//   slowlink:nic=0:scale=0.25:at=1.0:for=2.0     PS 0's NIC serves at a
//                                                quarter of its bandwidth
//   crash:worker=2:at=5.0                        the job owning worker
//                                                slot 2 loses its fabric
//                                                seat (permanent)
//   crash:fabric=1:at=5.0                        fabric 1 fails for good;
//                                                residents re-queue
//   flap:nic=0:period=0.5:at=1.0:for=3.0         PS 0's NIC goes down for
//                                                the first half of every
//                                                period over [1, 4)
//   trace:faults.csv                             one event clause per CSV
//                                                line (CRLF / blank / '#'
//                                                comment lines tolerated,
//                                                line-numbered errors)
//
// Every event takes an optional `fabric=K` (default 0) naming the shared
// fabric it strikes; `for=` omitted means the perturbation never lifts.
// Worker/NIC indices are fabric-local: worker slot w is the w-th worker
// of the fabric's current lowering (events aimed past the current worker
// count strike air — deterministic, and exactly what a dead slot does),
// nic=s is parameter server s of the stream's shared ps= fleet.
//
// Determinism contract: fault timelines carry their own times, and the
// only randomness the fault layer ever draws (recovery-backoff jitter)
// comes from util::Rng::Stream — an independent split of the service
// seed — so enabling faults NEVER perturbs the seeded arrival sequence
// or the per-iteration sim seeds (pinned in tests/fault_test.cc).
#pragma once

#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace tictac::fault {

// One scheduled fault. Fields without meaning for a kind keep their
// defaults (ToString omits them; Parse rejects them).
struct FaultEvent {
  enum class Kind {
    kStraggler,    // compute slowdown on one worker slot
    kSlowLink,     // bandwidth scale on one PS NIC
    kCrashWorker,  // permanent loss of one worker slot's job seat
    kCrashFabric,  // permanent loss of a whole fabric
    kFlap,         // periodic NIC down intervals
  };

  Kind kind = Kind::kStraggler;
  int fabric = 0;    // which shared fabric the event strikes
  int worker = -1;   // straggler / crash:worker target slot
  int nic = -1;      // slowlink / flap target PS index
  double factor = 1.0;  // straggler: compute runs `factor` times slower
  double scale = 1.0;   // slowlink: bandwidth multiplier in (0, 1]
  double at = 0.0;      // cluster time the event takes effect
  // Perturbation length; infinity (the default, omitted in text) = never
  // lifts. Crashes are permanent by definition and reject a for=.
  double duration = std::numeric_limits<double>::infinity();
  double period = 0.0;  // flap: full down/up cycle length

  // Canonical clause, e.g. "straggler:worker=2:factor=3:at=1:for=2".
  std::string ToString() const;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// A whole fault timeline: inline events, or a trace file holding one
// event clause per line. Default-constructed = no faults; every consumer
// treats an empty spec as the fault-free path, bit for bit.
struct FaultSpec {
  std::vector<FaultEvent> events;
  std::string trace_path;  // non-empty = trace form (events then empty)

  bool empty() const { return events.empty() && trace_path.empty(); }

  // Canonical text form: clauses joined by ';', or "trace:<path>", or ""
  // when empty. Parse(ToString()) == *this for non-empty specs.
  std::string ToString() const;

  // Parses "<clause>[;<clause>...]" or "trace:<path>". Throws
  // std::invalid_argument (naming the bad token) on malformed input; the
  // parsed spec is Validate()d before being returned.
  static FaultSpec Parse(std::string_view text);

  // Structural bounds: targets >= 0, factor >= 1, scale in (0, 1],
  // finite at >= 0, duration > 0 (or infinite), flap period > 0 with a
  // finite duration covering at most 4096 cycles. Throws
  // std::invalid_argument naming the offending event and field.
  void Validate() const;

  // The concrete timeline: inline events verbatim, or the trace file
  // parsed (same blank/comment/CRLF tolerance and line-numbered errors
  // as the arrival trace reader), stably sorted by `at`. Throws
  // std::runtime_error when the trace file cannot be read.
  std::vector<FaultEvent> Materialize() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

}  // namespace tictac::fault
