#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "runtime/spec.h"

namespace tictac::fault {
namespace {

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("fault: " + message);
}

constexpr double kInf = std::numeric_limits<double>::infinity();

// A flap expands into one down window per cycle when the service compiles
// it against an iteration; this bound keeps a one-line spec from encoding
// millions of windows (same spirit as ArrivalSpec's burst cap).
constexpr double kMaxFlapCycles = 4096.0;

std::string_view KindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kStraggler:
      return "straggler";
    case FaultEvent::Kind::kSlowLink:
      return "slowlink";
    case FaultEvent::Kind::kCrashWorker:
    case FaultEvent::Kind::kCrashFabric:
      return "crash";
    case FaultEvent::Kind::kFlap:
      return "flap";
  }
  Fail("unknown fault kind");
}

double ParseNumberField(std::string_view field, std::string_view key) {
  const std::string value(field.substr(key.size()));
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    Fail(std::string(key) + " expects a number, got '" + value + "'");
  }
}

int ParseIntField(std::string_view field, std::string_view key) {
  const double value = ParseNumberField(field, key);
  if (value != std::floor(value)) {
    Fail(std::string(key) + " expects an integer, got '" +
         std::string(field.substr(key.size())) + "'");
  }
  return static_cast<int>(value);
}

// One `kind:key=value:...` clause. `where` prefixes error messages (the
// clause itself inline, or "trace '...' line N" for trace rows).
FaultEvent ParseEvent(std::string_view text, const std::string& where) {
  const std::size_t colon = text.find(':');
  const std::string_view head = text.substr(0, colon);
  FaultEvent event;
  bool saw_worker = false;
  bool saw_fabric = false;
  bool saw_nic = false;
  bool saw_factor = false;
  bool saw_scale = false;
  bool saw_at = false;
  bool saw_for = false;
  bool saw_period = false;
  if (head == "straggler") {
    event.kind = FaultEvent::Kind::kStraggler;
  } else if (head == "slowlink") {
    event.kind = FaultEvent::Kind::kSlowLink;
  } else if (head == "crash") {
    event.kind = FaultEvent::Kind::kCrashFabric;  // refined below
  } else if (head == "flap") {
    event.kind = FaultEvent::Kind::kFlap;
  } else {
    Fail(where + "unknown fault kind '" + std::string(head) +
         "' — expected straggler, slowlink, crash, flap, or trace:<file>");
  }
  std::size_t pos = colon;
  while (pos != std::string_view::npos && pos < text.size()) {
    const std::size_t next = text.find(':', pos + 1);
    const std::string_view field =
        text.substr(pos + 1, next == std::string_view::npos
                                 ? std::string_view::npos
                                 : next - pos - 1);
    if (field.rfind("worker=", 0) == 0) {
      event.worker = ParseIntField(field, "worker=");
      saw_worker = true;
    } else if (field.rfind("fabric=", 0) == 0) {
      event.fabric = ParseIntField(field, "fabric=");
      saw_fabric = true;
    } else if (field.rfind("nic=", 0) == 0) {
      event.nic = ParseIntField(field, "nic=");
      saw_nic = true;
    } else if (field.rfind("factor=", 0) == 0) {
      event.factor = ParseNumberField(field, "factor=");
      saw_factor = true;
    } else if (field.rfind("scale=", 0) == 0) {
      event.scale = ParseNumberField(field, "scale=");
      saw_scale = true;
    } else if (field.rfind("at=", 0) == 0) {
      event.at = ParseNumberField(field, "at=");
      saw_at = true;
    } else if (field.rfind("for=", 0) == 0) {
      event.duration = ParseNumberField(field, "for=");
      saw_for = true;
    } else if (field.rfind("period=", 0) == 0) {
      event.period = ParseNumberField(field, "period=");
      saw_period = true;
    } else {
      Fail(where + "unknown field '" + std::string(field) + "' in '" +
           std::string(text) + "'");
    }
    pos = next;
  }
  // Per-kind required/forbidden fields, named loudly.
  const std::string clause = where + "'" + std::string(text) + "': ";
  auto require = [&](bool saw, std::string_view key) {
    if (!saw) {
      Fail(clause + std::string(KindName(event.kind)) + " requires " +
           std::string(key) + "=");
    }
  };
  auto forbid = [&](bool saw, std::string_view key) {
    if (saw) {
      Fail(clause + std::string(KindName(event.kind)) + " does not take " +
           std::string(key) + "=");
    }
  };
  require(saw_at, "at");
  switch (event.kind) {
    case FaultEvent::Kind::kStraggler:
      require(saw_worker, "worker");
      require(saw_factor, "factor");
      forbid(saw_nic, "nic");
      forbid(saw_scale, "scale");
      forbid(saw_period, "period");
      break;
    case FaultEvent::Kind::kSlowLink:
      require(saw_nic, "nic");
      require(saw_scale, "scale");
      forbid(saw_worker, "worker");
      forbid(saw_factor, "factor");
      forbid(saw_period, "period");
      break;
    case FaultEvent::Kind::kCrashFabric:
      // crash:worker=... is a worker crash (fabric= then attributes it);
      // crash:fabric=... alone is a whole-fabric crash.
      if (saw_worker) {
        event.kind = FaultEvent::Kind::kCrashWorker;
      } else if (!saw_fabric) {
        Fail(clause + "crash requires worker= or fabric=");
      }
      forbid(saw_nic, "nic");
      forbid(saw_factor, "factor");
      forbid(saw_scale, "scale");
      forbid(saw_period, "period");
      forbid(saw_for, "for");  // crashes are permanent
      break;
    case FaultEvent::Kind::kCrashWorker:
      break;  // unreachable: refined from kCrashFabric above
    case FaultEvent::Kind::kFlap:
      require(saw_nic, "nic");
      require(saw_period, "period");
      require(saw_for, "for");  // an unbounded flap never converges
      forbid(saw_worker, "worker");
      forbid(saw_factor, "factor");
      forbid(saw_scale, "scale");
      break;
  }
  return event;
}

std::vector<FaultEvent> ReadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("fault: cannot read trace file '" + path + "'");
  }
  std::vector<FaultEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && line.rfind("\xef\xbb\xbf", 0) == 0) {
      line.erase(0, 3);  // UTF-8 BOM from spreadsheet exports
    }
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    if (start == line.size() || line[start] == '#') continue;
    events.push_back(ParseEvent(
        std::string_view(line).substr(start),
        "trace '" + path + "' line " + std::to_string(line_no) + ": "));
  }
  return events;
}

void ValidateEvent(const FaultEvent& event, std::size_t index) {
  const std::string where =
      "event " + std::to_string(index) + " ('" + event.ToString() + "') ";
  if (event.fabric < 0) {
    Fail(where + "fabric must be >= 0, got " + std::to_string(event.fabric));
  }
  if (!std::isfinite(event.at) || event.at < 0.0) {
    Fail(where + "at must be finite and >= 0, got " +
         runtime::FormatDouble(event.at));
  }
  if (!(event.duration > 0.0)) {  // infinity allowed: never lifts
    Fail(where + "for must be > 0, got " +
         runtime::FormatDouble(event.duration));
  }
  switch (event.kind) {
    case FaultEvent::Kind::kStraggler:
      if (event.worker < 0) {
        Fail(where + "worker must be >= 0, got " +
             std::to_string(event.worker));
      }
      if (!std::isfinite(event.factor) || event.factor < 1.0) {
        Fail(where + "factor must be finite and >= 1, got " +
             runtime::FormatDouble(event.factor));
      }
      break;
    case FaultEvent::Kind::kSlowLink:
      if (event.nic < 0) {
        Fail(where + "nic must be >= 0, got " + std::to_string(event.nic));
      }
      if (!(event.scale > 0.0) || event.scale > 1.0) {
        Fail(where + "scale must be in (0, 1], got " +
             runtime::FormatDouble(event.scale));
      }
      break;
    case FaultEvent::Kind::kCrashWorker:
      if (event.worker < 0) {
        Fail(where + "worker must be >= 0, got " +
             std::to_string(event.worker));
      }
      break;
    case FaultEvent::Kind::kCrashFabric:
      break;
    case FaultEvent::Kind::kFlap:
      if (event.nic < 0) {
        Fail(where + "nic must be >= 0, got " + std::to_string(event.nic));
      }
      if (!(event.period > 0.0) || !std::isfinite(event.period)) {
        Fail(where + "period must be finite and > 0, got " +
             runtime::FormatDouble(event.period));
      }
      if (!std::isfinite(event.duration)) {
        Fail(where + "flap requires a finite for=");
      }
      if (event.duration / event.period > kMaxFlapCycles) {
        Fail(where + "for/period covers " +
             runtime::FormatDouble(event.duration / event.period) +
             " cycles — the cap is " + runtime::FormatDouble(kMaxFlapCycles));
      }
      break;
  }
}

}  // namespace

std::string FaultEvent::ToString() const {
  std::string text(KindName(kind));
  switch (kind) {
    case Kind::kStraggler:
      text += ":worker=" + std::to_string(worker) +
              ":factor=" + runtime::FormatDouble(factor);
      break;
    case Kind::kSlowLink:
      text += ":nic=" + std::to_string(nic) +
              ":scale=" + runtime::FormatDouble(scale);
      break;
    case Kind::kCrashWorker:
      text += ":worker=" + std::to_string(worker);
      break;
    case Kind::kCrashFabric:
      text += ":fabric=" + std::to_string(fabric);
      break;
    case Kind::kFlap:
      text += ":nic=" + std::to_string(nic) +
              ":period=" + runtime::FormatDouble(period);
      break;
  }
  text += ":at=" + runtime::FormatDouble(at);
  if (kind == Kind::kFlap ||
      ((kind == Kind::kStraggler || kind == Kind::kSlowLink) &&
       std::isfinite(duration))) {
    text += ":for=" + runtime::FormatDouble(duration);
  }
  // fabric= is the target of a fabric crash (always printed above) and an
  // attribution elsewhere (printed only when not the default 0).
  if (kind != Kind::kCrashFabric && fabric != 0) {
    text += ":fabric=" + std::to_string(fabric);
  }
  return text;
}

std::string FaultSpec::ToString() const {
  if (!trace_path.empty()) return "trace:" + trace_path;
  std::string text;
  for (const FaultEvent& event : events) {
    if (!text.empty()) text += ';';
    text += event.ToString();
  }
  return text;
}

FaultSpec FaultSpec::Parse(std::string_view text) {
  FaultSpec spec;
  if (text.rfind("trace:", 0) == 0) {
    // Everything after the first ':' is the path verbatim (paths may
    // contain further colons or semicolons).
    spec.trace_path = std::string(text.substr(6));
    if (spec.trace_path.empty()) {
      Fail("trace expects a file path, e.g. trace:faults.csv");
    }
    spec.Validate();
    return spec;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view clause = text.substr(pos, end - pos);
    while (!clause.empty() && (clause.front() == ' ' || clause.front() == '\t')) {
      clause.remove_prefix(1);
    }
    while (!clause.empty() && (clause.back() == ' ' || clause.back() == '\t')) {
      clause.remove_suffix(1);
    }
    if (clause.empty()) {
      Fail("empty fault clause in '" + std::string(text) +
           "' — clauses are ';'-separated, e.g. "
           "straggler:worker=2:factor=3:at=1:for=2");
    }
    spec.events.push_back(ParseEvent(clause, ""));
    pos = end + 1;
    if (end == text.size()) break;
  }
  spec.Validate();
  return spec;
}

void FaultSpec::Validate() const {
  if (!trace_path.empty()) {
    if (!events.empty()) {
      Fail("a spec holds inline events or a trace path, not both");
    }
    return;  // rows are validated when the trace is materialized
  }
  for (std::size_t i = 0; i < events.size(); ++i) ValidateEvent(events[i], i);
}

std::vector<FaultEvent> FaultSpec::Materialize() const {
  std::vector<FaultEvent> timeline =
      trace_path.empty() ? events : ReadTrace(trace_path);
  if (!trace_path.empty()) {
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      ValidateEvent(timeline[i], i);
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return timeline;
}

}  // namespace tictac::fault
