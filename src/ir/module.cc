#include "ir/module.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tictac::ir {
namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::invalid_argument("ir: " + what);
}

std::uint64_t HashList(std::span<const NodeId> list) {
  // FNV-1a over the raw ids; collisions are resolved by content compare.
  std::uint64_t h = 1469598103934665603ull;
  for (NodeId n : list) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(n));
    h *= 1099511628211ull;
  }
  return h;
}

const char* KindName(core::OpKind kind) {
  switch (kind) {
    case core::OpKind::kCompute:
      return "compute";
    case core::OpKind::kRecv:
      return "recv";
    case core::OpKind::kSend:
      return "send";
    case core::OpKind::kAggregate:
      return "aggregate";
    case core::OpKind::kRead:
      return "read";
    case core::OpKind::kUpdate:
      return "update";
  }
  return "?";
}

}  // namespace

const char* ToString(Stage stage) {
  switch (stage) {
    case Stage::kLogical:
      return "logical";
    case Stage::kReplicated:
      return "replicated";
    case Stage::kLowered:
      return "lowered";
    case Stage::kMerged:
      return "merged";
  }
  return "?";
}

PredArena::PredArena() {
  // Reserve id 0 for the empty list so default nodes need no index probe.
  spans_.push_back(Span{0, 0});
  index_[HashList({})].push_back(kEmptyList);
}

PredArena::ListId PredArena::Intern(std::span<const NodeId> list) {
  const std::uint64_t h = HashList(list);
  auto it = index_.find(h);
  if (it != index_.end()) {
    for (ListId candidate : it->second) {
      std::span<const NodeId> existing = this->list(candidate);
      if (existing.size() == list.size() &&
          std::equal(existing.begin(), existing.end(), list.begin())) {
        ++dedup_hits_;
        return candidate;
      }
    }
  }
  Span s;
  s.offset = static_cast<std::uint32_t>(pool_.size());
  s.size = static_cast<std::uint32_t>(list.size());
  pool_.insert(pool_.end(), list.begin(), list.end());
  const ListId id = static_cast<ListId>(spans_.size());
  spans_.push_back(s);
  index_[h].push_back(id);
  return id;
}

NodeId Module::AddNode() {
  const NodeId id = static_cast<NodeId>(size());
  duration_.push_back(0.0);
  resource_.push_back(-1);
  priority_.push_back(sim::kNoPriority);
  gate_group_.push_back(-1);
  gate_rank_.push_back(-1);
  pred_list_.push_back(PredArena::kEmptyList);
  kind_.push_back(core::OpKind::kCompute);
  op_.push_back(core::kInvalidOp);
  worker_.push_back(-1);
  job_.push_back(-1);
  iteration_.push_back(0);
  param_.push_back(-1);
  bytes_.push_back(0);
  cost_.push_back(0.0);
  rank_.push_back(kNoRank);
  sched_priority_.push_back(sim::kNoPriority);
  delay_.push_back(0);
  name_.emplace_back();
  return id;
}

void Module::Validate() const {
  const NodeId n = static_cast<NodeId>(size());
  if (jobs.size() != ranges.size()) {
    Fail("jobs and ranges must be aligned: " + std::to_string(jobs.size()) +
         " jobs vs " + std::to_string(ranges.size()) + " ranges");
  }
  // Ranges partition [0, n) in order, with delay nodes in the gaps.
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  NodeId cursor = 0;
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    const JobRange& r = ranges[j];
    if (r.first > r.last || r.first < 0 || r.last > n) {
      Fail("job " + std::to_string(j) + " range [" + std::to_string(r.first) +
           ", " + std::to_string(r.last) + ") is malformed");
    }
    if (r.delay != kNoNode) {
      if (r.delay != cursor || r.delay + 1 != r.first) {
        Fail("job " + std::to_string(j) +
             " delay node must immediately precede its range");
      }
      if (!is_delay(r.delay)) {
        Fail("job " + std::to_string(j) +
             " delay node lacks the is_delay attribute");
      }
      owner[static_cast<std::size_t>(r.delay)] = static_cast<int>(j);
      cursor = r.delay + 1;
    }
    if (r.first != cursor) {
      Fail("job ranges must tile the module: job " + std::to_string(j) +
           " starts at " + std::to_string(r.first) + ", expected " +
           std::to_string(cursor));
    }
    for (NodeId t = r.first; t < r.last; ++t) {
      owner[static_cast<std::size_t>(t)] = static_cast<int>(j);
    }
    cursor = r.last;
  }
  if (iterations == 1 && cursor != n) {
    Fail("job ranges must tile the module: " + std::to_string(n - cursor) +
         " trailing nodes are unowned");
  }
  const bool lowered = stage == Stage::kLowered || stage == Stage::kMerged;
  for (NodeId t = 0; t < n; ++t) {
    if (!(duration_[idx(t)] >= 0.0) ||
        duration_[idx(t)] != duration_[idx(t)]) {
      Fail("node " + std::to_string(t) + " has a negative or NaN duration");
    }
    if (lowered) {
      if (resource_[idx(t)] < 0) {
        Fail("node " + std::to_string(t) + " has no resource at stage " +
             std::string(ToString(stage)));
      }
      if (stage == Stage::kMerged && resource_[idx(t)] >= num_resources) {
        Fail("node " + std::to_string(t) + " resource " +
             std::to_string(resource_[idx(t)]) + " is outside [0, " +
             std::to_string(num_resources) + ")");
      }
    } else if (resource_[idx(t)] != -1) {
      Fail("node " + std::to_string(t) + " has a resource at stage " +
           std::string(ToString(stage)) + " (passes assign resources when "
           "lowering)");
    }
    for (NodeId p : preds(t)) {
      if (p < 0 || p >= n) {
        Fail("node " + std::to_string(t) + " pred " + std::to_string(p) +
             " is out of range");
      }
      if (p == t) {
        Fail("node " + std::to_string(t) + " depends on itself");
      }
    }
    if ((gate_group_[idx(t)] >= 0) != (gate_rank_[idx(t)] >= 0)) {
      Fail("node " + std::to_string(t) +
           " sets only one of gate_group/gate_rank");
    }
  }
  // Acyclicity (Kahn). Ids are mostly emission-ordered, but §5.1 chain
  // edges follow rank order and may point forward, so a topological
  // check — not an ordering check — is the real invariant.
  {
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<NodeId>> succs(static_cast<std::size_t>(n));
    for (NodeId t = 0; t < n; ++t) {
      for (NodeId p : preds(t)) {
        succs[static_cast<std::size_t>(p)].push_back(t);
        ++indegree[static_cast<std::size_t>(t)];
      }
    }
    std::vector<NodeId> ready;
    for (NodeId t = 0; t < n; ++t) {
      if (indegree[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      const NodeId t = ready.back();
      ready.pop_back();
      ++visited;
      for (NodeId s : succs[static_cast<std::size_t>(t)]) {
        if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }
    if (visited != static_cast<std::size_t>(n)) {
      Fail("dependency cycle through " +
           std::to_string(static_cast<std::size_t>(n) - visited) + " nodes");
    }
  }
}

std::string Module::DebugSummary() const {
  std::size_t per_kind[6] = {};
  for (std::size_t i = 0; i < size(); ++i) {
    per_kind[static_cast<std::size_t>(kind_[i])]++;
  }
  std::ostringstream out;
  out << "ir::Module{stage=" << ToString(stage) << ", nodes=" << size()
      << ", jobs=" << jobs.size();
  if (stage == Stage::kMerged) {
    out << ", resources=" << num_resources << ", workers=" << total_workers
        << ", iterations=" << iterations;
  }
  out << ", kinds=[";
  const char* sep = "";
  for (int k = 0; k < 6; ++k) {
    if (per_kind[k] == 0) continue;
    out << sep << KindName(static_cast<core::OpKind>(k)) << ":" << per_kind[k];
    sep = " ";
  }
  out << "], arena={lists=" << arena_.num_lists()
      << ", entries=" << arena_.pool_entries()
      << ", dedup_hits=" << arena_.dedup_hits() << "}}";
  return out.str();
}

std::string Module::DebugDump(std::size_t max_nodes) const {
  std::ostringstream out;
  out << DebugSummary() << "\n";
  const std::size_t shown = std::min(max_nodes, size());
  for (std::size_t i = 0; i < shown; ++i) {
    const NodeId t = static_cast<NodeId>(i);
    out << "  %" << t << " " << KindName(kind(t));
    if (!name(t).empty()) out << " \"" << name(t) << "\"";
    out << " job=" << job(t);
    if (worker(t) >= 0) out << " w=" << worker(t);
    if (param(t) >= 0) out << " p=" << param(t);
    if (iteration(t) > 0) out << " iter=" << iteration(t);
    if (resource(t) >= 0) out << " r=" << resource(t);
    out << " d=" << duration(t);
    if (priority(t) != sim::kNoPriority) out << " prio=" << priority(t);
    if (gate_group(t) >= 0) {
      out << " gate=" << gate_group(t) << ":" << gate_rank(t);
    }
    if (is_delay(t)) out << " delay";
    out << " preds=[";
    const char* sep = "";
    for (NodeId p : preds(t)) {
      out << sep << "%" << p;
      sep = " ";
    }
    out << "]\n";
  }
  if (shown < size()) {
    out << "  … " << (size() - shown) << " more nodes\n";
  }
  return out.str();
}

}  // namespace tictac::ir
