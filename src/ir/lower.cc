#include "ir/lower.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "ir/passes.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::ir {
namespace {

void RequireMerged(const Module& module, const char* exporter) {
  if (module.stage != Stage::kMerged) {
    throw std::invalid_argument(std::string("ir: ") + exporter +
                                " consumes a merged module, got " +
                                ToString(module.stage) +
                                " (run the lowering pipeline first)");
  }
}

// Reconstructs one job's own single-job Lowering — local task ids, local
// resource space, no arrival gate — from its slice of the merged module.
// The inverse of merge_jobs' remap + apply_arrival_offsets' delay edge.
runtime::Lowering ExportJobLocal(const Module& module, std::size_t j) {
  const JobInfo& job = module.jobs[j];
  const JobRange& r = module.ranges[j];
  const int W = job.config.num_workers;
  const int S = job.config.num_ps;
  const int T = module.total_workers;
  const int base_w = r.first_worker;

  runtime::Lowering local;
  local.num_workers = W;
  local.num_resources = W + 2 * W * S + S;
  local.worker_tasks.resize(static_cast<std::size_t>(W));
  local.worker_recv_tasks.resize(static_cast<std::size_t>(W));
  local.transfer_param.resize(static_cast<std::size_t>(W));

  const auto unmap_resource = [&](int res) {
    if (res < T) return res - base_w;  // worker computation
    if (res < T + T * S) {             // downlink channel
      const int g = (res - T) / S;
      const int s = (res - T) % S;
      return W + (g - base_w) * S + s;
    }
    if (res < T + 2 * T * S) {  // uplink channel
      const int g = (res - T - T * S) / S;
      const int s = (res - T - T * S) % S;
      return W + W * S + (g - base_w) * S + s;
    }
    return W + 2 * W * S + (res - T - 2 * T * S);  // PS CPU
  };

  for (NodeId n = r.first; n < r.last; ++n) {
    sim::Task task;
    task.duration = module.duration(n);
    task.resource = unmap_resource(module.resource(n));
    task.priority = module.priority(n);
    task.gate_group = module.gate_group(n) >= 0
                          ? module.gate_group(n) - base_w
                          : module.gate_group(n);
    task.gate_rank = module.gate_rank(n);
    for (const NodeId p : module.preds(n)) {
      if (p == r.delay) continue;  // the arrival gate is combined-only
      task.preds.push_back(p - r.first);
    }
    task.op = module.op(n);
    task.kind = module.kind(n);
    task.worker =
        module.worker(n) >= 0 ? module.worker(n) - base_w : module.worker(n);
    const int w = task.worker;
    const sim::TaskId id = n - r.first;
    if (w >= 0) {
      local.worker_tasks[static_cast<std::size_t>(w)].push_back(id);
      if (task.kind == core::OpKind::kRecv) {
        local.worker_recv_tasks[static_cast<std::size_t>(w)].push_back(id);
        local.transfer_param[static_cast<std::size_t>(w)].push_back(
            module.param(n));
      }
    }
    local.tasks.push_back(std::move(task));
  }

  local.update_task.assign(job.ps_of_param.size(), -1);
  local.worker_sink.assign(static_cast<std::size_t>(W), -1);
  for (NodeId n = r.first; n < r.last; ++n) {
    if (module.kind(n) == core::OpKind::kUpdate) {
      local.update_task[static_cast<std::size_t>(module.param(n))] =
          n - r.first;
    }
    if (module.kind(n) == core::OpKind::kCompute && module.worker(n) >= 0) {
      local.worker_sink[static_cast<std::size_t>(module.worker(n) - base_w)] =
          n - r.first;  // last in emission order
    }
  }
  return local;
}

void AppendStandardPasses(PassPipeline& pipeline, runtime::Topology topology,
                          int iterations) {
  pipeline.Add(MakeExpandReplicasPass());
  if (topology == runtime::Topology::kRing) {
    pipeline.Add(MakeLowerAllreduceRingPass());
  } else {
    pipeline.Add(MakeLowerPsFabricPass());
    pipeline.Add(MakeMergeJobsPass());
    // No-op (and no network built) unless a job's config enables
    // sim.flow_fairness, so the static-split presets are untouched.
    pipeline.Add(MakeLowerFlowNicsPass());
  }
  pipeline.Add(MakeApplyArrivalOffsetsPass());
  pipeline.Add(MakePipelineItersPass(iterations));
}

}  // namespace

JobRange AppendLogicalNodes(Module& module, const core::Graph& graph,
                            int job) {
  JobRange r;
  r.first = static_cast<NodeId>(module.size());
  std::vector<NodeId> buf;
  for (const core::Op& op : graph.ops()) {
    const NodeId n = module.AddNode();
    module.kind(n) = op.kind;
    module.op(n) = op.id;
    module.param(n) = op.param;
    module.bytes(n) = op.bytes;
    module.cost(n) = op.cost;
    module.job(n) = job;
    module.SetName(n, op.name);
    buf.clear();
    for (const core::OpId p : graph.preds(op.id)) {
      buf.push_back(r.first + p);
    }
    module.SetPreds(n, buf);
  }
  r.last = static_cast<NodeId>(module.size());
  return r;
}

int AddJob(Module& module, JobInfo info) {
  if (module.stage != Stage::kLogical) {
    throw std::invalid_argument("ir: AddJob requires a logical-stage module");
  }
  if (!info.graph) {
    throw std::invalid_argument("ir: AddJob needs info.graph set");
  }
  const int j = static_cast<int>(module.jobs.size());
  module.ranges.push_back(AppendLogicalNodes(module, *info.graph, j));
  module.jobs.push_back(std::move(info));
  return j;
}

void ApplyScheduleAttrs(Module& module, std::size_t job,
                        const core::Graph& graph,
                        const core::Schedule& schedule) {
  const JobRange& r = module.ranges[job];
  const bool size_match = schedule.size() == graph.size();
  if (size_match && schedule.CoversAllRecvs(graph)) {
    const std::unordered_map<core::OpId, int> rank =
        schedule.NormalizedRecvRank(graph);
    for (const auto& [op_id, recv_rank] : rank) {
      module.rank(r.first + op_id) = recv_rank;
    }
    module.jobs[job].scheduled = true;
  }
  if (size_match) {
    for (const core::Op& op : graph.ops()) {
      if (op.kind == core::OpKind::kSend && schedule.HasPriority(op.id)) {
        module.sched_priority(r.first + op.id) = schedule.priority(op.id);
      }
    }
  }
}

Module BuildLogicalModule(
    const std::vector<runtime::JobLoweringInput>& jobs) {
  Module module;
  for (const runtime::JobLoweringInput& job : jobs) {
    JobInfo info;
    info.config = job.config;
    info.start_offset = job.start_offset;
    info.ps_of_param = job.ps_of_param;
    // Borrowed: the caller's graph outlives the lowering call.
    info.graph = std::shared_ptr<const core::Graph>(&job.graph,
                                                    [](const core::Graph*) {});
    const int j = AddJob(module, std::move(info));
    ApplyScheduleAttrs(module, static_cast<std::size_t>(j), job.graph,
                       job.schedule);
  }
  return module;
}

Module BuildModuleForSpec(const runtime::MultiJobSpec& spec) {
  spec.Validate();
  const int T = spec.TotalWorkers();
  Module module;
  for (const runtime::MultiJobEntry& entry : spec.jobs) {
    runtime::ClusterConfig config = entry.spec.BuildCluster();
    // Every PS NIC is time-shared by the pair-channels of ALL jobs'
    // workers: scale this job's platform bandwidth by W_j / T so the
    // per-channel figure (bandwidth / W_j) comes out as the contended
    // bandwidth / T. Exactly 1.0 for a single job.
    config.platform.bandwidth_bps *= static_cast<double>(config.num_workers) /
                                     static_cast<double>(T);
    const models::ModelInfo& model = models::FindModel(entry.spec.model);
    models::BuildOptions build;
    build.training = config.training;
    build.batch_factor = config.batch_factor;

    JobInfo info;
    info.config = config;
    info.start_offset = entry.start_offset;
    info.policy = entry.spec.policy;
    info.param_bytes = models::ParamSizes(model);
    info.graph = std::make_shared<const core::Graph>(
        models::BuildWorkerGraph(model, build));
    AddJob(module, std::move(info));
  }
  return module;
}

PassPipeline StandardLoweringPipeline(runtime::Topology topology,
                                      int iterations) {
  PassPipeline pipeline;
  AppendStandardPasses(pipeline, topology, iterations);
  return pipeline;
}

PassPipeline FullLoweringPipeline(runtime::Topology topology,
                                  int iterations) {
  PassPipeline pipeline;
  pipeline.Add(MakeChunkTransfersPass());
  pipeline.Add(MakeShardParamsPass());
  pipeline.Add(MakeComputeSchedulesPass());
  AppendStandardPasses(pipeline, topology, iterations);
  return pipeline;
}

runtime::Lowering ToLowering(const Module& module) {
  RequireMerged(module, "ToLowering");
  const int T = module.total_workers;
  runtime::Lowering out;
  out.num_workers = T;
  out.num_resources = module.num_resources;
  out.flow = module.flow;
  out.worker_tasks.resize(static_cast<std::size_t>(T));
  out.worker_recv_tasks.resize(static_cast<std::size_t>(T));
  out.transfer_param.resize(static_cast<std::size_t>(T));

  const auto n_all = static_cast<NodeId>(module.size());
  out.tasks.reserve(module.size());
  for (NodeId n = 0; n < n_all; ++n) {
    sim::Task task;
    task.duration = module.duration(n);
    task.resource = module.resource(n);
    task.priority = module.priority(n);
    task.gate_group = module.gate_group(n);
    task.gate_rank = module.gate_rank(n);
    task.preds.assign(module.preds(n).begin(), module.preds(n).end());
    task.op = module.op(n);
    task.kind = module.kind(n);
    task.worker = module.worker(n);
    if (task.worker >= 0) {
      const auto w = static_cast<std::size_t>(task.worker);
      out.worker_tasks[w].push_back(n);
      if (task.kind == core::OpKind::kRecv) {
        out.worker_recv_tasks[w].push_back(n);
        // transfer_param is an iteration-0 table (pipelined lowerings
        // keep the first iteration's copy, runtime/lowering.h).
        if (module.iteration(n) == 0) {
          out.transfer_param[w].push_back(module.param(n));
        }
      }
    }
    out.tasks.push_back(std::move(task));
  }

  // update_task/worker_sink are single-job PS tables (parameter indices
  // are per-job): ring and multi-job lowerings leave them empty.
  if (module.jobs.size() == 1 && !module.ring) {
    out.update_task.assign(module.jobs.front().ps_of_param.size(), -1);
    out.worker_sink.assign(static_cast<std::size_t>(T), -1);
    for (NodeId n = 0; n < n_all; ++n) {
      if (module.iteration(n) != 0) continue;
      if (module.kind(n) == core::OpKind::kUpdate) {
        out.update_task[static_cast<std::size_t>(module.param(n))] = n;
      }
      if (module.kind(n) == core::OpKind::kCompute && module.worker(n) >= 0) {
        out.worker_sink[static_cast<std::size_t>(module.worker(n))] = n;
      }
    }
  }
  return out;
}

runtime::PipelineLowering ToPipelineLowering(const Module& module) {
  runtime::PipelineLowering out;
  out.lowering = ToLowering(module);
  out.iterations = module.iterations;
  out.task_iteration.reserve(module.size());
  for (NodeId n = 0; n < static_cast<NodeId>(module.size()); ++n) {
    out.task_iteration.push_back(module.iteration(n));
  }
  return out;
}

runtime::MultiJobLowering ToMultiJobLowering(const Module& module) {
  RequireMerged(module, "ToMultiJobLowering");
  if (module.ring) {
    throw std::invalid_argument(
        "ir: ToMultiJobLowering needs a PS-fabric module; ring collectives "
        "have no shared fabric to slice");
  }
  if (module.iterations != 1) {
    throw std::invalid_argument(
        "ir: ToMultiJobLowering consumes single-iteration modules (the "
        "multi-job runner re-simulates the one-iteration graph)");
  }
  runtime::MultiJobLowering out;
  out.total_workers = module.total_workers;
  out.num_ps = module.jobs.front().config.num_ps;
  out.combined = ToLowering(module);
  // Parameter indices are per-job: the combined fabric has no meaningful
  // update/sink tables (matches the legacy LowerSharedCluster even for a
  // single job).
  out.combined.update_task.clear();
  out.combined.worker_sink.clear();
  for (std::size_t j = 0; j < module.jobs.size(); ++j) {
    runtime::MultiJobLowering::JobSlice slice;
    const JobRange& r = module.ranges[j];
    slice.first_task = r.first;
    slice.last_task = r.last;
    slice.first_worker = r.first_worker;
    slice.delay_task = r.delay == kNoNode ? -1 : r.delay;
    slice.start_offset = module.jobs[j].start_offset;
    slice.lowering = ExportJobLocal(module, j);
    out.jobs.push_back(std::move(slice));
  }
  return out;
}

}  // namespace tictac::ir
