// Arena-interned task-graph IR (DESIGN.md §10).
//
// Every lowering in the runtime — cluster, pipeline, all-reduce,
// chunking, multi-job composition — is expressed as a sequence of small
// graph-rewrite passes over one shared representation, in the style of
// shady's passes/ + node.c: flat node storage with dense ids, an interned
// predecessor-list arena, and side-table attributes carrying provenance
// (job / worker / iteration / param) that the hot simulation path never
// touches.
//
// A Module moves through stages as passes lower it:
//
//   kLogical     one node per worker-graph op, per job (no resources);
//                the stage chunk_transfers / shard_params /
//                compute_schedules rewrite
//   kReplicated  ops cloned once per worker (expand_replicas)
//   kLowered     resources + durations assigned in each job's LOCAL
//                resource space (lower_ps_fabric); ring lowerings skip
//                straight to kMerged
//   kMerged      jobs remapped onto one shared fabric (merge_jobs);
//                the stage apply_arrival_offsets / pipeline_iters
//                rewrite and the sim/Lowering exporters consume
//
// Node ids are dense and stage-local: passes rebuild storage rather than
// mutate in place, so a NodeId is only meaningful against the module
// revision that produced it. Predecessor lists live in a content-interned
// arena — structurally identical lists (every transfer of an all-reduce
// round, every replica of a fan-in) share one span of the pool, which is
// both the memory win and what makes the flat storage cache-friendly to
// scan.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "core/op.h"
#include "runtime/cluster.h"
#include "sim/task.h"

namespace tictac::ir {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;
// Rank attribute of an unscheduled node (no normalized recv rank).
inline constexpr int kNoRank = -1;

// Content-interned predecessor-list arena: a CSR pool of NodeIds plus a
// dedupe index, so identical lists are stored once and a node holds only
// a ListId. The empty list is always id 0.
class PredArena {
 public:
  using ListId = std::int32_t;
  static constexpr ListId kEmptyList = 0;

  PredArena();

  // Returns the id of an existing identical list, or appends the list to
  // the pool and returns its fresh id.
  ListId Intern(std::span<const NodeId> list);

  std::span<const NodeId> list(ListId id) const {
    const Span& s = spans_[static_cast<std::size_t>(id)];
    return {pool_.data() + s.offset, s.size};
  }

  // Distinct lists stored (including the empty list).
  std::size_t num_lists() const { return spans_.size(); }
  // Total NodeIds in the pool (what a non-interned layout would multiply).
  std::size_t pool_entries() const { return pool_.size(); }
  // Intern() calls answered by an existing list instead of new storage.
  std::size_t dedup_hits() const { return dedup_hits_; }

 private:
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
  };
  std::vector<NodeId> pool_;
  std::vector<Span> spans_;
  // Content hash -> candidate list ids (collisions resolved by compare).
  std::unordered_map<std::uint64_t, std::vector<ListId>> index_;
  std::size_t dedup_hits_ = 0;
};

enum class Stage { kLogical, kReplicated, kLowered, kMerged };
const char* ToString(Stage stage);

// Per-job lowering inputs carried alongside the nodes. The config's
// platform must already include any contention scaling (bandwidth · W/T
// for co-located jobs) — exactly the contract of runtime's lowering
// entry points.
struct JobInfo {
  runtime::ClusterConfig config;
  double start_offset = 0.0;
  // PolicyRegistry spec for the compute_schedules pass; empty when the
  // schedule was imported (or the job is unscheduled baseline).
  std::string policy;
  // Parameter sizes, for shard_params. May be empty when ps_of_param was
  // imported directly.
  std::vector<std::int64_t> param_bytes;
  // Parameter -> PS assignment (filled by shard_params or at import).
  std::vector<int> ps_of_param;
  // True when rank attributes cover every recv of the job (the §5.1
  // enforcement precondition — gates are only emitted when set).
  bool scheduled = false;
  // The job's logical worker graph, kept alongside the (equivalent)
  // kLogical nodes. The interned IR normalizes edge-list order away, but
  // core::ChunkTransfers' rewiring and the builder's edge insertion
  // order are observable in pred-list ordering downstream, so logical-
  // stage rewrites (chunk_transfers) both update the nodes and replace
  // this graph; expand_replicas and compute_schedules read it. Null once
  // the module leaves kLogical.
  std::shared_ptr<const core::Graph> graph;
};

// The contiguous node range of one job, maintained by every pass. The
// delay node (arrival offset) sits just before `first` and belongs to no
// range.
struct JobRange {
  NodeId first = 0;
  NodeId last = 0;  // [first, last)
  NodeId delay = kNoNode;
  int first_worker = 0;
};

class Module {
 public:
  // --- construction -------------------------------------------------------

  // Appends a default node (duration 0, no resource, no priority, empty
  // preds, provenance unset) and returns its id.
  NodeId AddNode();
  std::size_t size() const { return duration_.size(); }

  // --- hot task fields (what the simulator consumes) ----------------------

  double& duration(NodeId n) { return duration_[idx(n)]; }
  double duration(NodeId n) const { return duration_[idx(n)]; }
  int& resource(NodeId n) { return resource_[idx(n)]; }
  int resource(NodeId n) const { return resource_[idx(n)]; }
  int& priority(NodeId n) { return priority_[idx(n)]; }
  int priority(NodeId n) const { return priority_[idx(n)]; }
  int& gate_group(NodeId n) { return gate_group_[idx(n)]; }
  int gate_group(NodeId n) const { return gate_group_[idx(n)]; }
  int& gate_rank(NodeId n) { return gate_rank_[idx(n)]; }
  int gate_rank(NodeId n) const { return gate_rank_[idx(n)]; }

  void SetPreds(NodeId n, std::span<const NodeId> preds) {
    pred_list_[idx(n)] = arena_.Intern(preds);
  }
  std::span<const NodeId> preds(NodeId n) const {
    return arena_.list(pred_list_[idx(n)]);
  }

  // --- side-table attributes (provenance; never read by the engine) -------

  core::OpKind& kind(NodeId n) { return kind_[idx(n)]; }
  core::OpKind kind(NodeId n) const { return kind_[idx(n)]; }
  core::OpId& op(NodeId n) { return op_[idx(n)]; }
  core::OpId op(NodeId n) const { return op_[idx(n)]; }
  int& worker(NodeId n) { return worker_[idx(n)]; }
  int worker(NodeId n) const { return worker_[idx(n)]; }
  int& job(NodeId n) { return job_[idx(n)]; }
  int job(NodeId n) const { return job_[idx(n)]; }
  int& iteration(NodeId n) { return iteration_[idx(n)]; }
  int iteration(NodeId n) const { return iteration_[idx(n)]; }
  int& param(NodeId n) { return param_[idx(n)]; }
  int param(NodeId n) const { return param_[idx(n)]; }
  std::int64_t& bytes(NodeId n) { return bytes_[idx(n)]; }
  std::int64_t bytes(NodeId n) const { return bytes_[idx(n)]; }
  double& cost(NodeId n) { return cost_[idx(n)]; }
  double cost(NodeId n) const { return cost_[idx(n)]; }
  // Normalized recv rank (§5.1 total order), kNoRank when unscheduled.
  int& rank(NodeId n) { return rank_[idx(n)]; }
  int rank(NodeId n) const { return rank_[idx(n)]; }
  // Raw schedule priority for best-effort send ordering.
  int& sched_priority(NodeId n) { return sched_priority_[idx(n)]; }
  int sched_priority(NodeId n) const { return sched_priority_[idx(n)]; }
  bool is_delay(NodeId n) const { return delay_[idx(n)] != 0; }
  void set_is_delay(NodeId n, bool value) { delay_[idx(n)] = value ? 1 : 0; }
  // Logical op names (needed only to export a core::Graph; replicas drop
  // them).
  void SetName(NodeId n, std::string name) { name_[idx(n)] = std::move(name); }
  const std::string& name(NodeId n) const { return name_[idx(n)]; }

  // --- module-level state -------------------------------------------------

  Stage stage = Stage::kLogical;
  std::vector<JobInfo> jobs;
  std::vector<JobRange> ranges;  // aligned with jobs
  // Valid at kMerged: the shared-fabric resource count and ΣW workers.
  int num_resources = 0;
  int total_workers = 0;
  // Number of pipelined iterations represented (1 until pipeline_iters).
  int iterations = 1;
  // Set by lower_allreduce_ring: the fabric is a ring collective, so the
  // exported Lowering has no PS-side update/sink tables (the legacy
  // LowerAllReduce leaves them empty).
  bool ring = false;
  // Set by lower_flow_nics (valid at kMerged): the shared-fabric capacity
  // graph for SimOptions::flow_fairness — channel resources mapped to the
  // NIC / fat-tree core links they traverse (models/topology.h). Null =
  // static bandwidth/T split only. Shared, not copied, by the Lowering
  // exporters; passes that rebuild the module must carry it over.
  std::shared_ptr<const sim::FlowNetwork> flow;

  const PredArena& arena() const { return arena_; }

  // --- invariants ---------------------------------------------------------

  // Structural validation, run between passes when the pipeline's
  // check_invariants option is on: preds in range and acyclic, job
  // ranges partition the nodes in order, stage-consistent resources
  // (unassigned while logical/replicated, in [0, num_resources) once
  // merged), finite non-negative durations, and dense gate ranks per
  // group. Throws std::invalid_argument naming the violated invariant.
  void Validate() const;

  // One-line counts (nodes per kind, jobs, stage, arena dedup stats).
  std::string DebugSummary() const;
  // Per-node listing of the first `max_nodes` nodes, for dump hooks.
  std::string DebugDump(std::size_t max_nodes = 64) const;

 private:
  std::size_t idx(NodeId n) const { return static_cast<std::size_t>(n); }

  std::vector<double> duration_;
  std::vector<int> resource_;
  std::vector<int> priority_;
  std::vector<int> gate_group_;
  std::vector<int> gate_rank_;
  std::vector<PredArena::ListId> pred_list_;

  std::vector<core::OpKind> kind_;
  std::vector<core::OpId> op_;
  std::vector<int> worker_;
  std::vector<int> job_;
  std::vector<int> iteration_;
  std::vector<int> param_;
  std::vector<std::int64_t> bytes_;
  std::vector<double> cost_;
  std::vector<int> rank_;
  std::vector<int> sched_priority_;
  std::vector<std::uint8_t> delay_;
  std::vector<std::string> name_;

  PredArena arena_;
};

}  // namespace tictac::ir
