// The bridge between the runtime's lowering entry points and the IR
// pass pipeline (DESIGN.md §10): builders importing worker graphs into a
// kLogical Module, the preset pass orders, and exporters producing the
// sim-facing Lowering structures.
//
// The legacy entry points (runtime::LowerCluster / LowerPipeline /
// LowerAllReduce / LowerSharedCluster) are thin wrappers over
// BuildLogicalModule + StandardLoweringPipeline + an exporter, pinned
// bit-identical to the frozen pre-IR implementations
// (runtime/reference_lowering.h) by tests/ir_differential_test.cc.
// Composed scenarios — chunked + sharded + scheduled + multi-job +
// pipelined in ONE pipeline invocation — go through
// BuildModuleForSpec + FullLoweringPipeline (the `tictac_cli lower`
// subcommand).
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "ir/module.h"
#include "ir/pass.h"
#include "runtime/cluster.h"
#include "runtime/lowering.h"
#include "runtime/multijob.h"

namespace tictac::ir {

// Imports `graph`'s ops (in op-id order, preds in graph edge order) as
// kLogical nodes tagged with job index `job`; returns their range.
JobRange AppendLogicalNodes(Module& module, const core::Graph& graph,
                            int job);

// Appends a job — JobInfo (info.graph must be set), nodes, range — to a
// kLogical module and returns its job index.
int AddJob(Module& module, JobInfo info);

// Attaches schedule attributes to job `job`'s logical nodes, with the
// exact legacy gating: normalized recv ranks (and jobs[job].scheduled)
// only when the schedule covers the whole graph and every recv;
// best-effort send priorities whenever the sizes match.
void ApplyScheduleAttrs(Module& module, std::size_t job,
                        const core::Graph& graph,
                        const core::Schedule& schedule);

// A kLogical module over already-scheduled inputs (the legacy entry
// points' contract): graphs are borrowed (non-owning — they must outlive
// the module), schedules become attributes, ps_of_param is imported
// directly. No policy/param_bytes are set, so the logical-stage passes
// chunk_transfers / shard_params / compute_schedules are no-ops on it.
Module BuildLogicalModule(const std::vector<runtime::JobLoweringInput>& jobs);

// A kLogical module from a declarative multi-job spec: per job, builds
// the worker graph from the model zoo, carries policy + parameter sizes
// for the logical-stage passes, and prescales the platform bandwidth by
// W_j / T (the shared-fabric contention model, runtime/multijob.h).
// Validates the spec. Unlike BuildLogicalModule the graphs are owned.
Module BuildModuleForSpec(const runtime::MultiJobSpec& spec);

// The preset pass orders.
//   kPsFabric: expand_replicas, lower_ps_fabric, merge_jobs,
//              apply_arrival_offsets, pipeline_iters:<iterations>
//   kRing:     expand_replicas, lower_allreduce_ring,
//              apply_arrival_offsets, pipeline_iters:<iterations>
// Throws std::invalid_argument("iterations must be >= 1") for
// iterations < 1.
PassPipeline StandardLoweringPipeline(runtime::Topology topology,
                                      int iterations = 1);

// StandardLoweringPipeline with the logical-stage passes prepended:
// chunk_transfers, shard_params, compute_schedules. The spec-driven
// composed pipeline (use with BuildModuleForSpec).
PassPipeline FullLoweringPipeline(runtime::Topology topology,
                                  int iterations = 1);

// kMerged module -> the simulator-facing task list + worker tables.
// Single-job PS modules also fill update_task/worker_sink (from
// iteration 0, the pipelined stitching hooks); ring and multi-job
// modules leave them empty, as the legacy lowerings do.
runtime::Lowering ToLowering(const Module& module);

// ToLowering plus per-task iteration tags and the iteration count.
runtime::PipelineLowering ToPipelineLowering(const Module& module);

// kMerged multi-job module (iterations == 1) -> the combined fabric plus
// per-job slices, each slice's lowering reconstructed in the job's LOCAL
// task ids and resource space (runtime/multijob.h).
runtime::MultiJobLowering ToMultiJobLowering(const Module& module);

}  // namespace tictac::ir
