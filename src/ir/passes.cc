#include "ir/passes.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/chunking.h"
#include "core/policy_registry.h"
#include "core/properties.h"
#include "core/time_oracle.h"
#include "ir/lower.h"
#include "models/topology.h"
#include "runtime/sharding.h"
#include "sim/flow.h"

namespace tictac::ir {
namespace {

void RequireStage(const Module& module, Stage required, const char* pass) {
  if (module.stage != required) {
    throw std::invalid_argument(
        std::string("ir.") + pass + ": requires a " + ToString(required) +
        " module, got " + ToString(module.stage) +
        " (check the pass order — see ir/passes.h)");
  }
}

// --- chunk_transfers --------------------------------------------------------

class ChunkTransfersPass final : public Pass {
 public:
  std::string name() const override { return "chunk_transfers"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kLogical, "chunk_transfers");
    bool any = false;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const JobInfo& job = module.jobs[j];
      if (job.config.chunk_bytes == 0) continue;
      // chunk= was explicitly requested for this job: a non-positive
      // size is a configuration error, not "off".
      core::ChunkingOptions{.max_chunk_bytes = job.config.chunk_bytes}
          .Validate();
      if (job.scheduled) {
        throw std::invalid_argument(
            "ir.chunk_transfers: job " + std::to_string(j) +
            " is already scheduled — chunking rewrites the recv set the "
            "schedule ranks, so chunk_transfers must run before "
            "compute_schedules");
      }
      any = true;
    }
    if (!any) return;

    Module out;
    out.stage = Stage::kLogical;
    out.jobs = module.jobs;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      JobInfo& job = out.jobs[j];
      if (job.config.chunk_bytes > 0) {
        job.graph = std::make_shared<const core::Graph>(core::ChunkTransfers(
            *job.graph,
            {.max_chunk_bytes = job.config.chunk_bytes}));
      }
      out.ranges.push_back(
          AppendLogicalNodes(out, *job.graph, static_cast<int>(j)));
    }
    module = std::move(out);
  }
};

// --- shard_params -----------------------------------------------------------

class ShardParamsPass final : public Pass {
 public:
  std::string name() const override { return "shard_params"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kLogical, "shard_params");
    for (JobInfo& job : module.jobs) {
      // Jobs without parameter sizes imported their ps_of_param directly.
      if (job.param_bytes.empty()) continue;
      job.ps_of_param = runtime::ShardParams(
          job.param_bytes, job.config.num_ps, job.config.shard);
    }
  }
};

// --- compute_schedules ------------------------------------------------------

class ComputeSchedulesPass final : public Pass {
 public:
  std::string name() const override { return "compute_schedules"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kLogical, "compute_schedules");
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const JobInfo& job = module.jobs[j];
      if (job.policy.empty()) continue;
      if (!job.graph) {
        throw std::invalid_argument(
            "ir.compute_schedules: job " + std::to_string(j) +
            " carries no logical graph to analyze");
      }
      const core::Graph& graph = *job.graph;
      const core::PropertyIndex index(graph);
      const auto policy = core::PolicyRegistry::Global().Create(job.policy);
      // Same oracle construction as Runner::MakeSchedule: each PS NIC is
      // time-shared by this job's W pair-channels (the config's platform
      // already carries any cross-job W_j/T contention scaling).
      core::PlatformModel effective = job.config.platform;
      effective.bandwidth_bps /= job.config.num_workers;
      const core::AnalyticalTimeOracle exact(effective);
      core::Schedule schedule;
      if (job.config.tac_oracle_sigma > 0.0 && policy->RequiresOracle()) {
        const core::NoisyTimeOracle noisy(exact, job.config.tac_oracle_sigma,
                                          /*seed=*/0x7ac0ff5e);
        schedule = policy->Compute(index, noisy);
      } else {
        schedule = policy->Compute(index, exact);
      }
      ApplyScheduleAttrs(module, j, graph, schedule);
    }
  }
};

// --- expand_replicas --------------------------------------------------------

class ExpandReplicasPass final : public Pass {
 public:
  std::string name() const override { return "expand_replicas"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kLogical, "expand_replicas");
    Module out;
    out.stage = Stage::kReplicated;
    out.jobs = module.jobs;

    std::vector<NodeId> buf;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const JobInfo& job = module.jobs[j];
      const JobRange& r = module.ranges[j];
      const int W = job.config.num_workers;
      const auto V = static_cast<std::size_t>(r.last - r.first);
      if (!job.graph) {
        throw std::invalid_argument(
            "ir.expand_replicas: job " + std::to_string(j) +
            " carries no logical graph");
      }
      // The worker partitions are identical (Model Replica); clones are
      // emitted predecessors-first so every pred id exists when wired.
      const std::vector<core::OpId> topo = job.graph->TopologicalOrder();
      if (topo.size() != V) {
        throw std::invalid_argument("worker graph has a cycle");
      }
      std::vector<std::size_t> pos_of(V);
      for (std::size_t pos = 0; pos < topo.size(); ++pos) {
        pos_of[static_cast<std::size_t>(topo[pos])] = pos;
      }

      const NodeId first = static_cast<NodeId>(out.size());
      for (int w = 0; w < W; ++w) {
        const NodeId worker_base =
            first + static_cast<NodeId>(static_cast<std::size_t>(w) * V);
        for (const core::OpId op_id : topo) {
          const NodeId src = r.first + op_id;
          switch (module.kind(src)) {
            case core::OpKind::kCompute:
            case core::OpKind::kRecv:
            case core::OpKind::kSend:
              break;
            default:
              throw std::invalid_argument(
                  "worker partition may only hold compute/recv/send ops");
          }
          const NodeId n = out.AddNode();
          out.kind(n) = module.kind(src);
          out.op(n) = op_id;
          out.param(n) = module.param(src);
          out.bytes(n) = module.bytes(src);
          out.cost(n) = module.cost(src);
          out.rank(n) = module.rank(src);
          out.sched_priority(n) = module.sched_priority(src);
          out.worker(n) = w;
          out.job(n) = static_cast<int>(j);
          buf.clear();
          for (const NodeId p : module.preds(src)) {
            buf.push_back(worker_base +
                          static_cast<NodeId>(
                              pos_of[static_cast<std::size_t>(p - r.first)]));
          }
          out.SetPreds(n, buf);
        }
      }
      out.ranges.push_back(
          JobRange{first, static_cast<NodeId>(out.size()), kNoNode, 0});
      out.jobs[j].graph.reset();  // the logical stage ends here
    }
    module = std::move(out);
  }
};

// --- lower_ps_fabric --------------------------------------------------------

class LowerPsFabricPass final : public Pass {
 public:
  std::string name() const override { return "lower_ps_fabric"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kReplicated, "lower_ps_fabric");
    Module out;
    out.stage = Stage::kLowered;
    out.jobs = module.jobs;

    std::vector<NodeId> buf;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const JobInfo& job = module.jobs[j];
      const JobRange& r = module.ranges[j];
      const int W = job.config.num_workers;
      const int S = job.config.num_ps;
      if (W < 1 || S < 1) {
        throw std::invalid_argument("need >=1 worker and PS");
      }
      const core::PlatformModel& hw = job.config.platform;
      const std::vector<int>& ps_of_param = job.ps_of_param;
      const int P = static_cast<int>(ps_of_param.size());
      const auto V = static_cast<std::size_t>(r.last - r.first) /
                     static_cast<std::size_t>(W);

      // Job-LOCAL resource layout, identical to runtime/lowering.h;
      // merge_jobs remaps it onto the shared fabric.
      const auto downlink = [&](int w, int s) { return W + w * S + s; };
      const auto uplink = [&](int w, int s) { return W + W * S + w * S + s; };
      const auto ps_cpu = [&](int s) { return W + 2 * W * S + s; };

      // Each PS NIC is shared by W pair-channels.
      const double pair_bandwidth = hw.bandwidth_bps / W;
      const auto transfer_time = [&](std::int64_t bytes) {
        return hw.latency_s + static_cast<double>(bytes) / pair_bandwidth;
      };
      const auto ps_for = [&](int param) {
        if (param < 0 ||
            static_cast<std::size_t>(param) >= ps_of_param.size()) {
          throw std::invalid_argument("transfer op without valid param index");
        }
        return ps_of_param[static_cast<std::size_t>(param)];
      };

      const NodeId first = static_cast<NodeId>(out.size());

      // PS-side read ops: parameters become available for sending at
      // iteration start (the PS activates all sends up front, §2.2).
      std::vector<NodeId> read_node(static_cast<std::size_t>(P));
      for (int p = 0; p < P; ++p) {
        const NodeId n = out.AddNode();
        out.duration(n) = hw.ps_op_time_s;
        out.resource(n) = ps_cpu(ps_for(p));
        out.kind(n) = core::OpKind::kRead;
        out.param(n) = p;
        out.job(n) = static_cast<int>(j);
        read_node[static_cast<std::size_t>(p)] = n;
      }

      const bool scheduled = job.scheduled;
      const runtime::Enforcement enforcement = job.config.enforcement;
      const NodeId delta = first + P - r.first;  // replica id shift

      // (worker, op id) -> lowered node, for the aggregation fan-in.
      std::vector<NodeId> op_node(static_cast<std::size_t>(W) * V, kNoNode);

      for (NodeId src = r.first; src < r.last; ++src) {
        const int w = module.worker(src);
        const core::OpKind kind = module.kind(src);
        const NodeId n = out.AddNode();
        out.kind(n) = kind;
        out.op(n) = module.op(src);
        out.param(n) = module.param(src);
        out.bytes(n) = module.bytes(src);
        out.cost(n) = module.cost(src);
        out.rank(n) = module.rank(src);
        out.sched_priority(n) = module.sched_priority(src);
        out.worker(n) = w;
        out.job(n) = static_cast<int>(j);
        buf.clear();
        switch (kind) {
          case core::OpKind::kRecv: {
            const int s = ps_for(module.param(src));
            out.resource(n) = downlink(w, s);
            out.duration(n) = transfer_time(module.bytes(src));
            buf.push_back(
                read_node[static_cast<std::size_t>(module.param(src))]);
            if (scheduled) {
              // The channel serves transfers in hand-off order (gRPC
              // FIFO), so the wire priority is the normalized rank — the
              // total order of §5.1 — rather than the raw (possibly
              // tied) schedule priority.
              const int rank = module.rank(src);
              if (rank == kNoRank) {
                throw std::invalid_argument(
                    "ir.lower_ps_fabric: scheduled job has an unranked "
                    "recv");
              }
              out.priority(n) = rank;
              if (enforcement == runtime::Enforcement::kHandoffGate) {
                out.gate_group(n) = w;
                out.gate_rank(n) = rank;
              }
              // kDagChain: dependency edges added in a post-pass below.
            }
            break;
          }
          case core::OpKind::kSend: {
            const int s = ps_for(module.param(src));
            out.resource(n) = uplink(w, s);
            out.duration(n) = transfer_time(module.bytes(src));
            // Gradient-push ordering (core/push_schedule.h) is
            // best-effort: the uplink channel honors priorities among
            // queued pushes, but no hand-off gate holds a ready gradient
            // back.
            if (module.sched_priority(src) != sim::kNoPriority) {
              out.priority(n) = module.sched_priority(src);
            }
            break;
          }
          case core::OpKind::kCompute: {
            out.resource(n) = w;
            double speed = 1.0;
            if (static_cast<std::size_t>(w) <
                job.config.worker_speed_factors.size()) {
              speed =
                  job.config.worker_speed_factors[static_cast<std::size_t>(w)];
              if (speed <= 0.0) {
                throw std::invalid_argument(
                    "worker speed factor must be > 0");
              }
            }
            out.duration(n) = module.cost(src) / (hw.compute_rate * speed);
            break;
          }
          default:
            throw std::invalid_argument(
                "worker partition may only hold compute/recv/send ops");
        }
        for (const NodeId p : module.preds(src)) buf.push_back(p + delta);
        out.SetPreds(n, buf);
        op_node[static_cast<std::size_t>(w) * V +
                static_cast<std::size_t>(module.op(src))] = n;
      }

      // DAG-chaining enforcement: each transfer depends on the completion
      // of its predecessor in the normalized order (§5.1's rejected
      // variant).
      if (scheduled && enforcement == runtime::Enforcement::kDagChain) {
        std::vector<std::vector<NodeId>> recvs_of_worker(
            static_cast<std::size_t>(W));
        for (NodeId n = first + P; n < static_cast<NodeId>(out.size());
             ++n) {
          if (out.kind(n) == core::OpKind::kRecv) {
            recvs_of_worker[static_cast<std::size_t>(out.worker(n))]
                .push_back(n);
          }
        }
        for (int w = 0; w < W; ++w) {
          const auto& recvs = recvs_of_worker[static_cast<std::size_t>(w)];
          std::vector<NodeId> by_rank(recvs.size());
          for (const NodeId n : recvs) {
            by_rank[static_cast<std::size_t>(out.priority(n))] = n;
          }
          for (std::size_t rank = 1; rank < by_rank.size(); ++rank) {
            const NodeId n = by_rank[rank];
            buf.assign(out.preds(n).begin(), out.preds(n).end());
            buf.push_back(by_rank[rank - 1]);
            out.SetPreds(n, buf);
          }
        }
      }

      // PS-side aggregation + update per parameter (training only):
      // aggregate fires once every worker's gradient push for that
      // parameter lands.
      if (job.config.training) {
        std::vector<std::vector<NodeId>> sends_of_param(
            static_cast<std::size_t>(P));
        for (int w = 0; w < W; ++w) {
          for (std::size_t op = 0; op < V; ++op) {
            const NodeId n = op_node[static_cast<std::size_t>(w) * V + op];
            if (out.kind(n) == core::OpKind::kSend) {
              sends_of_param[static_cast<std::size_t>(out.param(n))]
                  .push_back(n);
            }
          }
        }
        for (int p = 0; p < P; ++p) {
          const auto& sends = sends_of_param[static_cast<std::size_t>(p)];
          if (sends.empty()) continue;  // parameter without gradient (frozen)
          const NodeId agg = out.AddNode();
          out.duration(agg) = hw.ps_op_time_s;
          out.resource(agg) = ps_cpu(ps_for(p));
          out.kind(agg) = core::OpKind::kAggregate;
          out.param(agg) = p;
          out.job(agg) = static_cast<int>(j);
          out.SetPreds(agg, sends);

          const NodeId upd = out.AddNode();
          out.duration(upd) = hw.ps_op_time_s;
          out.resource(upd) = ps_cpu(ps_for(p));
          out.kind(upd) = core::OpKind::kUpdate;
          out.param(upd) = p;
          out.job(upd) = static_cast<int>(j);
          buf.assign(1, agg);
          out.SetPreds(upd, buf);
        }
      }
      out.ranges.push_back(
          JobRange{first, static_cast<NodeId>(out.size()), kNoNode, 0});
    }
    module = std::move(out);
  }
};

// --- lower_allreduce_ring ---------------------------------------------------

class LowerAllreduceRingPass final : public Pass {
 public:
  std::string name() const override { return "lower_allreduce_ring"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kReplicated, "lower_allreduce_ring");
    if (module.jobs.size() != 1) {
      throw std::invalid_argument(
          "ir.lower_allreduce_ring: the ring collective lowers a single "
          "job (got " + std::to_string(module.jobs.size()) +
          "); multi-job fabrics are parameter-server only");
    }
    const JobInfo& job = module.jobs.front();
    const JobRange r = module.ranges.front();
    const int W = job.config.num_workers;
    if (W < 2) throw std::invalid_argument("all-reduce needs >= 2 workers");
    if (!job.config.training) {
      throw std::invalid_argument("all-reduce applies to training only");
    }
    const core::PlatformModel& hw = job.config.platform;
    const auto V = static_cast<std::size_t>(r.last - r.first) /
                   static_cast<std::size_t>(W);

    // Replica ids and order are already exactly the legacy emission
    // (w-major, topo within); assign resources/durations in place and
    // append the ring rounds.
    int max_param = -1;
    for (NodeId n = r.first; n < r.last; ++n) {
      max_param = std::max(max_param, module.param(n));
    }
    const int P = max_param + 1;
    std::vector<std::vector<NodeId>> grad_ready(static_cast<std::size_t>(P));
    // Parameter -> gradient bytes, by lowest op id (the legacy lookup
    // scans ops in id order); worker 0's block covers every op.
    std::vector<std::int64_t> bytes_of_param(static_cast<std::size_t>(P), 0);
    std::vector<bool> bytes_known(static_cast<std::size_t>(P), false);
    {
      std::vector<NodeId> node_of_op(V, kNoNode);
      for (NodeId n = r.first; n < r.first + static_cast<NodeId>(V); ++n) {
        node_of_op[static_cast<std::size_t>(module.op(n))] = n;
      }
      for (std::size_t op = 0; op < V; ++op) {
        const NodeId n = node_of_op[op];
        if (module.kind(n) == core::OpKind::kSend && module.param(n) >= 0 &&
            !bytes_known[static_cast<std::size_t>(module.param(n))]) {
          bytes_of_param[static_cast<std::size_t>(module.param(n))] =
              module.bytes(n);
          bytes_known[static_cast<std::size_t>(module.param(n))] = true;
        }
      }
    }

    for (NodeId n = r.first; n < r.last; ++n) {
      const int w = module.worker(n);
      switch (module.kind(n)) {
        case core::OpKind::kRecv:
          // Weights are local: an instantaneous read on the worker.
          module.resource(n) = w;
          module.duration(n) = 0.0;
          break;
        case core::OpKind::kSend:
          // Gradient handoff to the collective: bookkeeping only; the
          // ring transfers are separate tasks below.
          module.resource(n) = w;
          module.duration(n) = 0.0;
          if (module.param(n) >= 0) {
            grad_ready[static_cast<std::size_t>(module.param(n))]
                .push_back(n);
          }
          break;
        case core::OpKind::kCompute: {
          module.resource(n) = w;
          double speed = 1.0;
          if (static_cast<std::size_t>(w) <
              job.config.worker_speed_factors.size()) {
            speed =
                job.config.worker_speed_factors[static_cast<std::size_t>(w)];
          }
          module.duration(n) = module.cost(n) / (hw.compute_rate * speed);
          break;
        }
        default:
          throw std::invalid_argument(
              "worker partition may only hold compute/recv/send ops");
      }
    }

    // Ring phases per parameter: 2(W-1) rounds, W chunk-transfers per
    // round (one per link, concurrently), each chunk bytes/W. A round
    // starts only when the previous round completes (bucket-synchronous
    // collective) — every transfer of a round shares one interned pred
    // list, the arena's best case.
    for (int p = 0; p < P; ++p) {
      const auto& ready = grad_ready[static_cast<std::size_t>(p)];
      if (ready.empty()) continue;
      const double chunk_time =
          hw.latency_s +
          static_cast<double>(bytes_of_param[static_cast<std::size_t>(p)]) /
              W / hw.bandwidth_bps;
      std::vector<NodeId> previous_round = ready;
      std::vector<NodeId> this_round;
      for (int round = 0; round < 2 * (W - 1); ++round) {
        this_round.clear();
        for (int link = 0; link < W; ++link) {
          const NodeId n = module.AddNode();
          module.kind(n) = core::OpKind::kSend;
          module.resource(n) = W + link;
          module.duration(n) = chunk_time;
          module.param(n) = p;
          module.job(n) = 0;
          module.SetPreds(n, previous_round);
          this_round.push_back(n);
        }
        std::swap(previous_round, this_round);
      }
    }

    module.ranges.front().last = static_cast<NodeId>(module.size());
    module.num_resources = 2 * W;
    module.total_workers = W;
    module.ring = true;
    module.stage = Stage::kMerged;
  }
};

// --- merge_jobs -------------------------------------------------------------

class MergeJobsPass final : public Pass {
 public:
  std::string name() const override { return "merge_jobs"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kLowered, "merge_jobs");
    const auto fail = [](const std::string& message) {
      throw std::invalid_argument("multijob: " + message);
    };
    const int S = module.jobs.front().config.num_ps;
    long long total = 0;
    for (const JobInfo& job : module.jobs) {
      if (job.config.num_ps != S) {
        fail("all jobs must share the PS fleet: got num_ps=" +
             std::to_string(job.config.num_ps) + " vs " + std::to_string(S));
      }
      total += job.config.num_workers;
    }
    if (total > (1 << 20)) {
      fail("total workers across jobs must be <= 1048576, got " +
           std::to_string(total));
    }
    const int T = static_cast<int>(total);

    int base_w = 0;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const int W = module.jobs[j].config.num_workers;
      // Single-job resource index -> combined-fabric index. Identity when
      // this is the only job (base_w == 0, T == W).
      const auto remap_resource = [&](int r) {
        if (r < W) return base_w + r;  // worker computation
        if (r < W + W * S) {           // downlink channel (s -> w)
          const int w = (r - W) / S;
          const int s = (r - W) % S;
          return T + (base_w + w) * S + s;
        }
        if (r < W + 2 * W * S) {  // uplink channel (w -> s)
          const int w = (r - W - W * S) / S;
          const int s = (r - W - W * S) % S;
          return T + T * S + (base_w + w) * S + s;
        }
        return T + 2 * T * S + (r - W - 2 * W * S);  // shared PS CPU
      };
      const JobRange& r = module.ranges[j];
      for (NodeId n = r.first; n < r.last; ++n) {
        module.resource(n) = remap_resource(module.resource(n));
        // Hand-off counters are per (job, worker): renumbering by global
        // worker keeps every group disjoint across jobs.
        if (module.gate_group(n) >= 0) module.gate_group(n) += base_w;
        if (module.worker(n) >= 0) module.worker(n) += base_w;
      }
      module.ranges[j].first_worker = base_w;
      base_w += W;
    }
    module.num_resources = T + 2 * T * S + S;
    module.total_workers = T;
    module.stage = Stage::kMerged;
  }
};

// --- apply_arrival_offsets --------------------------------------------------

class ApplyArrivalOffsetsPass final : public Pass {
 public:
  std::string name() const override { return "apply_arrival_offsets"; }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kMerged, "apply_arrival_offsets");
    if (module.iterations != 1) {
      throw std::invalid_argument(
          "ir.apply_arrival_offsets: must run before pipeline_iters "
          "(delays gate a job's first iteration only)");
    }
    bool any = false;
    for (const JobInfo& job : module.jobs) {
      if (job.start_offset < 0.0) {
        throw std::invalid_argument("multijob: start_offset must be >= 0, "
                                    "got " +
                                    std::to_string(job.start_offset));
      }
      any |= job.start_offset > 0.0;
    }
    if (!any) return;

    Module out;
    out.stage = Stage::kMerged;
    out.jobs = module.jobs;
    out.total_workers = module.total_workers;
    out.flow = module.flow;  // delay resources are appended past the
                             // fabric block, so the capacity graph holds

    std::vector<NodeId> buf;
    int delay_resources = 0;
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      const JobRange& r = module.ranges[j];
      JobRange moved{0, 0, kNoNode, r.first_worker};
      if (module.jobs[j].start_offset > 0.0) {
        // Arrival offset: a delay task on its own resource, gating every
        // source task of the job below. Added *before* the job's range
        // so the job slice stays contiguous.
        const NodeId delay = out.AddNode();
        out.duration(delay) = module.jobs[j].start_offset;
        out.resource(delay) = module.num_resources + delay_resources;
        out.job(delay) = static_cast<int>(j);
        out.set_is_delay(delay, true);
        ++delay_resources;
        moved.delay = delay;
      }
      moved.first = static_cast<NodeId>(out.size());
      const NodeId delta = moved.first - r.first;
      for (NodeId src = r.first; src < r.last; ++src) {
        const NodeId n = out.AddNode();
        out.duration(n) = module.duration(src);
        out.resource(n) = module.resource(src);
        out.priority(n) = module.priority(src);
        out.gate_group(n) = module.gate_group(src);
        out.gate_rank(n) = module.gate_rank(src);
        out.kind(n) = module.kind(src);
        out.op(n) = module.op(src);
        out.worker(n) = module.worker(src);
        out.job(n) = module.job(src);
        out.param(n) = module.param(src);
        out.bytes(n) = module.bytes(src);
        out.cost(n) = module.cost(src);
        out.rank(n) = module.rank(src);
        out.sched_priority(n) = module.sched_priority(src);
        buf.clear();
        for (const NodeId p : module.preds(src)) buf.push_back(p + delta);
        if (buf.empty() && moved.delay != kNoNode) buf.push_back(moved.delay);
        out.SetPreds(n, buf);
      }
      moved.last = static_cast<NodeId>(out.size());
      out.ranges.push_back(moved);
    }
    out.num_resources = module.num_resources + delay_resources;
    module = std::move(out);
  }
};

// --- lower_flow_nics --------------------------------------------------------

class LowerFlowNicsPass final : public Pass {
 public:
  // With `from_config` the fat-tree knobs come from the merged module's
  // job configs (which must agree); otherwise `options` wins.
  LowerFlowNicsPass() : from_config_(true) {}
  explicit LowerFlowNicsPass(models::FatTreeOptions options)
      : from_config_(false), options_(options) {}

  std::string name() const override {
    if (from_config_) return "lower_flow_nics";
    return "lower_flow_nics:pods=" + std::to_string(options_.pods) +
           ",over=" + FormatRatio(options_.oversubscription);
  }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kMerged, "lower_flow_nics");
    if (module.flow != nullptr) {
      throw std::invalid_argument(
          "ir.lower_flow_nics: module already holds a flow network (the "
          "pass may run once)");
    }
    if (from_config_) {
      // The preset pipelines include this pass unconditionally; jobs that
      // never turn flow fairness on get no network and the static-split
      // lowering stays byte-identical.
      bool enabled = false;
      for (const JobInfo& job : module.jobs) {
        enabled |= job.config.sim.flow_fairness;
      }
      if (!enabled) return;
    }
    if (module.ring) {
      throw std::invalid_argument(
          "ir.lower_flow_nics: ring fabrics have no PS channel layout to "
          "attach a flow network to");
    }
    const JobInfo& first = module.jobs.front();
    models::FatTreeOptions options = options_;
    if (from_config_) {
      options.pods = first.config.fabric_pods;
      options.oversubscription = first.config.fabric_oversubscription;
      for (const JobInfo& job : module.jobs) {
        if (job.config.fabric_pods != options.pods ||
            job.config.fabric_oversubscription != options.oversubscription) {
          throw std::invalid_argument(
              "ir.lower_flow_nics: co-located jobs disagree on the fabric "
              "topology (pods=" +
              std::to_string(job.config.fabric_pods) + " vs " +
              std::to_string(options.pods) + ", over=" +
              FormatRatio(job.config.fabric_oversubscription) + " vs " +
              FormatRatio(options.oversubscription) +
              ") — one fabric, one topology");
        }
      }
    }
    const int T = module.total_workers;
    // Undo the W_j/T contention prescale (runtime/multijob.h) to recover
    // the fabric's line rate; exact for single jobs (W == T).
    models::FabricShape shape;
    shape.num_workers = T;
    shape.num_ps = first.config.num_ps;
    shape.bandwidth_bps =
        first.config.platform.bandwidth_bps * T / first.config.num_workers;
    shape.resource_base = 0;
    module.flow = std::make_shared<const sim::FlowNetwork>(
        models::BuildFatTreeFlowNetwork(shape, options));
  }

 private:
  static std::string FormatRatio(double value) {
    std::string s = std::to_string(value);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  }

  bool from_config_;
  models::FatTreeOptions options_;
};

// --- pipeline_iters ---------------------------------------------------------

class PipelineItersPass final : public Pass {
 public:
  explicit PipelineItersPass(int iterations) : iterations_(iterations) {
    if (iterations_ < 1) {
      throw std::invalid_argument("iterations must be >= 1");
    }
  }

  std::string name() const override {
    return "pipeline_iters:" + std::to_string(iterations_);
  }

  void Run(Module& module) const override {
    RequireStage(module, Stage::kMerged, "pipeline_iters");
    if (module.iterations != 1) {
      throw std::invalid_argument(
          "ir.pipeline_iters: module already holds " +
          std::to_string(module.iterations) +
          " iterations (the pass may run once per pipeline)");
    }
    module.iterations = iterations_;
    if (iterations_ == 1) return;

    const auto n0 = static_cast<NodeId>(module.size());
    const int Wt = module.total_workers;

    // Iteration-0 stitches: per-(job, param) PS update and per-worker
    // final forward compute — the hooks consecutive iterations chain on.
    std::vector<std::vector<NodeId>> update_of(module.jobs.size());
    for (std::size_t j = 0; j < module.jobs.size(); ++j) {
      update_of[j].assign(module.jobs[j].ps_of_param.size(), kNoNode);
    }
    std::vector<NodeId> sink(static_cast<std::size_t>(Wt), kNoNode);
    for (NodeId t = 0; t < n0; ++t) {
      if (module.kind(t) == core::OpKind::kUpdate) {
        update_of[static_cast<std::size_t>(module.job(t))]
                 [static_cast<std::size_t>(module.param(t))] = t;
      }
      if (module.kind(t) == core::OpKind::kCompute && module.worker(t) >= 0 &&
          !module.is_delay(t)) {
        sink[static_cast<std::size_t>(module.worker(t))] = t;  // last wins
      }
    }

    // ids_prev[t] / ids_cur[t]: the iteration-(k-1) / k copy of
    // iteration-0 node t. Delay nodes are not replicated — later
    // iterations share the iteration-0 delay, so a staggered job's
    // arrival gates only its first iteration.
    std::vector<NodeId> ids_prev(static_cast<std::size_t>(n0));
    std::vector<NodeId> ids_cur(static_cast<std::size_t>(n0));
    for (NodeId t = 0; t < n0; ++t) {
      ids_prev[static_cast<std::size_t>(t)] = t;
    }

    std::vector<NodeId> buf;
    std::vector<NodeId> src_preds;
    for (int k = 1; k < iterations_; ++k) {
      // Ids first (chain edges may point forward in emission order).
      NodeId next = static_cast<NodeId>(module.size());
      for (NodeId t = 0; t < n0; ++t) {
        ids_cur[static_cast<std::size_t>(t)] =
            module.is_delay(t) ? t : next++;
      }
      for (NodeId t = 0; t < n0; ++t) {
        if (module.is_delay(t)) continue;
        // Copy the span out before AddNode: the arena pool may
        // reallocate under the new node's own SetPreds.
        src_preds.assign(module.preds(t).begin(), module.preds(t).end());
        const double duration = module.duration(t);
        const int resource = module.resource(t);
        const int priority = module.priority(t);
        const int gate_group = module.gate_group(t);
        const int gate_rank = module.gate_rank(t);
        const core::OpKind kind = module.kind(t);
        const core::OpId op = module.op(t);
        const int worker = module.worker(t);
        const int job = module.job(t);
        const int param = module.param(t);
        const std::int64_t bytes = module.bytes(t);
        const double cost = module.cost(t);
        const int rank = module.rank(t);
        const int sched_priority = module.sched_priority(t);

        const NodeId n = module.AddNode();
        module.duration(n) = duration;
        module.resource(n) = resource;
        module.priority(n) = priority;
        // Enforcement counters reset each iteration (§5.1): distinct
        // gate group per (worker, iteration).
        module.gate_group(n) = gate_group >= 0 ? gate_group + k * Wt
                                               : gate_group;
        module.gate_rank(n) = gate_rank;
        module.kind(n) = kind;
        module.op(n) = op;
        module.worker(n) = worker;
        module.job(n) = job;
        module.iteration(n) = k;
        module.param(n) = param;
        module.bytes(n) = bytes;
        module.cost(n) = cost;
        module.rank(n) = rank;
        module.sched_priority(n) = sched_priority;

        buf.clear();
        for (const NodeId p : src_preds) {
          buf.push_back(ids_cur[static_cast<std::size_t>(p)]);
        }
        if (kind == core::OpKind::kRecv && worker >= 0) {
          const auto& upd = update_of[static_cast<std::size_t>(job)];
          const NodeId stitched =
              static_cast<std::size_t>(param) < upd.size() &&
                      upd[static_cast<std::size_t>(param)] != kNoNode
                  // Training: pull k waits for update k-1 of the same
                  // parameter.
                  ? upd[static_cast<std::size_t>(param)]
                  // Inference serving loop: step k starts after forward
                  // k-1.
                  : sink[static_cast<std::size_t>(worker)];
          buf.push_back(ids_prev[static_cast<std::size_t>(stitched)]);
        }
        module.SetPreds(n, buf);
      }
      std::swap(ids_prev, ids_cur);
    }
  }

 private:
  int iterations_;
};

long long ParsePassArgInt(const std::string& name, const std::string& arg) {
  if (arg.empty()) {
    throw std::invalid_argument("ir: pass '" + name +
                                "' needs an argument, e.g. '" + name + ":4'");
  }
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(arg, &consumed);
    if (consumed == arg.size()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("ir: pass '" + name +
                              "' expects an integer argument, got '" + arg +
                              "'");
}

void RejectArg(const std::string& name, const std::string& arg) {
  if (!arg.empty()) {
    throw std::invalid_argument("ir: pass '" + name +
                                "' takes no argument, got ':" + arg + "'");
  }
}

}  // namespace

std::shared_ptr<const Pass> MakeChunkTransfersPass() {
  return std::make_shared<const ChunkTransfersPass>();
}
std::shared_ptr<const Pass> MakeShardParamsPass() {
  return std::make_shared<const ShardParamsPass>();
}
std::shared_ptr<const Pass> MakeComputeSchedulesPass() {
  return std::make_shared<const ComputeSchedulesPass>();
}
std::shared_ptr<const Pass> MakeExpandReplicasPass() {
  return std::make_shared<const ExpandReplicasPass>();
}
std::shared_ptr<const Pass> MakeLowerPsFabricPass() {
  return std::make_shared<const LowerPsFabricPass>();
}
std::shared_ptr<const Pass> MakeLowerAllreduceRingPass() {
  return std::make_shared<const LowerAllreduceRingPass>();
}
std::shared_ptr<const Pass> MakeMergeJobsPass() {
  return std::make_shared<const MergeJobsPass>();
}
std::shared_ptr<const Pass> MakeApplyArrivalOffsetsPass() {
  return std::make_shared<const ApplyArrivalOffsetsPass>();
}
std::shared_ptr<const Pass> MakePipelineItersPass(int iterations) {
  return std::make_shared<const PipelineItersPass>(iterations);
}
std::shared_ptr<const Pass> MakeLowerFlowNicsPass() {
  return std::make_shared<const LowerFlowNicsPass>();
}
std::shared_ptr<const Pass> MakeLowerFlowNicsPass(
    models::FatTreeOptions options) {
  return std::make_shared<const LowerFlowNicsPass>(options);
}

// Called once by PassRegistry::Global().
void RegisterBuiltinPasses(PassRegistry& registry) {
  registry.Register("chunk_transfers", [](const std::string& arg) {
    RejectArg("chunk_transfers", arg);
    return MakeChunkTransfersPass();
  });
  registry.Register("shard_params", [](const std::string& arg) {
    RejectArg("shard_params", arg);
    return MakeShardParamsPass();
  });
  registry.Register("compute_schedules", [](const std::string& arg) {
    RejectArg("compute_schedules", arg);
    return MakeComputeSchedulesPass();
  });
  registry.Register("expand_replicas", [](const std::string& arg) {
    RejectArg("expand_replicas", arg);
    return MakeExpandReplicasPass();
  });
  registry.Register("lower_ps_fabric", [](const std::string& arg) {
    RejectArg("lower_ps_fabric", arg);
    return MakeLowerPsFabricPass();
  });
  registry.Register("lower_allreduce_ring", [](const std::string& arg) {
    RejectArg("lower_allreduce_ring", arg);
    return MakeLowerAllreduceRingPass();
  });
  registry.Register("merge_jobs", [](const std::string& arg) {
    RejectArg("merge_jobs", arg);
    return MakeMergeJobsPass();
  });
  registry.Register("apply_arrival_offsets", [](const std::string& arg) {
    RejectArg("apply_arrival_offsets", arg);
    return MakeApplyArrivalOffsetsPass();
  });
  registry.Register("pipeline_iters", [](const std::string& arg) {
    const long long k = ParsePassArgInt("pipeline_iters", arg);
    if (k < 1 || k > std::numeric_limits<int>::max()) {
      throw std::invalid_argument("iterations must be >= 1");
    }
    return MakePipelineItersPass(static_cast<int>(k));
  });
  registry.Register("lower_flow_nics", [](const std::string& arg) {
    if (arg.empty()) return MakeLowerFlowNicsPass();
    models::FatTreeOptions options;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
      std::size_t comma = arg.find(',', pos);
      if (comma == std::string::npos) comma = arg.size();
      const std::string kv = arg.substr(pos, comma - pos);
      const std::size_t eq = kv.find('=');
      const auto bad = [&](const std::string& why) {
        throw std::invalid_argument(
            "ir: pass 'lower_flow_nics' " + why + " in ':" + arg +
            "' — expected 'pods=<int>,over=<ratio>' (either key optional)");
      };
      if (eq == std::string::npos) bad("has a key without '='");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key != "pods" && key != "over") {
        bad("got unknown key '" + key + "'");
      }
      std::size_t consumed = 0;
      bool ok = false;
      try {
        if (key == "pods") {
          options.pods = std::stoi(value, &consumed);
        } else {
          options.oversubscription = std::stod(value, &consumed);
        }
        ok = consumed == value.size();
      } catch (const std::exception&) {
      }
      if (!ok) bad("got malformed value '" + value + "'");
      pos = comma + 1;
    }
    options.Validate();
    return MakeLowerFlowNicsPass(options);
  });
}

}  // namespace tictac::ir
