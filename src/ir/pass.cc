#include "ir/pass.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tictac::ir {

// Defined in passes.cc; installs the built-in lowering passes.
void RegisterBuiltinPasses(PassRegistry& registry);

PassPipeline& PassPipeline::Add(std::shared_ptr<const Pass> pass) {
  if (!pass) {
    throw std::invalid_argument("ir: cannot add a null pass to a pipeline");
  }
  passes_.push_back(std::move(pass));
  return *this;
}

PassPipeline& PassPipeline::Add(const std::string& spec) {
  return Add(PassRegistry::Global().Create(spec));
}

Module PassPipeline::Run(Module module, const PipelineOptions& options) const {
  if (options.check_invariants) module.Validate();
  for (const auto& pass : passes_) {
    pass->Run(module);
    if (options.check_invariants) {
      try {
        module.Validate();
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("ir: invariant violated after pass '" +
                                    pass->name() + "': " + e.what());
      }
    }
    if (options.dump) options.dump(pass->name(), module);
  }
  return module;
}

std::vector<std::string> PassPipeline::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& pass : passes_) out.push_back(pass->name());
  return out;
}

PassRegistry& PassRegistry::Global() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry;
    RegisterBuiltinPasses(*r);
    return r;
  }();
  return *registry;
}

void PassRegistry::Register(const std::string& name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("ir: pass factory for '" + name +
                                "' is null");
  }
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("ir: pass '" + name +
                                "' is already registered");
  }
}

std::shared_ptr<const Pass> PassRegistry::Create(
    const std::string& spec) const {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const std::string& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("ir: unknown pass '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second(arg);
}

std::vector<std::string> PassRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace tictac::ir
