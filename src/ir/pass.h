// Pass / PassPipeline / PassRegistry: the ordered-rewrite machinery over
// ir::Module (DESIGN.md §10).
//
// A Pass is a named Module -> Module rewrite. A PassPipeline runs an
// ordered list of them, optionally validating module invariants and
// invoking a dump hook after each pass — the debugging story for
// composed scenarios. The registry maps pass specs ("chunk_transfers",
// "pipeline_iters:4") to factories so pipelines can be assembled from
// text (CLI --passes, tests).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace tictac::ir {

class Pass {
 public:
  virtual ~Pass() = default;
  // Stable name, also the registry key (arguments excluded).
  virtual std::string name() const = 0;
  // Rewrites the module in place (most passes rebuild storage and move
  // the result back in). Throws std::invalid_argument on inputs that
  // violate the pass's stage or argument contract.
  virtual void Run(Module& module) const = 0;
};

struct PipelineOptions {
  // Run Module::Validate() on the input and after every pass. Off by
  // default: the legacy entry points run the pipeline on every Runner
  // iteration and the lowerings are themselves pinned by tests.
  bool check_invariants = false;
  // Called after each pass with the pass name and the rewritten module
  // (e.g. to print module.DebugSummary() or DebugDump()).
  std::function<void(const std::string& pass, const Module& module)> dump;
};

// An ordered pass list. Order is the contract (DESIGN.md §10): passes
// validate the stage they require and throw on violations, so an
// ill-ordered pipeline fails fast rather than mis-lowering.
class PassPipeline {
 public:
  PassPipeline& Add(std::shared_ptr<const Pass> pass);
  // Resolves `spec` ("name" or "name:arg") through the global registry.
  PassPipeline& Add(const std::string& spec);

  // Runs every pass in order. Returns the module for call chaining.
  Module Run(Module module, const PipelineOptions& options = {}) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::shared_ptr<const Pass>> passes_;
};

// Name -> factory registry. Factories take the (possibly empty) ":arg"
// suffix of the pass spec; built-in passes self-register (RegisterBuiltinPasses
// in passes.cc) on first Global() use.
class PassRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const Pass>(const std::string& arg)>;

  static PassRegistry& Global();

  // Throws std::invalid_argument if `name` is already registered.
  void Register(const std::string& name, Factory factory);
  // Creates a pass from "name" or "name:arg". Throws std::invalid_argument
  // for unknown names, listing what is registered.
  std::shared_ptr<const Pass> Create(const std::string& spec) const;
  // Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace tictac::ir
