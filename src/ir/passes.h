// The built-in lowering passes (DESIGN.md §10). Each is a single-purpose
// Module rewrite; the legacy entry points are presets over them
// (ir/lower.h) and arbitrary compositions — chunked + sharded +
// multi-job + pipelined — are just longer pass orders.
//
// Stage contract (passes throw std::invalid_argument on violations):
//
//   pass                  requires      produces   what it does
//   ---------------------------------------------------------------------
//   chunk_transfers       kLogical      kLogical   split oversized
//                                                  transfers per job
//                                                  (core::ChunkTransfers)
//   shard_params          kLogical      kLogical   parameter -> PS
//                                                  placement per job
//   compute_schedules     kLogical      kLogical   run each job's policy,
//                                                  attach rank/priority
//                                                  attributes
//   expand_replicas       kLogical      kReplicated clone ops per worker
//                                                  (Model Replica)
//   lower_ps_fabric       kReplicated   kLowered   PS reads, channel
//                                                  resources, durations,
//                                                  §5.1 enforcement,
//                                                  aggregate/update
//   lower_allreduce_ring  kReplicated   kMerged    ring rounds instead of
//                                                  a PS fabric (single
//                                                  job)
//   merge_jobs            kLowered      kMerged    remap job-local
//                                                  resources onto the
//                                                  shared fabric
//   apply_arrival_offsets kMerged       kMerged    delay tasks for
//                                                  staggered job arrivals
//   pipeline_iters:K      kMerged       kMerged    K pipelined iterations
//                                                  with cross-iteration
//                                                  dependencies
//   lower_flow_nics       kMerged       kMerged    attach the NIC/fat-tree
//                                                  capacity graph for
//                                                  flow-level fairness
//                                                  (":pods=P,over=R"
//                                                  overrides the configs'
//                                                  fabric knobs)
//
// chunk_transfers / shard_params / compute_schedules must run before
// expand_replicas (they rewrite or annotate the logical stage and refuse
// later stages); lower_* consume kReplicated; merge_jobs and everything
// after consume lowered modules. Every pass is registered in
// PassRegistry::Global() under its table name.
#pragma once

#include <memory>

#include "ir/pass.h"
#include "models/topology.h"

namespace tictac::ir {

std::shared_ptr<const Pass> MakeChunkTransfersPass();
std::shared_ptr<const Pass> MakeShardParamsPass();
std::shared_ptr<const Pass> MakeComputeSchedulesPass();
std::shared_ptr<const Pass> MakeExpandReplicasPass();
std::shared_ptr<const Pass> MakeLowerPsFabricPass();
std::shared_ptr<const Pass> MakeLowerAllreduceRingPass();
std::shared_ptr<const Pass> MakeMergeJobsPass();
std::shared_ptr<const Pass> MakeApplyArrivalOffsetsPass();
// Throws std::invalid_argument("iterations must be >= 1") for k < 1 —
// the legacy LowerPipeline precondition, enforced at pipeline build.
std::shared_ptr<const Pass> MakePipelineItersPass(int iterations);
// Attaches Module::flow, the capacity graph for the sim's max-min flow
// model (DESIGN.md §11). The no-argument form reads the fat-tree knobs
// from the merged jobs' ClusterConfigs (which must agree); the options
// form overrides them. PS fabrics only; refuses ring modules and runs
// once.
std::shared_ptr<const Pass> MakeLowerFlowNicsPass();
std::shared_ptr<const Pass> MakeLowerFlowNicsPass(
    models::FatTreeOptions options);

}  // namespace tictac::ir
