#include "sched/arrival.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/rng.h"

namespace tictac::sched {
namespace {

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("arrival: " + message);
}

// Generous cap: a burst costs one fabric re-lowering per admitted job,
// so a fat-fingered burst=1e9 would turn a one-line spec into hours.
constexpr int kMaxBurst = 4096;

// Parses "key=value" fields of a synthetic spec ("rate=40", "burst=8").
double ParseNumberField(std::string_view field, std::string_view key) {
  const std::string value(field.substr(key.size()));
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    Fail(std::string(key) + " expects a number, got '" + value + "'");
  }
}

}  // namespace

std::string ArrivalSpec::ToString() const {
  switch (kind) {
    case Kind::kPoisson:
      return "poisson:rate=" + runtime::FormatDouble(rate);
    case Kind::kBursty:
      return "bursty:rate=" + runtime::FormatDouble(rate) +
             ":burst=" + std::to_string(burst);
    case Kind::kTrace:
      return "trace:" + trace_path;
  }
  Fail("unknown arrival kind");
}

ArrivalSpec ArrivalSpec::Parse(std::string_view text) {
  ArrivalSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view head = text.substr(0, colon);
  if (head == "trace") {
    spec.kind = Kind::kTrace;
    // Everything after the first ':' is the path verbatim (paths may
    // contain further colons).
    if (colon == std::string_view::npos || colon + 1 >= text.size()) {
      Fail("trace expects a file path, e.g. trace:arrivals.csv");
    }
    spec.trace_path = std::string(text.substr(colon + 1));
    spec.Validate();
    return spec;
  }
  if (head != "poisson" && head != "bursty") {
    Fail("unknown arrival process '" + std::string(head) +
         "' — expected poisson:rate=..., bursty:rate=...:burst=..., or "
         "trace:<file>");
  }
  spec.kind = head == "poisson" ? Kind::kPoisson : Kind::kBursty;
  bool saw_rate = false;
  bool saw_burst = false;
  std::size_t pos = colon;
  while (pos != std::string_view::npos && pos < text.size()) {
    const std::size_t next = text.find(':', pos + 1);
    const std::string_view field =
        text.substr(pos + 1, next == std::string_view::npos
                                 ? std::string_view::npos
                                 : next - pos - 1);
    if (field.rfind("rate=", 0) == 0) {
      spec.rate = ParseNumberField(field, "rate=");
      saw_rate = true;
    } else if (field.rfind("burst=", 0) == 0 && spec.kind == Kind::kBursty) {
      const double value = ParseNumberField(field, "burst=");
      if (value != std::floor(value)) {
        Fail("burst= expects an integer, got '" + std::string(field) + "'");
      }
      spec.burst = static_cast<int>(value);
      saw_burst = true;
    } else {
      Fail("unknown field '" + std::string(field) + "' in '" +
           std::string(text) + "'");
    }
    pos = next;
  }
  if (!saw_rate) {
    Fail(std::string(head) + " requires rate=, e.g. " + std::string(head) +
         ":rate=40");
  }
  if (spec.kind == Kind::kBursty && !saw_burst) {
    Fail("bursty requires burst=, e.g. bursty:rate=4:burst=8");
  }
  spec.Validate();
  return spec;
}

void ArrivalSpec::Validate() const {
  if (kind == Kind::kTrace) {
    if (trace_path.empty()) Fail("trace path must be non-empty");
    return;
  }
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    Fail("rate must be finite and > 0, got " + runtime::FormatDouble(rate));
  }
  if (burst < 1 || burst > kMaxBurst) {
    Fail("burst must be in [1, " + std::to_string(kMaxBurst) + "], got " +
         std::to_string(burst));
  }
}

namespace {

std::vector<ArrivalEvent> ReadTrace(const std::string& path,
                                    double duration) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("arrival: cannot read trace file '" + path +
                             "'");
  }
  std::vector<ArrivalEvent> events;
  std::string line;
  std::size_t line_no = 0;
  double prev_time = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    // Editor/export tolerance, mirroring the fault trace reader
    // (src/fault/fault.cc): a UTF-8 BOM on line 1, CRLF endings,
    // trailing blanks, indented comments, and whitespace-only lines.
    if (line_no == 1 && line.rfind("\xef\xbb\xbf", 0) == 0) line.erase(0, 3);
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t first = 0;
    while (first < line.size() &&
           (line[first] == ' ' || line[first] == '\t')) {
      ++first;
    }
    if (first > 0) line.erase(0, first);
    if (line.empty() || line[0] == '#') continue;
    const std::string where =
        "trace '" + path + "' line " + std::to_string(line_no);
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      Fail(where + ": expected 't,<experiment spec>', got '" + line + "'");
    }
    ArrivalEvent event;
    const std::string time_text = line.substr(0, comma);
    try {
      std::size_t consumed = 0;
      event.time = std::stod(time_text, &consumed);
      if (consumed != time_text.size()) throw std::invalid_argument(time_text);
    } catch (const std::exception&) {
      Fail(where + ": arrival time must be a number, got '" + time_text +
           "'");
    }
    if (!std::isfinite(event.time) || event.time < 0.0) {
      Fail(where + ": arrival time must be finite and >= 0, got " +
           time_text);
    }
    if (event.time < prev_time) {
      Fail(where + ": arrival times must be non-decreasing (" + time_text +
           " after " + runtime::FormatDouble(prev_time) + ")");
    }
    prev_time = event.time;
    try {
      event.spec = runtime::ExperimentSpec::Parse(line.substr(comma + 1));
    } catch (const std::invalid_argument& e) {
      Fail(where + ": " + e.what());
    }
    if (event.time < duration) events.push_back(std::move(event));
  }
  return events;
}

}  // namespace

std::vector<ArrivalEvent> GenerateArrivals(
    const ArrivalSpec& spec,
    const std::vector<runtime::ExperimentSpec>& workload, double duration,
    std::uint64_t seed) {
  spec.Validate();
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    Fail("duration must be finite and > 0, got " +
         runtime::FormatDouble(duration));
  }
  if (spec.kind == ArrivalSpec::Kind::kTrace) {
    return ReadTrace(spec.trace_path, duration);
  }
  if (workload.empty()) {
    Fail("synthetic arrivals need a non-empty workload pool of experiment "
         "specs");
  }
  std::vector<ArrivalEvent> events;
  util::Rng rng(seed);
  const int per_event = spec.kind == ArrivalSpec::Kind::kBursty ? spec.burst
                                                                : 1;
  std::size_t job_index = 0;
  // The first event arrives after one full gap — an empty cluster at
  // t = 0 (standard open-system convention).
  for (double t = rng.Exponential(spec.rate); t < duration;
       t += rng.Exponential(spec.rate)) {
    for (int b = 0; b < per_event; ++b) {
      events.push_back(
          ArrivalEvent{t, workload[job_index % workload.size()]});
      ++job_index;
    }
  }
  return events;
}

}  // namespace tictac::sched
