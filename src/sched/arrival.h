// Job-arrival processes for the open-system cluster scheduler
// (DESIGN.md §7).
//
// The multi-job subsystem (runtime/multijob.h) co-locates a *fixed* job
// set; a production cluster is an open system — tenants submit jobs over
// time and the scheduler admits, places, and re-schedules continuously.
// ArrivalSpec describes *when* jobs arrive, in a compact text grammar
// that round-trips exactly (Parse(ToString()) == *this):
//
//   poisson:rate=40              memoryless arrivals, 40 jobs/second
//   bursty:rate=4:burst=8        bursts of 8 simultaneous jobs, burst
//                                starts arriving at Poisson rate 4/s
//   trace:path/to/arrivals.csv   replay a recorded submission log
//
// Synthetic processes draw inter-arrival gaps from util::Rng::Exponential
// (portable inverse-CDF, so a seeded stream is bit-identical on every
// platform) and take *what* arrives from a workload pool of
// ExperimentSpec templates, cycled round-robin. A trace supplies both:
// each line is `t,<experiment spec>` — arrival time in seconds, one
// comma, then the spec verbatim (specs contain commas in list-valued
// fields, so the line splits at the FIRST comma only; no CSV quoting).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/spec.h"

namespace tictac::sched {

// When jobs arrive. What arrives comes from the workload pool (or the
// trace file itself); see GenerateArrivals.
struct ArrivalSpec {
  enum class Kind { kPoisson, kBursty, kTrace };

  Kind kind = Kind::kPoisson;
  // Arrival events per second (poisson: jobs, bursty: bursts). > 0.
  double rate = 1.0;
  // Jobs per burst (bursty only). >= 1.
  int burst = 1;
  // Submission-log path (trace only).
  std::string trace_path;

  // Canonical text form; Parse(ToString()) == *this.
  std::string ToString() const;

  // Throws std::invalid_argument (naming the bad token) on malformed
  // input. The parsed spec is Validate()d before being returned.
  static ArrivalSpec Parse(std::string_view text);

  // rate finite and > 0, burst in [1, 4096], non-empty trace path.
  // Throws std::invalid_argument naming the offending field.
  void Validate() const;

  friend bool operator==(const ArrivalSpec&, const ArrivalSpec&) = default;
};

// One job submission: the cluster clock time it arrives and the complete
// experiment it asks for.
struct ArrivalEvent {
  double time = 0.0;
  runtime::ExperimentSpec spec;

  friend bool operator==(const ArrivalEvent&, const ArrivalEvent&) = default;
};

// Materializes the arrival stream over [0, duration).
//
// Synthetic processes (poisson/bursty) draw gaps from Rng(seed) and
// assign workload[i % workload.size()] to the i-th arriving job, so the
// stream is deterministic in (spec, workload, duration, seed) — same
// seed, bit-identical stream. The workload pool must be non-empty for
// synthetic kinds and is ignored for traces.
//
// Traces are read from spec.trace_path: one `t,<experiment spec>` line
// per job, '#'-prefixed comment lines and blank lines skipped, times
// finite, >= 0 and non-decreasing. Rows at t >= duration are dropped
// (the service stops admitting at `duration`). Throws std::runtime_error
// if the file cannot be read and std::invalid_argument (with the line
// number) for malformed rows.
std::vector<ArrivalEvent> GenerateArrivals(
    const ArrivalSpec& spec,
    const std::vector<runtime::ExperimentSpec>& workload, double duration,
    std::uint64_t seed);

}  // namespace tictac::sched
