#include "sched/placement.h"

#include <stdexcept>

namespace tictac::sched {
namespace {

bool Eligible(const FabricLoad& load, int max_jobs_per_fabric) {
  return !load.down && load.active_jobs < max_jobs_per_fabric;
}

class LeastLoaded final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "least-loaded"; }

  int Place(const runtime::ExperimentSpec&,
            const std::vector<FabricLoad>& loads, std::size_t,
            int max_jobs_per_fabric) const override {
    int best = -1;
    for (std::size_t f = 0; f < loads.size(); ++f) {
      if (!Eligible(loads[f], max_jobs_per_fabric)) continue;
      if (best < 0 || loads[f].active_workers <
                          loads[static_cast<std::size_t>(best)]
                              .active_workers) {
        best = static_cast<int>(f);
      }
    }
    return best;
  }
};

class RoundRobin final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "round-robin"; }

  int Place(const runtime::ExperimentSpec&,
            const std::vector<FabricLoad>& loads, std::size_t decision_seq,
            int max_jobs_per_fabric) const override {
    // Start at the rotation point and take the first eligible fabric.
    for (std::size_t step = 0; step < loads.size(); ++step) {
      const std::size_t f = (decision_seq + step) % loads.size();
      if (Eligible(loads[f], max_jobs_per_fabric)) {
        return static_cast<int>(f);
      }
    }
    return -1;
  }
};

class BestFitBytes final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "best-fit-bytes"; }

  int Place(const runtime::ExperimentSpec&,
            const std::vector<FabricLoad>& loads, std::size_t,
            int max_jobs_per_fabric) const override {
    int best = -1;
    for (std::size_t f = 0; f < loads.size(); ++f) {
      if (!Eligible(loads[f], max_jobs_per_fabric)) continue;
      if (best < 0 || loads[f].active_param_mib >
                          loads[static_cast<std::size_t>(best)]
                              .active_param_mib) {
        best = static_cast<int>(f);
      }
    }
    return best;
  }
};

class FailureAware final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "failure-aware"; }

  int Place(const runtime::ExperimentSpec& job,
            const std::vector<FabricLoad>& loads, std::size_t,
            int max_jobs_per_fabric) const override {
    // Least-loaded with each recent fault costed like a whole co-resident
    // job of this size: a flapping fabric loses to any healthy one that
    // still has room, yet stays usable when it is the only seat left.
    const int penalty = job.cluster.workers > 0 ? job.cluster.workers : 1;
    int best = -1;
    long best_score = 0;
    for (std::size_t f = 0; f < loads.size(); ++f) {
      if (!Eligible(loads[f], max_jobs_per_fabric)) continue;
      const long score =
          loads[f].active_workers +
          static_cast<long>(loads[f].recent_faults) * penalty *
              static_cast<long>(max_jobs_per_fabric);
      if (best < 0 || score < best_score) {
        best = static_cast<int>(f);
        best_score = score;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(std::string_view name) {
  if (name == "least-loaded") return std::make_unique<LeastLoaded>();
  if (name == "round-robin") return std::make_unique<RoundRobin>();
  if (name == "best-fit-bytes") return std::make_unique<BestFitBytes>();
  if (name == "failure-aware") return std::make_unique<FailureAware>();
  std::string known;
  for (const std::string& policy : PlacementPolicyNames()) {
    if (!known.empty()) known += ", ";
    known += policy;
  }
  throw std::invalid_argument("placement: unknown policy '" +
                              std::string(name) + "' — registered: " + known);
}

std::vector<std::string> PlacementPolicyNames() {
  return {"least-loaded", "round-robin", "best-fit-bytes", "failure-aware"};
}

}  // namespace tictac::sched
