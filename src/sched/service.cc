#include "sched/service.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "core/metrics.h"
#include "core/policy_registry.h"
#include "models/zoo.h"
#include "util/json.h"
#include "util/stats.h"

namespace tictac::sched {
namespace {

using runtime::FormatDouble;
using util::JsonEscape;

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("service: " + message);
}

// LowerSharedCluster's per-fabric job bound (runtime/multijob.h caps
// MultiJobSpec at 64 jobs for the same reason: each resident job costs a
// full Runner analysis and 2·T·S channel resources).
constexpr int kMaxJobsPerFabric = 64;
constexpr int kMaxFabrics = 4096;

double MeanOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

// Iterations completed by absolute cluster time `t` (fractional within
// the in-flight iteration) — the progress curve windowed fairness
// integrates.
double ProgressAt(const JobRecord& record, double t) {
  double progress = 0.0;
  double start = record.admit_time;
  for (const double duration : record.iteration_times) {
    if (t >= start + duration) {
      progress += 1.0;
      start += duration;
    } else if (t > start && duration > 0.0) {
      return progress + (t - start) / duration;
    } else {
      break;
    }
  }
  return progress;
}

}  // namespace

void ServiceConfig::Validate() const {
  arrivals.Validate();
  if (fabrics < 1 || fabrics > kMaxFabrics) {
    Fail("fabrics must be in [1, " + std::to_string(kMaxFabrics) +
         "], got " + std::to_string(fabrics));
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    Fail("duration must be finite and > 0, got " + FormatDouble(duration));
  }
  if (max_jobs_per_fabric < 1 || max_jobs_per_fabric > kMaxJobsPerFabric) {
    Fail("max_jobs_per_fabric must be in [1, " +
         std::to_string(kMaxJobsPerFabric) + "], got " +
         std::to_string(max_jobs_per_fabric));
  }
  if (admission_queue_capacity < 0) {
    Fail("admission_queue_capacity must be >= 0, got " +
         std::to_string(admission_queue_capacity));
  }
  if (fairness_windows < 1 || fairness_windows > 4096) {
    Fail("fairness_windows must be in [1, 4096], got " +
         std::to_string(fairness_windows));
  }
  MakePlacementPolicy(placement);  // throws, listing the registered names
  if (arrivals.kind != ArrivalSpec::Kind::kTrace && workload.empty()) {
    Fail("synthetic arrivals need >= 1 workload experiment spec");
  }
}

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(std::move(config)) {
  config_.Validate();
}

const runtime::Runner& SchedulerService::GetRunner(
    const runtime::ExperimentSpec& spec, double bandwidth_scale,
    ServiceCounters& counters) {
  // '\n' cannot appear in a model name or cluster spec (same argument as
  // harness::Session's cache key).
  const std::string key = spec.model + '\n' + spec.cluster.ToString() +
                          '\n' + FormatDouble(bandwidth_scale);
  const auto it = runners_.find(key);
  if (it != runners_.end()) {
    ++counters.runner_cache_hits;
    return *it->second.runner;
  }
  runtime::ClusterConfig cluster = spec.BuildCluster();
  // Same contention scaling as runtime::MultiJobRunner: every PS NIC is
  // time-shared by ALL resident jobs' workers, so scale the platform
  // bandwidth by W_j / T before the per-channel division by W_j. Exactly
  // 1.0 — the untouched isolated config — for a lone job.
  cluster.platform.bandwidth_bps *= bandwidth_scale;
  ++counters.property_index_builds;
  CachedRunner& entry = runners_[key];
  entry.runner = std::make_unique<runtime::Runner>(
      models::FindModel(spec.model), cluster);
  return *entry.runner;
}

const SchedulerService::CachedSchedule& SchedulerService::GetSchedule(
    const runtime::ExperimentSpec& spec, double bandwidth_scale,
    ServiceCounters& counters) {
  const std::string key = spec.model + '\n' + spec.cluster.ToString() +
                          '\n' + FormatDouble(bandwidth_scale) + '\n' +
                          spec.policy;
  const auto it = schedules_.find(key);
  if (it != schedules_.end()) {
    ++counters.schedule_cache_hits;
    return it->second;
  }
  const runtime::Runner& runner = GetRunner(spec, bandwidth_scale, counters);
  ++counters.schedules_computed;
  CachedSchedule& entry = schedules_[key];
  entry.schedule = runner.MakeSchedule(spec.policy);
  entry.covers_all_recvs =
      entry.schedule.size() == runner.worker_graph().size() &&
      entry.schedule.CoversAllRecvs(runner.worker_graph());
  return entry;
}

double SchedulerService::IsolatedIterationTime(
    const runtime::ExperimentSpec& spec, ServiceCounters& counters) {
  const std::string key = spec.ToString();
  const auto it = isolated_.find(key);
  if (it != isolated_.end()) return it->second;
  // Scale 1 is the single-job Session path: the job alone on a fabric.
  const runtime::Runner& runner = GetRunner(spec, 1.0, counters);
  const double mean = runner.Run(spec.policy, spec.iterations, spec.seed)
                          .MeanIterationTime();
  isolated_[key] = mean;
  return mean;
}

ServiceReport SchedulerService::Run() {
  ServiceReport report;
  report.config = config_;
  ServiceCounters& counters = report.counters;

  const std::vector<ArrivalEvent> arrivals = GenerateArrivals(
      config_.arrivals, config_.workload, config_.duration, config_.seed);

  // Shared-fabric stream validation: any two jobs may be co-located, so
  // the whole stream must agree on the fabric-global knobs (same rules
  // as MultiJobSpec::Validate, except iterations/seed stay per-job:
  // every job's iterations are simulated against its own seed).
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const runtime::ExperimentSpec& spec = arrivals[i].spec;
    const std::string where =
        "arrival " + std::to_string(i) + " ('" + spec.ToString() + "') ";
    spec.BuildCluster();  // loud per-field cluster validation
    core::PolicyRegistry::Global().Create(spec.policy);  // fail fast
    if (spec.iterations < 1) {
      Fail(where + "declares iterations=" + std::to_string(spec.iterations) +
           " — must be >= 1");
    }
    const runtime::ExperimentSpec& head = arrivals.front().spec;
    if (spec.cluster.env != head.cluster.env) {
      Fail(where + "declares env " + spec.cluster.env +
           " but the cluster is " + head.cluster.env +
           " — all jobs share one environment");
    }
    if (spec.cluster.ps != head.cluster.ps) {
      Fail(where + "declares ps=" + std::to_string(spec.cluster.ps) +
           " but the shared PS fleets have " +
           std::to_string(head.cluster.ps) +
           " servers — all jobs must declare the same ps=");
    }
    if (spec.cluster.jitter_sigma != head.cluster.jitter_sigma ||
        spec.cluster.out_of_order != head.cluster.out_of_order) {
      Fail(where + "overrides jitter=/ooo= differently from arrival 0 — "
                   "simulation options are global to a fabric");
    }
  }

  // ---- event-loop state ----------------------------------------------------

  struct ActiveJob {
    int record = 0;              // index into report.jobs
    int next_iteration = 0;      // completed iterations
    double iteration_finish = 0.0;  // absolute finish of the in-flight one
  };
  struct Fabric {
    std::vector<ActiveJob> jobs;  // order matches lowering.jobs slices
    runtime::MultiJobLowering lowering;
    std::unique_ptr<sim::TaskGraphSim> sim;
    sim::SimOptions options;
    bool dirty = false;  // membership changed since `lowering` was built
  };
  std::vector<Fabric> fabrics(static_cast<std::size_t>(config_.fabrics));

  const std::unique_ptr<PlacementPolicy> placement =
      MakePlacementPolicy(config_.placement);
  std::deque<int> admission_queue;  // record indices, FIFO
  std::size_t decisions = 0;        // placement decisions (round-robin state)

  double now = 0.0;
  double busy_fabric_time = 0.0;
  double active_job_time = 0.0;

  // Re-lowers ONE fabric from its current membership; every other fabric
  // keeps its lowering, sim, and cached analyses untouched.
  const auto relower = [&](Fabric& fabric) {
    int total_workers = 0;
    for (const ActiveJob& job : fabric.jobs) {
      total_workers += report.jobs[static_cast<std::size_t>(job.record)]
                           .spec.cluster.workers;
    }
    std::vector<runtime::JobLoweringInput> inputs;
    inputs.reserve(fabric.jobs.size());
    bool any_covered = false;
    for (const ActiveJob& job : fabric.jobs) {
      const runtime::ExperimentSpec& spec =
          report.jobs[static_cast<std::size_t>(job.record)].spec;
      const double scale = static_cast<double>(spec.cluster.workers) /
                           static_cast<double>(total_workers);
      const runtime::Runner& runner = GetRunner(spec, scale, counters);
      const CachedSchedule& schedule = GetSchedule(spec, scale, counters);
      any_covered |= schedule.covers_all_recvs;
      inputs.push_back(runtime::JobLoweringInput{
          runner.worker_graph(), schedule.schedule, runner.ps_of_param(),
          runner.config(), /*start_offset=*/0.0});
    }
    fabric.lowering = runtime::LowerSharedCluster(inputs);
    fabric.sim = std::make_unique<sim::TaskGraphSim>(
        fabric.lowering.combined.BuildSim());
    fabric.options = inputs.front().config.sim;
    fabric.options.enforce_gates = any_covered;
    fabric.dirty = false;
    ++counters.fabric_relowerings;
  };

  // Simulates job `j`'s next iteration under the fabric's current mix
  // and books its finish time. Seeded spec.seed + iteration index,
  // matching the single-job Runner::Run convention bit for bit.
  const auto schedule_iteration = [&](Fabric& fabric, std::size_t j) {
    if (fabric.dirty) relower(fabric);
    ActiveJob& job = fabric.jobs[j];
    JobRecord& record = report.jobs[static_cast<std::size_t>(job.record)];
    const sim::SimResult run = fabric.sim->Run(
        fabric.options,
        record.spec.seed + static_cast<std::uint64_t>(job.next_iteration));
    ++counters.sim_runs;
    const runtime::MultiJobLowering::JobSlice& slice = fabric.lowering.jobs[j];
    double duration = 0.0;
    for (sim::TaskId t = slice.first_task; t < slice.last_task; ++t) {
      duration = std::max(duration, run.end[static_cast<std::size_t>(t)]);
    }
    job.iteration_finish = now + duration;
    record.iteration_times.push_back(duration);
  };

  const auto fabric_loads = [&] {
    std::vector<FabricLoad> loads(fabrics.size());
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      for (const ActiveJob& job : fabrics[f].jobs) {
        const JobRecord& record =
            report.jobs[static_cast<std::size_t>(job.record)];
        ++loads[f].active_jobs;
        loads[f].active_workers += record.spec.cluster.workers;
        loads[f].active_param_mib +=
            models::FindModel(record.spec.model).total_param_mib;
      }
    }
    return loads;
  };

  // Places record `r` now if the policy finds an eligible fabric;
  // returns the fabric index or -1.
  const auto try_place = [&](int r) {
    JobRecord& record = report.jobs[static_cast<std::size_t>(r)];
    const int f = placement->Place(record.spec, fabric_loads(), decisions++,
                                   config_.max_jobs_per_fabric);
    if (f < 0) return -1;
    Fabric& fabric = fabrics[static_cast<std::size_t>(f)];
    if (static_cast<int>(fabric.jobs.size()) >= config_.max_jobs_per_fabric) {
      Fail("placement policy '" + config_.placement +
           "' returned full fabric " + std::to_string(f));
    }
    record.fabric = f;
    record.admit_time = now;
    fabric.jobs.push_back(ActiveJob{r, 0, 0.0});
    fabric.dirty = true;
    ++counters.admitted;
    return f;
  };

  // Integrates utilization / mean-jobs-in-system up to time `t`.
  const auto advance_clock = [&](double t) {
    int busy = 0;
    int active = 0;
    for (const Fabric& fabric : fabrics) {
      busy += fabric.jobs.empty() ? 0 : 1;
      active += static_cast<int>(fabric.jobs.size());
    }
    busy_fabric_time += (t - now) * busy;
    active_job_time += (t - now) * active;
    now = t;
  };

  // ---- the event loop ------------------------------------------------------

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t next_arrival = 0;
  while (true) {
    const double arrival_at = next_arrival < arrivals.size()
                                  ? arrivals[next_arrival].time
                                  : kInf;
    double completion_at = kInf;
    std::size_t completion_fabric = 0;
    std::size_t completion_job = 0;
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      for (std::size_t j = 0; j < fabrics[f].jobs.size(); ++j) {
        if (fabrics[f].jobs[j].iteration_finish < completion_at) {
          completion_at = fabrics[f].jobs[j].iteration_finish;
          completion_fabric = f;
          completion_job = j;
        }
      }
    }
    if (arrival_at == kInf && completion_at == kInf) break;

    if (completion_at <= arrival_at) {
      // Iteration boundary first (at ties it frees capacity before the
      // arrival is placed — a deterministic, work-conserving order).
      advance_clock(completion_at);
      Fabric& fabric = fabrics[completion_fabric];
      ActiveJob& job = fabric.jobs[completion_job];
      JobRecord& record = report.jobs[static_cast<std::size_t>(job.record)];
      ++job.next_iteration;
      if (job.next_iteration < record.spec.iterations) {
        schedule_iteration(fabric, completion_job);
        continue;
      }
      // The job drains: re-lower the affected fabric (lazily, on its
      // next scheduled iteration) and pull from the admission queue.
      record.completion_time = now;
      ++counters.completed;
      fabric.jobs.erase(fabric.jobs.begin() +
                        static_cast<std::ptrdiff_t>(completion_job));
      fabric.dirty = true;
      std::vector<std::pair<std::size_t, int>> admitted;  // (fabric, record)
      while (!admission_queue.empty()) {
        const int r = admission_queue.front();
        const int placed = try_place(r);
        if (placed < 0) break;  // FIFO: the head blocks the rest
        admission_queue.pop_front();
        admitted.emplace_back(static_cast<std::size_t>(placed), r);
      }
      for (const auto& [f, r] : admitted) {
        Fabric& target = fabrics[f];
        for (std::size_t j = 0; j < target.jobs.size(); ++j) {
          if (target.jobs[j].record == r) {
            schedule_iteration(target, j);
            break;
          }
        }
      }
      continue;
    }

    // Arrival(s): admit every job arriving at this exact instant (a
    // burst) before simulating first iterations, so one burst costs one
    // re-lowering of each touched fabric, not one per job.
    advance_clock(arrival_at);
    std::vector<std::pair<std::size_t, int>> admitted;
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].time == arrival_at) {
      const int r = static_cast<int>(report.jobs.size());
      JobRecord record;
      record.id = r;
      record.spec = arrivals[next_arrival].spec;
      record.arrival_time = arrival_at;
      report.jobs.push_back(std::move(record));
      ++counters.arrivals;
      ++next_arrival;
      const int placed = try_place(r);
      if (placed >= 0) {
        admitted.emplace_back(static_cast<std::size_t>(placed), r);
      } else if (static_cast<int>(admission_queue.size()) <
                 config_.admission_queue_capacity) {
        admission_queue.push_back(r);
        ++counters.queued;
      } else {
        report.jobs[static_cast<std::size_t>(r)].rejected = true;
        ++counters.rejected;
      }
    }
    for (const auto& [f, r] : admitted) {
      Fabric& target = fabrics[f];
      for (std::size_t j = 0; j < target.jobs.size(); ++j) {
        if (target.jobs[j].record == r) {
          schedule_iteration(target, j);
          break;
        }
      }
    }
  }

  report.makespan = now;

  // ---- SLO aggregates ------------------------------------------------------

  std::vector<double> slowdowns;
  std::vector<double> delays;
  for (JobRecord& record : report.jobs) {
    if (record.rejected) continue;
    record.mean_iter_s = MeanOf(record.iteration_times);
    record.isolated_iter_s = IsolatedIterationTime(record.spec, counters);
    record.slowdown = record.isolated_iter_s > 0.0
                          ? record.mean_iter_s / record.isolated_iter_s
                          : 1.0;
    slowdowns.push_back(record.slowdown);
    delays.push_back(record.QueueDelay());
  }
  if (!slowdowns.empty()) {
    report.p50_slowdown = util::Percentile(slowdowns, 0.5);
    report.p99_slowdown = util::Percentile(slowdowns, 0.99);
    report.mean_slowdown = MeanOf(slowdowns);
    report.max_slowdown = *std::max_element(slowdowns.begin(),
                                            slowdowns.end());
    report.mean_queue_delay_s = MeanOf(delays);
    report.p50_queue_delay_s = util::Percentile(delays, 0.5);
    report.p99_queue_delay_s = util::Percentile(delays, 0.99);
  }
  if (report.makespan > 0.0) {
    report.utilization = busy_fabric_time /
                         (static_cast<double>(config_.fabrics) *
                          report.makespan);
    report.mean_active_jobs = active_job_time / report.makespan;
  }

  // Jain fairness of normalized progress (1 = the job advanced at its
  // isolated speed), per time window: catches transient unfairness a
  // whole-run average hides.
  report.window_fairness.assign(
      static_cast<std::size_t>(config_.fairness_windows), 1.0);
  if (report.makespan > 0.0) {
    for (int w = 0; w < config_.fairness_windows; ++w) {
      const double lo = report.makespan * w / config_.fairness_windows;
      const double hi = report.makespan * (w + 1) / config_.fairness_windows;
      std::vector<double> rates;
      for (const JobRecord& record : report.jobs) {
        if (record.rejected || record.iteration_times.empty()) continue;
        const double from = std::max(lo, record.admit_time);
        const double to = std::min(hi, record.completion_time);
        if (to <= from) continue;
        const double progress =
            ProgressAt(record, to) - ProgressAt(record, from);
        rates.push_back(progress * record.isolated_iter_s / (to - from));
      }
      if (!rates.empty()) {
        report.window_fairness[static_cast<std::size_t>(w)] =
            core::JainFairness(rates);
      }
    }
  }
  report.mean_fairness = MeanOf(report.window_fairness);
  return report;
}

// ---- report emitters --------------------------------------------------------

util::Table ServiceReport::ToTable() const {
  util::Table table({"Metric", "Value"});
  table.AddRow({"arrivals", config.arrivals.ToString()});
  table.AddRow({"placement", config.placement});
  table.AddRow({"fabrics", std::to_string(config.fabrics)});
  table.AddRow({"duration (s)", util::Fmt(config.duration, 2)});
  table.AddRow({"jobs arrived / completed",
                std::to_string(counters.arrivals) + " / " +
                    std::to_string(counters.completed)});
  table.AddRow({"jobs queued / rejected",
                std::to_string(counters.queued) + " / " +
                    std::to_string(counters.rejected)});
  table.AddRow({"makespan (s)", util::Fmt(makespan, 2)});
  table.AddRow({"slowdown p50 / p99",
                util::Fmt(p50_slowdown, 3) + "x / " +
                    util::Fmt(p99_slowdown, 3) + "x"});
  table.AddRow({"slowdown mean / max",
                util::Fmt(mean_slowdown, 3) + "x / " +
                    util::Fmt(max_slowdown, 3) + "x"});
  table.AddRow({"queue delay mean / p99 (ms)",
                util::Fmt(mean_queue_delay_s * 1e3, 2) + " / " +
                    util::Fmt(p99_queue_delay_s * 1e3, 2)});
  table.AddRow({"utilization", util::Fmt(utilization, 3)});
  table.AddRow({"mean active jobs", util::Fmt(mean_active_jobs, 2)});
  table.AddRow({"Jain fairness (mean over windows)",
                util::Fmt(mean_fairness, 3)});
  table.AddRow({"fabric re-lowerings",
                std::to_string(counters.fabric_relowerings)});
  table.AddRow({"property-index builds / cache hits",
                std::to_string(counters.property_index_builds) + " / " +
                    std::to_string(counters.runner_cache_hits)});
  table.AddRow({"schedules computed / cache hits",
                std::to_string(counters.schedules_computed) + " / " +
                    std::to_string(counters.schedule_cache_hits)});
  table.AddRow({"simulations run", std::to_string(counters.sim_runs)});
  return table;
}

std::string ServiceReport::ToJson() const {
  std::string json = "{\n";
  json += "  \"arrivals\": \"" + JsonEscape(config.arrivals.ToString()) +
          "\",\n";
  json += "  \"placement\": \"" + JsonEscape(config.placement) + "\",\n";
  json += "  \"fabrics\": " + std::to_string(config.fabrics) + ",\n";
  json += "  \"duration_s\": " + FormatDouble(config.duration) + ",\n";
  json += "  \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "  \"jobs\": {\"arrived\": " + std::to_string(counters.arrivals) +
          ", \"admitted\": " + std::to_string(counters.admitted) +
          ", \"queued\": " + std::to_string(counters.queued) +
          ", \"rejected\": " + std::to_string(counters.rejected) +
          ", \"completed\": " + std::to_string(counters.completed) + "},\n";
  json += "  \"slo\": {\"p50_slowdown\": " + FormatDouble(p50_slowdown) +
          ", \"p99_slowdown\": " + FormatDouble(p99_slowdown) +
          ", \"mean_slowdown\": " + FormatDouble(mean_slowdown) +
          ", \"max_slowdown\": " + FormatDouble(max_slowdown) +
          ", \"mean_queue_delay_s\": " + FormatDouble(mean_queue_delay_s) +
          ", \"p50_queue_delay_s\": " + FormatDouble(p50_queue_delay_s) +
          ", \"p99_queue_delay_s\": " + FormatDouble(p99_queue_delay_s) +
          ", \"utilization\": " + FormatDouble(utilization) +
          ", \"mean_active_jobs\": " + FormatDouble(mean_active_jobs) +
          ", \"mean_fairness\": " + FormatDouble(mean_fairness) +
          ", \"makespan_s\": " + FormatDouble(makespan) + ",\n";
  json += "    \"window_fairness\": [";
  for (std::size_t w = 0; w < window_fairness.size(); ++w) {
    json += (w == 0 ? "" : ", ") + FormatDouble(window_fairness[w]);
  }
  json += "]},\n";
  json += "  \"counters\": {\"fabric_relowerings\": " +
          std::to_string(counters.fabric_relowerings) +
          ", \"property_index_builds\": " +
          std::to_string(counters.property_index_builds) +
          ", \"runner_cache_hits\": " +
          std::to_string(counters.runner_cache_hits) +
          ", \"schedules_computed\": " +
          std::to_string(counters.schedules_computed) +
          ", \"schedule_cache_hits\": " +
          std::to_string(counters.schedule_cache_hits) +
          ", \"sim_runs\": " + std::to_string(counters.sim_runs) + "}\n";
  json += "}\n";
  return json;
}

std::string ServiceReport::JobTraceJson() const {
  std::string json = "[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& job = jobs[i];
    json += i == 0 ? "\n" : ",\n";
    json += "  {\"id\": " + std::to_string(job.id);
    json += ", \"fabric\": " + std::to_string(job.fabric);
    json += ", \"spec\": \"" + JsonEscape(job.spec.ToString()) + "\"";
    json += ", \"arrival_s\": " + FormatDouble(job.arrival_time);
    json += ", \"admit_s\": " + FormatDouble(job.admit_time);
    json += ", \"completion_s\": " + FormatDouble(job.completion_time);
    json += ", \"queue_delay_s\": " + FormatDouble(job.QueueDelay());
    json += ", \"iterations\": " +
            std::to_string(job.iteration_times.size());
    json += ", \"mean_iter_s\": " + FormatDouble(job.mean_iter_s);
    json += ", \"isolated_iter_s\": " + FormatDouble(job.isolated_iter_s);
    json += ", \"slowdown\": " + FormatDouble(job.slowdown);
    json += std::string(", \"rejected\": ") +
            (job.rejected ? "true" : "false");
    json += "}";
  }
  json += "\n]\n";
  return json;
}

}  // namespace tictac::sched
