#include "sched/service.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "core/metrics.h"
#include "core/policy_registry.h"
#include "models/zoo.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tictac::sched {
namespace {

using runtime::FormatDouble;
using util::JsonEscape;

[[noreturn]] void Fail(const std::string& message) {
  throw std::invalid_argument("service: " + message);
}

// LowerSharedCluster's per-fabric job bound (runtime/multijob.h caps
// MultiJobSpec at 64 jobs for the same reason: each resident job costs a
// full Runner analysis and 2·T·S channel resources).
constexpr int kMaxJobsPerFabric = 64;
constexpr int kMaxFabrics = 4096;

// How long after a fault window lifts (or a worker crash fires) the
// failure-aware placement policy still counts the fabric as recently
// faulty. A constant, not a knob: recency feeds a placement *preference*,
// and a fixed horizon keeps replays comparable across configs.
constexpr double kFaultRecencyS = 1.0;

// util::Rng::Stream id for the fault layer's only randomness (recovery
// backoff jitter) — an independent split of the service seed, so the
// arrival stream and per-iteration sim seeds replay untouched.
constexpr std::uint64_t kFaultRngStream = 1;

double MeanOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

// Iterations completed by absolute cluster time `t` (fractional within
// the in-flight iteration) — the progress curve windowed fairness
// integrates.
double ProgressAt(const JobRecord& record, double t) {
  double progress = 0.0;
  double start = record.admit_time;
  for (const double duration : record.iteration_times) {
    if (t >= start + duration) {
      progress += 1.0;
      start += duration;
    } else if (t > start && duration > 0.0) {
      return progress + (t - start) / duration;
    } else {
      break;
    }
  }
  return progress;
}

}  // namespace

void ServiceConfig::Validate() const {
  arrivals.Validate();
  if (fabrics < 1 || fabrics > kMaxFabrics) {
    Fail("fabrics must be in [1, " + std::to_string(kMaxFabrics) +
         "], got " + std::to_string(fabrics));
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    Fail("duration must be finite and > 0, got " + FormatDouble(duration));
  }
  if (max_jobs_per_fabric < 1 || max_jobs_per_fabric > kMaxJobsPerFabric) {
    Fail("max_jobs_per_fabric must be in [1, " +
         std::to_string(kMaxJobsPerFabric) + "], got " +
         std::to_string(max_jobs_per_fabric));
  }
  if (admission_queue_capacity < 0) {
    Fail("admission_queue_capacity must be >= 0, got " +
         std::to_string(admission_queue_capacity));
  }
  if (fairness_windows < 1 || fairness_windows > 4096) {
    Fail("fairness_windows must be in [1, 4096], got " +
         std::to_string(fairness_windows));
  }
  MakePlacementPolicy(placement);  // throws, listing the registered names
  if (arrivals.kind != ArrivalSpec::Kind::kTrace && workload.empty()) {
    Fail("synthetic arrivals need >= 1 workload experiment spec");
  }
  if (retry_budget < 0 || retry_budget > 1024) {
    Fail("retry_budget must be in [0, 1024], got " +
         std::to_string(retry_budget));
  }
  if (!(retry_backoff_s > 0.0) || !std::isfinite(retry_backoff_s)) {
    Fail("retry_backoff_s must be finite and > 0, got " +
         FormatDouble(retry_backoff_s));
  }
  faults.Validate();  // throws with the offending event and field
}

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(std::move(config)) {
  config_.Validate();
}

const runtime::Runner& SchedulerService::GetRunner(
    const runtime::ExperimentSpec& spec, double bandwidth_scale,
    ServiceCounters& counters) {
  // '\n' cannot appear in a model name or cluster spec (same argument as
  // harness::Session's cache key).
  const std::string key = spec.model + '\n' + spec.cluster.ToString() +
                          '\n' + FormatDouble(bandwidth_scale);
  const auto it = runners_.find(key);
  if (it != runners_.end()) {
    ++counters.runner_cache_hits;
    return *it->second.runner;
  }
  runtime::ClusterConfig cluster = spec.BuildCluster();
  // Same contention scaling as runtime::MultiJobRunner: every PS NIC is
  // time-shared by ALL resident jobs' workers, so scale the platform
  // bandwidth by W_j / T before the per-channel division by W_j. Exactly
  // 1.0 — the untouched isolated config — for a lone job.
  cluster.platform.bandwidth_bps *= bandwidth_scale;
  ++counters.property_index_builds;
  CachedRunner& entry = runners_[key];
  entry.runner = std::make_unique<runtime::Runner>(
      models::FindModel(spec.model), cluster);
  return *entry.runner;
}

const SchedulerService::CachedSchedule& SchedulerService::GetSchedule(
    const runtime::ExperimentSpec& spec, double bandwidth_scale,
    ServiceCounters& counters) {
  const std::string key = spec.model + '\n' + spec.cluster.ToString() +
                          '\n' + FormatDouble(bandwidth_scale) + '\n' +
                          spec.policy;
  const auto it = schedules_.find(key);
  if (it != schedules_.end()) {
    ++counters.schedule_cache_hits;
    return it->second;
  }
  const runtime::Runner& runner = GetRunner(spec, bandwidth_scale, counters);
  ++counters.schedules_computed;
  CachedSchedule& entry = schedules_[key];
  entry.schedule = runner.MakeSchedule(spec.policy);
  entry.covers_all_recvs =
      entry.schedule.size() == runner.worker_graph().size() &&
      entry.schedule.CoversAllRecvs(runner.worker_graph());
  return entry;
}

double SchedulerService::IsolatedIterationTime(
    const runtime::ExperimentSpec& spec, ServiceCounters& counters) {
  const std::string key = spec.ToString();
  const auto it = isolated_.find(key);
  if (it != isolated_.end()) return it->second;
  // Scale 1 is the single-job Session path: the job alone on a fabric.
  const runtime::Runner& runner = GetRunner(spec, 1.0, counters);
  const double mean = runner.Run(spec.policy, spec.iterations, spec.seed)
                          .MeanIterationTime();
  isolated_[key] = mean;
  return mean;
}

ServiceReport SchedulerService::Run() {
  ServiceReport report;
  report.config = config_;
  ServiceCounters& counters = report.counters;

  const std::vector<ArrivalEvent> arrivals = GenerateArrivals(
      config_.arrivals, config_.workload, config_.duration, config_.seed);

  // Shared-fabric stream validation: any two jobs may be co-located, so
  // the whole stream must agree on the fabric-global knobs (same rules
  // as MultiJobSpec::Validate, except iterations/seed stay per-job:
  // every job's iterations are simulated against its own seed).
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const runtime::ExperimentSpec& spec = arrivals[i].spec;
    const std::string where =
        "arrival " + std::to_string(i) + " ('" + spec.ToString() + "') ";
    spec.BuildCluster();  // loud per-field cluster validation
    core::PolicyRegistry::Global().Create(spec.policy);  // fail fast
    if (spec.iterations < 1) {
      Fail(where + "declares iterations=" + std::to_string(spec.iterations) +
           " — must be >= 1");
    }
    const runtime::ExperimentSpec& head = arrivals.front().spec;
    if (spec.cluster.env != head.cluster.env) {
      Fail(where + "declares env " + spec.cluster.env +
           " but the cluster is " + head.cluster.env +
           " — all jobs share one environment");
    }
    if (spec.cluster.ps != head.cluster.ps) {
      Fail(where + "declares ps=" + std::to_string(spec.cluster.ps) +
           " but the shared PS fleets have " +
           std::to_string(head.cluster.ps) +
           " servers — all jobs must declare the same ps=");
    }
    if (spec.cluster.jitter_sigma != head.cluster.jitter_sigma ||
        spec.cluster.out_of_order != head.cluster.out_of_order) {
      Fail(where + "overrides jitter=/ooo= differently from arrival 0 — "
                   "simulation options are global to a fabric");
    }
  }

  // ---- event-loop state ----------------------------------------------------

  struct ActiveJob {
    int record = 0;              // index into report.jobs
    int next_iteration = 0;      // completed iterations
    double iteration_finish = 0.0;  // absolute finish of the in-flight one
  };
  struct Fabric {
    std::vector<ActiveJob> jobs;  // order matches lowering.jobs slices
    runtime::MultiJobLowering lowering;
    std::unique_ptr<sim::TaskGraphSim> sim;
    sim::SimOptions options;
    bool dirty = false;  // membership changed since `lowering` was built
    bool down = false;   // crash:fabric fired — permanently out of service
  };
  std::vector<Fabric> fabrics(static_cast<std::size_t>(config_.fabrics));

  // ---- fault-timeline compilation (DESIGN.md §8) ---------------------------
  //
  // Perturbation events (straggler / slowlink / flap) compile to
  // per-fabric absolute speed windows, consulted when an iteration is
  // simulated; crash events become a dedicated event source of the loop
  // below. An empty spec compiles to nothing and leaves every code path
  // on the fault-free route, bit for bit (pinned in tests/fault_test.cc).
  struct Window {
    double start = 0.0;
    double end = 0.0;        // +inf when the perturbation never lifts
    bool on_worker = false;  // worker-slot target vs PS-NIC target
    int index = 0;           // fabric-local worker slot / NIC id
    double speed = 1.0;      // rate multiplier while active (0 = down)
  };
  struct Crash {
    double at = 0.0;
    bool whole_fabric = false;
    int fabric = 0;
    int worker = -1;
  };
  std::vector<std::vector<Window>> fault_windows(fabrics.size());
  std::vector<Crash> crashes;  // in time order (Materialize sorts by at)
  for (const fault::FaultEvent& e : config_.faults.Materialize()) {
    if (e.fabric < 0 || e.fabric >= config_.fabrics) {
      Fail("fault '" + e.ToString() + "' targets fabric " +
           std::to_string(e.fabric) + " but the service has " +
           std::to_string(config_.fabrics));
    }
    std::vector<Window>& windows =
        fault_windows[static_cast<std::size_t>(e.fabric)];
    switch (e.kind) {
      case fault::FaultEvent::Kind::kStraggler:
        windows.push_back(
            Window{e.at, e.at + e.duration, true, e.worker, 1.0 / e.factor});
        break;
      case fault::FaultEvent::Kind::kSlowLink:
        windows.push_back(
            Window{e.at, e.at + e.duration, false, e.nic, e.scale});
        break;
      case fault::FaultEvent::Kind::kFlap:
        // Down for the first half of every period over [at, at + for);
        // Validate() bounds the expansion at 4096 cycles.
        for (double cycle = e.at; cycle < e.at + e.duration;
             cycle += e.period) {
          windows.push_back(
              Window{cycle, std::min(cycle + e.period / 2.0, e.at + e.duration),
                     false, e.nic, 0.0});
        }
        break;
      case fault::FaultEvent::Kind::kCrashWorker:
        crashes.push_back(Crash{e.at, false, e.fabric, e.worker});
        break;
      case fault::FaultEvent::Kind::kCrashFabric:
        crashes.push_back(Crash{e.at, true, e.fabric, -1});
        break;
    }
    ++counters.faults_injected;
  }
  const bool has_faults = counters.faults_injected > 0;

  util::Rng fault_rng = util::Rng::Stream(config_.seed, kFaultRngStream);
  // (ready time, record id) min-heap — ties resolve to the lower id, so
  // recovery order is deterministic.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      retry_ready;
  std::vector<double> evicted_at;  // per record: time of its last eviction
  std::vector<double> mttrs;       // re-placement time - eviction time
  double wasted_s = 0.0;

  const std::unique_ptr<PlacementPolicy> placement =
      MakePlacementPolicy(config_.placement);
  std::deque<int> admission_queue;  // record indices, FIFO
  std::size_t decisions = 0;        // placement decisions (round-robin state)

  double now = 0.0;
  double busy_fabric_time = 0.0;
  double active_job_time = 0.0;

  // Re-lowers ONE fabric from its current membership; every other fabric
  // keeps its lowering, sim, and cached analyses untouched.
  const auto relower = [&](Fabric& fabric) {
    int total_workers = 0;
    for (const ActiveJob& job : fabric.jobs) {
      total_workers += report.jobs[static_cast<std::size_t>(job.record)]
                           .spec.cluster.workers;
    }
    std::vector<runtime::JobLoweringInput> inputs;
    inputs.reserve(fabric.jobs.size());
    bool any_covered = false;
    for (const ActiveJob& job : fabric.jobs) {
      const runtime::ExperimentSpec& spec =
          report.jobs[static_cast<std::size_t>(job.record)].spec;
      const double scale = static_cast<double>(spec.cluster.workers) /
                           static_cast<double>(total_workers);
      const runtime::Runner& runner = GetRunner(spec, scale, counters);
      const CachedSchedule& schedule = GetSchedule(spec, scale, counters);
      any_covered |= schedule.covers_all_recvs;
      inputs.push_back(runtime::JobLoweringInput{
          runner.worker_graph(), schedule.schedule, runner.ps_of_param(),
          runner.config(), /*start_offset=*/0.0});
    }
    fabric.lowering = runtime::LowerSharedCluster(inputs);
    fabric.sim = std::make_unique<sim::TaskGraphSim>(
        fabric.lowering.combined.BuildSim());
    fabric.options = inputs.front().config.sim;
    fabric.options.enforce_gates = any_covered;
    fabric.dirty = false;
    ++counters.fabric_relowerings;
  };

  // Scratch for the per-iteration fault timeline, relative to `now`;
  // reused across calls and alive through the sim Run below. `boundaries`
  // is the per-target change-point scratch.
  std::vector<sim::ResourceFault> iter_faults;
  std::vector<double> boundaries;

  // Translates fabric `f`'s absolute speed windows into a timeline
  // relative to `now` for one iteration sim. Per target, the effective
  // speed at any instant is the product of its active windows (any down
  // window wins); the engine samples speed at task start (sim/task.h).
  // Targets past the fabric's current lowering strike air — exactly what
  // a dead worker slot or an unequipped PS does.
  const auto build_iteration_faults = [&](std::size_t f) {
    iter_faults.clear();
    const std::vector<Window>& windows = fault_windows[f];
    int total_workers = 0;
    for (const ActiveJob& job : fabrics[f].jobs) {
      total_workers += report.jobs[static_cast<std::size_t>(job.record)]
                           .spec.cluster.workers;
    }
    const int servers =
        report.jobs[static_cast<std::size_t>(fabrics[f].jobs.front().record)]
            .spec.cluster.ps;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      // First window of each distinct target drives that whole target.
      bool seen = false;
      for (std::size_t k = 0; k < i && !seen; ++k) {
        seen = windows[k].on_worker == windows[i].on_worker &&
               windows[k].index == windows[i].index;
      }
      if (seen) continue;
      if (windows[i].on_worker
              ? windows[i].index >= total_workers
              : windows[i].index >= servers) {
        continue;  // strikes air under the current lowering
      }
      boundaries.clear();
      boundaries.push_back(now);
      for (const Window& w : windows) {
        if (w.on_worker != windows[i].on_worker ||
            w.index != windows[i].index) {
          continue;
        }
        if (w.start > now) boundaries.push_back(w.start);
        if (std::isfinite(w.end) && w.end > now) boundaries.push_back(w.end);
      }
      std::sort(boundaries.begin(), boundaries.end());
      boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                       boundaries.end());
      double last_speed = 1.0;
      for (const double b : boundaries) {
        double speed = 1.0;
        for (const Window& w : windows) {
          if (w.on_worker == windows[i].on_worker &&
              w.index == windows[i].index && w.start <= b && b < w.end) {
            speed *= w.speed;
          }
        }
        if (speed == last_speed) continue;
        last_speed = speed;
        const double rel = b - now;
        if (windows[i].on_worker) {
          iter_faults.push_back(
              sim::ResourceFault{rel, windows[i].index, speed});
        } else {
          // NIC n serves every worker's downlink and uplink channel pair
          // against server n (runtime/lowering.h resource layout, with
          // W := the combined fabric's total worker count).
          for (int w = 0; w < total_workers; ++w) {
            iter_faults.push_back(sim::ResourceFault{
                rel, total_workers + w * servers + windows[i].index, speed});
            iter_faults.push_back(sim::ResourceFault{
                rel,
                total_workers + total_workers * servers + w * servers +
                    windows[i].index,
                speed});
          }
        }
      }
    }
    std::stable_sort(iter_faults.begin(), iter_faults.end(),
                     [](const sim::ResourceFault& a,
                        const sim::ResourceFault& b) { return a.time < b.time; });
  };

  // Simulates job `j`'s next iteration under the fabric's current mix
  // and books its finish time. Seeded spec.seed + iteration index,
  // matching the single-job Runner::Run convention bit for bit.
  const auto schedule_iteration = [&](std::size_t f, std::size_t j) {
    Fabric& fabric = fabrics[f];
    if (fabric.dirty) relower(fabric);
    ActiveJob& job = fabric.jobs[j];
    JobRecord& record = report.jobs[static_cast<std::size_t>(job.record)];
    fabric.options.faults = nullptr;
    if (has_faults && !fault_windows[f].empty()) {
      build_iteration_faults(f);
      if (!iter_faults.empty()) fabric.options.faults = &iter_faults;
    }
    const sim::SimResult run = fabric.sim->Run(
        fabric.options,
        record.spec.seed + static_cast<std::uint64_t>(job.next_iteration));
    ++counters.sim_runs;
    const runtime::MultiJobLowering::JobSlice& slice = fabric.lowering.jobs[j];
    double duration = 0.0;
    for (sim::TaskId t = slice.first_task; t < slice.last_task; ++t) {
      duration = std::max(duration, run.end[static_cast<std::size_t>(t)]);
    }
    job.iteration_finish = now + duration;
    record.iteration_times.push_back(duration);
  };

  const auto fabric_loads = [&] {
    std::vector<FabricLoad> loads(fabrics.size());
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      loads[f].down = fabrics[f].down;
      if (has_faults) {
        // Recency feed for the failure-aware policy: perturbation windows
        // active now (or lifted within kFaultRecencyS) and recent worker
        // crashes. Fabric crashes need no counting — down says it all.
        for (const Window& w : fault_windows[f]) {
          if (w.start <= now && now <= w.end + kFaultRecencyS) {
            ++loads[f].recent_faults;
          }
        }
        for (const Crash& c : crashes) {
          if (!c.whole_fabric && c.fabric == static_cast<int>(f) &&
              c.at <= now && now <= c.at + kFaultRecencyS) {
            ++loads[f].recent_faults;
          }
        }
      }
      for (const ActiveJob& job : fabrics[f].jobs) {
        const JobRecord& record =
            report.jobs[static_cast<std::size_t>(job.record)];
        ++loads[f].active_jobs;
        loads[f].active_workers += record.spec.cluster.workers;
        loads[f].active_param_mib +=
            models::FindModel(record.spec.model).total_param_mib;
      }
    }
    return loads;
  };

  // Places record `r` now if the policy finds an eligible fabric;
  // returns the fabric index or -1. A re-placement after a crash keeps
  // the job's original admit_time (queue delay measures admission, not
  // recovery) and resumes from its completed-iteration count.
  const auto try_place = [&](int r) {
    JobRecord& record = report.jobs[static_cast<std::size_t>(r)];
    const int f = placement->Place(record.spec, fabric_loads(), decisions++,
                                   config_.max_jobs_per_fabric);
    if (f < 0) return -1;
    Fabric& fabric = fabrics[static_cast<std::size_t>(f)];
    if (fabric.down ||
        static_cast<int>(fabric.jobs.size()) >= config_.max_jobs_per_fabric) {
      Fail("placement policy '" + config_.placement +
           "' returned ineligible fabric " + std::to_string(f));
    }
    record.fabric = f;
    if (record.retries == 0) {
      record.admit_time = now;
      ++counters.admitted;
    } else {
      ++counters.replacements;
      mttrs.push_back(now - evicted_at[static_cast<std::size_t>(r)]);
    }
    // iteration_times holds exactly the completed iterations here (an
    // eviction pops the in-flight one), so its size is where to resume.
    fabric.jobs.push_back(
        ActiveJob{r, static_cast<int>(record.iteration_times.size()), 0.0});
    fabric.dirty = true;
    return f;
  };

  // Evicts resident job `j` of fabric `f`: the in-flight iteration is
  // lost, and the job is either re-queued for a backed-off retry or — on
  // an exhausted budget — declared failed.
  const auto evict = [&](std::size_t f, std::size_t j) {
    Fabric& fabric = fabrics[f];
    const ActiveJob job = fabric.jobs[j];
    fabric.jobs.erase(fabric.jobs.begin() + static_cast<std::ptrdiff_t>(j));
    JobRecord& record = report.jobs[static_cast<std::size_t>(job.record)];
    if (!record.iteration_times.empty()) {
      const double d = record.iteration_times.back();
      record.iteration_times.pop_back();
      wasted_s += now - (job.iteration_finish - d);
      ++counters.lost_iterations;
    }
    record.fabric = -1;
    evicted_at[static_cast<std::size_t>(job.record)] = now;
    if (record.retries >= config_.retry_budget) {
      record.failed = true;
      ++counters.failed_jobs;
      return;
    }
    ++record.retries;
    ++counters.retries;
    // Exponential backoff with multiplicative jitter in [1, 1.5): spreads
    // a mass eviction (fabric crash) so survivors do not re-place as one
    // burst. Uniform01 is the portable draw — replays match across
    // platforms — and fault_rng is an independent stream, so these draws
    // never perturb arrivals or sim seeds.
    const double backoff = config_.retry_backoff_s *
                           std::ldexp(1.0, record.retries - 1) *
                           (1.0 + 0.5 * fault_rng.Uniform01());
    retry_ready.emplace(now + backoff, job.record);
  };

  // Pulls queued jobs while the policy keeps placing them (FIFO: the
  // head blocks the rest), then simulates their first iterations.
  const auto drain_admission_queue = [&] {
    std::vector<std::pair<std::size_t, int>> admitted;
    while (!admission_queue.empty()) {
      const int r = admission_queue.front();
      const int placed = try_place(r);
      if (placed < 0) break;
      admission_queue.pop_front();
      admitted.emplace_back(static_cast<std::size_t>(placed), r);
    }
    for (const auto& [f, r] : admitted) {
      Fabric& target = fabrics[f];
      for (std::size_t j = 0; j < target.jobs.size(); ++j) {
        if (target.jobs[j].record == r) {
          schedule_iteration(f, j);
          break;
        }
      }
    }
  };

  // Integrates utilization / mean-jobs-in-system up to time `t`.
  const auto advance_clock = [&](double t) {
    int busy = 0;
    int active = 0;
    for (const Fabric& fabric : fabrics) {
      busy += fabric.jobs.empty() ? 0 : 1;
      active += static_cast<int>(fabric.jobs.size());
    }
    busy_fabric_time += (t - now) * busy;
    active_job_time += (t - now) * active;
    now = t;
  };

  // ---- the event loop ------------------------------------------------------

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t next_arrival = 0;
  std::size_t next_crash = 0;
  while (true) {
    const double arrival_at = next_arrival < arrivals.size()
                                  ? arrivals[next_arrival].time
                                  : kInf;
    const double crash_at =
        next_crash < crashes.size() ? crashes[next_crash].at : kInf;
    const double retry_at =
        retry_ready.empty() ? kInf : retry_ready.top().first;
    double completion_at = kInf;
    std::size_t completion_fabric = 0;
    std::size_t completion_job = 0;
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      for (std::size_t j = 0; j < fabrics[f].jobs.size(); ++j) {
        if (fabrics[f].jobs[j].iteration_finish < completion_at) {
          completion_at = fabrics[f].jobs[j].iteration_finish;
          completion_fabric = f;
          completion_job = j;
        }
      }
    }
    if (arrival_at == kInf && completion_at == kInf && crash_at == kInf &&
        retry_at == kInf) {
      break;
    }

    // Tie precedence: completion < crash < retry < arrival. A completion
    // frees capacity before anything else reacts; a crash at the same
    // instant evicts before retries or arrivals claim the fabric — a
    // deterministic, work-conserving order.
    if (completion_at <= arrival_at && completion_at <= crash_at &&
        completion_at <= retry_at) {
      advance_clock(completion_at);
      Fabric& fabric = fabrics[completion_fabric];
      ActiveJob& job = fabric.jobs[completion_job];
      JobRecord& record = report.jobs[static_cast<std::size_t>(job.record)];
      ++job.next_iteration;
      if (job.next_iteration < record.spec.iterations) {
        schedule_iteration(completion_fabric, completion_job);
        continue;
      }
      // The job drains: re-lower the affected fabric (lazily, on its
      // next scheduled iteration) and pull from the admission queue.
      record.completion_time = now;
      ++counters.completed;
      fabric.jobs.erase(fabric.jobs.begin() +
                        static_cast<std::ptrdiff_t>(completion_job));
      fabric.dirty = true;
      drain_admission_queue();
      continue;
    }

    if (crash_at <= arrival_at && crash_at <= retry_at) {
      advance_clock(crash_at);
      const Crash crash = crashes[next_crash++];
      Fabric& fabric = fabrics[static_cast<std::size_t>(crash.fabric)];
      if (crash.whole_fabric) {
        if (!fabric.down) {
          fabric.down = true;
          ++counters.fabric_crashes;
          while (!fabric.jobs.empty()) {
            evict(static_cast<std::size_t>(crash.fabric),
                  fabric.jobs.size() - 1);
          }
          fabric.dirty = true;
        }
        continue;
      }
      ++counters.worker_crashes;
      if (fabric.down) continue;  // a dead fabric has no slots left
      // Worker slots are fabric-local and laid out in residency order:
      // resident job g owns slots [Σ<g workers, Σ<=g workers). A slot
      // index past the current total strikes air.
      int base = 0;
      std::ptrdiff_t victim = -1;
      for (std::size_t j = 0; j < fabric.jobs.size() && victim < 0; ++j) {
        const int w =
            report.jobs[static_cast<std::size_t>(fabric.jobs[j].record)]
                .spec.cluster.workers;
        if (crash.worker < base + w) victim = static_cast<std::ptrdiff_t>(j);
        base += w;
      }
      if (victim < 0) continue;
      evict(static_cast<std::size_t>(crash.fabric),
            static_cast<std::size_t>(victim));
      fabric.dirty = true;
      // The eviction freed a seat: give queued arrivals the same chance a
      // drain does.
      drain_admission_queue();
      continue;
    }

    if (retry_at <= arrival_at) {
      advance_clock(retry_at);
      const int r = retry_ready.top().second;
      retry_ready.pop();
      const int placed = try_place(r);
      if (placed >= 0) {
        Fabric& target = fabrics[static_cast<std::size_t>(placed)];
        for (std::size_t j = 0; j < target.jobs.size(); ++j) {
          if (target.jobs[j].record == r) {
            schedule_iteration(static_cast<std::size_t>(placed), j);
            break;
          }
        }
        continue;
      }
      bool any_alive = false;
      for (const Fabric& fabric : fabrics) any_alive |= !fabric.down;
      JobRecord& record = report.jobs[static_cast<std::size_t>(r)];
      if (!any_alive) {
        record.failed = true;
        ++counters.failed_jobs;
      } else {
        // Every surviving fabric is full. Fall into the admission queue —
        // bypassing its capacity, the job already held a seat — and
        // re-place on the next drain.
        admission_queue.push_back(r);
      }
      continue;
    }

    // Arrival(s): admit every job arriving at this exact instant (a
    // burst) before simulating first iterations, so one burst costs one
    // re-lowering of each touched fabric, not one per job.
    advance_clock(arrival_at);
    std::vector<std::pair<std::size_t, int>> admitted;
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].time == arrival_at) {
      const int r = static_cast<int>(report.jobs.size());
      JobRecord record;
      record.id = r;
      record.spec = arrivals[next_arrival].spec;
      record.arrival_time = arrival_at;
      report.jobs.push_back(std::move(record));
      if (has_faults) evicted_at.push_back(0.0);
      ++counters.arrivals;
      ++next_arrival;
      const int placed = try_place(r);
      if (placed >= 0) {
        admitted.emplace_back(static_cast<std::size_t>(placed), r);
      } else if (static_cast<int>(admission_queue.size()) <
                 config_.admission_queue_capacity) {
        admission_queue.push_back(r);
        ++counters.queued;
      } else {
        report.jobs[static_cast<std::size_t>(r)].rejected = true;
        ++counters.rejected;
      }
    }
    for (const auto& [f, r] : admitted) {
      Fabric& target = fabrics[f];
      for (std::size_t j = 0; j < target.jobs.size(); ++j) {
        if (target.jobs[j].record == r) {
          schedule_iteration(f, j);
          break;
        }
      }
    }
  }

  // Jobs stranded in the admission queue (every fabric died before they
  // could place) count as failed — without faults the queue always
  // drains before the loop can end.
  if (has_faults) {
    for (const int r : admission_queue) {
      JobRecord& record = report.jobs[static_cast<std::size_t>(r)];
      if (!record.failed) {
        record.failed = true;
        ++counters.failed_jobs;
      }
    }
  }

  report.makespan = now;

  // ---- SLO aggregates ------------------------------------------------------

  std::vector<double> slowdowns;
  std::vector<double> delays;
  for (JobRecord& record : report.jobs) {
    if (record.rejected) continue;
    record.mean_iter_s = MeanOf(record.iteration_times);
    record.isolated_iter_s = IsolatedIterationTime(record.spec, counters);
    record.slowdown = record.isolated_iter_s > 0.0
                          ? record.mean_iter_s / record.isolated_iter_s
                          : 1.0;
    if (record.failed) continue;  // never completed: not an SLO sample
    slowdowns.push_back(record.slowdown);
    delays.push_back(record.QueueDelay());
  }
  if (!slowdowns.empty()) {
    report.p50_slowdown = util::Percentile(slowdowns, 0.5);
    report.p99_slowdown = util::Percentile(slowdowns, 0.99);
    report.mean_slowdown = MeanOf(slowdowns);
    report.max_slowdown = *std::max_element(slowdowns.begin(),
                                            slowdowns.end());
    report.mean_queue_delay_s = MeanOf(delays);
    report.p50_queue_delay_s = util::Percentile(delays, 0.5);
    report.p99_queue_delay_s = util::Percentile(delays, 0.99);
  }
  if (report.makespan > 0.0) {
    report.utilization = busy_fabric_time /
                         (static_cast<double>(config_.fabrics) *
                          report.makespan);
    report.mean_active_jobs = active_job_time / report.makespan;
  }

  // Jain fairness of normalized progress (1 = the job advanced at its
  // isolated speed), per time window: catches transient unfairness a
  // whole-run average hides.
  report.window_fairness.assign(
      static_cast<std::size_t>(config_.fairness_windows), 1.0);
  if (report.makespan > 0.0) {
    for (int w = 0; w < config_.fairness_windows; ++w) {
      const double lo = report.makespan * w / config_.fairness_windows;
      const double hi = report.makespan * (w + 1) / config_.fairness_windows;
      std::vector<double> rates;
      for (const JobRecord& record : report.jobs) {
        if (record.rejected || record.failed ||
            record.iteration_times.empty()) {
          continue;
        }
        const double from = std::max(lo, record.admit_time);
        const double to = std::min(hi, record.completion_time);
        if (to <= from) continue;
        const double progress =
            ProgressAt(record, to) - ProgressAt(record, from);
        rates.push_back(progress * record.isolated_iter_s / (to - from));
      }
      if (!rates.empty()) {
        report.window_fairness[static_cast<std::size_t>(w)] =
            core::JainFairness(rates);
      }
    }
  }
  report.mean_fairness = MeanOf(report.window_fairness);

  // Robustness SLOs — only computed under faults so the fault-free
  // report (and its JSON) stays exactly what it was.
  if (has_faults) {
    if (!mttrs.empty()) {
      report.mttr_mean_s = MeanOf(mttrs);
      report.mttr_max_s = *std::max_element(mttrs.begin(), mttrs.end());
    }
    report.wasted_s = wasted_s;
    if (report.makespan > 0.0) {
      double offered = 0.0;
      double good = 0.0;
      for (const JobRecord& record : report.jobs) {
        offered += static_cast<double>(record.spec.iterations);
        if (!record.rejected && !record.failed) {
          good += static_cast<double>(record.spec.iterations);
        }
      }
      report.offered_iters_per_s = offered / report.makespan;
      report.goodput_iters_per_s = good / report.makespan;
    }
  }
  return report;
}

// ---- report emitters --------------------------------------------------------

util::Table ServiceReport::ToTable() const {
  util::Table table({"Metric", "Value"});
  table.AddRow({"arrivals", config.arrivals.ToString()});
  table.AddRow({"placement", config.placement});
  table.AddRow({"fabrics", std::to_string(config.fabrics)});
  table.AddRow({"duration (s)", util::Fmt(config.duration, 2)});
  table.AddRow({"jobs arrived / completed",
                std::to_string(counters.arrivals) + " / " +
                    std::to_string(counters.completed)});
  table.AddRow({"jobs queued / rejected",
                std::to_string(counters.queued) + " / " +
                    std::to_string(counters.rejected)});
  table.AddRow({"makespan (s)", util::Fmt(makespan, 2)});
  table.AddRow({"slowdown p50 / p99",
                util::Fmt(p50_slowdown, 3) + "x / " +
                    util::Fmt(p99_slowdown, 3) + "x"});
  table.AddRow({"slowdown mean / max",
                util::Fmt(mean_slowdown, 3) + "x / " +
                    util::Fmt(max_slowdown, 3) + "x"});
  table.AddRow({"queue delay mean / p99 (ms)",
                util::Fmt(mean_queue_delay_s * 1e3, 2) + " / " +
                    util::Fmt(p99_queue_delay_s * 1e3, 2)});
  table.AddRow({"utilization", util::Fmt(utilization, 3)});
  table.AddRow({"mean active jobs", util::Fmt(mean_active_jobs, 2)});
  table.AddRow({"Jain fairness (mean over windows)",
                util::Fmt(mean_fairness, 3)});
  table.AddRow({"fabric re-lowerings",
                std::to_string(counters.fabric_relowerings)});
  table.AddRow({"property-index builds / cache hits",
                std::to_string(counters.property_index_builds) + " / " +
                    std::to_string(counters.runner_cache_hits)});
  table.AddRow({"schedules computed / cache hits",
                std::to_string(counters.schedules_computed) + " / " +
                    std::to_string(counters.schedule_cache_hits)});
  table.AddRow({"simulations run", std::to_string(counters.sim_runs)});
  if (!config.faults.empty()) {
    table.AddRow({"faults", config.faults.ToString()});
    table.AddRow({"faults injected", std::to_string(counters.faults_injected)});
    table.AddRow({"worker / fabric crashes",
                  std::to_string(counters.worker_crashes) + " / " +
                      std::to_string(counters.fabric_crashes)});
    table.AddRow({"retries / replacements",
                  std::to_string(counters.retries) + " / " +
                      std::to_string(counters.replacements)});
    table.AddRow({"iterations lost / jobs failed",
                  std::to_string(counters.lost_iterations) + " / " +
                      std::to_string(counters.failed_jobs)});
    table.AddRow({"MTTR mean / max (ms)",
                  util::Fmt(mttr_mean_s * 1e3, 2) + " / " +
                      util::Fmt(mttr_max_s * 1e3, 2)});
    table.AddRow({"wasted work (s)", util::Fmt(wasted_s, 3)});
    table.AddRow({"goodput / offered (iters/s)",
                  util::Fmt(goodput_iters_per_s, 3) + " / " +
                      util::Fmt(offered_iters_per_s, 3)});
  }
  return table;
}

std::string ServiceReport::ToJson() const {
  std::string json = "{\n";
  json += "  \"arrivals\": \"" + JsonEscape(config.arrivals.ToString()) +
          "\",\n";
  json += "  \"placement\": \"" + JsonEscape(config.placement) + "\",\n";
  json += "  \"fabrics\": " + std::to_string(config.fabrics) + ",\n";
  json += "  \"duration_s\": " + FormatDouble(config.duration) + ",\n";
  json += "  \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "  \"jobs\": {\"arrived\": " + std::to_string(counters.arrivals) +
          ", \"admitted\": " + std::to_string(counters.admitted) +
          ", \"queued\": " + std::to_string(counters.queued) +
          ", \"rejected\": " + std::to_string(counters.rejected) +
          ", \"completed\": " + std::to_string(counters.completed) + "},\n";
  json += "  \"slo\": {\"p50_slowdown\": " + FormatDouble(p50_slowdown) +
          ", \"p99_slowdown\": " + FormatDouble(p99_slowdown) +
          ", \"mean_slowdown\": " + FormatDouble(mean_slowdown) +
          ", \"max_slowdown\": " + FormatDouble(max_slowdown) +
          ", \"mean_queue_delay_s\": " + FormatDouble(mean_queue_delay_s) +
          ", \"p50_queue_delay_s\": " + FormatDouble(p50_queue_delay_s) +
          ", \"p99_queue_delay_s\": " + FormatDouble(p99_queue_delay_s) +
          ", \"utilization\": " + FormatDouble(utilization) +
          ", \"mean_active_jobs\": " + FormatDouble(mean_active_jobs) +
          ", \"mean_fairness\": " + FormatDouble(mean_fairness) +
          ", \"makespan_s\": " + FormatDouble(makespan) + ",\n";
  json += "    \"window_fairness\": [";
  for (std::size_t w = 0; w < window_fairness.size(); ++w) {
    json += (w == 0 ? "" : ", ") + FormatDouble(window_fairness[w]);
  }
  json += "]},\n";
  // The fault block exists only when faults were configured, so a
  // fault-free report is byte-identical to the pre-fault service
  // (pinned in tests/fault_test.cc).
  if (!config.faults.empty()) {
    json += "  \"faults\": {\"spec\": \"" +
            JsonEscape(config.faults.ToString()) +
            "\", \"injected\": " + std::to_string(counters.faults_injected) +
            ", \"worker_crashes\": " + std::to_string(counters.worker_crashes) +
            ", \"fabric_crashes\": " + std::to_string(counters.fabric_crashes) +
            ", \"retries\": " + std::to_string(counters.retries) +
            ", \"replacements\": " + std::to_string(counters.replacements) +
            ", \"lost_iterations\": " +
            std::to_string(counters.lost_iterations) +
            ", \"failed_jobs\": " + std::to_string(counters.failed_jobs) +
            ", \"retry_budget\": " + std::to_string(config.retry_budget) +
            ", \"retry_backoff_s\": " + FormatDouble(config.retry_backoff_s) +
            ",\n    \"mttr_mean_s\": " + FormatDouble(mttr_mean_s) +
            ", \"mttr_max_s\": " + FormatDouble(mttr_max_s) +
            ", \"wasted_s\": " + FormatDouble(wasted_s) +
            ", \"offered_iters_per_s\": " + FormatDouble(offered_iters_per_s) +
            ", \"goodput_iters_per_s\": " + FormatDouble(goodput_iters_per_s) +
            "},\n";
  }
  json += "  \"counters\": {\"fabric_relowerings\": " +
          std::to_string(counters.fabric_relowerings) +
          ", \"property_index_builds\": " +
          std::to_string(counters.property_index_builds) +
          ", \"runner_cache_hits\": " +
          std::to_string(counters.runner_cache_hits) +
          ", \"schedules_computed\": " +
          std::to_string(counters.schedules_computed) +
          ", \"schedule_cache_hits\": " +
          std::to_string(counters.schedule_cache_hits) +
          ", \"sim_runs\": " + std::to_string(counters.sim_runs) + "}\n";
  json += "}\n";
  return json;
}

std::string ServiceReport::JobTraceJson() const {
  std::string json = "[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& job = jobs[i];
    json += i == 0 ? "\n" : ",\n";
    json += "  {\"id\": " + std::to_string(job.id);
    json += ", \"fabric\": " + std::to_string(job.fabric);
    json += ", \"spec\": \"" + JsonEscape(job.spec.ToString()) + "\"";
    json += ", \"arrival_s\": " + FormatDouble(job.arrival_time);
    json += ", \"admit_s\": " + FormatDouble(job.admit_time);
    json += ", \"completion_s\": " + FormatDouble(job.completion_time);
    json += ", \"queue_delay_s\": " + FormatDouble(job.QueueDelay());
    json += ", \"iterations\": " +
            std::to_string(job.iteration_times.size());
    json += ", \"mean_iter_s\": " + FormatDouble(job.mean_iter_s);
    json += ", \"isolated_iter_s\": " + FormatDouble(job.isolated_iter_s);
    json += ", \"slowdown\": " + FormatDouble(job.slowdown);
    json += std::string(", \"rejected\": ") +
            (job.rejected ? "true" : "false");
    if (!config.faults.empty()) {
      json += ", \"retries\": " + std::to_string(job.retries);
      json += std::string(", \"failed\": ") + (job.failed ? "true" : "false");
    }
    json += "}";
  }
  json += "\n]\n";
  return json;
}

}  // namespace tictac::sched
