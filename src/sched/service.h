// Cluster-scheduler service (DESIGN.md §7): the open-system front end
// over the multi-job shared-cluster simulator.
//
// The service runs a long-lived discrete-event loop at job-iteration
// granularity over K shared PS fabrics:
//
//   arrival process (sched/arrival.h)
//     -> admission (bounded FIFO queue, queueing-delay accounting)
//       -> placement (sched/placement.h: which fabric)
//         -> incremental re-lowering (ONLY the affected fabric is
//            re-lowered on an arrival or drain; schedules and
//            PropertyIndex dependency analyses are cached and reused,
//            so the PR-2 incremental machinery is built once per
//            distinct (model, cluster, contention level), never per
//            event)
//           -> SLO metrics over time (p50/p99 per-job slowdown vs the
//              cached isolated baseline, windowed Jain fairness,
//              utilization, queueing delay)
//
// Modeling choices (documented, deterministic):
//   * Re-scheduling happens at iteration boundaries: a job's in-flight
//     iteration finishes at the time computed when it started; the new
//     fabric mix applies from its next iteration — exactly how a PS
//     runtime reconfigures between steps, and what keeps replays
//     bit-identical.
//   * A job's iteration time under the current mix comes from one
//     combined-fabric simulation (runtime::LowerSharedCluster of the
//     resident jobs, seeded spec.seed + iteration index) sliced to the
//     job. A lone job on a fabric therefore reproduces the single-job
//     Session result bit for bit (the 1-job lowering degenerates
//     exactly; pinned in tests/service_test.cc).
//   * Same config + same seed => bit-identical ServiceReport (and
//     ToJson() string), on every platform.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule.h"
#include "fault/fault.h"
#include "runtime/multijob.h"
#include "runtime/runner.h"
#include "sched/arrival.h"
#include "sched/placement.h"
#include "util/table.h"

namespace tictac::sched {

// Everything a service run depends on. Deterministic in this + nothing.
struct ServiceConfig {
  ArrivalSpec arrivals;
  // Templates for synthetic arrival processes, cycled round-robin
  // (ignored when arrivals is a trace — the trace carries its specs).
  std::vector<runtime::ExperimentSpec> workload;
  // Number of independent shared PS fabrics (the K of placement).
  int fabrics = 1;
  // Admission horizon in cluster seconds: arrivals stop at `duration`,
  // resident and queued jobs then drain to completion.
  double duration = 10.0;
  // sched::MakePlacementPolicy name.
  std::string placement = "least-loaded";
  // Per-fabric co-location cap; arrivals beyond it queue.
  int max_jobs_per_fabric = 8;
  // Bounded admission queue; arrivals beyond it are rejected (counted).
  int admission_queue_capacity = 64;
  // Time windows for the Jain-fairness-over-time series.
  int fairness_windows = 8;
  // Seeds the arrival stream (per-job sim seeds come from each spec).
  std::uint64_t seed = 1;
  // Deterministic fault timeline against the shared fabrics (DESIGN.md
  // §8). Empty (the default) = the fault-free engine and service paths,
  // bit for bit — pinned in tests/fault_test.cc. Fault randomness
  // (recovery-backoff jitter) comes from util::Rng::Stream(seed, ...),
  // an independent split, so enabling faults never perturbs the seeded
  // arrival sequence or per-iteration sim seeds.
  fault::FaultSpec faults;
  // Crash recovery: how many times an evicted job is re-queued before it
  // is declared failed, and the base of its exponential re-placement
  // backoff (delay ~ retry_backoff_s * 2^(retry-1), jittered). Only
  // consulted when a fault evicts a job.
  int retry_budget = 3;
  double retry_backoff_s = 0.05;

  // Structural bounds (fabric/queue/window counts, duration, placement
  // name, arrival spec). Job specs are validated against the shared
  // fabric when the arrival stream is materialized. Throws
  // std::invalid_argument naming the offending field.
  void Validate() const;
};

// The service-side life of one submitted job.
struct JobRecord {
  int id = 0;
  int fabric = -1;  // -1 while queued / when rejected
  runtime::ExperimentSpec spec;
  double arrival_time = 0.0;
  double admit_time = 0.0;      // == arrival_time when placed immediately
  double completion_time = 0.0;
  bool rejected = false;
  // Contended per-iteration durations, in execution order; iteration i
  // ran over [admit + Σ<i, admit + Σ<=i).
  std::vector<double> iteration_times;
  double mean_iter_s = 0.0;
  double isolated_iter_s = 0.0;  // cached single-job baseline
  double slowdown = 1.0;         // mean_iter_s / isolated_iter_s
  // Crash recovery (0 / false on the fault-free path): how many times a
  // fault evicted this job and it was re-queued, and whether it exhausted
  // the retry budget (failed jobs never complete and are excluded from
  // the slowdown/queue-delay aggregates).
  int retries = 0;
  bool failed = false;

  double QueueDelay() const { return admit_time - arrival_time; }
};

// Visibility into what the event loop actually did — the counters the
// "no full-world recompute" tests pin (tests/service_test.cc).
struct ServiceCounters {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;    // admitted via the queue (delay > 0)
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  // Shared-fabric lowerings built — one per (arrival|drain) per affected
  // fabric, never K at once.
  std::uint64_t fabric_relowerings = 0;
  // Runner constructions = PropertyIndex dependency analyses built. Stays
  // bounded by the distinct (model, cluster, contention-level) set while
  // arrivals grow unbounded: the reuse the subsystem is built around.
  std::uint64_t property_index_builds = 0;
  std::uint64_t runner_cache_hits = 0;
  std::uint64_t schedules_computed = 0;
  std::uint64_t schedule_cache_hits = 0;
  std::uint64_t sim_runs = 0;
  // Fault-injection / recovery accounting (all 0 without faults).
  std::uint64_t faults_injected = 0;  // materialized fault events applied
  std::uint64_t worker_crashes = 0;
  std::uint64_t fabric_crashes = 0;
  std::uint64_t retries = 0;       // evictions re-queued with budget left
  std::uint64_t replacements = 0;  // successful post-crash re-placements
  std::uint64_t lost_iterations = 0;  // in-flight iterations evicted
  std::uint64_t failed_jobs = 0;      // retry budget exhausted / stranded
};

struct ServiceReport {
  ServiceConfig config;
  std::vector<JobRecord> jobs;  // by submission order (id)
  ServiceCounters counters;

  // Cluster clock when the last job drained (>= duration when any job
  // was still running at the admission horizon; 0 for an empty stream).
  double makespan = 0.0;

  // SLO aggregates over completed jobs (neutral defaults when none).
  double p50_slowdown = 1.0;
  double p99_slowdown = 1.0;
  double mean_slowdown = 1.0;
  double max_slowdown = 1.0;
  double mean_queue_delay_s = 0.0;
  double p50_queue_delay_s = 0.0;
  double p99_queue_delay_s = 0.0;
  // Busy fabric-time / (fabrics * makespan): the fraction of fabric
  // capacity that had >= 1 resident job.
  double utilization = 0.0;
  double mean_active_jobs = 0.0;
  // Jain fairness of per-job normalized progress, per time window over
  // [0, makespan] (config.fairness_windows entries; 1 where no job was
  // active), plus its mean.
  std::vector<double> window_fairness;
  double mean_fairness = 1.0;

  // Robustness SLOs (meaningful only when config.faults is non-empty;
  // neutral defaults otherwise, and omitted from ToTable/ToJson so
  // fault-free output stays byte-identical to the pre-fault service).
  // MTTR = re-placement time minus eviction time, per recovery.
  double mttr_mean_s = 0.0;
  double mttr_max_s = 0.0;
  // Simulated work thrown away by evictions (partial in-flight
  // iterations at the moment their fabric or worker slot died).
  double wasted_s = 0.0;
  // Iteration throughput: offered counts every arrived job's declared
  // iterations; goodput counts only iterations of jobs that completed.
  double offered_iters_per_s = 0.0;
  double goodput_iters_per_s = 0.0;

  // Two-column SLO summary (metric, value).
  util::Table ToTable() const;
  // Summary JSON object (config echo, job counts, SLO block, counters);
  // bit-identical across runs with the same config. Shape pinned in
  // tests/service_test.cc.
  std::string ToJson() const;
  // Per-job records as a JSON array — the `serve --trace out.json` body.
  std::string JobTraceJson() const;
};

// The long-running scheduler loop. Construction validates the config;
// Run() materializes the arrival stream, validates it against the
// shared-fabric rules (uniform env / ps= / jitter / ooo across all jobs;
// iterations and seed are per-job), and plays the open system to
// completion. Run() is deterministic and repeatable — internal caches
// only make it faster, never different.
class SchedulerService {
 public:
  explicit SchedulerService(ServiceConfig config);

  ServiceReport Run();

  const ServiceConfig& config() const { return config_; }

 private:
  struct CachedRunner {
    std::unique_ptr<runtime::Runner> runner;
  };
  struct CachedSchedule {
    core::Schedule schedule;
    bool covers_all_recvs = false;
  };

  // Runner for (spec, bandwidth scale), built once per distinct key.
  const runtime::Runner& GetRunner(const runtime::ExperimentSpec& spec,
                                   double bandwidth_scale,
                                   ServiceCounters& counters);
  const CachedSchedule& GetSchedule(const runtime::ExperimentSpec& spec,
                                    double bandwidth_scale,
                                    ServiceCounters& counters);
  double IsolatedIterationTime(const runtime::ExperimentSpec& spec,
                               ServiceCounters& counters);

  ServiceConfig config_;
  // model + cluster + contended-bandwidth scale -> analyzed Runner
  // (PropertyIndex built once; scale 1 doubles as the isolated baseline).
  std::unordered_map<std::string, CachedRunner> runners_;
  std::unordered_map<std::string, CachedSchedule> schedules_;
  std::unordered_map<std::string, double> isolated_;
};

}  // namespace tictac::sched
