// Placement policies for the cluster-scheduler service (DESIGN.md §7):
// which of the K shared PS fabrics an admitted job lands on.
//
// Placement is intentionally decoupled from per-job transfer scheduling
// (core::SchedulingPolicy): the former decides WHERE a job's pushes and
// pulls contend, the latter in WHAT ORDER they drain once there. The
// service sweeps both axes independently (bench/bench_service.cc).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/spec.h"

namespace tictac::sched {

// What a placement decision may look at: the current occupancy of one
// fabric. Loads are indexed by fabric id, one entry per fabric.
struct FabricLoad {
  int active_jobs = 0;
  int active_workers = 0;
  // Sum of the resident jobs' model parameter sizes — the PS-side bytes
  // the fabric's NICs and bookkeeping CPUs are serving.
  double active_param_mib = 0.0;
  // Crashed for good (fault injection): never eligible, any policy must
  // skip it.
  bool down = false;
  // Fault events (stragglers, slow links, flaps, worker crashes) active
  // on — or recently lifted from — this fabric, as counted by the
  // service's recency window. The failure-aware policy treats each as a
  // strong penalty; load-only policies ignore it.
  int recent_faults = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string_view name() const = 0;

  // Fabric index for `job`, or -1 to defer the job to the admission
  // queue. Only fabrics with active_jobs < max_jobs_per_fabric are
  // eligible; a policy must never return a full fabric. `decision_seq`
  // counts placement decisions so far (round-robin's rotation state —
  // policies themselves stay stateless and the service replayable).
  virtual int Place(const runtime::ExperimentSpec& job,
                    const std::vector<FabricLoad>& loads,
                    std::size_t decision_seq,
                    int max_jobs_per_fabric) const = 0;
};

// Factory by name, for --placement flags and bench sweeps:
//   least-loaded    fewest active workers wins (ties: lowest fabric id)
//   round-robin     rotate over fabrics, skipping full ones
//   best-fit-bytes  fullest-by-parameter-bytes eligible fabric wins
//                   (bin-packing best fit: pack jobs together so other
//                   fabrics stay empty for future large arrivals)
//   failure-aware   least-loaded, but each recent fault on a fabric
//                   weighs as heavily as a full co-resident job's worker
//                   set — a recently-flapping fabric is chosen only when
//                   every healthy one is full
// Every policy skips fabrics that are down (crashed). Throws
// std::invalid_argument listing the registered names for an unknown one.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(std::string_view name);

// The registered policy names, in the order listed above.
std::vector<std::string> PlacementPolicyNames();

}  // namespace tictac::sched
