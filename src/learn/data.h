// Synthetic classification dataset: a Gaussian mixture with one cluster
// per class. Deterministic in the seed; stands in for the paper's
// ImageNet input (the paper itself reports <3% difference between real
// and synthetic data for iteration timing).
#pragma once

#include <cstdint>
#include <vector>

#include "learn/matrix.h"

namespace tictac::learn {

struct Dataset {
  Matrix features;          // examples x inputs
  std::vector<int> labels;  // per example

  std::size_t size() const { return labels.size(); }

  // Copies rows [begin, begin+count) (wrapping around) into a batch.
  Dataset Batch(std::size_t begin, std::size_t count) const;

  // Copy with examples permuted by a seeded Fisher-Yates shuffle —
  // deterministic in `seed`, so a shuffled minibatch sequence replays
  // bit for bit (PsTrainer's data_seed, the exec backend's run seed).
  Dataset Shuffled(std::uint64_t seed) const;
};

Dataset MakeGaussianMixture(std::size_t examples, std::size_t inputs,
                            int classes, std::uint64_t seed);

}  // namespace tictac::learn
