// Two-hidden-layer MLP classifier with softmax cross-entropy loss.
//
// Parameters are exposed as an indexed list so the PS trainer can shard,
// transfer, and update them in an arbitrary order — the point under test.
#pragma once

#include <cstddef>
#include <vector>

#include "learn/matrix.h"

namespace tictac::learn {

struct MlpShape {
  std::size_t inputs = 8;
  std::size_t hidden1 = 32;
  std::size_t hidden2 = 16;
  std::size_t classes = 3;
};

// Gradients aligned with Mlp::params() indexing.
using Gradients = std::vector<Matrix>;

class Mlp {
 public:
  Mlp(const MlpShape& shape, std::uint64_t seed);

  // Parameter list: {W1, b1, W2, b2, W3, b3}.
  std::size_t num_params() const { return params_.size(); }
  const Matrix& param(std::size_t i) const { return params_[i]; }
  Matrix& mutable_param(std::size_t i) { return params_[i]; }

  // Mean cross-entropy loss of `x` (batch x inputs) against integer
  // labels; fills `grads` (same layout as params) when non-null.
  double Loss(const Matrix& x, const std::vector<int>& labels,
              Gradients* grads) const;

  // Fraction of correct argmax predictions.
  double Accuracy(const Matrix& x, const std::vector<int>& labels) const;

  Gradients ZeroGradients() const;

 private:
  MlpShape shape_;
  std::vector<Matrix> params_;

  Matrix Logits(const Matrix& x, Matrix* h1, Matrix* h2) const;
};

}  // namespace tictac::learn
