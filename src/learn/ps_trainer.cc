#include "learn/ps_trainer.h"

#include <cassert>
#include <numeric>

namespace tictac::learn {

PsTrainer::PsTrainer(const TrainConfig& config, const Dataset& dataset)
    : config_(config), dataset_(&dataset), model_({}, config.model_seed) {
  if (config_.data_seed != 0) {
    shuffled_ = dataset.Shuffled(config_.data_seed);
    dataset_ = &shuffled_;
  }
}

TrainLog PsTrainer::Train(int iterations,
                          const std::vector<int>& param_order) {
  std::vector<int> order = param_order;
  if (order.empty()) {
    order.resize(model_.num_params());
    std::iota(order.begin(), order.end(), 0);
  }
  assert(order.size() == model_.num_params());

  TrainLog log;
  log.loss.reserve(static_cast<std::size_t>(iterations));
  std::size_t cursor = 0;

  for (int iter = 0; iter < iterations; ++iter) {
    // Workers: replicate parameters (pull in `order` — a pure copy, so
    // order is timing-only), compute shard gradients.
    std::vector<Gradients> worker_grads;
    double iteration_loss = 0.0;
    for (int w = 0; w < config_.num_workers; ++w) {
      const Dataset batch = dataset_->Batch(cursor, config_.batch_per_worker);
      cursor = (cursor + config_.batch_per_worker) % dataset_->size();
      Gradients grads = model_.ZeroGradients();
      iteration_loss += model_.Loss(batch.features, batch.labels, &grads);
      worker_grads.push_back(std::move(grads));
    }
    iteration_loss /= config_.num_workers;
    log.loss.push_back(iteration_loss);

    // PS: aggregate and apply per parameter, visiting parameters in the
    // transfer-completion order under test.
    const double scale =
        -config_.learning_rate / static_cast<double>(config_.num_workers);
    for (int p : order) {
      const auto pi = static_cast<std::size_t>(p);
      for (const Gradients& grads : worker_grads) {
        model_.mutable_param(pi).Axpy(scale, grads[pi]);
      }
    }
  }

  const Dataset eval = dataset_->Batch(0, dataset_->size());
  log.final_accuracy = model_.Accuracy(eval.features, eval.labels);
  return log;
}

}  // namespace tictac::learn
