#include "learn/data.h"

namespace tictac::learn {

Dataset Dataset::Batch(std::size_t begin, std::size_t count) const {
  Dataset batch;
  batch.features = Matrix(count, features.cols());
  batch.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = (begin + i) % size();
    for (std::size_t j = 0; j < features.cols(); ++j) {
      batch.features.at(i, j) = features.at(src, j);
    }
    batch.labels[i] = labels[src];
  }
  return batch;
}

Dataset Dataset::Shuffled(std::uint64_t seed) const {
  std::vector<std::size_t> perm(size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  util::Rng rng = util::Rng::Stream(seed, /*stream=*/0x5f5u);
  rng.Shuffle(perm);

  Dataset out;
  out.features = Matrix(features.rows(), features.cols());
  out.labels.resize(size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t j = 0; j < features.cols(); ++j) {
      out.features.at(i, j) = features.at(perm[i], j);
    }
    out.labels[i] = labels[perm[i]];
  }
  return out;
}

Dataset MakeGaussianMixture(std::size_t examples, std::size_t inputs,
                            int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  // Class centers on a scaled simplex-ish layout.
  Matrix centers(static_cast<std::size_t>(classes), inputs);
  centers.RandomNormal(rng, 2.0);

  Dataset data;
  data.features = Matrix(examples, inputs);
  data.labels.resize(examples);
  for (std::size_t i = 0; i < examples; ++i) {
    const int label = static_cast<int>(rng.Index(static_cast<std::size_t>(classes)));
    data.labels[i] = label;
    for (std::size_t j = 0; j < inputs; ++j) {
      data.features.at(i, j) =
          centers.at(static_cast<std::size_t>(label), j) + rng.Normal(0.0, 1.0);
    }
  }
  return data;
}

}  // namespace tictac::learn
