#include "learn/matrix.h"

#include <cassert>

namespace tictac::learn {

void Matrix::RandomNormal(util::Rng& rng, double stddev) {
  for (double& x : data_) x = rng.Normal(0.0, stddev);
}

void Matrix::Zero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  assert(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        sum += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

void AddBiasRow(Matrix& m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m.at(i, j) += bias.at(0, j);
    }
  }
}

void ReluInPlace(Matrix& m) {
  for (double& x : m.data()) {
    if (x < 0.0) x = 0.0;
  }
}

void ReluBackward(const Matrix& activation, Matrix& grad) {
  assert(activation.SameShape(grad));
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    if (activation.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
}

}  // namespace tictac::learn
