// Dense row-major matrix with exactly the operations an MLP needs.
//
// The learn module exists to demonstrate the paper's Figure 8 claim:
// communication *scheduling* changes when parameters arrive, never what
// values they carry, so training loss is unchanged. The numerics here are
// real (float64 SGD), deliberately small, and fully deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace tictac::learn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  // Fills with N(0, stddev) entries.
  void RandomNormal(util::Rng& rng, double stddev);
  void Zero();

  // this += alpha * other. Shapes must match.
  void Axpy(double alpha, const Matrix& other);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// c = a * b. Shapes must be compatible.
Matrix MatMul(const Matrix& a, const Matrix& b);
// c = a * b^T and c = a^T * b, used by backprop.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);
// Adds row vector `bias` (1 x cols) to every row of `m` in place.
void AddBiasRow(Matrix& m, const Matrix& bias);
// ReLU forward in place; Backward masks grad where activation was <= 0.
void ReluInPlace(Matrix& m);
void ReluBackward(const Matrix& activation, Matrix& grad);

}  // namespace tictac::learn
