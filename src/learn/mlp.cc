#include "learn/mlp.h"

#include <cassert>
#include <cmath>

namespace tictac::learn {

Mlp::Mlp(const MlpShape& shape, std::uint64_t seed) : shape_(shape) {
  util::Rng rng(seed);
  auto init = [&](std::size_t rows, std::size_t cols, bool weight) {
    Matrix m(rows, cols);
    if (weight) {
      m.RandomNormal(rng, std::sqrt(2.0 / static_cast<double>(rows)));
    }
    return m;
  };
  params_.push_back(init(shape.inputs, shape.hidden1, true));   // W1
  params_.push_back(init(1, shape.hidden1, false));             // b1
  params_.push_back(init(shape.hidden1, shape.hidden2, true));  // W2
  params_.push_back(init(1, shape.hidden2, false));             // b2
  params_.push_back(init(shape.hidden2, shape.classes, true));  // W3
  params_.push_back(init(1, shape.classes, false));             // b3
}

Gradients Mlp::ZeroGradients() const {
  Gradients grads;
  grads.reserve(params_.size());
  for (const Matrix& p : params_) grads.emplace_back(p.rows(), p.cols());
  return grads;
}

Matrix Mlp::Logits(const Matrix& x, Matrix* h1, Matrix* h2) const {
  Matrix a1 = MatMul(x, params_[0]);
  AddBiasRow(a1, params_[1]);
  ReluInPlace(a1);
  Matrix a2 = MatMul(a1, params_[2]);
  AddBiasRow(a2, params_[3]);
  ReluInPlace(a2);
  Matrix logits = MatMul(a2, params_[4]);
  AddBiasRow(logits, params_[5]);
  if (h1 != nullptr) *h1 = std::move(a1);
  if (h2 != nullptr) *h2 = std::move(a2);
  return logits;
}

double Mlp::Loss(const Matrix& x, const std::vector<int>& labels,
                 Gradients* grads) const {
  assert(x.rows() == labels.size());
  const auto batch = x.rows();
  Matrix h1;
  Matrix h2;
  Matrix logits = Logits(x, &h1, &h2);

  // Softmax cross-entropy; dlogits = (softmax - onehot) / batch.
  double loss = 0.0;
  Matrix dlogits(batch, shape_.classes);
  for (std::size_t i = 0; i < batch; ++i) {
    double max_logit = logits.at(i, 0);
    for (std::size_t c = 1; c < shape_.classes; ++c) {
      max_logit = std::max(max_logit, logits.at(i, c));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < shape_.classes; ++c) {
      denom += std::exp(logits.at(i, c) - max_logit);
    }
    const auto label = static_cast<std::size_t>(labels[i]);
    loss -= (logits.at(i, label) - max_logit) - std::log(denom);
    for (std::size_t c = 0; c < shape_.classes; ++c) {
      const double softmax = std::exp(logits.at(i, c) - max_logit) / denom;
      dlogits.at(i, c) =
          (softmax - (c == label ? 1.0 : 0.0)) / static_cast<double>(batch);
    }
  }
  loss /= static_cast<double>(batch);
  if (grads == nullptr) return loss;

  assert(grads->size() == params_.size());
  // Layer 3.
  (*grads)[4] = MatMulTransposeA(h2, dlogits);
  for (std::size_t c = 0; c < shape_.classes; ++c) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch; ++i) sum += dlogits.at(i, c);
    (*grads)[5].at(0, c) = sum;
  }
  // Layer 2.
  Matrix dh2 = MatMulTransposeB(dlogits, params_[4]);
  ReluBackward(h2, dh2);
  (*grads)[2] = MatMulTransposeA(h1, dh2);
  for (std::size_t c = 0; c < shape_.hidden2; ++c) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch; ++i) sum += dh2.at(i, c);
    (*grads)[3].at(0, c) = sum;
  }
  // Layer 1.
  Matrix dh1 = MatMulTransposeB(dh2, params_[2]);
  ReluBackward(h1, dh1);
  (*grads)[0] = MatMulTransposeA(x, dh1);
  for (std::size_t c = 0; c < shape_.hidden1; ++c) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch; ++i) sum += dh1.at(i, c);
    (*grads)[1].at(0, c) = sum;
  }
  return loss;
}

double Mlp::Accuracy(const Matrix& x, const std::vector<int>& labels) const {
  Matrix logits = Logits(x, nullptr, nullptr);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < shape_.classes; ++c) {
      if (logits.at(i, c) > logits.at(i, best)) best = c;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

}  // namespace tictac::learn
