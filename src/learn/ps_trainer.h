// Parameter-server training loop with a configurable parameter-transfer
// order.
//
// Each iteration mirrors the paper's Model-Replica flow: every worker
// pulls the parameters (in the order given by the schedule), computes
// gradients on its shard of the batch, pushes them; the PS averages and
// applies SGD. The transfer order is threaded through every aggregation
// loop, so if scheduling had any numerical effect it would show up — the
// Figure 8 experiment (and a property test) verify it does not: losses
// are bit-identical across orders.
#pragma once

#include <cstdint>
#include <vector>

#include "learn/data.h"
#include "learn/mlp.h"

namespace tictac::learn {

struct TrainConfig {
  int num_workers = 4;
  std::size_t batch_per_worker = 16;
  double learning_rate = 0.05;
  std::uint64_t model_seed = 7;
  // 0 = legacy sequential minibatch order; nonzero = train on
  // Dataset::Shuffled(data_seed), so weight init (model_seed) and
  // minibatch order both replay deterministically from explicit seeds —
  // the exec backend's validation runs pin both to its run seed.
  std::uint64_t data_seed = 0;
};

struct TrainLog {
  std::vector<double> loss;  // per iteration, averaged over workers
  double final_accuracy = 0.0;
};

class PsTrainer {
 public:
  PsTrainer(const TrainConfig& config, const Dataset& dataset);

  // `param_order` is the order in which parameter transfers complete —
  // a permutation of [0, num_params). Empty = natural order.
  TrainLog Train(int iterations, const std::vector<int>& param_order);

  const Mlp& model() const { return model_; }

 private:
  TrainConfig config_;
  const Dataset* dataset_;
  Dataset shuffled_;  // backs dataset_ when config.data_seed != 0
  Mlp model_;
};

}  // namespace tictac::learn
