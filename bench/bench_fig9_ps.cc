// Figure 9: throughput speedup over baseline while scaling the number of
// parameter servers {1, 2, 4} with 8 workers on envG, inference and
// training. Declared as ExperimentSpecs (the per-PS seed keeps this a
// spec list rather than a cartesian SweepSpec) and executed by one
// parallel Session::RunAll per task.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 9: speedup (%) vs baseline, scaling parameter "
               "servers (envG, 8 workers, TIC)\n\n";
  const int ps_counts[] = {1, 2, 4};

  harness::Session session;
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");

    std::vector<runtime::ExperimentSpec> specs;
    for (const auto& name : harness::FigureModels()) {
      for (const int ps : ps_counts) {
        runtime::ExperimentSpec spec;
        spec.model = name;
        spec.cluster.workers = 8;
        spec.cluster.ps = ps;
        spec.cluster.training = training;
        spec.seed = 77 + static_cast<std::uint64_t>(ps);
        for (const char* policy : {"baseline", "tic"}) {
          spec.policy = policy;
          specs.push_back(spec);
        }
      }
    }
    const harness::ResultTable results =
        session.RunAll(specs, harness::Session::DefaultParallelism());

    util::Table table({"Model", "PS=1", "PS=2", "PS=4"});
    std::vector<std::string> cells;
    for (const auto& row : results.rows()) {
      if (row.spec.policy == "baseline") continue;
      if (cells.empty()) cells.push_back(row.spec.model);
      cells.push_back(util::FmtPct(results.SpeedupVsBaseline(row)));
      if (cells.size() == 1 + std::size(ps_counts)) {
        table.AddRow(std::move(cells));
        cells.clear();
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: ordering keeps helping with multiple PS;\n"
               "inference gains exceed training gains; larger networks\n"
               "gain more.\n";
  return 0;
}
