// Figure 9: throughput speedup over baseline while scaling the number of
// parameter servers {1, 2, 4} with 8 workers on envG, inference and
// training.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 9: speedup (%) vs baseline, scaling parameter "
               "servers (envG, 8 workers, TIC)\n\n";
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");
    util::Table table({"Model", "PS=1", "PS=2", "PS=4"});
    for (const auto& name : harness::FigureModels()) {
      const auto& info = models::FindModel(name);
      std::vector<std::string> row{name};
      for (const int ps : {1, 2, 4}) {
        const auto config = runtime::EnvG(8, ps, training);
        const auto speedup =
            harness::MeasureSpeedup(info, config, "tic", /*seed=*/77 + ps);
        row.push_back(util::FmtPct(speedup.speedup()));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: ordering keeps helping with multiple PS;\n"
               "inference gains exceed training gains; larger networks\n"
               "gain more.\n";
  return 0;
}
