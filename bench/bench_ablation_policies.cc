// Ablation A3: how much of TicTac's win is *consistency* (any enforced
// order kills schedule-induced stragglers, §6.3) and how much is *order
// quality* (critical-path-aware overlap)? Compares TIC/TAC against a
// fixed random order, byte-size orders, and the reverse of TIC (a
// near-worst feasible order).
#include <iostream>

#include "core/policies.h"
#include "core/tic.h"
#include "harness/experiments.h"
#include "runtime/lowering.h"
#include "runtime/sharding.h"
#include "util/table.h"

using namespace tictac;

namespace {

// Throughput of an explicit schedule under the standard runner semantics.
double ThroughputOf(const models::ModelInfo& info,
                    const runtime::ClusterConfig& config,
                    const core::Schedule& schedule, std::uint64_t seed) {
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = config.training,
                                      .batch_factor = config.batch_factor});
  const auto ps_of =
      runtime::ShardParams(models::ParamSizes(info), config.num_ps);
  const auto lowering =
      runtime::LowerCluster(graph, schedule, ps_of, config);
  sim::TaskGraphSim sim = lowering.BuildSim();
  sim::SimOptions options = config.sim;
  options.enforce_gates = schedule.CoversAllRecvs(graph);
  double total = 0.0;
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    total += sim.Run(options, seed + static_cast<std::uint64_t>(i)).makespan;
  }
  const double mean = total / kIters;
  return info.standard_batch * config.num_workers / mean;
}

}  // namespace

int main() {
  std::cout << "Ablation: ordering policy vs throughput speedup "
               "(envG, 4 workers, 1 PS, inference)\n\n";
  util::Table table({"Model", "fixed random", "smallest-first",
                     "largest-first", "reverse TIC", "TIC", "TAC"});
  for (const char* name : {"Inception v2", "ResNet-50 v2", "VGG-16"}) {
    const auto& info = models::FindModel(name);
    const auto config = runtime::EnvG(4, 1, /*training=*/false);
    const core::Graph graph = models::BuildWorkerGraph(info, {});

    runtime::Runner runner(info, config);
    const double base =
        runner.Run(runtime::Method::kBaseline, 10, 3).Throughput();

    auto pct = [&](const core::Schedule& s) {
      return util::FmtPct(ThroughputOf(info, config, s, 3) / base - 1.0);
    };
    const core::Schedule tic = core::Tic(graph);
    table.AddRow({name,
                  pct(core::FixedRandomOrder(graph, 99)),
                  pct(core::SmallestFirst(graph)),
                  pct(core::LargestFirst(graph)),
                  pct(core::ReverseOrder(graph, tic)),
                  pct(tic),
                  util::FmtPct(runner.Run(runtime::Method::kTac, 10, 3)
                                   .Throughput() / base - 1.0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: any *fixed* order already beats the "
               "re-randomized baseline on\nconsistency, but DAG-aware "
               "orders (TIC/TAC) add the overlap win; reverse-TIC\nshows "
               "how much a bad feasible order costs.\n";
  return 0;
}
