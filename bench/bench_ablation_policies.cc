// Ablation A3 (DESIGN.md): how much of TicTac's win is *consistency* (any
// enforced order kills schedule-induced stragglers, §6.3) and how much is
// *order quality* (critical-path-aware overlap)? Compares every policy in
// the registry against the re-randomized baseline: a fixed random order
// isolates consistency, byte-size orders are the obvious straw men, and
// reverse:tic approximates the worst feasible order.
//
// The column set is whatever the PolicyRegistry holds — registering a new
// policy adds it to this ablation with no further edits.
#include <iostream>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "harness/experiments.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "Ablation: ordering policy vs throughput speedup "
               "(envG, 4 workers, 1 PS, inference)\n\n";

  std::vector<std::string> policies;
  for (const auto& name : core::PolicyRegistry::Global().List()) {
    if (name != "baseline") policies.push_back(name);
  }

  std::vector<std::string> header{"Model"};
  header.insert(header.end(), policies.begin(), policies.end());
  util::Table table(header);

  for (const char* name : {"Inception v2", "ResNet-50 v2", "VGG-16"}) {
    const auto& info = models::FindModel(name);
    const auto config = runtime::EnvG(4, 1, /*training=*/false);
    runtime::Runner runner(info, config);
    const double base = runner.Run("baseline", 10, 3).Throughput();

    std::vector<std::string> row{name};
    for (const auto& policy : policies) {
      const double throughput = runner.Run(policy, 10, 3).Throughput();
      row.push_back(util::FmtPct(throughput / base - 1.0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: any *fixed* order already beats the "
               "re-randomized baseline on\nconsistency, but DAG-aware "
               "orders (TIC/TAC) add the overlap win; reverse (of\nTIC) "
               "shows how much a bad feasible order costs.\n";
  return 0;
}
