// Ablation A3 (DESIGN.md): how much of TicTac's win is *consistency* (any
// enforced order kills schedule-induced stragglers, §6.3) and how much is
// *order quality* (critical-path-aware overlap)? Compares every policy in
// the registry against the re-randomized baseline: a fixed random order
// isolates consistency, byte-size orders are the obvious straw men, and
// reverse:tic approximates the worst feasible order.
//
// The policy axis of the SweepSpec is whatever the PolicyRegistry holds —
// registering a new policy adds it to this ablation with no further
// edits. The Session caches one Runner per model, so every policy reuses
// the same dependency analysis.
#include <iostream>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "harness/session.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "Ablation: ordering policy vs throughput speedup "
               "(envG, 4 workers, 1 PS, inference)\n\n";

  runtime::SweepSpec sweep;
  sweep.models = {"Inception v2", "ResNet-50 v2", "VGG-16"};
  sweep.workers = {4};
  sweep.ps = {1};
  sweep.policies = core::PolicyRegistry::Global().List();  // baseline first
  sweep.seed = 3;

  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());

  std::vector<std::string> header{"Model"};
  for (const auto& policy : sweep.policies) {
    if (policy != "baseline") header.push_back(policy);
  }
  util::Table table(header);

  // Expansion order: model → policy (policy varies fastest).
  for (std::size_t i = 0; i < results.size(); i += sweep.policies.size()) {
    std::vector<std::string> row{results.row(i).spec.model};
    for (std::size_t p = 0; p < sweep.policies.size(); ++p) {
      const harness::ResultRow& result = results.row(i + p);
      if (result.spec.policy == "baseline") continue;
      row.push_back(util::FmtPct(results.SpeedupVsBaseline(result)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: any *fixed* order already beats the "
               "re-randomized baseline on\nconsistency, but DAG-aware "
               "orders (TIC/TAC) add the overlap win; reverse (of\nTIC) "
               "shows how much a bad feasible order costs.\n";
  return 0;
}
