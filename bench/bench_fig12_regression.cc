// Figure 12 (envC, Inception v2, 1000 runs each with and without TAC):
//   (a) regression of scheduling efficiency E against normalized step
//       time — the paper reports R^2 = 0.98;
//   (b) CDF of normalized step time — baseline spreads wide, TAC is
//       sharp; the paper quotes 95th-percentile normalized step times of
//       0.634 (baseline) vs 0.998 (TAC).
//
// Normalized step time follows the paper's convention: the fastest
// observed step divided by this step (1 = fastest possible). Needs
// per-iteration detail, so it uses Session::Run (the ResultTable rows
// only carry summary statistics); the two runs share one cached Runner.
#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  constexpr int kRuns = 1000;
  std::cout << "Figure 12: Inception v2 on envC, " << kRuns
            << " runs per method\n\n";

  harness::Session session;
  runtime::ExperimentSpec spec;
  spec.model = "Inception v2";
  spec.cluster.env = "envC";
  spec.cluster.workers = 2;
  spec.cluster.ps = 1;
  spec.cluster.training = true;
  spec.iterations = kRuns;
  spec.seed = 31337;

  std::vector<double> step_base;
  std::vector<double> step_tac;
  std::vector<double> eff_all;
  std::vector<double> step_all;
  for (const std::string policy : {"baseline", "tac"}) {
    spec.policy = policy;
    const auto result = session.Run(spec);
    for (const auto& it : result.iterations) {
      (policy == "baseline" ? step_base : step_tac).push_back(it.makespan);
      eff_all.push_back(it.mean_efficiency);
      step_all.push_back(it.makespan);
    }
  }

  // (a) regression of E against normalized step time.
  const double fastest = util::Min(step_all);
  std::vector<double> normalized_all;
  normalized_all.reserve(step_all.size());
  for (double t : step_all) normalized_all.push_back(fastest / t);
  const auto fit = util::FitLine(eff_all, normalized_all);
  std::cout << "(a) normalized step time = " << util::Fmt(fit.intercept, 4)
            << " + " << util::Fmt(fit.slope, 4)
            << " * E,  R^2 = " << util::Fmt(fit.r2, 3)
            << "  (paper: R^2 = 0.98)\n\n";

  // (b) CDF of normalized step time per method.
  auto normalize = [&](std::vector<double> steps) {
    for (double& t : steps) t = fastest / t;
    return steps;
  };
  const auto norm_base = normalize(step_base);
  const auto norm_tac = normalize(step_tac);

  std::cout << "(b) CDF of normalized step time\n";
  util::Table table({"Percentile", "No Ordering", "TAC"});
  for (const double p : {0.05, 0.25, 0.50, 0.75, 0.95}) {
    table.AddRow({util::Fmt(p * 100, 0) + "th",
                  util::Fmt(util::Percentile(norm_base, p), 4),
                  util::Fmt(util::Percentile(norm_tac, p), 4)});
  }
  table.Print(std::cout);

  const double p95_base = util::Percentile(norm_base, 0.05);
  const double p95_tac = util::Percentile(norm_tac, 0.05);
  std::cout << "\n95th percentile step time (normalized, higher = tighter): "
            << "baseline " << util::Fmt(p95_base, 4) << " vs TAC "
            << util::Fmt(p95_tac, 4)
            << "  (paper: 0.634 vs 0.998)\n";
  std::cout << "step-time coefficient of variation: baseline "
            << util::Fmt(util::Stddev(step_base) / util::Mean(step_base), 4)
            << " vs TAC "
            << util::Fmt(util::Stddev(step_tac) / util::Mean(step_tac), 4)
            << "\n";
  return 0;
}
