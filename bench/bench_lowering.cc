// Lowering-path cost (DESIGN.md §10): the pass-based pipeline over the
// arena-interned ir::Module against the frozen pre-IR implementation
// (runtime/reference_lowering.h), plus the PropertyIndex build the
// scheduling passes pay. The arena counters — interned pred-list pool
// size vs the naive per-node layout, dedup hit rate — ride along into
// BENCH_sched.json via bench/run_benches.sh, so layout regressions (an
// accidental de-interning, a pass that stops sharing lists) show up in
// the archived perf trajectory next to their runtime cost.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/properties.h"
#include "ir/lower.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/reference_lowering.h"
#include "runtime/runner.h"

namespace {

using tictac::runtime::EnvG;
using tictac::runtime::Runner;

// One representative contended cluster: ResNet-101 training on 4 workers
// x 2 PS with a TIC schedule — the bench_multijob workload's single-job
// half, so numbers line up across suites.
struct Workload {
  Workload()
      : runner(tictac::models::FindModel("ResNet-101 v1"), EnvG(4, 2, true)),
        schedule(runner.MakeSchedule("tic")) {}
  Runner runner;
  tictac::core::Schedule schedule;
};

Workload& SharedWorkload() {
  static Workload workload;
  return workload;
}

void BM_LowerClusterReference(benchmark::State& state) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::runtime::reference::LowerCluster(
        w.runner.worker_graph(), w.schedule, w.runner.ps_of_param(),
        w.runner.config()));
  }
  state.SetLabel("frozen pre-IR layout");
}
BENCHMARK(BM_LowerClusterReference)->Unit(benchmark::kMillisecond);

void BM_LowerClusterPipeline(benchmark::State& state) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::runtime::LowerCluster(
        w.runner.worker_graph(), w.schedule, w.runner.ps_of_param(),
        w.runner.config()));
  }
  // The interning footprint of the same lowering, as counters: how many
  // pred-list entries the arena stores vs what a per-node layout would,
  // and how often Intern() was answered from existing storage.
  std::vector<tictac::runtime::JobLoweringInput> jobs;
  jobs.push_back({w.runner.worker_graph(), w.schedule,
                  w.runner.ps_of_param(), w.runner.config()});
  const tictac::ir::Module module =
      tictac::ir::StandardLoweringPipeline(
          tictac::runtime::Topology::kPsFabric)
          .Run(tictac::ir::BuildLogicalModule(jobs));
  std::size_t naive_entries = 0;
  for (tictac::ir::NodeId n = 0;
       n < static_cast<tictac::ir::NodeId>(module.size()); ++n) {
    naive_entries += module.preds(n).size();
  }
  state.counters["nodes"] = static_cast<double>(module.size());
  state.counters["arena_pool_entries"] =
      static_cast<double>(module.arena().pool_entries());
  state.counters["naive_pred_entries"] = static_cast<double>(naive_entries);
  state.counters["arena_dedup_hits"] =
      static_cast<double>(module.arena().dedup_hits());
  state.SetLabel("ir::PassPipeline over the interned arena");
}
BENCHMARK(BM_LowerClusterPipeline)->Unit(benchmark::kMillisecond);

// The dependency-analysis cost the compute_schedules pass (and every
// Runner construction) pays before any lowering: dominating-set and
// dependency bitsets over the worker partition.
void BM_PropertyIndexBuild(benchmark::State& state) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tictac::core::PropertyIndex(w.runner.worker_graph()));
  }
  state.counters["ops"] =
      static_cast<double>(w.runner.worker_graph().size());
}
BENCHMARK(BM_PropertyIndexBuild)->Unit(benchmark::kMillisecond);

// The multi-job composition, both layouts: three jobs merged onto one
// shared fabric — the pass order expand_replicas, lower_ps_fabric,
// merge_jobs, apply_arrival_offsets against the frozen per-job +
// hand-merge implementation.
void BM_SharedClusterReference(benchmark::State& state) {
  Workload& w = SharedWorkload();
  std::vector<tictac::runtime::JobLoweringInput> jobs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back({w.runner.worker_graph(), w.schedule,
                    w.runner.ps_of_param(), w.runner.config(),
                    j == 2 ? 0.05 : 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tictac::runtime::reference::LowerSharedCluster(jobs));
  }
}
BENCHMARK(BM_SharedClusterReference)->Unit(benchmark::kMillisecond);

void BM_SharedClusterPipeline(benchmark::State& state) {
  Workload& w = SharedWorkload();
  std::vector<tictac::runtime::JobLoweringInput> jobs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back({w.runner.worker_graph(), w.schedule,
                    w.runner.ps_of_param(), w.runner.config(),
                    j == 2 ? 0.05 : 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::runtime::LowerSharedCluster(jobs));
  }
}
BENCHMARK(BM_SharedClusterPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
