// Ablation A2 (DESIGN.md): TAC's sensitivity to time-oracle error. TAC is
// fed progressively noisier per-op time estimates (multiplicative
// lognormal error); TIC — which uses no timing at all — is the floor.
// The paper's claim that "DAG-level information is sufficient for current
// models" predicts a flat curve. The sigma axis is an ExperimentSpec list
// (baseline once per model — it never reads the oracle) run by one
// parallel Session::RunAll.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Ablation: TAC speedup (%) vs time-oracle noise "
               "(envG, 8 workers, 2 PS, inference)\n\n";
  const double sigmas[] = {0.0, 0.1, 0.3, 1.0};
  const char* model_names[] = {"Inception v3", "ResNet-101 v1", "VGG-19"};

  harness::Session session;
  std::vector<runtime::ExperimentSpec> specs;
  for (const char* name : model_names) {
    runtime::ExperimentSpec spec;
    spec.model = name;
    spec.cluster.workers = 8;
    spec.cluster.ps = 2;
    spec.seed = 11;
    spec.policy = "baseline";
    specs.push_back(spec);
    spec.policy = "tac";
    for (const double sigma : sigmas) {
      spec.cluster.tac_oracle_sigma = sigma;
      specs.push_back(spec);
    }
    spec.policy = "tic";
    spec.cluster.tac_oracle_sigma = 0.0;
    specs.push_back(spec);
  }
  const harness::ResultTable results =
      session.RunAll(specs, harness::Session::DefaultParallelism());

  util::Table table({"Model", "TAC exact", "TAC sigma=0.1", "TAC sigma=0.3",
                     "TAC sigma=1.0", "TIC (no timing)"});
  std::size_t i = 0;
  for (const char* name : model_names) {
    const double base = results.row(i++).throughput;
    std::vector<std::string> row{name};
    for (std::size_t s = 0; s <= std::size(sigmas); ++s) {  // 4× TAC + TIC
      row.push_back(util::FmtPct(results.row(i++).throughput / base - 1.0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: TAC degrades gracefully with oracle "
               "noise and never falls\nmeaningfully below TIC.\n";
  return 0;
}
