// Ablation A2 (DESIGN.md): TAC's sensitivity to time-oracle error. TAC is
// fed progressively noisier per-op time estimates (multiplicative
// lognormal error); TIC — which uses no timing at all — is the floor.
// The paper's claim that "DAG-level information is sufficient for current
// models" predicts a flat curve.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Ablation: TAC speedup (%) vs time-oracle noise "
               "(envG, 8 workers, 2 PS, inference)\n\n";
  util::Table table({"Model", "TAC exact", "TAC sigma=0.1", "TAC sigma=0.3",
                     "TAC sigma=1.0", "TIC (no timing)"});
  for (const char* name : {"Inception v3", "ResNet-101 v1", "VGG-19"}) {
    const auto& info = models::FindModel(name);
    std::vector<std::string> row{name};
    for (const double sigma : {0.0, 0.1, 0.3, 1.0}) {
      auto config = runtime::EnvG(8, 2, /*training=*/false);
      config.tac_oracle_sigma = sigma;
      const auto speedup = harness::MeasureSpeedup(info, config, "tac", 11);
      row.push_back(util::FmtPct(speedup.speedup()));
    }
    const auto tic =
        harness::MeasureSpeedup(info, runtime::EnvG(8, 2, false), "tic", 11);
    row.push_back(util::FmtPct(tic.speedup()));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: TAC degrades gracefully with oracle "
               "noise and never falls\nmeaningfully below TIC.\n";
  return 0;
}
