// Figure 10: throughput speedup over baseline while scaling the
// computational load — the prescribed batch size multiplied by
// {0.5, 1, 2} — on envG with 4 workers, inference. Declared as
// ExperimentSpecs (the per-factor seed keeps this a spec list) and
// executed by one parallel Session::RunAll.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 10: speedup (%) vs baseline, scaling batch size "
               "(envG, 4 workers, 1 PS, inference, TIC)\n\n";
  const double factors[] = {0.5, 1.0, 2.0};

  harness::Session session;
  std::vector<runtime::ExperimentSpec> specs;
  for (const auto& name : harness::FigureModels()) {
    for (const double factor : factors) {
      runtime::ExperimentSpec spec;
      spec.model = name;
      spec.cluster.workers = 4;
      spec.cluster.ps = 1;
      spec.cluster.batch_factor = factor;
      spec.seed = static_cast<std::uint64_t>(factor * 100);
      for (const char* policy : {"baseline", "tic"}) {
        spec.policy = policy;
        specs.push_back(spec);
      }
    }
  }
  const harness::ResultTable results =
      session.RunAll(specs, harness::Session::DefaultParallelism());

  util::Table table({"Model", "x1/2", "x1", "x2"});
  std::vector<std::string> cells;
  for (const auto& row : results.rows()) {
    if (row.spec.policy == "baseline") continue;
    if (cells.empty()) cells.push_back(row.spec.model);
    cells.push_back(util::FmtPct(results.SpeedupVsBaseline(row)));
    if (cells.size() == 1 + std::size(factors)) {
      table.AddRow(std::move(cells));
      cells.clear();
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: the batch factor moves the computation/"
               "communication ratio,\nand with it the overlap headroom "
               "scheduling can exploit.\n";
  return 0;
}
