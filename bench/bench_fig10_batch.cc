// Figure 10: throughput speedup over baseline while scaling the
// computational load — the prescribed batch size multiplied by
// {0.5, 1, 2} — on envG with 4 workers, inference.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 10: speedup (%) vs baseline, scaling batch size "
               "(envG, 4 workers, 1 PS, inference, TIC)\n\n";
  util::Table table({"Model", "x1/2", "x1", "x2"});
  for (const auto& name : harness::FigureModels()) {
    const auto& info = models::FindModel(name);
    std::vector<std::string> row{name};
    for (const double factor : {0.5, 1.0, 2.0}) {
      auto config = runtime::EnvG(4, 1, /*training=*/false);
      config.batch_factor = factor;
      const auto speedup = harness::MeasureSpeedup(
          info, config, "tic",
          /*seed=*/static_cast<std::uint64_t>(factor * 100));
      row.push_back(util::FmtPct(speedup.speedup()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: the batch factor moves the computation/"
               "communication ratio,\nand with it the overlap headroom "
               "scheduling can exploit.\n";
  return 0;
}
