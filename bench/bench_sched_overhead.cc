// Scheduling-computation overhead (§6 reports ~10 s offline per model for
// the Python implementation; the heuristics are computed once before
// training, so this is not on the iteration critical path). Measures TIC
// and TAC end-to-end: dependency analysis + priority assignment.
#include <benchmark/benchmark.h>

#include "core/policy_registry.h"
#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace {

using tictac::core::AnalyticalTimeOracle;
using tictac::core::PlatformModel;

void BM_Tic(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tic(graph));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_Tac(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tac(graph, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_DependencyAnalysis(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::PropertyIndex(graph));
  }
}

// Every registered policy through the polymorphic interface, including
// lookup + construction — bounds the cost of registry-driven dispatch
// over calling the free functions directly.
void BM_RegistryPolicy(benchmark::State& state, const char* spec) {
  const auto& info = tictac::models::FindModel("Inception v3");
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    const auto policy = tictac::core::PolicyRegistry::Global().Create(spec);
    benchmark::DoNotOptimize(policy->Compute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

BENCHMARK_CAPTURE(BM_Tic, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tic, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tic, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_Tac, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tac, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tac, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_DependencyAnalysis, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_RegistryPolicy, tic, "tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, tac, "tac");
BENCHMARK_CAPTURE(BM_RegistryPolicy, reverse_tic, "reverse:tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, random, "random:99");

}  // namespace

BENCHMARK_MAIN();
