// Scheduling-computation overhead (§6 reports ~10 s offline per model for
// the Python implementation; the heuristics are computed once before
// training, so this is not on the iteration critical path). Measures TIC
// and TAC end-to-end: dependency analysis + priority assignment.
//
// The synthetic BM_TacSynthetic cases (1k/5k/10k recvs, far beyond any
// zoo model) make the old-O(R²·V)-vs-incremental gap visible at the
// production graph scales the ROADMAP targets; BM_TacFullRecompute pins
// the reference implementation's cost for the before/after comparison
// (only at sizes where it finishes in reasonable time).
// BM_SessionSweep pins the wall-clock of a representative experiment
// grid through harness::Session's sweep executor, serial (Arg = 1) vs
// one thread per core — the headline win of the declarative API is that
// Figure-7-style sweeps saturate the machine.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/policy_registry.h"
#include "core/tac.h"
#include "core/tic.h"
#include "harness/session.h"
#include "models/builder.h"
#include "models/random_dag.h"
#include "models/zoo.h"

namespace {

using tictac::core::AnalyticalTimeOracle;
using tictac::core::PlatformModel;

tictac::core::Graph SyntheticDag(int num_recvs) {
  tictac::models::RandomDagOptions options;
  options.num_recvs = num_recvs;
  options.num_computes = 2 * num_recvs;
  options.num_layers = 8;
  options.edge_probability = 0.05;
  return tictac::models::MakeRandomDag(options, /*seed=*/7);
}

void BM_Tic(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tic(graph));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_Tac(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tac(graph, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_DependencyAnalysis(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::PropertyIndex(graph));
  }
}

// Every registered policy through the polymorphic interface, including
// lookup + construction — bounds the cost of registry-driven dispatch
// over calling the free functions directly.
void BM_RegistryPolicy(benchmark::State& state, const char* spec) {
  const auto& info = tictac::models::FindModel("Inception v3");
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    const auto policy = tictac::core::PolicyRegistry::Global().Create(spec);
    benchmark::DoNotOptimize(policy->Compute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacSynthetic(benchmark::State& state) {
  const auto graph = SyntheticDag(static_cast<int>(state.range(0)));
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tac(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacFullRecompute(benchmark::State& state) {
  const auto graph = SyntheticDag(static_cast<int>(state.range(0)));
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::TacFullRecompute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacFullRecomputeModel(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::TacFullRecompute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

BENCHMARK_CAPTURE(BM_Tic, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tic, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tic, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_Tac, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tac, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tac, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_DependencyAnalysis, resnet101_v2, "ResNet-101 v2");
BENCHMARK(BM_TacSynthetic)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
// The reference is quadratic in recvs — 1k is already seconds; larger
// sizes are left to the incremental path only.
BENCHMARK(BM_TacFullRecompute)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TacFullRecomputeModel, resnet101_v2, "ResNet-101 v2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RegistryPolicy, tic, "tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, tac, "tac");
BENCHMARK_CAPTURE(BM_RegistryPolicy, reverse_tic, "reverse:tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, random, "random:99");

// End-to-end sweep wall-clock through the Session executor. A fresh
// Session per iteration makes every grid pay its dependency-analysis
// cost, as a cold CLI `tictac_cli sweep` invocation would; real time (not
// summed CPU time) is what the parallelism buys down.
void BM_SessionSweep(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const auto sweep = tictac::runtime::SweepSpec::Parse(
      "envG:workers=2,4:ps=1:task=inference,training "
      "models=AlexNet v2,Inception v2,ResNet-50 v2 "
      "policies=baseline,tic iterations=4 seed=3");
  for (auto _ : state) {
    tictac::harness::Session session;
    benchmark::DoNotOptimize(session.RunAll(sweep, parallelism));
  }
  state.SetLabel(std::to_string(sweep.size()) + " runs, parallelism " +
                 std::to_string(parallelism));
}

// Serial (Arg = 1) vs one thread per core; the floor of 2 keeps the
// parallel arm a distinct data point (executor overhead) on single-core
// machines.
void SweepArgs(benchmark::internal::Benchmark* bench) {
  const int parallel =
      std::max(2, tictac::harness::Session::DefaultParallelism());
  bench->Arg(1)->Arg(parallel)->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_SessionSweep)->Apply(SweepArgs);

}  // namespace

BENCHMARK_MAIN();
