// Scheduling-computation overhead (§6 reports ~10 s offline per model for
// the Python implementation; the heuristics are computed once before
// training, so this is not on the iteration critical path). Measures TIC
// and TAC end-to-end: dependency analysis + priority assignment.
//
// The synthetic BM_TacSynthetic cases (1k/5k/10k recvs, far beyond any
// zoo model) make the old-O(R²·V)-vs-incremental gap visible at the
// production graph scales the ROADMAP targets; BM_TacFullRecompute pins
// the reference implementation's cost for the before/after comparison
// (only at sizes where it finishes in reasonable time).
// BM_SessionSweep pins the wall-clock of a representative experiment
// grid through harness::Session's sweep executor, serial (Arg = 1) vs
// one thread per core — the headline win of the declarative API is that
// Figure-7-style sweeps saturate the machine.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/policy_registry.h"
#include "core/properties.h"
#include "core/tac.h"
#include "core/tic.h"
#include "harness/session.h"
#include "models/builder.h"
#include "models/random_dag.h"
#include "models/zoo.h"

namespace {

using tictac::core::AnalyticalTimeOracle;
using tictac::core::PlatformModel;

tictac::core::Graph SyntheticDag(int num_recvs) {
  tictac::models::RandomDagOptions options;
  options.num_recvs = num_recvs;
  options.num_computes = 2 * num_recvs;
  options.num_layers = 8;
  options.edge_probability = 0.05;
  return tictac::models::MakeRandomDag(options, /*seed=*/7);
}

void BM_Tic(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tic(graph));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_Tac(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tac(graph, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_DependencyAnalysis(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::PropertyIndex(graph));
  }
}

// Every registered policy through the polymorphic interface, including
// lookup + construction — bounds the cost of registry-driven dispatch
// over calling the free functions directly.
void BM_RegistryPolicy(benchmark::State& state, const char* spec) {
  const auto& info = tictac::models::FindModel("Inception v3");
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    const auto policy = tictac::core::PolicyRegistry::Global().Create(spec);
    benchmark::DoNotOptimize(policy->Compute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacSynthetic(benchmark::State& state) {
  const auto graph = SyntheticDag(static_cast<int>(state.range(0)));
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::Tac(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacFullRecompute(benchmark::State& state) {
  const auto graph = SyntheticDag(static_cast<int>(state.range(0)));
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::TacFullRecompute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

void BM_TacFullRecomputeModel(benchmark::State& state, const char* model) {
  const auto& info = tictac::models::FindModel(model);
  const auto graph =
      tictac::models::BuildWorkerGraph(info, {.training = true});
  const tictac::core::PropertyIndex index(graph);
  const AnalyticalTimeOracle oracle{PlatformModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::core::TacFullRecompute(index, oracle));
  }
  state.SetLabel(std::to_string(graph.size()) + " ops");
}

BENCHMARK_CAPTURE(BM_Tic, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tic, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tic, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_Tac, alexnet, "AlexNet v2");
BENCHMARK_CAPTURE(BM_Tac, inception_v3, "Inception v3");
BENCHMARK_CAPTURE(BM_Tac, resnet101_v2, "ResNet-101 v2");
BENCHMARK_CAPTURE(BM_DependencyAnalysis, resnet101_v2, "ResNet-101 v2");
// 100000 recvs (~300k ops) is the ROADMAP's datacenter-graph scale; it
// exercises the block-pruned argmin and the widened bitset scans, and
// allocates ~8 GB of dep/consumer bitsets in setup.
BENCHMARK(BM_TacSynthetic)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
// The reference is quadratic in recvs — 1k is already seconds; larger
// sizes are left to the incremental path only.
BENCHMARK(BM_TacFullRecompute)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TacFullRecomputeModel, resnet101_v2, "ResNet-101 v2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RegistryPolicy, tic, "tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, tac, "tac");
BENCHMARK_CAPTURE(BM_RegistryPolicy, reverse_tic, "reverse:tic");
BENCHMARK_CAPTURE(BM_RegistryPolicy, random, "random:99");

// RecvSet hot-path scans: the widened implementations in
// core/properties.cc (4-lane popcount blocks, 4-word AND-skip) raced
// against single-accumulator scalar word loops over mirrored raw words.
// The mirrors keep the baseline honest — same data, same algorithmic
// work, only the unrolling/skip structure differs. Arg = bits.
void FillDeterministic(tictac::core::RecvSet* set,
                       std::vector<std::uint64_t>* words, std::size_t bits,
                       std::uint64_t salt) {
  words->assign((bits + 63) / 64, 0);
  // splitmix-style word fill at ~50% density, deterministic in salt.
  std::uint64_t z = salt;
  for (std::size_t w = 0; w < words->size(); ++w) {
    z += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    (*words)[w] = x ^ (x >> 31);
  }
  // Trim the tail so the RecvSet mirror (which masks by construction
  // through Set()) matches the raw words exactly.
  if (bits % 64 != 0) {
    words->back() &= (1ULL << (bits % 64)) - 1;
  }
  *set = tictac::core::RecvSet(bits);
  for (std::size_t w = 0; w < words->size(); ++w) {
    for (std::uint64_t word = (*words)[w]; word;) {
      const int b = __builtin_ctzll(word);
      set->Set(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
}

void BM_RecvSetScan(benchmark::State& state, bool widened) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  tictac::core::RecvSet a, b;
  std::vector<std::uint64_t> wa, wb;
  FillDeterministic(&a, &wa, bits, 0x5eed);
  FillDeterministic(&b, &wb, bits, 0xf00d);
  std::size_t checksum = 0;
  for (auto _ : state) {
    if (widened) {
      checksum += a.IntersectCount(b);
      std::size_t indices = 0;
      a.ForEachAnd(b, [&](std::size_t i) { indices += i; });
      checksum += indices;
    } else {
      std::size_t count = 0;
      for (std::size_t w = 0; w < wa.size(); ++w) {
        count += static_cast<std::size_t>(
            __builtin_popcountll(wa[w] & wb[w]));
      }
      checksum += count;
      std::size_t indices = 0;
      for (std::size_t w = 0; w < wa.size(); ++w) {
        for (std::uint64_t word = wa[w] & wb[w]; word;) {
          const int bit = __builtin_ctzll(word);
          indices += w * 64 + static_cast<std::size_t>(bit);
          word &= word - 1;
        }
      }
      checksum += indices;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wa.size()) * 8 * 2);
}

BENCHMARK_CAPTURE(BM_RecvSetScan, scalar, false)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_RecvSetScan, widened, true)->Arg(1 << 14)->Arg(1 << 18);

// End-to-end sweep wall-clock through the Session executor. A fresh
// Session per iteration makes every grid pay its dependency-analysis
// cost, as a cold CLI `tictac_cli sweep` invocation would; real time (not
// summed CPU time) is what the parallelism buys down.
void BM_SessionSweep(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const auto sweep = tictac::runtime::SweepSpec::Parse(
      "envG:workers=2,4:ps=1:task=inference,training "
      "models=AlexNet v2,Inception v2,ResNet-50 v2 "
      "policies=baseline,tic iterations=4 seed=3");
  for (auto _ : state) {
    tictac::harness::Session session;
    benchmark::DoNotOptimize(session.RunAll(sweep, parallelism));
  }
  state.SetLabel(std::to_string(sweep.size()) + " runs, parallelism " +
                 std::to_string(parallelism));
}

// Serial (Arg = 1), the 4-thread reference point the perf trajectory
// tracks, and one thread per core when that differs; the floor of 2
// keeps a distinct executor-overhead data point on single-core machines
// (where /4 measures overhead too — thread-scaling wins need >= 4
// physical cores).
void SweepArgs(benchmark::internal::Benchmark* bench) {
  const int parallel =
      std::max(2, tictac::harness::Session::DefaultParallelism());
  bench->Arg(1);
  if (parallel != 4) bench->Arg(parallel);
  bench->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_SessionSweep)->Apply(SweepArgs);

}  // namespace

BENCHMARK_MAIN();
