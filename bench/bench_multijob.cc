// Multi-job shared-cluster interference (DESIGN.md §6): two co-located
// ResNet-101 training jobs contending for one 2-server PS fabric, per
// scheduling policy. The timed loop measures the contended simulation
// through runtime::MultiJobRunner; the interference counters —
// per-policy mean/max slowdown vs isolated runs and the Jain fairness of
// the contention outcome — ride along into BENCH_sched.json via
// bench/run_benches.sh, so policy changes that shift how contention is
// absorbed show up in the archived perf trajectory.
#include <benchmark/benchmark.h>

#include <string>

#include "harness/session.h"
#include "runtime/multijob.h"

namespace {

void BM_MultiJobContended(benchmark::State& state, const char* policy) {
  const auto spec = tictac::runtime::MultiJobSpec::Parse(
      "2x{envG:workers=4:ps=2:training model=ResNet-101 v1 policy=" +
      std::string(policy) + " iterations=4 seed=3}");
  // One runner serves both the interference report (isolated references
  // included) and the timed loop; only the contended simulation is
  // timed.
  const tictac::runtime::MultiJobRunner runner(spec);
  tictac::harness::Session session;
  const tictac::harness::MultiJobReport report = session.RunMultiJob(runner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run());
  }
  state.counters["mean_slowdown"] = report.interference.mean_slowdown;
  state.counters["max_slowdown"] = report.interference.max_slowdown;
  state.counters["fairness"] = report.interference.fairness;
  state.counters["combined_iter_ms"] =
      report.result.combined.MeanIterationTime() * 1e3;
  state.SetLabel(std::to_string(spec.jobs.size()) + " jobs, " +
                 std::to_string(runner.total_workers()) + " workers, " +
                 std::to_string(runner.lowering().combined.tasks.size()) +
                 " tasks");
}

BENCHMARK_CAPTURE(BM_MultiJobContended, baseline, "baseline")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MultiJobContended, tic, "tic")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MultiJobContended, tac, "tac")
    ->Unit(benchmark::kMillisecond);

// Mixed workload: a training job sharing the PS fleet with an inference
// job that arrives 50 ms late — the serving-alongside-training scenario.
void BM_MultiJobMixed(benchmark::State& state, const char* policy) {
  const auto spec = tictac::runtime::MultiJobSpec::Parse(
      "{envG:workers=4:ps=2:training model=Inception v3 policy=" +
      std::string(policy) +
      " iterations=4 seed=3} {envG:workers=2:ps=2:inference "
      "model=Inception v3 policy=" +
      std::string(policy) + " iterations=4 seed=3}@0.05");
  const tictac::runtime::MultiJobRunner runner(spec);
  tictac::harness::Session session;
  const tictac::harness::MultiJobReport report = session.RunMultiJob(runner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run());
  }
  state.counters["mean_slowdown"] = report.interference.mean_slowdown;
  state.counters["fairness"] = report.interference.fairness;
  state.SetLabel("training + offset inference, " +
                 std::to_string(runner.lowering().combined.tasks.size()) +
                 " tasks");
}

BENCHMARK_CAPTURE(BM_MultiJobMixed, baseline, "baseline")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MultiJobMixed, tac, "tac")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
