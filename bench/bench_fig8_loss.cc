// Figure 8: training loss over the first 500 iterations with and without
// enforced transfer ordering. Scheduling is timing-only — the losses must
// be identical. Real SGD numerics run through the PS trainer; the
// iteration *times* come from the simulator (baseline vs TIC), showing
// that the curves coincide per iteration while wall-clock diverges.
#include <cmath>
#include <iostream>

#include "harness/session.h"
#include "learn/ps_trainer.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 8: loss during training, No Ordering vs TIC\n\n";

  const learn::Dataset data = learn::MakeGaussianMixture(512, 8, 3, 2024);
  learn::TrainConfig config;

  learn::PsTrainer no_ordering(config, data);
  const learn::TrainLog log_base = no_ordering.Train(500, {});

  // TIC enforces a fixed order; any fixed permutation is representative.
  std::vector<int> tic_order{5, 4, 3, 2, 1, 0};
  learn::PsTrainer tic(config, data);
  const learn::TrainLog log_tic = tic.Train(500, tic_order);

  // Iteration times from the simulated cluster (Inception v3, the model
  // the paper trains in this figure); both specs share one cached Runner.
  harness::Session session;
  runtime::ExperimentSpec spec = runtime::ExperimentSpec::Parse(
      "envG:workers=4:ps=1:training model=Inception v3 policy=baseline "
      "seed=99");
  const double t_base = session.Run(spec).MeanIterationTime();
  spec.policy = "tic";
  const double t_tic = session.Run(spec).MeanIterationTime();

  util::Table table({"Iteration", "Loss (No Ordering)", "Loss (TIC)",
                     "|difference|"});
  for (int it : {0, 1, 2, 5, 10, 20, 50, 100, 200, 300, 400, 499}) {
    const double a = log_base.loss[static_cast<std::size_t>(it)];
    const double b = log_tic.loss[static_cast<std::size_t>(it)];
    table.AddRow({std::to_string(it), util::Fmt(a, 6), util::Fmt(b, 6),
                  util::Fmt(std::abs(a - b), 12)});
  }
  table.Print(std::cout);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < log_base.loss.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(log_base.loss[i] - log_tic.loss[i]));
  }
  std::cout << "\nmax |loss difference| over 500 iterations: " << max_diff
            << " (scheduling never changes the numerics)\n";
  std::cout << "final accuracy: no-ordering=" << log_base.final_accuracy
            << " tic=" << log_tic.final_accuracy << "\n";
  std::cout << "\nSimulated iteration time (Inception v3, envG, 4 workers):"
            << "\n  baseline " << util::Fmt(t_base * 1e3, 1) << " ms vs TIC "
            << util::Fmt(t_tic * 1e3, 1)
            << " ms — same loss curve, less wall-clock per step.\n";
  return max_diff == 0.0 ? 0 : 1;
}
