// Cluster-scheduler service SLOs (DESIGN.md §7): an open system of
// bursty job arrivals played through sched::SchedulerService, one case
// per (transfer-scheduling policy × placement policy). The timed loop
// measures the full service run — arrival replay, admission, placement,
// incremental re-lowering, and the per-iteration simulations — while the
// SLO counters (p50/p99 slowdown vs isolated, windowed Jain fairness,
// utilization, queueing delay) ride into BENCH_sched.json via
// bench/run_benches.sh, so scheduler changes that shift tail latency or
// fairness show up in the archived perf trajectory.
#include <benchmark/benchmark.h>

#include <string>

#include "runtime/spec.h"
#include "sched/service.h"

namespace {

tictac::sched::ServiceConfig Config(const std::string& policy,
                                    const std::string& placement) {
  tictac::sched::ServiceConfig config;
  // Pairs of jobs arriving together keep every placement policy honest:
  // round-robin splits a burst, best-fit packs it.
  config.arrivals = tictac::sched::ArrivalSpec::Parse("bursty:rate=8:burst=2");
  config.workload = {tictac::runtime::ExperimentSpec::Parse(
      "envG:workers=2:ps=1:training model=Inception v1 policy=" + policy +
      " iterations=2 seed=3")};
  config.fabrics = 2;
  config.duration = 0.5;
  config.placement = placement;
  config.max_jobs_per_fabric = 4;
  config.seed = 9;
  return config;
}

void BM_ServiceOpenSystem(benchmark::State& state, const char* policy,
                          const char* placement) {
  const tictac::sched::ServiceConfig config = Config(policy, placement);
  // One untimed run supplies the (deterministic) SLO counters.
  const tictac::sched::ServiceReport report =
      tictac::sched::SchedulerService(config).Run();
  for (auto _ : state) {
    tictac::sched::SchedulerService service(config);
    benchmark::DoNotOptimize(service.Run());
  }
  state.counters["p50_slowdown"] = report.p50_slowdown;
  state.counters["p99_slowdown"] = report.p99_slowdown;
  state.counters["mean_fairness"] = report.mean_fairness;
  state.counters["utilization"] = report.utilization;
  state.counters["mean_queue_delay_ms"] = report.mean_queue_delay_s * 1e3;
  state.counters["jobs"] =
      static_cast<double>(report.counters.completed);
  state.counters["property_index_builds"] =
      static_cast<double>(report.counters.property_index_builds);
  state.SetLabel(std::to_string(report.counters.arrivals) + " arrivals, " +
                 std::to_string(report.counters.sim_runs) + " sims, " +
                 std::to_string(report.counters.fabric_relowerings) +
                 " re-lowerings");
}

// The full (scheduling policy × placement policy) grid of the tentpole's
// SLO study: how transfer ordering and job placement jointly shape tail
// slowdown.
#define SERVICE_CASE(tag, policy, placement)                 \
  BENCHMARK_CAPTURE(BM_ServiceOpenSystem, tag, policy, placement) \
      ->Unit(benchmark::kMillisecond)

SERVICE_CASE(baseline_least_loaded, "baseline", "least-loaded");
SERVICE_CASE(baseline_round_robin, "baseline", "round-robin");
SERVICE_CASE(baseline_best_fit, "baseline", "best-fit-bytes");
SERVICE_CASE(tic_least_loaded, "tic", "least-loaded");
SERVICE_CASE(tic_round_robin, "tic", "round-robin");
SERVICE_CASE(tic_best_fit, "tic", "best-fit-bytes");
SERVICE_CASE(tac_least_loaded, "tac", "least-loaded");
SERVICE_CASE(tac_round_robin, "tac", "round-robin");
SERVICE_CASE(tac_best_fit, "tac", "best-fit-bytes");

#undef SERVICE_CASE

}  // namespace

BENCHMARK_MAIN();
