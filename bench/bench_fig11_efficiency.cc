// Figure 11: (a) scheduling efficiency E and (b) straggler wait share vs
// the number of ops per worker, baseline vs TIC, on envG samples covering
// both training and inference. The whole figure is one cartesian
// SweepSpec (models × task × policy) executed across all cores.
#include <algorithm>
#include <iostream>

#include "harness/session.h"
#include "models/zoo.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 11: efficiency metric and straggler effect vs DAG "
               "size (envG, 4 workers, 2 PS)\n\n";

  runtime::SweepSpec sweep;
  sweep.models = harness::FigureModels();
  sweep.workers = {4};
  sweep.ps = {2};
  sweep.tasks = {false, true};
  sweep.policies = {"baseline", "tic"};
  sweep.seed = 55;

  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());

  util::Table table({"Model", "Task", "#Ops/worker", "E baseline", "E TIC",
                     "Straggler% baseline", "Straggler% TIC"});
  double worst_base_e = 1.0;
  double worst_tic_e = 1.0;
  // Expansion order: model → task → policy (policy varies fastest).
  for (std::size_t i = 0; i < results.size(); i += 2) {
    const harness::ResultRow& base = results.row(i);
    const harness::ResultRow& tic = results.row(i + 1);
    const auto& info = models::FindModel(base.spec.model);
    const bool training = base.spec.cluster.training;
    const int ops = training ? info.ops_training : info.ops_inference;
    table.AddRow({base.spec.model, training ? "train" : "inference",
                  std::to_string(ops), util::Fmt(base.mean_efficiency, 3),
                  util::Fmt(tic.mean_efficiency, 3),
                  util::Fmt(base.max_straggler_pct, 1),
                  util::Fmt(tic.max_straggler_pct, 1)});
    worst_base_e = std::min(worst_base_e, base.mean_efficiency);
    worst_tic_e = std::min(worst_tic_e, tic.mean_efficiency);
  }
  table.Print(std::cout);
  std::cout << "\nworst-case mean efficiency: baseline "
            << util::Fmt(worst_base_e, 3) << " vs TIC "
            << util::Fmt(worst_tic_e, 3)
            << "\nPaper shape: TIC pushes E toward 1 and curbs the "
               "straggler share\n(bigger DAGs suffer more under the random "
               "baseline).\n";
  return 0;
}
