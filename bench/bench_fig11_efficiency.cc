// Figure 11: (a) scheduling efficiency E and (b) straggler wait share vs
// the number of ops per worker, baseline vs TIC, on envG samples covering
// both training and inference.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 11: efficiency metric and straggler effect vs DAG "
               "size (envG, 4 workers, 2 PS)\n\n";
  util::Table table({"Model", "Task", "#Ops/worker", "E baseline", "E TIC",
                     "Straggler% baseline", "Straggler% TIC"});
  double worst_base_e = 1.0;
  double worst_tic_e = 1.0;
  for (const auto& name : harness::FigureModels()) {
    const auto& info = models::FindModel(name);
    for (const bool training : {false, true}) {
      const auto config = runtime::EnvG(4, 2, training);
      const auto base = harness::RunExperiment(info, config, "baseline", 55);
      const auto tic = harness::RunExperiment(info, config, "tic", 55);
      const int ops = training ? info.ops_training : info.ops_inference;
      table.AddRow({name, training ? "train" : "inference",
                    std::to_string(ops), util::Fmt(base.MeanEfficiency(), 3),
                    util::Fmt(tic.MeanEfficiency(), 3),
                    util::Fmt(base.MaxStragglerPct(), 1),
                    util::Fmt(tic.MaxStragglerPct(), 1)});
      worst_base_e = std::min(worst_base_e, base.MeanEfficiency());
      worst_tic_e = std::min(worst_tic_e, tic.MeanEfficiency());
    }
  }
  table.Print(std::cout);
  std::cout << "\nworst-case mean efficiency: baseline "
            << util::Fmt(worst_base_e, 3) << " vs TIC "
            << util::Fmt(worst_tic_e, 3)
            << "\nPaper shape: TIC pushes E toward 1 and curbs the "
               "straggler share\n(bigger DAGs suffer more under the random "
               "baseline).\n";
  return 0;
}
