// Extension: transfer chunking (P3/ByteScheduler-style tensor slicing) on
// top of TicTac ordering. Whole-tensor transfers suffer head-of-line
// blocking on the channel — a late high-priority tensor waits for the
// full residual of whatever is on the wire. Chunking bounds that wait.
// Most visible on models with a few huge tensors (AlexNet/VGG fc layers).
//
// Declared as an ExperimentSpec list (the chunked and unchunked clusters
// are distinct graphs, so the Session caches two Runners per model) run
// by one parallel Session::RunAll.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Extension: TIC speedup (%) over unchunked baseline, with "
               "and without 4 MiB transfer chunking\n"
               "(envG, 4 workers, 2 PS, inference)\n\n";
  const char* model_names[] = {"AlexNet v2", "VGG-16", "VGG-19",
                               "Inception v3"};

  harness::Session session;
  std::vector<runtime::ExperimentSpec> specs;
  for (const char* name : model_names) {
    runtime::ExperimentSpec spec;
    spec.model = name;
    spec.cluster.workers = 4;
    spec.cluster.ps = 2;
    spec.seed = 13;
    // Unchunked baseline and TIC, then the 4 MiB-chunked variants.
    spec.policy = "baseline";
    specs.push_back(spec);
    spec.policy = "tic";
    specs.push_back(spec);
    spec.cluster.chunk_bytes = 4ll << 20;
    specs.push_back(spec);
    spec.policy = "tac";
    specs.push_back(spec);
    spec.policy = "baseline";
    specs.push_back(spec);
  }
  const harness::ResultTable results =
      session.RunAll(specs, harness::Session::DefaultParallelism());

  util::Table table({"Model", "TIC", "TIC + chunking", "TAC + chunking",
                     "baseline + chunking"});
  std::size_t i = 0;
  for (const char* name : model_names) {
    const double base = results.row(i++).throughput;
    std::vector<std::string> row{name};
    for (int variant = 0; variant < 4; ++variant) {
      row.push_back(util::FmtPct(results.row(i++).throughput / base - 1.0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: chunking mainly rescues *bad* orders "
               "(it bounds the cost of any\nsingle unlucky pick). Note "
               "TIC under chunking: its transfer-count oracle (Eq. 5)\n"
               "sees k chunks as cost k, so parameters that split into "
               "fewer chunks jump the\nqueue regardless of layer depth — "
               "TAC's byte-aware oracle does not regress.\n";
  return 0;
}
