// Extension: transfer chunking (P3/ByteScheduler-style tensor slicing) on
// top of TicTac ordering. Whole-tensor transfers suffer head-of-line
// blocking on the channel — a late high-priority tensor waits for the
// full residual of whatever is on the wire. Chunking bounds that wait.
// Most visible on models with a few huge tensors (AlexNet/VGG fc layers).
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Extension: TIC speedup (%) over unchunked baseline, with "
               "and without 4 MiB transfer chunking\n"
               "(envG, 4 workers, 2 PS, inference)\n\n";
  util::Table table({"Model", "TIC", "TIC + chunking", "TAC + chunking",
                     "baseline + chunking"});
  for (const char* name : {"AlexNet v2", "VGG-16", "VGG-19",
                           "Inception v3"}) {
    const auto& info = models::FindModel(name);
    auto plain = runtime::EnvG(4, 2, /*training=*/false);
    auto chunked = plain;
    chunked.chunk_bytes = 4ll << 20;

    runtime::Runner plain_runner(info, plain);
    runtime::Runner chunked_runner(info, chunked);
    const double base = plain_runner.Run("baseline", 10, 13).Throughput();
    const double tic = plain_runner.Run("tic", 10, 13).Throughput();
    const double tic_chunked =
        chunked_runner.Run("tic", 10, 13).Throughput();
    const double tac_chunked =
        chunked_runner.Run("tac", 10, 13).Throughput();
    const double base_chunked =
        chunked_runner.Run("baseline", 10, 13).Throughput();
    table.AddRow({name, util::FmtPct(tic / base - 1.0),
                  util::FmtPct(tic_chunked / base - 1.0),
                  util::FmtPct(tac_chunked / base - 1.0),
                  util::FmtPct(base_chunked / base - 1.0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: chunking mainly rescues *bad* orders "
               "(it bounds the cost of any\nsingle unlucky pick). Note "
               "TIC under chunking: its transfer-count oracle (Eq. 5)\n"
               "sees k chunks as cost k, so parameters that split into "
               "fewer chunks jump the\nqueue regardless of layer depth — "
               "TAC's byte-aware oracle does not regress.\n";
  return 0;
}
