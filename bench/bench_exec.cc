// Sim-to-real round-trip cost and fidelity (DESIGN.md §9): one case per
// scheduling policy, each running the full exec::ValidateAgainstSim loop
// — real worker/PS threads over shared-memory transport, enforced send
// order, trace calibration, re-simulation. The timed loop measures the
// whole round-trip (thread spin-up included); the fidelity counters
// (measured vs predicted iteration time, calibrated and uncalibrated
// prediction error) come from one untimed deterministic-clock run and
// ride into BENCH_sched.json via bench/run_benches.sh, so backend or
// calibration changes that move prediction error show up in the archived
// perf trajectory.
#include <benchmark/benchmark.h>

#include <string>

#include "exec/validate.h"

namespace {

tictac::exec::ExecSpec Spec(const char* policy) {
  tictac::exec::ExecSpec spec;
  spec.model = "AlexNet v2";  // smallest zoo model: bench stays fast
  spec.policies = {policy};
  spec.num_workers = 2;
  spec.num_ps = 2;
  spec.iterations = 3;
  spec.seed = 1;
  spec.deterministic = true;  // hidden-platform virtual clock: stable counters
  return spec;
}

void BM_ExecValidate(benchmark::State& state, const char* policy) {
  const tictac::exec::ExecSpec spec = Spec(policy);
  // One untimed run supplies the (deterministic) fidelity counters.
  const tictac::exec::ExecReport report =
      tictac::exec::ValidateAgainstSim(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tictac::exec::ValidateAgainstSim(spec));
  }
  const tictac::exec::PolicyValidation& row = report.policies.front();
  state.counters["measured_s"] = row.measured_s;
  state.counters["predicted_s"] = row.predicted_s;
  state.counters["prediction_error_pct"] = row.error_pct;
  state.counters["uncalibrated_error_pct"] = row.uncalibrated_error_pct;
  state.counters["calibration_ok"] = row.calibration_ok ? 1.0 : 0.0;
  state.counters["order_matches_schedule"] =
      row.order_matches_schedule ? 1.0 : 0.0;
  state.SetLabel(spec.model + ", " + std::to_string(spec.num_workers) +
                 "w x " + std::to_string(spec.num_ps) + "ps, " +
                 std::to_string(spec.iterations) + " iters");
}

#define EXEC_CASE(tag, policy)                          \
  BENCHMARK_CAPTURE(BM_ExecValidate, tag, policy)       \
      ->Unit(benchmark::kMillisecond)

EXEC_CASE(baseline, "baseline");
EXEC_CASE(tic, "tic");
EXEC_CASE(tac, "tac");

#undef EXEC_CASE

}  // namespace

BENCHMARK_MAIN();
