// Robustness SLOs under injected faults (DESIGN.md §8): the same open
// system as bench_service played against deterministic fault timelines,
// one case per (placement policy × fault scenario). The timed loop
// measures the full chaotic service run — fault compilation, eviction,
// backoff, re-placement — while the robustness counters (tail slowdown,
// goodput vs offered, retries, lost iterations, MTTR) ride into
// BENCH_sched.json via bench/run_benches.sh, so recovery-path changes
// that shift MTTR or goodput show up in the archived perf trajectory.
#include <benchmark/benchmark.h>

#include <string>

#include "fault/fault.h"
#include "runtime/spec.h"
#include "sched/service.h"

namespace {

tictac::sched::ServiceConfig Config(const std::string& placement,
                                    const std::string& faults) {
  tictac::sched::ServiceConfig config;
  config.arrivals = tictac::sched::ArrivalSpec::Parse("poisson:rate=20");
  config.workload = {tictac::runtime::ExperimentSpec::Parse(
      "envG:workers=2:ps=1:training model=Inception v1 policy=tac "
      "iterations=2 seed=3")};
  config.fabrics = 2;
  config.duration = 0.5;
  config.placement = placement;
  config.max_jobs_per_fabric = 4;
  config.seed = 9;
  config.faults = tictac::fault::FaultSpec::Parse(faults);
  return config;
}

void BM_FaultRecovery(benchmark::State& state, const char* placement,
                      const char* faults) {
  const tictac::sched::ServiceConfig config = Config(placement, faults);
  // One untimed run supplies the (deterministic) robustness counters.
  const tictac::sched::ServiceReport report =
      tictac::sched::SchedulerService(config).Run();
  for (auto _ : state) {
    tictac::sched::SchedulerService service(config);
    benchmark::DoNotOptimize(service.Run());
  }
  state.counters["p99_slowdown"] = report.p99_slowdown;
  state.counters["goodput_iters_per_s"] = report.goodput_iters_per_s;
  state.counters["offered_iters_per_s"] = report.offered_iters_per_s;
  state.counters["retries"] = static_cast<double>(report.counters.retries);
  state.counters["lost_iterations"] =
      static_cast<double>(report.counters.lost_iterations);
  state.counters["failed_jobs"] =
      static_cast<double>(report.counters.failed_jobs);
  state.counters["mttr_ms"] = report.mttr_mean_s * 1e3;
  state.SetLabel(std::to_string(report.counters.arrivals) + " arrivals, " +
                 std::to_string(report.counters.faults_injected) +
                 " faults, " + std::to_string(report.counters.completed) +
                 " completed");
}

// Placement policies × fault scenarios: how the placement choice shapes
// survival of stragglers, degraded links, flapping NICs, and crashes.
#define FAULT_CASE(tag, placement, faults)                     \
  BENCHMARK_CAPTURE(BM_FaultRecovery, tag, placement, faults)  \
      ->Unit(benchmark::kMillisecond)

FAULT_CASE(straggler_least_loaded, "least-loaded",
           "straggler:worker=0:factor=4:at=0.1:for=0.3");
FAULT_CASE(straggler_failure_aware, "failure-aware",
           "straggler:worker=0:factor=4:at=0.1:for=0.3");
FAULT_CASE(slowlink_least_loaded, "least-loaded",
           "slowlink:nic=0:scale=0.25:at=0.1:for=0.3");
FAULT_CASE(slowlink_failure_aware, "failure-aware",
           "slowlink:nic=0:scale=0.25:at=0.1:for=0.3");
FAULT_CASE(flap_least_loaded, "least-loaded",
           "flap:nic=0:period=0.05:at=0.1:for=0.3");
FAULT_CASE(flap_failure_aware, "failure-aware",
           "flap:nic=0:period=0.05:at=0.1:for=0.3");
FAULT_CASE(fabric_crash_least_loaded, "least-loaded",
           "crash:fabric=0:at=0.2");
FAULT_CASE(fabric_crash_failure_aware, "failure-aware",
           "crash:fabric=0:at=0.2");
FAULT_CASE(worker_crash_least_loaded, "least-loaded",
           "crash:worker=0:at=0.2");

#undef FAULT_CASE

}  // namespace

BENCHMARK_MAIN();
