// Figure 7: throughput speedup over the no-scheduling baseline as the
// number of workers scales {1, 2, 4, 8, 16} with PS:workers fixed at 1:4,
// for training and inference on envG. TIC is the representative scheduler
// in envG, as in the paper.
//
// The grid is declared as ExperimentSpecs and executed by one
// Session::RunAll over all cores; the PS:workers coupling makes this a
// spec list rather than a cartesian SweepSpec.
#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 7: speedup (%) vs baseline, scaling workers "
               "(envG, PS:workers = 1:4, TIC)\n\n";
  const int workers[] = {1, 2, 4, 8, 16};

  harness::Session session;
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");

    std::vector<runtime::ExperimentSpec> specs;
    for (const auto& name : harness::FigureModels()) {
      for (const int w : workers) {
        runtime::ExperimentSpec spec;
        spec.model = name;
        spec.cluster.workers = w;
        spec.cluster.ps = std::max(1, w / 4);
        spec.cluster.training = training;
        spec.seed = 1234 + static_cast<std::uint64_t>(w);
        for (const char* policy : {"baseline", "tic"}) {
          spec.policy = policy;
          specs.push_back(spec);
        }
      }
    }
    const harness::ResultTable results =
        session.RunAll(specs, harness::Session::DefaultParallelism());

    util::Table table({"Model", "W=1", "W=2", "W=4", "W=8", "W=16"});
    std::vector<std::string> cells;
    for (const auto& row : results.rows()) {
      if (row.spec.policy == "baseline") continue;
      if (cells.empty()) cells.push_back(row.spec.model);
      cells.push_back(util::FmtPct(results.SpeedupVsBaseline(row)));
      if (cells.size() == 1 + std::size(workers)) {
        table.AddRow(std::move(cells));
        cells.clear();
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: gains up to ~37.7% in inference / ~19.2% in\n"
               "training; larger networks gain more; gains shrink once\n"
               "communication dominates computation.\n";
  return 0;
}
