// Figure 7: throughput speedup over the no-scheduling baseline as the
// number of workers scales {1, 2, 4, 8, 16} with PS:workers fixed at 1:4,
// for training and inference on envG. TIC is the representative scheduler
// in envG, as in the paper.
#include <algorithm>
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 7: speedup (%) vs baseline, scaling workers "
               "(envG, PS:workers = 1:4, TIC)\n\n";
  const int workers[] = {1, 2, 4, 8, 16};

  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");
    util::Table table({"Model", "W=1", "W=2", "W=4", "W=8", "W=16"});
    for (const auto& name : harness::FigureModels()) {
      const auto& info = models::FindModel(name);
      std::vector<std::string> row{name};
      for (const int w : workers) {
        const int ps = std::max(1, w / 4);
        const auto config = runtime::EnvG(w, ps, training);
        const auto speedup =
            harness::MeasureSpeedup(info, config, "tic", /*seed=*/1234 + w);
        row.push_back(util::FmtPct(speedup.speedup()));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: gains up to ~37.7% in inference / ~19.2% in\n"
               "training; larger networks gain more; gains shrink once\n"
               "communication dominates computation.\n";
  return 0;
}
