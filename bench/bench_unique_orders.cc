// §2.2's motivating observation: across 1000 iterations, the order in
// which a worker receives parameters under vanilla execution is
// essentially never repeated (every iteration unique for ResNet-50 v2 and
// Inception v3; 493 unique orders for VGG-16), while enforcement makes
// the order identical every iteration.
#include <iostream>

#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  constexpr int kIterations = 1000;
  std::cout << "Unique parameter-arrival orders at one worker across "
            << kIterations << " iterations (envG, 2 workers, 1 PS)\n\n";
  util::Table table({"Model", "#Par", "Unique orders (baseline)",
                     "Unique orders (TIC)"});
  for (const char* name : {"ResNet-50 v2", "Inception v3", "VGG-16"}) {
    const auto& info = models::FindModel(name);
    auto config = runtime::EnvG(2, 1, /*training=*/true);
    config.sim.out_of_order_probability = 0.0;  // isolate scheduling
    runtime::Runner runner(info, config);
    const auto base = runner.Run("baseline", kIterations, 424242);
    const auto tic = runner.Run("tic", kIterations, 424242);
    table.AddRow({name, std::to_string(info.num_params),
                  std::to_string(base.UniqueRecvOrders()),
                  std::to_string(tic.UniqueRecvOrders())});
  }
  table.Print(std::cout);
  std::cout << "\nPaper observation: 1000/1000 unique for ResNet-50 v2 and "
               "Inception v3, 493/1000 for VGG-16, and a single enforced "
               "order under TicTac.\n";
  return 0;
}
