// §2.2's motivating observation: across 1000 iterations, the order in
// which a worker receives parameters under vanilla execution is
// essentially never repeated (every iteration unique for ResNet-50 v2 and
// Inception v3; 493 unique orders for VGG-16), while enforcement makes
// the order identical every iteration. One SweepSpec — gRPC reordering
// disabled via the grammar's ooo= override to isolate scheduling — run
// across all cores.
#include <iostream>

#include "harness/session.h"
#include "models/zoo.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  constexpr int kIterations = 1000;
  std::cout << "Unique parameter-arrival orders at one worker across "
            << kIterations << " iterations (envG, 2 workers, 1 PS)\n\n";

  const runtime::SweepSpec sweep = runtime::SweepSpec::Parse(
      "envG:workers=2:ps=1:training:ooo=0 "
      "models=ResNet-50 v2,Inception v3,VGG-16 "
      "policies=baseline,tic iterations=1000 seed=424242");
  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());

  util::Table table({"Model", "#Par", "Unique orders (baseline)",
                     "Unique orders (TIC)"});
  // Expansion order: model → policy (policy varies fastest).
  for (std::size_t i = 0; i < results.size(); i += 2) {
    const harness::ResultRow& base = results.row(i);
    const harness::ResultRow& tic = results.row(i + 1);
    const auto& info = models::FindModel(base.spec.model);
    table.AddRow({base.spec.model, std::to_string(info.num_params),
                  std::to_string(base.unique_recv_orders),
                  std::to_string(tic.unique_recv_orders)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper observation: 1000/1000 unique for ResNet-50 v2 and "
               "Inception v3, 493/1000 for VGG-16, and a single enforced "
               "order under TicTac.\n";
  return 0;
}
