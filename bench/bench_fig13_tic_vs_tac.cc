// Figure 13 (Appendix B): TIC vs TAC throughput speedup over the
// no-scheduling baseline on envC (CPU-only) for Inception v2, VGG-16 and
// AlexNet v2, in inference and training. One cartesian SweepSpec —
// parsed from its text form — executed across all cores.
#include <iostream>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 13: TIC vs TAC speedup (%) over baseline "
               "(envC, 4 workers, 1 PS)\n\n";

  const runtime::SweepSpec sweep = runtime::SweepSpec::Parse(
      "envC:workers=4:ps=1:task=inference,training "
      "models=Inception v2,VGG-16,AlexNet v2 "
      "policies=baseline,tic,tac seed=5");
  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());

  // Expansion order: model → task → policy (policy varies fastest), so
  // rows arrive in (baseline, tic, tac) triples per model/task cell;
  // SpeedupVsBaseline throws if the grid ever stops matching.
  const std::size_t stride = sweep.policies.size();
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");
    util::Table table({"Model", "TIC", "TAC"});
    for (std::size_t i = 0; i < results.size(); i += stride) {
      const harness::ResultRow& tic = results.row(i + 1);
      const harness::ResultRow& tac = results.row(i + 2);
      if (tic.spec.cluster.training != training) continue;
      table.AddRow({tic.spec.model,
                    util::FmtPct(results.SpeedupVsBaseline(tic)),
                    util::FmtPct(results.SpeedupVsBaseline(tac))});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: both schemes give significant speedup and TIC "
               "is comparable to TAC,\nso DAG structure alone suffices for "
               "current models.\n";
  return 0;
}
