// Figure 13 (Appendix B): TIC vs TAC throughput speedup over the
// no-scheduling baseline on envC (CPU-only) for Inception v2, VGG-16 and
// AlexNet v2, in inference and training.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Figure 13: TIC vs TAC speedup (%) over baseline "
               "(envC, 4 workers, 1 PS)\n\n";
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");
    util::Table table({"Model", "TIC", "TAC"});
    for (const char* name : {"Inception v2", "VGG-16", "AlexNet v2"}) {
      const auto& info = models::FindModel(name);
      const auto config = runtime::EnvC(4, 1, training);
      const auto tic = harness::MeasureSpeedup(info, config, "tic", 5);
      const auto tac = harness::MeasureSpeedup(info, config, "tac", 5);
      table.AddRow({name, util::FmtPct(tic.speedup()),
                    util::FmtPct(tac.speedup())});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: both schemes give significant speedup and TIC "
               "is comparable to TAC,\nso DAG structure alone suffices for "
               "current models.\n";
  return 0;
}
