// Regenerates Table 1: DNN model characteristics, measured from the model
// zoo and the generated worker graphs (not echoed from constants — the
// graph is built and counted).
#include <iostream>

#include "models/builder.h"
#include "models/zoo.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  std::cout << "Table 1: DNN model characteristics\n"
            << "(#Ops counted from the generated worker partition graphs)\n\n";
  util::Table table({"Neural Network Model", "#Par", "Total Par Size (MiB)",
                     "#Ops Inference", "#Ops Training", "Batch Size"});
  for (const auto& info : models::ModelZoo()) {
    const auto inference = models::BuildWorkerGraph(info, {.training = false});
    const auto training = models::BuildWorkerGraph(info, {.training = true});
    const double mib =
        static_cast<double>(inference.TotalRecvBytes()) / (1024.0 * 1024.0);
    table.AddRow({info.name,
                  std::to_string(inference.RecvOps().size()),
                  util::Fmt(mib, 2),
                  std::to_string(inference.size()),
                  std::to_string(training.size()),
                  std::to_string(info.standard_batch)});
  }
  table.Print(std::cout);
  return 0;
}
