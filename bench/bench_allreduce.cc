// Extension (paper §7 future work): Parameter Server with TicTac
// scheduling vs decentralized ring all-reduce, the aggregation pattern
// the paper explicitly leaves out of scope (§2). Shows where each
// aggregation strategy wins at equal hardware.
#include <iostream>

#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/allreduce.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

namespace {

double AllReduceThroughput(const models::ModelInfo& info,
                           const runtime::ClusterConfig& config,
                           std::uint64_t seed) {
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = true});
  const auto lowering = runtime::LowerAllReduce(graph, config);
  sim::TaskGraphSim sim = lowering.BuildSim();
  double total = 0.0;
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    total += sim.Run(config.sim, seed + static_cast<std::uint64_t>(i)).makespan;
  }
  return info.standard_batch * config.num_workers / (total / kIters);
}

}  // namespace

int main() {
  std::cout << "Extension: PS (baseline / TIC) vs ring all-reduce, "
               "training throughput in samples/s (envG, 8 workers, 2 PS)\n\n";
  util::Table table({"Model", "PS baseline", "PS + TIC", "Ring all-reduce",
                     "TIC vs all-reduce"});
  for (const char* name :
       {"Inception v1", "Inception v3", "ResNet-50 v2", "VGG-16"}) {
    const auto& info = models::FindModel(name);
    const auto config = runtime::EnvG(8, 2, /*training=*/true);
    runtime::Runner runner(info, config);
    const double base = runner.Run("baseline", 10, 17).Throughput();
    const double tic = runner.Run("tic", 10, 17).Throughput();
    const double ar = AllReduceThroughput(info, config, 17);
    table.AddRow({name, util::Fmt(base, 1), util::Fmt(tic, 1),
                  util::Fmt(ar, 1), util::FmtPct(tic / ar - 1.0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: all-reduce removes the PS NIC bottleneck "
               "and the forward pass\nnever waits on parameter pulls, so "
               "it leads on communication-heavy models;\nPS+TIC narrows "
               "the gap where computation dominates. Ordering inside\n"
               "collectives is the paper's named future work.\n";
  return 0;
}
