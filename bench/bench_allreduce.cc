// Extension (paper §7 future work): Parameter Server with TicTac
// scheduling vs decentralized ring all-reduce, the aggregation pattern
// the paper explicitly leaves out of scope (§2). Shows where each
// aggregation strategy wins at equal hardware.
#include <iostream>

#include "harness/session.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/allreduce.h"
#include "util/table.h"

using namespace tictac;

namespace {

double AllReduceThroughput(const models::ModelInfo& info,
                           const runtime::ClusterConfig& config,
                           std::uint64_t seed) {
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = true});
  const auto lowering = runtime::LowerAllReduce(graph, config);
  sim::TaskGraphSim sim = lowering.BuildSim();
  double total = 0.0;
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    total += sim.Run(config.sim, seed + static_cast<std::uint64_t>(i)).makespan;
  }
  return info.standard_batch * config.num_workers / (total / kIters);
}

}  // namespace

int main() {
  std::cout << "Extension: PS (baseline / TIC) vs ring all-reduce, "
               "training throughput in samples/s (envG, 8 workers, 2 PS)\n\n";
  util::Table table({"Model", "PS baseline", "PS + TIC", "Ring all-reduce",
                     "TIC vs all-reduce"});
  // The PS side is one declarative sweep; the ring all-reduce comparator
  // has no PS/policy notion, so it stays on the custom lowering below.
  runtime::SweepSpec sweep;
  sweep.models = {"Inception v1", "Inception v3", "ResNet-50 v2", "VGG-16"};
  sweep.workers = {8};
  sweep.ps = {2};
  sweep.tasks = {true};
  sweep.policies = {"baseline", "tic"};
  sweep.seed = 17;
  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());
  for (std::size_t i = 0; i < results.size(); i += 2) {
    const harness::ResultRow& base = results.row(i);
    const harness::ResultRow& tic = results.row(i + 1);
    const auto& info = models::FindModel(base.spec.model);
    const double ar =
        AllReduceThroughput(info, base.spec.BuildCluster(), 17);
    table.AddRow({base.spec.model, util::Fmt(base.throughput, 1),
                  util::Fmt(tic.throughput, 1), util::Fmt(ar, 1),
                  util::FmtPct(tic.throughput / ar - 1.0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: all-reduce removes the PS NIC bottleneck "
               "and the forward pass\nnever waits on parameter pulls, so "
               "it leads on communication-heavy models;\nPS+TIC narrows "
               "the gap where computation dominates. Ordering inside\n"
               "collectives is the paper's named future work.\n";
  return 0;
}
