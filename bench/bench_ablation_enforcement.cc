// Ablation A1 (DESIGN.md): where should the order be enforced?
// §5.1 rejects enforcing through direct DAG dependencies ("conservative
// ... prevents pipelining and drastically reduces the communication
// throughput") and anything weaker than a sender-side gate. This bench
// quantifies the three options against the unscheduled baseline, as an
// ExperimentSpec list (baseline once per model/task — enforcement only
// matters under a covering schedule — plus TIC per enforcement) run by
// one parallel Session::RunAll.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  using runtime::Enforcement;
  std::cout << "Ablation: enforcement mechanism (envG, 8 workers, 2 PS, "
               "TIC order)\n\n";
  const Enforcement enforcements[] = {Enforcement::kPriorityOnly,
                                      Enforcement::kHandoffGate,
                                      Enforcement::kDagChain};
  const char* model_names[] = {"Inception v2", "ResNet-50 v2", "VGG-16"};

  harness::Session session;
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");

    std::vector<runtime::ExperimentSpec> specs;
    for (const char* name : model_names) {
      runtime::ExperimentSpec spec;
      spec.model = name;
      spec.cluster.workers = 8;
      spec.cluster.ps = 2;
      spec.cluster.training = training;
      spec.seed = 7;
      spec.policy = "baseline";
      specs.push_back(spec);
      spec.policy = "tic";
      for (const Enforcement e : enforcements) {
        spec.cluster.enforcement = e;
        specs.push_back(spec);
      }
    }
    const harness::ResultTable results =
        session.RunAll(specs, harness::Session::DefaultParallelism());

    util::Table table({"Model", "priority-only", "hand-off gate",
                       "DAG chaining"});
    std::size_t i = 0;
    for (const char* name : model_names) {
      const double base = results.row(i++).throughput;
      std::vector<std::string> row{name};
      for (std::size_t e = 0; e < std::size(enforcements); ++e) {
        row.push_back(util::FmtPct(results.row(i++).throughput / base - 1.0));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: hand-off gating >= priority-only, and DAG "
               "chaining loses badly\nwith multiple PS because transfers "
               "serialize across channels.\n";
  return 0;
}
