// Ablation A1 (DESIGN.md): where should the order be enforced?
// §5.1 rejects enforcing through direct DAG dependencies ("conservative
// ... prevents pipelining and drastically reduces the communication
// throughput") and anything weaker than a sender-side gate. This bench
// quantifies the three options against the unscheduled baseline.
#include <iostream>

#include "harness/experiments.h"
#include "util/table.h"

int main() {
  using namespace tictac;
  using runtime::Enforcement;
  std::cout << "Ablation: enforcement mechanism (envG, 8 workers, 2 PS, "
               "TIC order)\n\n";
  for (const bool training : {false, true}) {
    std::cout << (training ? "task = train\n" : "task = inference\n");
    util::Table table({"Model", "priority-only", "hand-off gate",
                       "DAG chaining"});
    for (const char* name :
         {"Inception v2", "ResNet-50 v2", "VGG-16"}) {
      const auto& info = models::FindModel(name);
      std::vector<std::string> row{name};
      for (const Enforcement e :
           {Enforcement::kPriorityOnly, Enforcement::kHandoffGate,
            Enforcement::kDagChain}) {
        auto config = runtime::EnvG(8, 2, training);
        config.enforcement = e;
        const auto speedup = harness::MeasureSpeedup(info, config, "tic", 7);
        row.push_back(util::FmtPct(speedup.speedup()));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: hand-off gating >= priority-only, and DAG "
               "chaining loses badly\nwith multiple PS because transfers "
               "serialize across channels.\n";
  return 0;
}
