// Straggler decomposition (§6.3): schedule-induced stragglers (random
// per-worker orders) vs hardware stragglers (a slow device). Enforced
// ordering eliminates the former and cannot touch the latter.
#include <iostream>

#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "Straggler decomposition (envG, 8 workers, 2 PS, training, "
               "Inception v2)\n\n";
  const auto& info = models::FindModel("Inception v2");
  util::Table table({"Cluster", "Policy", "Iteration (ms)",
                     "Mean straggler %", "Max straggler %"});
  for (const bool slow_worker : {false, true}) {
    auto config = runtime::EnvG(8, 2, /*training=*/true);
    if (slow_worker) {
      config.worker_speed_factors.assign(8, 1.0);
      config.worker_speed_factors[7] = 0.7;  // one 30%-slower device
    }
    runtime::Runner runner(info, config);
    for (const std::string policy : {"baseline", "tic"}) {
      const auto result = runner.Run(policy, 10, 21);
      table.AddRow({slow_worker ? "1 slow worker" : "homogeneous",
                    policy,
                    util::Fmt(result.MeanIterationTime() * 1e3, 1),
                    util::Fmt(result.MeanStragglerPct(), 1),
                    util::Fmt(result.MaxStragglerPct(), 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: on homogeneous hardware TIC removes most "
               "of the straggler wait\n(the paper reports up to 2.3x); "
               "with a genuinely slow device the residual\nstraggler share "
               "is hardware-bound and ordering cannot remove it.\n";
  return 0;
}
