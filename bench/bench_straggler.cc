// Straggler decomposition (§6.3): schedule-induced stragglers (random
// per-worker orders) vs hardware stragglers (a slow device). Enforced
// ordering eliminates the former and cannot touch the latter. The
// heterogeneous cluster is expressed through the spec grammar's speeds=
// setting; both clusters × both policies run in one parallel RunAll.
#include <iostream>
#include <vector>

#include "harness/session.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "Straggler decomposition (envG, 8 workers, 2 PS, training, "
               "Inception v2)\n\n";

  harness::Session session;
  std::vector<runtime::ExperimentSpec> specs;
  for (const bool slow_worker : {false, true}) {
    runtime::ExperimentSpec spec;
    spec.model = "Inception v2";
    spec.cluster.workers = 8;
    spec.cluster.ps = 2;
    spec.cluster.training = true;
    if (slow_worker) {
      spec.cluster.worker_speed_factors.assign(8, 1.0);
      spec.cluster.worker_speed_factors[7] = 0.7;  // one 30%-slower device
    }
    spec.seed = 21;
    for (const char* policy : {"baseline", "tic"}) {
      spec.policy = policy;
      specs.push_back(spec);
    }
  }
  const harness::ResultTable results =
      session.RunAll(specs, harness::Session::DefaultParallelism());

  util::Table table({"Cluster", "Policy", "Iteration (ms)",
                     "Mean straggler %", "Max straggler %"});
  for (const auto& row : results.rows()) {
    const bool slow_worker = !row.spec.cluster.worker_speed_factors.empty();
    table.AddRow({slow_worker ? "1 slow worker" : "homogeneous",
                  row.spec.policy,
                  util::Fmt(row.mean_iteration_s * 1e3, 1),
                  util::Fmt(row.mean_straggler_pct, 1),
                  util::Fmt(row.max_straggler_pct, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: on homogeneous hardware TIC removes most "
               "of the straggler wait\n(the paper reports up to 2.3x); "
               "with a genuinely slow device the residual\nstraggler share "
               "is hardware-bound and ordering cannot remove it.\n";
  return 0;
}
