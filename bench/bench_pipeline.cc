// Extension: steady-state pipelined execution. Dataflow runtimes overlap
// iteration k+1's parameter pulls with iteration k's tail (per-parameter
// update -> pull dependency, no global barrier). Reports cold first-
// iteration time vs steady-state per-iteration time, baseline vs TIC.
#include <iostream>

#include "core/chunking.h"
#include "core/push_schedule.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/sharding.h"
#include "util/table.h"

using namespace tictac;

namespace {

struct Variant {
  const char* label;
  bool scheduled;
  bool push_order;
  std::int64_t chunk_bytes;
};

}  // namespace

int main() {
  constexpr int kIterations = 8;
  std::cout << "Extension: pipelined training, cold vs steady-state "
               "iteration time (envG, 4 workers, 2 PS, "
            << kIterations << " chained iterations)\n\n";
  const Variant variants[] = {
      {"baseline", false, false, 0},
      {"TIC", true, false, 0},
      {"TIC + push order", true, true, 0},
      {"TIC + push + 4MiB chunks", true, true, 4ll << 20},
  };
  util::Table table({"Model", "Method", "Cold iter (ms)",
                     "Steady-state iter (ms)", "Pipelining gain"});
  for (const char* name : {"Inception v2", "ResNet-50 v2", "VGG-16"}) {
    const auto& info = models::FindModel(name);
    const auto config = runtime::EnvG(4, 2, /*training=*/true);
    const auto ps_of =
        runtime::ShardParams(models::ParamSizes(info), config.num_ps);

    for (const Variant& v : variants) {
      core::Graph graph = models::BuildWorkerGraph(info, {.training = true});
      if (v.chunk_bytes > 0) {
        graph = core::ChunkTransfers(graph,
                                     {.max_chunk_bytes = v.chunk_bytes});
      }
      core::Schedule schedule =
          v.scheduled ? core::Tic(graph) : core::Schedule();
      if (v.push_order) schedule = core::OrderSends(graph, schedule);
      const auto pipe = runtime::LowerPipeline(graph, schedule, ps_of,
                                               config, kIterations);
      sim::TaskGraphSim sim = pipe.lowering.BuildSim();
      sim::SimOptions options = config.sim;
      options.enforce_gates = v.scheduled;
      const auto timing =
          runtime::ComputePipelineTiming(pipe, sim.Run(options, 23));
      table.AddRow({name, v.label,
                    util::Fmt(timing.first_iteration * 1e3, 1),
                    util::Fmt(timing.steady_state * 1e3, 1),
                    util::FmtPct(timing.first_iteration /
                                     timing.steady_state - 1.0)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nObserved shape (a real limitation of TicTac this harness "
         "surfaces): the baseline\npipelines aggressively — backward "
         "updates *last*-layer parameters first, and an\nunordered worker "
         "pulls them for step k+1 while step k is still pushing. TIC's\n"
         "per-iteration gate wants *first*-layer parameters first, but "
         "their updates land\nlast, so the gate serializes consecutive "
         "iterations and gives back part of its\nwithin-iteration win. "
         "This is precisely the cross-iteration tension that the\n"
         "successor systems (P3, ByteScheduler) resolve by scheduling "
         "gradient pushes so\nfront-layer updates complete first. The "
         "paper itself evaluates synchronized\nper-step training "
         "(in-graph replication), where this regime does not arise.\n"
         "\nWith push priorities — and chunking for slice-granularity "
         "queue-jumping — the\npipeline reopens wherever the uplink is "
         "the constraint (VGG-16 steady state\novertakes even the "
         "unordered baseline). When the backward *computation* order\n"
         "itself delays front-layer updates (Inception v2), push "
         "priorities have nothing\nto reorder; closing that residual gap "
         "requires P3-style per-slice forward\ngating, beyond this "
         "reproduction's scope.\n";
  return 0;
}
