#!/usr/bin/env bash
# Runs the scheduling-overhead benchmark suite and emits google-benchmark
# JSON, seeding the repo's perf trajectory: check BENCH_sched.json numbers
# against the previous run before landing scheduling-path changes.
#
# Besides the TIC/TAC scheduling costs, the suite's BM_SessionSweep cases
# record the wall-clock of a representative experiment grid through
# harness::Session's executor — serial (/1) vs one thread per core — so
# the sweep-parallelism win lands in BENCH_sched.json too; the summary
# below echoes those entries and the measured speedup.
#
# Usage: bench/run_benches.sh [build_dir] [out.json] [extra benchmark args]
#   BENCH_MIN_TIME=0.2 bench/run_benches.sh build-release
#
# The bare-number min-time default keeps old libbenchmark (< 1.7, which
# rejects a unit suffix) working; on >= 1.8 (deprecation warning for bare
# numbers) set the suffixed form explicitly, as CI does:
#   BENCH_MIN_TIME=0.05s bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sched.json}"
shift $(( $# > 2 ? 2 : $# ))

BIN="${BUILD_DIR}/bench_sched_overhead"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found — configure with Google Benchmark installed" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
  "$@"

echo "wrote ${OUT}"

# Sweep executor wall-clock, serial vs parallel, from the JSON just
# written (best effort: skipped when python3 is unavailable).
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
rows = [b for b in data.get("benchmarks", [])
        if b.get("name", "").startswith("BM_SessionSweep")]
if rows:
    print("sweep executor wall-clock (BM_SessionSweep):")
    for b in rows:
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}")
    if len(rows) >= 2:
        serial = rows[0]["real_time"]
        best = min(b["real_time"] for b in rows[1:])
        print(f"  serial vs parallel speedup: {serial / best:.2f}x")
EOF
fi
