#!/usr/bin/env bash
# Runs the scheduling-overhead and multi-job interference benchmark
# suites and emits one merged google-benchmark JSON, seeding the repo's
# perf trajectory: check BENCH_sched.json numbers against the previous
# run before landing scheduling-path changes.
#
# Besides the TIC/TAC scheduling costs, bench_sched_overhead's
# BM_SessionSweep cases record the wall-clock of a representative
# experiment grid through harness::Session's executor — serial (/1) vs
# one thread per core — bench_multijob's BM_MultiJob* cases record
# the contended-simulation cost plus per-policy slowdown/fairness
# counters, bench_service's BM_ServiceOpenSystem cases record the
# open-system scheduler-service SLOs (p99 slowdown, windowed fairness,
# utilization, queueing delay) per (policy x placement), and
# bench_faults' BM_FaultRecovery cases record the robustness SLOs
# (goodput vs offered, retries, lost iterations, MTTR) per (placement x
# fault scenario), and bench_exec's BM_ExecValidate cases record the
# sim-to-real round-trip cost plus prediction-fidelity counters
# (measured vs predicted iteration time, calibrated and uncalibrated
# error) per policy, and bench_lowering's BM_Lower* cases record the
# pass-pipeline lowering cost over the arena-interned IR against the
# frozen pre-IR implementation plus the arena interning counters
# (pool entries vs naive pred storage, dedup hits), and
# bench_clustersweep's BM_ClusterSweep cases record the 100/1000-job
# contended sweep through the sharded parallel engine plus the population
# SLO counters (p99 job iteration, Jain fairness); the summary below
# echoes all seven, plus the BM_RecvSetScan scalar-vs-widened bitset
# scans.
#
# Usage: bench/run_benches.sh [build_dir] [out.json] [extra benchmark args]
#   BENCH_MIN_TIME=0.2 bench/run_benches.sh build-release
#
# The bare-number min-time default keeps old libbenchmark (< 1.7, which
# rejects a unit suffix) working; on >= 1.8 (deprecation warning for bare
# numbers) set the suffixed form explicitly, as CI does:
#   BENCH_MIN_TIME=0.05s bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sched.json}"
shift $(( $# > 2 ? 2 : $# ))

BIN="${BUILD_DIR}/bench_sched_overhead"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found — configure with Google Benchmark installed" >&2
  exit 1
fi

# BENCH_sched.json is the repo's perf trajectory; numbers from anything
# but an optimized build poison it (a debug row once shipped as the
# committed baseline). Refuse unless the tree was configured Release, or
# the caller explicitly opts out for a local smoke run.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null || true)"
if [[ "${BUILD_TYPE}" != "Release" && "${BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
  echo "error: ${BUILD_DIR} is configured as '${BUILD_TYPE:-unknown}', not" \
       "Release — benchmark numbers from unoptimized builds must not enter" \
       "${OUT}." >&2
  echo "  configure one with: cmake -B build-release -S ." \
       "-DCMAKE_BUILD_TYPE=Release" >&2
  echo "  or set BENCH_ALLOW_DEBUG=1 to run anyway (numbers are then" \
       "labeled '${BUILD_TYPE:-unknown}', not fit for committing)." >&2
  exit 1
fi

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
  "$@"

# Multi-job interference and scheduler-service cases are merged into the
# same JSON, idempotently: rows are keyed by benchmark name, so a
# re-run (or a partial re-run against an existing BENCH_sched.json)
# replaces entries in place instead of duplicating them. The merge needs
# python3; the benchmarks themselves still run and print without it.
merge_rows() {
  local extra="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${OUT}" "${extra}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    extra = json.load(f)
rows = merged.setdefault("benchmarks", [])
index = {row.get("name"): i for i, row in enumerate(rows)}
for row in extra.get("benchmarks", []):
    i = index.get(row.get("name"))
    if i is None:
        index[row.get("name")] = len(rows)
        rows.append(row)
    else:
        rows[i] = row
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF
  else
    echo "note: python3 not found — rows of ${extra} not merged into ${OUT}" >&2
  fi
}

EXTRA_OUT="$(mktemp)"
trap 'rm -f "${EXTRA_OUT}"' EXIT
for extra_bench in bench_multijob bench_service bench_faults bench_exec \
                   bench_lowering bench_clustersweep; do
  EXTRA_BIN="${BUILD_DIR}/${extra_bench}"
  if [[ -x "${EXTRA_BIN}" ]]; then
    "${EXTRA_BIN}" \
      --benchmark_out="${EXTRA_OUT}" \
      --benchmark_out_format=json \
      --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
      "$@"
    merge_rows "${EXTRA_OUT}"
  else
    echo "note: ${EXTRA_BIN} not found — BENCH JSON has no ${extra_bench} rows" >&2
  fi
done

echo "wrote ${OUT}"

# Sweep executor wall-clock and multi-job interference, from the JSON
# just written (best effort: skipped when python3 is unavailable).
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
rows = [b for b in data.get("benchmarks", [])
        if b.get("name", "").startswith("BM_SessionSweep")]
if rows:
    print("sweep executor wall-clock (BM_SessionSweep):")
    for b in rows:
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}")
    if len(rows) >= 2:
        serial = rows[0]["real_time"]
        best = min(b["real_time"] for b in rows[1:])
        print(f"  serial vs parallel speedup: {serial / best:.2f}x")
multijob = [b for b in data.get("benchmarks", [])
            if b.get("name", "").startswith("BM_MultiJob")]
if multijob:
    print("multi-job interference (BM_MultiJob*):")
    for b in multijob:
        slowdown = b.get("mean_slowdown")
        fairness = b.get("fairness")
        extras = ""
        if slowdown is not None and fairness is not None:
            extras = f" (mean slowdown {slowdown:.3f}x, fairness {fairness:.3f})"
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
service = [b for b in data.get("benchmarks", [])
           if b.get("name", "").startswith("BM_Service")]
if service:
    print("scheduler-service SLOs (BM_ServiceOpenSystem, policy x placement):")
    for b in service:
        p99 = b.get("p99_slowdown")
        fairness = b.get("mean_fairness")
        util = b.get("utilization")
        extras = ""
        if p99 is not None:
            extras = (f" (p99 slowdown {p99:.3f}x, fairness {fairness:.3f},"
                      f" utilization {util:.3f})")
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
faults = [b for b in data.get("benchmarks", [])
          if b.get("name", "").startswith("BM_FaultRecovery")]
if faults:
    print("fault recovery SLOs (BM_FaultRecovery, placement x scenario):")
    for b in faults:
        goodput = b.get("goodput_iters_per_s")
        retries = b.get("retries")
        mttr = b.get("mttr_ms")
        extras = ""
        if goodput is not None:
            extras = (f" (goodput {goodput:.1f} iters/s,"
                      f" retries {retries:.0f}, MTTR {mttr:.1f} ms)")
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
execs = [b for b in data.get("benchmarks", [])
         if b.get("name", "").startswith("BM_ExecValidate")]
if execs:
    print("sim-to-real fidelity (BM_ExecValidate, per policy):")
    for b in execs:
        err = b.get("prediction_error_pct")
        uncal = b.get("uncalibrated_error_pct")
        ok = b.get("calibration_ok")
        extras = ""
        if err is not None:
            extras = (f" (prediction error {err:.2f}%,"
                      f" uncalibrated {uncal:.2f}%,"
                      f" fit {'ok' if ok else 'POOR'})")
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
lowering = [b for b in data.get("benchmarks", [])
            if b.get("name", "").startswith(("BM_Lower", "BM_Shared",
                                             "BM_PropertyIndex"))]
if lowering:
    print("lowering pipeline vs frozen reference (bench_lowering):")
    for b in lowering:
        pool = b.get("arena_pool_entries")
        naive = b.get("naive_pred_entries")
        hits = b.get("arena_dedup_hits")
        extras = ""
        if pool is not None and naive:
            extras = (f" (arena {pool:.0f} of {naive:.0f} naive pred"
                      f" entries, {hits:.0f} dedup hits)")
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
cluster = [b for b in data.get("benchmarks", [])
           if b.get("name", "").startswith("BM_ClusterSweep")]
if cluster:
    print("datacenter contended sweep (BM_ClusterSweep, sharded engine):")
    for b in cluster:
        fabrics = b.get("fabrics")
        p99 = b.get("p99_job_iteration_s")
        fairness = b.get("fairness")
        extras = ""
        if fabrics is not None:
            extras = (f" ({fabrics:.0f} fabrics, p99 job iteration"
                      f" {p99:.3f} s, fairness {fairness:.3f})")
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
scans = [b for b in data.get("benchmarks", [])
         if b.get("name", "").startswith("BM_RecvSetScan")]
if scans:
    print("RecvSet hot-path scans (BM_RecvSetScan, scalar vs widened):")
    by_arg = {}
    for b in scans:
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}")
        name = b["name"]
        arg = name.rsplit("/", 1)[-1]
        kind = "widened" if "widened" in name else "scalar"
        by_arg.setdefault(arg, {})[kind] = b["real_time"]
    for arg, kinds in by_arg.items():
        if "scalar" in kinds and "widened" in kinds and kinds["widened"]:
            print(f"  {arg} bits: widened is"
                  f" {kinds['scalar'] / kinds['widened']:.2f}x scalar")
EOF
fi
