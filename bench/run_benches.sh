#!/usr/bin/env bash
# Runs the scheduling-overhead and multi-job interference benchmark
# suites and emits one merged google-benchmark JSON, seeding the repo's
# perf trajectory: check BENCH_sched.json numbers against the previous
# run before landing scheduling-path changes.
#
# Besides the TIC/TAC scheduling costs, bench_sched_overhead's
# BM_SessionSweep cases record the wall-clock of a representative
# experiment grid through harness::Session's executor — serial (/1) vs
# one thread per core — and bench_multijob's BM_MultiJob* cases record
# the contended-simulation cost plus per-policy slowdown/fairness
# counters; the summary below echoes both.
#
# Usage: bench/run_benches.sh [build_dir] [out.json] [extra benchmark args]
#   BENCH_MIN_TIME=0.2 bench/run_benches.sh build-release
#
# The bare-number min-time default keeps old libbenchmark (< 1.7, which
# rejects a unit suffix) working; on >= 1.8 (deprecation warning for bare
# numbers) set the suffixed form explicitly, as CI does:
#   BENCH_MIN_TIME=0.05s bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sched.json}"
shift $(( $# > 2 ? 2 : $# ))

BIN="${BUILD_DIR}/bench_sched_overhead"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found — configure with Google Benchmark installed" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
  "$@"

# Multi-job interference cases are appended to the same JSON (the merge
# needs python3; the benchmark itself still runs and prints without it).
MULTIJOB_BIN="${BUILD_DIR}/bench_multijob"
if [[ -x "${MULTIJOB_BIN}" ]]; then
  MULTIJOB_OUT="$(mktemp)"
  trap 'rm -f "${MULTIJOB_OUT}"' EXIT
  "${MULTIJOB_BIN}" \
    --benchmark_out="${MULTIJOB_OUT}" \
    --benchmark_out_format=json \
    --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
    "$@"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${OUT}" "${MULTIJOB_OUT}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    extra = json.load(f)
merged.setdefault("benchmarks", []).extend(extra.get("benchmarks", []))
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF
  else
    echo "note: python3 not found — multi-job rows not merged into ${OUT}" >&2
  fi
else
  echo "note: ${MULTIJOB_BIN} not found — BENCH JSON has no multi-job rows" >&2
fi

echo "wrote ${OUT}"

# Sweep executor wall-clock and multi-job interference, from the JSON
# just written (best effort: skipped when python3 is unavailable).
if command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
rows = [b for b in data.get("benchmarks", [])
        if b.get("name", "").startswith("BM_SessionSweep")]
if rows:
    print("sweep executor wall-clock (BM_SessionSweep):")
    for b in rows:
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}")
    if len(rows) >= 2:
        serial = rows[0]["real_time"]
        best = min(b["real_time"] for b in rows[1:])
        print(f"  serial vs parallel speedup: {serial / best:.2f}x")
multijob = [b for b in data.get("benchmarks", [])
            if b.get("name", "").startswith("BM_MultiJob")]
if multijob:
    print("multi-job interference (BM_MultiJob*):")
    for b in multijob:
        slowdown = b.get("mean_slowdown")
        fairness = b.get("fairness")
        extras = ""
        if slowdown is not None and fairness is not None:
            extras = f" (mean slowdown {slowdown:.3f}x, fairness {fairness:.3f})"
        print(f"  {b['name']}: {b['real_time']:.1f} {b['time_unit']}{extras}")
EOF
fi
