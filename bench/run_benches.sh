#!/usr/bin/env bash
# Runs the scheduling-overhead benchmark suite and emits google-benchmark
# JSON, seeding the repo's perf trajectory: check BENCH_sched.json numbers
# against the previous run before landing scheduling-path changes.
#
# Usage: bench/run_benches.sh [build_dir] [out.json] [extra benchmark args]
#   BENCH_MIN_TIME=0.2 bench/run_benches.sh build-release
#
# The bare-number min-time default keeps old libbenchmark (< 1.7, which
# rejects a unit suffix) working; on >= 1.8 (deprecation warning for bare
# numbers) set the suffixed form explicitly, as CI does:
#   BENCH_MIN_TIME=0.05s bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sched.json}"
shift $(( $# > 2 ? 2 : $# ))

BIN="${BUILD_DIR}/bench_sched_overhead"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found — configure with Google Benchmark installed" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.05}" \
  "$@"

echo "wrote ${OUT}"
