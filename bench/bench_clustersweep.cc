// Datacenter-scale contended sweep through the sharded event engine
// (runtime/clustersweep.h, DESIGN.md §11): N identical jobs partitioned
// over ceil(N/64) PS fabrics, merged into one task graph, simulated by
// TaskGraphSim::RunParallel. The 1000-job case is the ROADMAP's "out of
// reach for the single-threaded engine" scale; its wall-clock plus the
// population SLO counters (p99 job iteration, Jain fairness) land in
// BENCH_sched.json next to the per-fabric BM_MultiJob* rows.
//
// Construction (1000 Runner builds: graphs, dependency analysis,
// schedules) happens once per benchmark, outside the timed loop — the
// timed region is one full simulated iteration of every job in the
// cluster, the quantity the parallel engine is supposed to buy down.
#include <benchmark/benchmark.h>

#include <string>

#include "runtime/clustersweep.h"
#include "runtime/multijob.h"

namespace {

void BM_ClusterSweep(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const std::string text =
      std::to_string(jobs) +
      "x{envG:workers=2:ps=1:training model=AlexNet v2 policy=tac "
      "iterations=1 seed=1}";
  const tictac::runtime::ClusterSweep sweep(
      tictac::runtime::ParseJobGroups(text, 4096), {});

  tictac::runtime::ClusterSweepResult result;
  for (auto _ : state) {
    result = sweep.Run(/*iterations=*/1, /*seed=*/1);
    benchmark::DoNotOptimize(result);
  }
  state.counters["fabrics"] = result.fabrics;
  state.counters["components"] = result.components;
  state.counters["p99_job_iteration_s"] = result.p99_job_iteration_s;
  state.counters["fairness"] = result.fairness;
  state.counters["total_throughput"] = result.total_throughput;
  state.SetLabel(std::to_string(result.jobs) + " jobs / " +
                 std::to_string(result.fabrics) + " fabrics");
}

BENCHMARK(BM_ClusterSweep)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
