// Quickstart: the Figure 1 toy graph end to end.
//
// Builds the two-recv DAG from the paper's Figure 1a, derives TIC and TAC
// schedules, and simulates the good and bad transfer orders on a
// two-resource device (one NIC, one processor) to show why ordering
// matters.
//
//   recv1 ──> op1 ──> op2
//   recv2 ───────────^
#include <iostream>

#include "core/graph.h"
#include "core/metrics.h"
#include "core/tac.h"
#include "core/tic.h"
#include "sim/engine.h"

using namespace tictac;

int main() {
  // 1. Build the computational graph (bytes/costs in arbitrary units).
  core::Graph graph;
  const auto recv1 = graph.AddRecv("recv1", /*bytes=*/100, /*param=*/0);
  const auto recv2 = graph.AddRecv("recv2", /*bytes=*/100, /*param=*/1);
  const auto op1 = graph.AddCompute("op1", /*cost=*/1.0);
  const auto op2 = graph.AddCompute("op2", /*cost=*/1.0);
  graph.AddEdge(recv1, op1);
  graph.AddEdge(op1, op2);
  graph.AddEdge(recv2, op2);
  std::cout << graph.DebugSummary() << "\n";

  // 2. Schedule with TIC (structure only) and TAC (timing-aware).
  core::MapTimeOracle oracle(
      {{recv1, 1.0}, {recv2, 1.0}, {op1, 1.0}, {op2, 1.0}});
  const core::Schedule tic = core::Tic(graph);
  const core::Schedule tac = core::Tac(graph, oracle);
  std::cout << "TIC priorities: recv1=" << tic.priority(recv1)
            << " recv2=" << tic.priority(recv2) << "\n";
  std::cout << "TAC priorities: recv1=" << tac.priority(recv1)
            << " recv2=" << tac.priority(recv2) << "\n\n";

  // 3. Simulate both transfer orders: NIC = resource 1, CPU = resource 0.
  auto simulate = [&](bool recv1_first) {
    std::vector<sim::Task> tasks(4);
    tasks[0].duration = 1.0;                     // recv1 on the NIC
    tasks[0].resource = 1;
    tasks[0].priority = recv1_first ? 0 : 1;
    tasks[1].duration = 1.0;                     // recv2 on the NIC
    tasks[1].resource = 1;
    tasks[1].priority = recv1_first ? 1 : 0;
    tasks[2].duration = 1.0;                     // op1 <- recv1
    tasks[2].resource = 0;
    tasks[2].preds = {0};
    tasks[3].duration = 1.0;                     // op2 <- op1, recv2
    tasks[3].resource = 0;
    tasks[3].preds = {2, 1};
    sim::TaskGraphSim sim(std::move(tasks), 2);
    return sim.Run({}, /*seed=*/1).makespan;
  };
  const double good = simulate(true);
  const double bad = simulate(false);
  std::cout << "makespan, recv1 first (Figure 1b, the TicTac order): "
            << good << "\n";
  std::cout << "makespan, recv2 first (Figure 1c, the unlucky order): "
            << bad << "\n\n";

  // 4. Scheduling-efficiency metric (Eq. 1-4).
  const auto bounds = core::ComputeBounds(graph, oracle);
  std::cout << "U (serial) = " << bounds.upper
            << ", L (ideal overlap) = " << bounds.lower << "\n";
  std::cout << "E(good) = " << core::Efficiency(bounds, good)
            << ", E(bad) = " << core::Efficiency(bounds, bad)
            << ", speedup headroom S = " << core::Speedup(bounds) << "\n";
  return 0;
}
