// Distributed training of ResNet-50 v2 on a simulated 8-worker / 2-PS
// envG cluster: baseline vs TIC vs TAC. This is the workload the paper's
// introduction motivates — synchronized Model-Replica SGD where iteration
// time is gated by parameter transfers. The three runs are one SweepSpec;
// the Session builds the worker graph and its dependency analysis once
// and reuses them for every policy.
#include <iostream>

#include "harness/session.h"
#include "models/zoo.h"
#include "util/table.h"

using namespace tictac;

int main() {
  const runtime::SweepSpec sweep = runtime::SweepSpec::Parse(
      "envG:workers=8:ps=2:training model=ResNet-50 v2 "
      "policies=baseline,tic,tac iterations=10 seed=2024");
  harness::Session session;
  const harness::ResultTable results = session.RunAll(sweep);

  const auto& model = models::FindModel("ResNet-50 v2");
  const auto& runner = session.runner(results.row(0).spec);
  std::cout << "Training " << model.name << " on envG: 8 workers, 2 PS, "
            << "batch " << model.standard_batch << " per worker\n"
            << "worker graph: " << runner.worker_graph().size()
            << " ops, " << model.num_params << " parameter transfers ("
            << util::Fmt(model.total_param_mib, 1) << " MiB) per direction\n\n";

  util::Table table({"Policy", "Iteration (ms)", "Throughput (samples/s)",
                     "Speedup", "Efficiency E", "Max straggler %"});
  for (const auto& row : results.rows()) {
    table.AddRow({row.spec.policy, util::Fmt(row.mean_iteration_s * 1e3, 1),
                  util::Fmt(row.throughput, 1),
                  util::FmtPct(results.SpeedupVsBaseline(row)),
                  util::Fmt(row.mean_efficiency, 3),
                  util::Fmt(row.max_straggler_pct, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nTIC/TAC enforce one near-optimal transfer order on every "
               "worker; the baseline\nre-rolls a random order each "
               "iteration, stalling compute and creating stragglers.\n";
  return 0;
}
