// Distributed training of ResNet-50 v2 on a simulated 8-worker / 2-PS
// envG cluster: baseline vs TIC vs TAC. This is the workload the paper's
// introduction motivates — synchronized Model-Replica SGD where iteration
// time is gated by parameter transfers.
#include <iostream>

#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

int main() {
  const auto& model = models::FindModel("ResNet-50 v2");
  const auto config = runtime::EnvG(/*num_workers=*/8, /*num_ps=*/2,
                                    /*training=*/true);
  runtime::Runner runner(model, config);

  std::cout << "Training " << model.name << " on envG: 8 workers, 2 PS, "
            << "batch " << model.standard_batch << " per worker\n"
            << "worker graph: " << runner.worker_graph().size()
            << " ops, " << model.num_params << " parameter transfers ("
            << util::Fmt(model.total_param_mib, 1) << " MiB) per direction\n\n";

  util::Table table({"Policy", "Iteration (ms)", "Throughput (samples/s)",
                     "Speedup", "Efficiency E", "Max straggler %"});
  double baseline_throughput = 0.0;
  for (const std::string policy : {"baseline", "tic", "tac"}) {
    const auto result = runner.Run(policy, /*iterations=*/10, /*seed=*/2024);
    if (policy == "baseline") {
      baseline_throughput = result.Throughput();
    }
    table.AddRow(
        {policy, util::Fmt(result.MeanIterationTime() * 1e3, 1),
         util::Fmt(result.Throughput(), 1),
         util::FmtPct(result.Throughput() / baseline_throughput - 1.0),
         util::Fmt(result.MeanEfficiency(), 3),
         util::Fmt(result.MaxStragglerPct(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nTIC/TAC enforce one near-optimal transfer order on every "
               "worker; the baseline\nre-rolls a random order each "
               "iteration, stalling compute and creating stragglers.\n";
  return 0;
}
