// The reinforcement-learning serving setup of Figure 3: inference agents
// repeatedly pull fresh parameters from the parameter servers and run the
// forward pass. Enforced transfer ordering shortens the read-and-infer
// cycle — the paper's second target environment (§2). The whole setup is
// one declarative SweepSpec (gRPC reordering disabled via ooo=0) executed
// by harness::Session.
#include <iostream>

#include "harness/session.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "RL inference agents reading parameters from PS "
               "(envG, 4 agents, 1 PS)\n\n";

  const runtime::SweepSpec sweep = runtime::SweepSpec::Parse(
      "envG:workers=4:ps=1:inference:ooo=0 "
      "models=Inception v1,Inception v3,ResNet-50 v1 "
      "policies=baseline,tic seed=7");
  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());

  util::Table table({"Policy network", "Baseline (samples/s)",
                     "TIC (samples/s)", "Speedup", "Unique orders base/TIC"});
  // Expansion order: model → policy (policy varies fastest).
  for (std::size_t i = 0; i < results.size(); i += 2) {
    const harness::ResultRow& base = results.row(i);
    const harness::ResultRow& tic = results.row(i + 1);
    table.AddRow({base.spec.model, util::Fmt(base.throughput, 1),
                  util::Fmt(tic.throughput, 1),
                  util::FmtPct(results.SpeedupVsBaseline(tic)),
                  std::to_string(base.unique_recv_orders) + "/" +
                      std::to_string(tic.unique_recv_orders)});
  }
  table.Print(std::cout);
  std::cout << "\nEvery agent sees the same enforced order under TIC (one "
               "unique order),\nwhile vanilla execution re-randomizes the "
               "order each step.\n";
  return 0;
}
