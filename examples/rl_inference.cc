// The reinforcement-learning serving setup of Figure 3: inference agents
// repeatedly pull fresh parameters from the parameter servers and run the
// forward pass. Enforced transfer ordering shortens the read-and-infer
// cycle — the paper's second target environment (§2).
#include <iostream>

#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

int main() {
  std::cout << "RL inference agents reading parameters from PS "
               "(envG, 4 agents, 1 PS)\n\n";
  util::Table table({"Policy network", "Baseline (samples/s)",
                     "TIC (samples/s)", "Speedup", "Unique orders base/TIC"});
  for (const char* name : {"Inception v1", "Inception v3", "ResNet-50 v1"}) {
    const auto& model = models::FindModel(name);
    auto config = runtime::EnvG(/*num_workers=*/4, /*num_ps=*/1,
                                /*training=*/false);
    config.sim.out_of_order_probability = 0.0;
    runtime::Runner runner(model, config);
    const auto base = runner.Run("baseline", 10, 7);
    const auto tic = runner.Run("tic", 10, 7);
    table.AddRow({name, util::Fmt(base.Throughput(), 1),
                  util::Fmt(tic.Throughput(), 1),
                  util::FmtPct(tic.Throughput() / base.Throughput() - 1.0),
                  std::to_string(base.UniqueRecvOrders()) + "/" +
                      std::to_string(tic.UniqueRecvOrders())});
  }
  table.Print(std::cout);
  std::cout << "\nEvery agent sees the same enforced order under TIC (one "
               "unique order),\nwhile vanilla execution re-randomizes the "
               "order each step.\n";
  return 0;
}
