// Profiling workflow (§5): run a few profiling iterations, estimate the
// time oracle with the min-of-5 rule, schedule with TAC using the
// *estimated* times, and export Chrome traces of a baseline and a TAC
// iteration for visual comparison (load them at chrome://tracing or
// https://ui.perfetto.dev).
#include <iostream>

#include "core/tac.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/lowering.h"
#include "runtime/runner.h"
#include "runtime/sharding.h"
#include "trace/estimator.h"
#include "trace/tracer.h"

using namespace tictac;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const auto& model = models::FindModel("Inception v2");
  const auto config = runtime::EnvG(2, 1, /*training=*/true);
  const auto graph = models::BuildWorkerGraph(model, {.training = true});
  const auto ps_of =
      runtime::ShardParams(models::ParamSizes(model), config.num_ps);

  // 1. Profile the unscheduled cluster to estimate per-op times.
  const auto baseline_lowering =
      runtime::LowerCluster(graph, core::Schedule(), ps_of, config);
  const core::MapTimeOracle oracle = trace::EstimateWorkerOracle(
      baseline_lowering, config.sim, trace::kDefaultProfilingRuns, 42);
  std::cout << "estimated time oracle from "
            << trace::kDefaultProfilingRuns << " profiling runs ("
            << graph.size() << " ops)\n";

  // 2. Schedule with TAC on the estimated oracle.
  const core::Schedule schedule = core::Tac(graph, oracle);
  const auto tac_lowering =
      runtime::LowerCluster(graph, schedule, ps_of, config);

  // 3. Simulate one iteration of each and export traces.
  auto export_trace = [&](const runtime::Lowering& lowering, bool enforce,
                          const std::string& path) {
    sim::TaskGraphSim sim = lowering.BuildSim();
    sim::SimOptions options = config.sim;
    options.enforce_gates = enforce;
    const sim::SimResult result = sim.Run(options, 7);
    trace::WriteChromeTrace(trace::CollectSpans(lowering, result, graph),
                            path);
    return result.makespan;
  };
  const double t_base = export_trace(baseline_lowering, false,
                                     out_dir + "/trace_baseline.json");
  const double t_tac =
      export_trace(tac_lowering, true, out_dir + "/trace_tac.json");

  std::cout << "baseline iteration: " << t_base * 1e3 << " ms -> "
            << out_dir << "/trace_baseline.json\n";
  std::cout << "TAC iteration:      " << t_tac * 1e3 << " ms -> "
            << out_dir << "/trace_tac.json\n";
  std::cout << "open both in chrome://tracing and compare the NIC rows: "
               "TAC keeps the processor fed.\n";
  return 0;
}
