// tictac_cli — command-line front end over the public API.
//
//   tictac_cli models
//       List the model zoo with Table 1 characteristics.
//   tictac_cli policies        (also: tictac_cli --list-policies)
//       List the registered scheduling policies.
//   tictac_cli schedule <model> [--policy <name>] [--training]
//       Print the priority list (the ordering wizard's output, §5).
//   tictac_cli simulate <model> [--workers N] [--ps N] [--training]
//                       [--policy <name>] [--iterations N]
//       Simulate a cluster and report throughput / E / stragglers.
//   tictac_cli compare <model> [--workers N] [--ps N] [--training]
//       Every registered policy side by side against the baseline.
//   tictac_cli export-graph <model> [--training]
//       Serialize the worker partition (core/io.h text format).
//   tictac_cli export-dot <model> [--training]
//       Graphviz DOT of the worker partition with TIC priorities.
//
// Policy names are core::PolicyRegistry specs ("tic", "tac", "random:7",
// "reverse:tac", ...); `--method` is accepted as a deprecated alias of
// `--policy`.
#include <cstring>
#include <iostream>
#include <string>

#include "core/io.h"
#include "core/policy_registry.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

namespace {

struct Args {
  std::string command;
  std::string model;
  int workers = 4;
  int ps = 1;
  bool training = false;
  std::string policy = "tic";
  int iterations = 10;
};

int Usage() {
  std::cerr
      << "usage:\n"
         "  tictac_cli models\n"
         "  tictac_cli policies\n"
         "  tictac_cli schedule <model> [--policy <name>] [--training]\n"
         "  tictac_cli simulate <model> [--workers N] [--ps N] "
         "[--training] [--policy <name>] [--iterations N]\n"
         "  tictac_cli compare <model> [--workers N] [--ps N] "
         "[--training]\n"
         "  tictac_cli export-graph <model> [--training]\n"
         "  tictac_cli export-dot <model> [--training]\n"
         "policies (see `tictac_cli policies`): ";
  bool first = true;
  for (const auto& name : core::PolicyRegistry::Global().List()) {
    std::cerr << (first ? "" : ", ") << name;
    first = false;
  }
  std::cerr << "\n";
  return 2;
}

int CmdListPolicies() {
  util::Table table({"Policy", "Needs oracle", "Example spec"});
  const auto& registry = core::PolicyRegistry::Global();
  for (const auto& name : registry.List()) {
    const auto policy = registry.Create(name);
    table.AddRow({name, policy->RequiresOracle() ? "yes" : "no",
                  policy->name()});
  }
  table.Print(std::cout);
  return 0;
}

bool Parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  if (args.command == "--list-policies") {
    args.command = "policies";
    return true;
  }
  int i = 2;
  if (args.command != "models" && args.command != "policies") {
    if (i >= argc) return false;
    args.model = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--training") {
      args.training = true;
    } else if (flag == "--workers") {
      const char* v = next();
      if (!v) return false;
      args.workers = std::stoi(v);
    } else if (flag == "--ps") {
      const char* v = next();
      if (!v) return false;
      args.ps = std::stoi(v);
    } else if (flag == "--policy" || flag == "--method") {
      const char* v = next();
      if (!v) return false;
      args.policy = v;
    } else if (flag == "--iterations") {
      const char* v = next();
      if (!v) return false;
      args.iterations = std::stoi(v);
    } else if (flag == "--list-policies") {
      args.command = "policies";
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

int CmdModels() {
  util::Table table({"Model", "#Par", "MiB", "#Ops inf", "#Ops train",
                     "Batch", "Family"});
  for (const auto& info : models::ModelZoo()) {
    table.AddRow({info.name, std::to_string(info.num_params),
                  util::Fmt(info.total_param_mib, 2),
                  std::to_string(info.ops_inference),
                  std::to_string(info.ops_training),
                  std::to_string(info.standard_batch),
                  ToString(info.family)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdSchedule(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = args.training});
  const auto policy = core::PolicyRegistry::Global().Create(args.policy);
  const core::PropertyIndex index(graph);
  const core::AnalyticalTimeOracle oracle{core::PlatformModel{}};
  const core::Schedule schedule = policy->Compute(index, oracle);
  std::cout << "# priority list for " << info.name << " ("
            << (args.training ? "training" : "inference") << ", "
            << policy->name() << ")\n"
            << "# rank param bytes priority op\n";
  int rank = 0;
  for (const core::OpId r : schedule.RecvOrder(graph)) {
    const core::Op& op = graph.op(r);
    std::cout << rank++ << " " << op.param << " " << op.bytes << " ";
    if (schedule.HasPriority(r)) {
      std::cout << schedule.priority(r);
    } else {
      std::cout << "-";  // the policy assigns no priority to this recv
    }
    std::cout << " " << op.name << "\n";
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const auto config = runtime::EnvG(args.workers, args.ps, args.training);
  runtime::Runner runner(info, config);
  const auto result = runner.Run(args.policy, args.iterations, 1);
  std::cout << info.name << ": " << args.workers << " workers, " << args.ps
            << " PS, " << (args.training ? "training" : "inference")
            << ", policy=" << args.policy << "\n";
  std::cout << "  mean iteration time: "
            << util::Fmt(result.MeanIterationTime() * 1e3, 2) << " ms\n";
  std::cout << "  throughput:          " << util::Fmt(result.Throughput(), 1)
            << " samples/s\n";
  std::cout << "  scheduling eff. E:   "
            << util::Fmt(result.MeanEfficiency(), 3) << "\n";
  std::cout << "  comm/comp overlap:   " << util::Fmt(result.MeanOverlap(), 3)
            << "\n";
  std::cout << "  max straggler share: "
            << util::Fmt(result.MaxStragglerPct(), 1) << "%\n";
  return 0;
}

int CmdCompare(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const auto config = runtime::EnvG(args.workers, args.ps, args.training);
  runtime::Runner runner(info, config);
  util::Table table({"Policy", "Iteration (ms)", "Throughput", "Speedup",
                     "E", "Overlap", "Max straggler %"});
  double base = 0.0;
  // Registration order puts "baseline" first, so `base` is set before any
  // speedup is computed.
  for (const auto& name : core::PolicyRegistry::Global().List()) {
    const auto result = runner.Run(name, args.iterations, 1);
    if (name == "baseline") base = result.Throughput();
    table.AddRow({name, util::Fmt(result.MeanIterationTime() * 1e3, 1),
                  util::Fmt(result.Throughput(), 1),
                  util::FmtPct(result.Throughput() / base - 1.0),
                  util::Fmt(result.MeanEfficiency(), 3),
                  util::Fmt(result.MeanOverlap(), 3),
                  util::Fmt(result.MaxStragglerPct(), 1)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) return Usage();
  try {
    if (args.command == "models") return CmdModels();
    if (args.command == "policies") return CmdListPolicies();
    if (args.command == "schedule") return CmdSchedule(args);
    if (args.command == "simulate") return CmdSimulate(args);
    if (args.command == "compare") return CmdCompare(args);
    if (args.command == "export-graph" || args.command == "export-dot") {
      const auto& info = models::FindModel(args.model);
      const core::Graph graph =
          models::BuildWorkerGraph(info, {.training = args.training});
      if (args.command == "export-graph") {
        std::cout << core::GraphToString(graph);
      } else {
        const core::Schedule tic = core::Tic(graph);
        std::cout << core::ToDot(graph, &tic);
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
