// tictac_cli — command-line front end over the public API.
//
//   tictac_cli models
//       List the model zoo with Table 1 characteristics.
//   tictac_cli schedule <model> [--method tic|tac] [--training]
//       Print the priority list (the ordering wizard's output, §5).
//   tictac_cli simulate <model> [--workers N] [--ps N] [--training]
//                       [--method baseline|tic|tac] [--iterations N]
//       Simulate a cluster and report throughput / E / stragglers.
//   tictac_cli compare <model> [--workers N] [--ps N] [--training]
//       Baseline vs TIC vs TAC side by side.
//   tictac_cli export-graph <model> [--training]
//       Serialize the worker partition (core/io.h text format).
//   tictac_cli export-dot <model> [--training]
//       Graphviz DOT of the worker partition with TIC priorities.
#include <cstring>
#include <iostream>
#include <string>

#include "core/io.h"
#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace tictac;

namespace {

struct Args {
  std::string command;
  std::string model;
  int workers = 4;
  int ps = 1;
  bool training = false;
  std::string method = "tic";
  int iterations = 10;
};

int Usage() {
  std::cerr
      << "usage:\n"
         "  tictac_cli models\n"
         "  tictac_cli schedule <model> [--method tic|tac] [--training]\n"
         "  tictac_cli simulate <model> [--workers N] [--ps N] "
         "[--training] [--method baseline|tic|tac] [--iterations N]\n"
         "  tictac_cli compare <model> [--workers N] [--ps N] "
         "[--training]\n";
  return 2;
}

bool Parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int i = 2;
  if (args.command != "models") {
    if (i >= argc) return false;
    args.model = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--training") {
      args.training = true;
    } else if (flag == "--workers") {
      const char* v = next();
      if (!v) return false;
      args.workers = std::stoi(v);
    } else if (flag == "--ps") {
      const char* v = next();
      if (!v) return false;
      args.ps = std::stoi(v);
    } else if (flag == "--method") {
      const char* v = next();
      if (!v) return false;
      args.method = v;
    } else if (flag == "--iterations") {
      const char* v = next();
      if (!v) return false;
      args.iterations = std::stoi(v);
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

runtime::Method ParseMethod(const std::string& name) {
  if (name == "baseline") return runtime::Method::kBaseline;
  if (name == "tac") return runtime::Method::kTac;
  return runtime::Method::kTic;
}

int CmdModels() {
  util::Table table({"Model", "#Par", "MiB", "#Ops inf", "#Ops train",
                     "Batch", "Family"});
  for (const auto& info : models::ModelZoo()) {
    table.AddRow({info.name, std::to_string(info.num_params),
                  util::Fmt(info.total_param_mib, 2),
                  std::to_string(info.ops_inference),
                  std::to_string(info.ops_training),
                  std::to_string(info.standard_batch),
                  ToString(info.family)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdSchedule(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = args.training});
  core::Schedule schedule;
  if (args.method == "tac") {
    core::AnalyticalTimeOracle oracle{core::PlatformModel{}};
    schedule = core::Tac(graph, oracle);
  } else {
    schedule = core::Tic(graph);
  }
  std::cout << "# priority list for " << info.name << " ("
            << (args.training ? "training" : "inference") << ", "
            << args.method << ")\n"
            << "# rank param bytes priority op\n";
  int rank = 0;
  for (const core::OpId r : schedule.RecvOrder(graph)) {
    const core::Op& op = graph.op(r);
    std::cout << rank++ << " " << op.param << " " << op.bytes << " "
              << schedule.priority(r) << " " << op.name << "\n";
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const auto config = runtime::EnvG(args.workers, args.ps, args.training);
  runtime::Runner runner(info, config);
  const auto result =
      runner.Run(ParseMethod(args.method), args.iterations, 1);
  std::cout << info.name << ": " << args.workers << " workers, " << args.ps
            << " PS, " << (args.training ? "training" : "inference")
            << ", method=" << args.method << "\n";
  std::cout << "  mean iteration time: "
            << util::Fmt(result.MeanIterationTime() * 1e3, 2) << " ms\n";
  std::cout << "  throughput:          " << util::Fmt(result.Throughput(), 1)
            << " samples/s\n";
  std::cout << "  scheduling eff. E:   "
            << util::Fmt(result.MeanEfficiency(), 3) << "\n";
  std::cout << "  comm/comp overlap:   " << util::Fmt(result.MeanOverlap(), 3)
            << "\n";
  std::cout << "  max straggler share: "
            << util::Fmt(result.MaxStragglerPct(), 1) << "%\n";
  return 0;
}

int CmdCompare(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const auto config = runtime::EnvG(args.workers, args.ps, args.training);
  runtime::Runner runner(info, config);
  util::Table table({"Method", "Iteration (ms)", "Throughput", "Speedup",
                     "E", "Overlap", "Max straggler %"});
  double base = 0.0;
  for (const auto method : {runtime::Method::kBaseline, runtime::Method::kTic,
                            runtime::Method::kTac}) {
    const auto result = runner.Run(method, args.iterations, 1);
    if (method == runtime::Method::kBaseline) base = result.Throughput();
    table.AddRow({ToString(method),
                  util::Fmt(result.MeanIterationTime() * 1e3, 1),
                  util::Fmt(result.Throughput(), 1),
                  util::FmtPct(result.Throughput() / base - 1.0),
                  util::Fmt(result.MeanEfficiency(), 3),
                  util::Fmt(result.MeanOverlap(), 3),
                  util::Fmt(result.MaxStragglerPct(), 1)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) return Usage();
  try {
    if (args.command == "models") return CmdModels();
    if (args.command == "schedule") return CmdSchedule(args);
    if (args.command == "simulate") return CmdSimulate(args);
    if (args.command == "compare") return CmdCompare(args);
    if (args.command == "export-graph" || args.command == "export-dot") {
      const auto& info = models::FindModel(args.model);
      const core::Graph graph =
          models::BuildWorkerGraph(info, {.training = args.training});
      if (args.command == "export-graph") {
        std::cout << core::GraphToString(graph);
      } else {
        const core::Schedule tic = core::Tic(graph);
        std::cout << core::ToDot(graph, &tic);
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
