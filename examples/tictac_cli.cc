// tictac_cli — command-line front end over the public API.
//
//   tictac_cli models
//       List the model zoo with Table 1 characteristics.
//   tictac_cli policies        (also: tictac_cli --list-policies)
//       List the registered scheduling policies.
//   tictac_cli schedule <model> [--policy <name>] [--training]
//       Print the priority list (the ordering wizard's output, §5).
//   tictac_cli run --spec "<experiment spec>"
//       Execute one declaratively-specified experiment, e.g.
//       --spec "envG:workers=8:ps=4:training model=VGG-16 policy=tac".
//   tictac_cli sweep --sweep "<sweep spec>" [--parallel N] [--csv|--json]
//       Expand a cartesian grid and execute it on a thread pool, e.g.
//       --sweep "envG:workers=2,4,8:ps=1 models=VGG-16,Inception v2
//       policies=baseline,tic,tac". Emits an aligned table by default,
//       CSV or JSON on request; rows are deterministic for any N.
//   tictac_cli multijob --jobs "<multijob spec>" [--no-isolated] [--json]
//       Co-locate N jobs on one shared PS fabric and report per-job
//       makespans plus slowdown/fairness against isolated runs, e.g.
//       --jobs "2x{envG:workers=4:ps=2:training model=ResNet-101 v1
//       policy=tac}". Grammar: [COUNTx]{<experiment spec>}[@offset_s],
//       whitespace-separated (runtime/multijob.h, DESIGN.md §6).
//   tictac_cli lower --jobs "<multijob spec>" [--dump] [--json]
//       Lower a composed scenario — chunking, sharding, schedule
//       computation, replica expansion, PS lowering, multi-job merging,
//       arrival offsets — through ONE ir::PassPipeline invocation
//       (DESIGN.md §10) with per-pass invariant checks, then simulate
//       and report per-job and combined results. --dump prints each
//       pass's module summary; a bare experiment spec (no braces) is
//       accepted as a single job, e.g.
//       --jobs "envG:workers=4:ps=2:training:chunk=4096:shard=even
//       model=VGG-16 policy=tac".
//   tictac_cli clustersweep --jobs "<job groups>" [--fabrics K]
//                           [--threads N] [--json]
//       Datacenter-scale contended sweep (DESIGN.md §11): partition N
//       jobs (same group grammar as multijob, but counts up to 4096)
//       over K shared PS fabrics — K = 0 or absent picks the fewest the
//       64-job per-fabric cap allows — merge them into one task graph
//       and simulate it on the sharded event engine, e.g.
//       --jobs "1000x{envG:workers=2:ps=1:training model=AlexNet v2
//       policy=tac iterations=2 seed=1}" --threads 8. The report
//       (per-job iteration-time distribution, total throughput, Jain
//       fairness) is byte-identical at every --threads value.
//   tictac_cli serve --arrivals "<arrival spec>" [--fabrics K]
//                    [--duration T] [--job "<experiment spec>"]...
//                    [--placement <name>] [--max-jobs N] [--queue N]
//                    [--seed N] [--faults "<fault spec>"]
//                    [--retry-budget N] [--trace out.json] [--json]
//       Long-running cluster-scheduler service (DESIGN.md §7): an open
//       system where jobs arrive over time (poisson:rate=...,
//       bursty:rate=...:burst=..., or trace:<csv>), are admitted and
//       placed onto one of K shared PS fabrics, and SLO metrics
//       (p50/p99 slowdown, windowed Jain fairness, utilization,
//       queueing delay) are reported. --job gives the synthetic
//       workload templates (repeatable, cycled); --trace dumps the
//       per-job record array as JSON. --faults injects a deterministic
//       fault timeline (DESIGN.md §8) — stragglers, slow links, NIC
//       flaps, worker/fabric crashes — and the report grows MTTR,
//       retry, lost-work, and goodput metrics.
//   tictac_cli exec [--model <name>] [--policy <name>]... [--workers N]
//                   [--ps K] [--iters I] [--seed N] [--straggler w=F]...
//                   [--deterministic] [--link-jitter SIGMA] [--json]
//       Execute the lowered task graph for real on the in-process
//       parameter-server backend (src/exec/, DESIGN.md §9): real
//       worker/PS threads, real tensor push/pull, the policy's send
//       order enforced at each worker. The measured trace calibrates
//       the platform constants and the run reports predicted vs
//       measured iteration time per policy. --policy is repeatable
//       (default: baseline, tic, tac); --straggler w=F slows worker w
//       by factor F; --deterministic swaps the wall clock for a
//       reproducible virtual clock (byte-identical JSON per seed).
//   tictac_cli simulate <model> [--workers N] [--ps N] [--training]
//                       [--policy <name>] [--iterations N] [--env envC]
//       Simulate a cluster and report throughput / E / stragglers.
//   tictac_cli compare <model> [--workers N] [--ps N] [--training]
//       Every registered policy side by side against the baseline.
//   tictac_cli export-graph <model> [--training]
//       Serialize the worker partition (core/io.h text format).
//   tictac_cli export-dot <model> [--training]
//       Graphviz DOT of the worker partition with TIC priorities.
//
// Policy names are core::PolicyRegistry specs ("tic", "tac", "random:7",
// "reverse:tac", ...). The spec/sweep grammar is documented in
// DESIGN.md §5 and runtime/spec.h.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/io.h"
#include "core/policy_registry.h"
#include "core/tic.h"
#include "exec/validate.h"
#include "fault/fault.h"
#include "harness/session.h"
#include "ir/lower.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/clustersweep.h"
#include "sched/placement.h"
#include "util/table.h"

using namespace tictac;

namespace {

struct Args {
  std::string command;
  std::string model;
  std::string env = "envG";
  int workers = 4;
  int ps = 1;
  bool training = false;
  std::string policy = "tic";
  int iterations = 10;
  // run/sweep/multijob: the joined spec text plus output/executor options.
  std::string spec_text;
  int parallelism = 0;  // 0 = default (all cores for sweep)
  bool no_isolated = false;  // multijob: skip the isolated references
  bool dump = false;         // lower: per-pass module summaries
  enum class Emit { kTable, kCsv, kJson } emit = Emit::kTable;
  // serve: the service configuration (defaults mirror ServiceConfig).
  std::string arrivals;
  std::vector<std::string> serve_jobs;  // --job templates, repeatable
  int fabrics = 1;
  double duration = 10.0;
  std::string placement = "least-loaded";
  int max_jobs = 8;
  int queue = 64;
  std::uint64_t seed = 1;
  std::string trace_out;  // --trace: per-job JSON records file
  std::string faults;     // --faults: fault::FaultSpec grammar
  int retry_budget = 3;   // --retry-budget: evictions before failure
  // clustersweep: fabric count (0 = fewest the cap allows) and engine
  // threads (0 = hardware concurrency).
  int sweep_fabrics = 0;
  int threads = 0;
  // exec: sim-to-real validation knobs (exec::ExecSpec).
  std::vector<std::string> exec_policies;          // --policy, repeatable
  std::vector<std::pair<int, double>> stragglers;  // --straggler w=F
  bool deterministic = false;                      // virtual clock
  double link_jitter = 0.0;                        // lognormal sigma
};

int Usage() {
  std::cerr
      << "usage:\n"
         "  tictac_cli models\n"
         "  tictac_cli policies\n"
         "  tictac_cli schedule <model> [--policy <name>] [--training]\n"
         "  tictac_cli run --spec \"<spec>\"\n"
         "  tictac_cli sweep --sweep \"<sweep>\" [--parallel N] "
         "[--csv|--json]\n"
         "  tictac_cli multijob --jobs \"<multijob>\" [--no-isolated] "
         "[--json]\n"
         "  tictac_cli lower --jobs \"<multijob>\" [--dump] [--json]\n"
         "  tictac_cli clustersweep --jobs \"<job groups>\" [--fabrics K] "
         "[--threads N] [--json]\n"
         "  tictac_cli serve --arrivals \"<arrival>\" [--fabrics K] "
         "[--duration T] [--job \"<spec>\"]... [--placement <name>] "
         "[--max-jobs N] [--queue N] [--seed N] [--faults \"<faults>\"] "
         "[--retry-budget N] [--trace FILE] [--json]\n"
         "  tictac_cli exec [--model <name>] [--policy <name>]... "
         "[--workers N] [--ps K] [--iters I] [--seed N] "
         "[--straggler w=F]... [--deterministic] [--link-jitter SIGMA] "
         "[--json]\n"
         "  tictac_cli simulate <model> [--workers N] [--ps N] "
         "[--training] [--policy <name>] [--iterations N] [--env envC]\n"
         "  tictac_cli compare <model> [--workers N] [--ps N] "
         "[--training]\n"
         "  tictac_cli export-graph <model> [--training]\n"
         "  tictac_cli export-dot <model> [--training]\n"
         "spec grammar:  envG:workers=8:ps=4:training model=VGG-16 "
         "policy=tac iterations=10 seed=1\n"
         "sweep grammar: comma lists on any axis, e.g. "
         "envG:workers=2,4,8:ps=1 models=VGG-16,Inception v2 "
         "policies=baseline,tic\n"
         "multijob grammar: whitespace-separated [COUNTx]{<spec>}[@offset_s]"
         " groups — COUNTx replicates the braced experiment spec, @offset_s "
         "delays its start by offset_s seconds (both optional), e.g. "
         "2x{envG:workers=4:ps=2:training model=ResNet-101 v1 "
         "policy=tac} {envG:workers=2:ps=2 model=VGG-16}@0.05\n"
         "arrival grammar: poisson:rate=R | bursty:rate=R:burst=B | "
         "trace:<csv of `t,<spec>` rows>\n"
         "fault grammar:  ';'-joined clauses or trace:<csv>, e.g. "
         "straggler:worker=2:factor=3:at=1:for=2; "
         "slowlink:nic=0:scale=0.25:at=1:for=2; crash:worker=2:at=5; "
         "crash:fabric=1:at=5; flap:nic=0:period=0.5:at=1:for=3\n"
         "placements: ";
  bool first_placement = true;
  for (const auto& name : sched::PlacementPolicyNames()) {
    std::cerr << (first_placement ? "" : ", ") << name;
    first_placement = false;
  }
  std::cerr << "\npolicies (see `tictac_cli policies`): ";
  bool first = true;
  for (const auto& name : core::PolicyRegistry::Global().List()) {
    std::cerr << (first ? "" : ", ") << name;
    first = false;
  }
  std::cerr << "\n";
  return 2;
}

int CmdListPolicies() {
  util::Table table({"Policy", "Needs oracle", "Example spec"});
  const auto& registry = core::PolicyRegistry::Global();
  for (const auto& name : registry.List()) {
    const auto policy = registry.Create(name);
    table.AddRow({name, policy->RequiresOracle() ? "yes" : "no",
                  policy->name()});
  }
  table.Print(std::cout);
  return 0;
}

// Whole-string integer parse; returns false (→ usage, exit 2) instead of
// letting std::stoi abort the process on "--workers abc".
bool ParseIntFlag(const char* value, int& out) {
  if (!value) return false;
  try {
    std::size_t consumed = 0;
    const int parsed = std::stoi(value, &consumed);
    if (consumed != std::strlen(value)) return false;
    out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseDoubleFlag(const char* value, double& out) {
  if (!value) return false;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != std::strlen(value)) return false;
    out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseSeedFlag(const char* value, std::uint64_t& out) {
  if (!value) return false;
  try {
    std::size_t consumed = 0;
    const unsigned long long parsed = std::stoull(value, &consumed);
    if (consumed != std::strlen(value)) return false;
    out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool Parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  if (args.command == "--list-policies") {
    args.command = "policies";
    return true;
  }
  int i = 2;
  const bool spec_command = args.command == "run" ||
                            args.command == "sweep" ||
                            args.command == "multijob" ||
                            args.command == "lower" ||
                            args.command == "clustersweep" ||
                            args.command == "serve";
  // Name the offender before any positional-argument checks, so a bare
  // `tictac_cli frobnicate` says what was wrong instead of just printing
  // usage (pinned in tests/cli_smoke_test.cc).
  const bool exec_command = args.command == "exec";
  if (!spec_command && !exec_command && args.command != "models" &&
      args.command != "policies" && args.command != "schedule" &&
      args.command != "simulate" && args.command != "compare" &&
      args.command != "export-graph" && args.command != "export-dot") {
    std::cerr << "unknown command: " << args.command << "\n";
    return false;
  }
  // exec takes its model through --model (it has a default), not
  // positionally like schedule/simulate/compare.
  if (!spec_command && !exec_command && args.command != "models" &&
      args.command != "policies") {
    if (i >= argc) return false;
    args.model = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto append_spec = [&](const std::string& text) {
      if (!args.spec_text.empty()) args.spec_text += ' ';
      args.spec_text += text;
    };
    // run/sweep take their parameters from the spec text alone, and the
    // spec/executor/emit flags belong only to them; accepting a flag a
    // command never reads would silently ignore it.
    if (spec_command &&
        (flag == "--training" || flag == "--workers" || flag == "--ps" ||
         flag == "--policy" || flag == "--iterations" || flag == "--env")) {
      std::cerr << args.command << ": " << flag
                << " is not accepted — put it in the spec text, e.g. "
                   "\"envG:workers=8:ps=2:training ... iterations=5\"\n";
      return false;
    }
    // Each spec command owns a specific flag set: run --spec, sweep
    // --sweep/--parallel/--csv/--json, multijob --jobs/--no-isolated/
    // --json, serve its service knobs. Rejecting the rest keeps the rule
    // above symmetric — no command silently ignores a flag it never
    // reads.
    const bool serve_family =
        flag == "--arrivals" || flag == "--fabrics" ||
        flag == "--duration" || flag == "--job" || flag == "--placement" ||
        flag == "--max-jobs" || flag == "--queue" || flag == "--seed" ||
        flag == "--trace" || flag == "--faults" || flag == "--retry-budget";
    const bool spec_family = flag == "--spec" || flag == "--sweep" ||
                             flag == "--jobs" || flag == "--no-isolated" ||
                             flag == "--dump" || flag == "--parallel" ||
                             flag == "--csv" || flag == "--json" ||
                             flag == "--threads" || serve_family;
    // exec's own flag set; rejected with the same symmetry everywhere else.
    const bool exec_family = flag == "--model" || flag == "--iters" ||
                             flag == "--straggler" ||
                             flag == "--deterministic" ||
                             flag == "--link-jitter";
    if (exec_family && !exec_command) {
      std::cerr << args.command << ": " << flag
                << " is not accepted (--model/--iters/--straggler/"
                   "--deterministic/--link-jitter belong to exec)\n";
      return false;
    }
    if (spec_family) {
      const bool allowed =
          (args.command == "run" && flag == "--spec") ||
          (args.command == "sweep" &&
           (flag == "--sweep" || flag == "--parallel" || flag == "--csv" ||
            flag == "--json")) ||
          (args.command == "multijob" &&
           (flag == "--jobs" || flag == "--no-isolated" ||
            flag == "--json")) ||
          (args.command == "lower" &&
           (flag == "--jobs" || flag == "--dump" || flag == "--json")) ||
          (args.command == "clustersweep" &&
           (flag == "--jobs" || flag == "--fabrics" ||
            flag == "--threads" || flag == "--json")) ||
          (args.command == "serve" && (serve_family || flag == "--json")) ||
          (exec_command && (flag == "--seed" || flag == "--json"));
      if (!allowed) {
        std::cerr << args.command << ": " << flag
                  << " is not accepted (--spec belongs to run; "
                     "--sweep/--parallel/--csv/--json to sweep; "
                     "--jobs/--no-isolated/--json to multijob; "
                     "--jobs/--dump/--json to lower; "
                     "--jobs/--fabrics/--threads/--json to clustersweep; "
                     "--arrivals/--fabrics/--duration/--job/--placement/"
                     "--max-jobs/--queue/--seed/--faults/--retry-budget/"
                     "--trace/--json to serve; --seed/--json also to "
                     "exec)\n";
        return false;
      }
    }
    if (flag == "--training") {
      args.training = true;
    } else if (flag == "--workers") {
      if (!ParseIntFlag(next(), args.workers)) return false;
    } else if (flag == "--ps") {
      if (!ParseIntFlag(next(), args.ps)) return false;
    } else if (flag == "--env") {
      const char* v = next();
      if (!v) return false;
      args.env = v;
    } else if (flag == "--policy") {
      const char* v = next();
      if (!v) return false;
      args.policy = v;
      // exec compares several policies side by side; collect repeats.
      if (exec_command) args.exec_policies.emplace_back(v);
    } else if (flag == "--model") {
      const char* v = next();
      if (!v) return false;
      args.model = v;
    } else if (flag == "--iters") {
      if (!ParseIntFlag(next(), args.iterations)) return false;
    } else if (flag == "--straggler") {
      const char* v = next();
      if (!v) return false;
      const std::string text = v;
      const std::size_t eq = text.find('=');
      int worker = 0;
      double factor = 0.0;
      if (eq == std::string::npos ||
          !ParseIntFlag(text.substr(0, eq).c_str(), worker) ||
          !ParseDoubleFlag(text.substr(eq + 1).c_str(), factor)) {
        std::cerr << "--straggler expects worker=factor, e.g. "
                     "--straggler 1=2.5\n";
        return false;
      }
      if (worker < 0 || factor < 1.0) {
        std::cerr << "--straggler needs worker >= 0 and factor >= 1\n";
        return false;
      }
      args.stragglers.emplace_back(worker, factor);
    } else if (flag == "--deterministic") {
      args.deterministic = true;
    } else if (flag == "--link-jitter") {
      if (!ParseDoubleFlag(next(), args.link_jitter)) return false;
      if (args.link_jitter < 0.0) {
        std::cerr << "--link-jitter must be >= 0\n";
        return false;
      }
    } else if (flag == "--iterations") {
      if (!ParseIntFlag(next(), args.iterations)) return false;
    } else if (flag == "--spec" || flag == "--sweep" || flag == "--jobs") {
      const char* v = next();
      if (!v) return false;
      append_spec(v);
    } else if (flag == "--no-isolated") {
      args.no_isolated = true;
    } else if (flag == "--dump") {
      args.dump = true;
    } else if (flag == "--arrivals") {
      const char* v = next();
      if (!v) return false;
      args.arrivals = v;
    } else if (flag == "--job") {
      const char* v = next();
      if (!v) return false;
      args.serve_jobs.emplace_back(v);
    } else if (flag == "--fabrics") {
      // serve and clustersweep both take --fabrics; they default
      // differently (1 fabric vs fewest-that-fit), so they keep
      // separate fields.
      int* dst = args.command == "clustersweep" ? &args.sweep_fabrics
                                                : &args.fabrics;
      if (!ParseIntFlag(next(), *dst)) return false;
    } else if (flag == "--threads") {
      if (!ParseIntFlag(next(), args.threads)) return false;
      if (args.threads < 0) {
        std::cerr << "--threads must be >= 0 (0 = all cores)\n";
        return false;
      }
    } else if (flag == "--duration") {
      if (!ParseDoubleFlag(next(), args.duration)) return false;
    } else if (flag == "--placement") {
      const char* v = next();
      if (!v) return false;
      args.placement = v;
    } else if (flag == "--max-jobs") {
      if (!ParseIntFlag(next(), args.max_jobs)) return false;
    } else if (flag == "--queue") {
      if (!ParseIntFlag(next(), args.queue)) return false;
    } else if (flag == "--seed") {
      if (!ParseSeedFlag(next(), args.seed)) return false;
    } else if (flag == "--trace") {
      const char* v = next();
      if (!v) return false;
      args.trace_out = v;
    } else if (flag == "--faults") {
      const char* v = next();
      if (!v) return false;
      args.faults = v;
    } else if (flag == "--retry-budget") {
      if (!ParseIntFlag(next(), args.retry_budget)) return false;
    } else if (flag == "--parallel") {
      if (!ParseIntFlag(next(), args.parallelism)) return false;
      if (args.parallelism < 1) {
        std::cerr << "--parallel must be >= 1\n";
        return false;
      }
    } else if (flag == "--csv") {
      args.emit = Args::Emit::kCsv;
    } else if (flag == "--json") {
      args.emit = Args::Emit::kJson;
    } else if (flag == "--list-policies") {
      args.command = "policies";
    } else if (spec_command && args.command != "serve" &&
               flag.rfind("--", 0) != 0) {
      // Unquoted spec text: join the stray tokens back together. (serve
      // takes its specs through --arrivals/--job, never positionally.)
      append_spec(flag);
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

int CmdModels() {
  util::Table table({"Model", "#Par", "MiB", "#Ops inf", "#Ops train",
                     "Batch", "Family"});
  for (const auto& info : models::ModelZoo()) {
    table.AddRow({info.name, std::to_string(info.num_params),
                  util::Fmt(info.total_param_mib, 2),
                  std::to_string(info.ops_inference),
                  std::to_string(info.ops_training),
                  std::to_string(info.standard_batch),
                  ToString(info.family)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdSchedule(const Args& args) {
  const auto& info = models::FindModel(args.model);
  const core::Graph graph =
      models::BuildWorkerGraph(info, {.training = args.training});
  const auto policy = core::PolicyRegistry::Global().Create(args.policy);
  const core::PropertyIndex index(graph);
  const core::AnalyticalTimeOracle oracle{core::PlatformModel{}};
  const core::Schedule schedule = policy->Compute(index, oracle);
  std::cout << "# priority list for " << info.name << " ("
            << (args.training ? "training" : "inference") << ", "
            << policy->name() << ")\n"
            << "# rank param bytes priority op\n";
  int rank = 0;
  for (const core::OpId r : schedule.RecvOrder(graph)) {
    const core::Op& op = graph.op(r);
    std::cout << rank++ << " " << op.param << " " << op.bytes << " ";
    if (schedule.HasPriority(r)) {
      std::cout << schedule.priority(r);
    } else {
      std::cout << "-";  // the policy assigns no priority to this recv
    }
    std::cout << " " << op.name << "\n";
  }
  return 0;
}

int RunAndPrint(const runtime::ExperimentSpec& spec) {
  harness::Session session;
  const auto result = session.Run(spec);
  std::cout << "spec: " << spec.ToString() << "\n";
  std::cout << "  mean iteration time: "
            << util::Fmt(result.MeanIterationTime() * 1e3, 2) << " ms\n";
  std::cout << "  throughput:          " << util::Fmt(result.Throughput(), 1)
            << " samples/s\n";
  std::cout << "  scheduling eff. E:   "
            << util::Fmt(result.MeanEfficiency(), 3) << "\n";
  std::cout << "  comm/comp overlap:   " << util::Fmt(result.MeanOverlap(), 3)
            << "\n";
  std::cout << "  max straggler share: "
            << util::Fmt(result.MaxStragglerPct(), 1) << "%\n";
  return 0;
}

int CmdRun(const Args& args) {
  if (args.spec_text.empty()) {
    std::cerr << "run: missing experiment spec (use --spec \"...\")\n";
    return 2;
  }
  return RunAndPrint(runtime::ExperimentSpec::Parse(args.spec_text));
}

int CmdSweep(const Args& args) {
  if (args.spec_text.empty()) {
    std::cerr << "sweep: missing sweep spec (use --sweep \"...\")\n";
    return 2;
  }
  const auto sweep = runtime::SweepSpec::Parse(args.spec_text);
  const int parallelism = args.parallelism > 0
                              ? args.parallelism
                              : harness::Session::DefaultParallelism();
  harness::Session session;
  const harness::ResultTable results = session.RunAll(sweep, parallelism);
  switch (args.emit) {
    case Args::Emit::kCsv:
      std::cout << results.ToCsv();
      break;
    case Args::Emit::kJson:
      std::cout << results.ToJson();
      break;
    case Args::Emit::kTable:
      std::cerr << "sweep: " << results.size() << " runs ("
                << session.cached_runners() << " distinct graphs) on "
                << parallelism << " threads\n";
      results.ToTable().Print(std::cout);
      break;
  }
  return 0;
}

int CmdMultiJob(const Args& args) {
  if (args.spec_text.empty()) {
    std::cerr << "multijob: missing job list (use --jobs "
                 "\"2x{<experiment spec>} {<experiment spec>}@0.05\")\n";
    return 2;
  }
  const auto spec = runtime::MultiJobSpec::Parse(args.spec_text);
  harness::Session session;
  const harness::MultiJobReport report =
      session.RunMultiJob(spec, /*with_isolated=*/!args.no_isolated);
  if (args.emit == Args::Emit::kJson) {
    std::cout << report.ToJson();
    return 0;
  }
  std::cerr << "multijob: " << spec.jobs.size() << " jobs, "
            << spec.TotalWorkers() << " workers on "
            << spec.jobs.front().spec.cluster.ps << " shared PS ("
            << spec.jobs.front().spec.cluster.env << ")\n";
  std::cout << "combined: mean iteration "
            << util::Fmt(report.result.combined.MeanIterationTime() * 1e3, 2)
            << " ms, aggregate throughput "
            << util::Fmt(report.result.combined.Throughput(), 1)
            << " samples/s\n";
  report.ToTable().Print(std::cout);
  if (!report.isolated.empty()) {
    std::cout << "interference: mean slowdown "
              << util::Fmt(report.interference.mean_slowdown, 3) << "x, max "
              << util::Fmt(report.interference.max_slowdown, 3)
              << "x, Jain fairness "
              << util::Fmt(report.interference.fairness, 3) << "\n";
  }
  return 0;
}

int CmdLower(const Args& args) {
  if (args.spec_text.empty()) {
    std::cerr << "lower: missing job list (use --jobs "
                 "\"{<experiment spec>} {<experiment spec>}@0.05\"; a bare "
                 "experiment spec is accepted as a single job)\n";
    return 2;
  }
  // A bare experiment spec (no braces) is sugar for one job.
  std::string text = args.spec_text;
  if (text.find('{') == std::string::npos) text = '{' + text + '}';
  const auto spec = runtime::MultiJobSpec::Parse(text);

  // The whole composed scenario — chunking, sharding, schedule
  // computation, replica expansion, PS lowering, job merging, arrival
  // offsets, iteration pipelining — is ONE PassPipeline invocation over
  // one ir::Module (DESIGN.md §10).
  const ir::PassPipeline pipeline =
      ir::FullLoweringPipeline(spec.jobs.front().spec.cluster.topology);
  std::cerr << "lower: " << spec.jobs.size() << " job(s), "
            << spec.TotalWorkers() << " workers on "
            << spec.jobs.front().spec.cluster.ps
            << " shared PS; pass pipeline:";
  for (const auto& name : pipeline.names()) std::cerr << ' ' << name;
  std::cerr << "\n";

  ir::PipelineOptions options;
  options.check_invariants = true;  // validate the module after every pass
  if (args.dump) {
    options.dump = [](const std::string& pass, const ir::Module& module) {
      std::cerr << "  [after " << pass << "] " << module.DebugSummary()
                << "\n";
    };
  }
  const ir::Module module =
      pipeline.Run(ir::BuildModuleForSpec(spec), options);

  bool any_scheduled = false;
  for (const auto& job : module.jobs) any_scheduled |= job.scheduled;
  const runtime::MultiJobLowering lowering = ir::ToMultiJobLowering(module);

  sim::SimOptions sim_options = spec.jobs.front().spec.BuildCluster().sim;
  sim_options.enforce_gates = any_scheduled;
  sim::TaskGraphSim sim = lowering.combined.BuildSim();

  // Same iteration loop (and seeding) as MultiJobRunner::Run.
  const int iterations = spec.jobs.front().spec.iterations;
  const std::uint64_t seed = spec.jobs.front().spec.seed;
  runtime::MultiJobResult result;
  result.jobs.resize(spec.jobs.size());
  double combined_samples = 0.0;
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    const runtime::ExperimentSpec& job = spec.jobs[j].spec;
    const double samples = models::FindModel(job.model).standard_batch *
                           job.cluster.batch_factor * job.cluster.workers;
    result.jobs[j].samples_per_iteration = samples;
    combined_samples += samples;
  }
  result.combined.samples_per_iteration = combined_samples;
  for (int i = 0; i < iterations; ++i) {
    const sim::SimResult run =
        sim.Run(sim_options, seed + static_cast<std::uint64_t>(i));
    result.combined.iterations.push_back(
        runtime::ComputeIterationStats(lowering.combined, run));
    for (std::size_t j = 0; j < lowering.jobs.size(); ++j) {
      const sim::SimResult sliced =
          runtime::SliceResult(run, lowering.jobs[j]);
      result.jobs[j].iterations.push_back(
          runtime::ComputeIterationStats(lowering.jobs[j].lowering, sliced));
    }
  }

  if (args.emit == Args::Emit::kJson) {
    std::cout << "{\n  \"passes\": [";
    bool first = true;
    for (const auto& name : pipeline.names()) {
      std::cout << (first ? "\"" : ", \"") << name << "\"";
      first = false;
    }
    std::cout << "],\n  \"combined\": {\"mean_iteration_s\": "
              << runtime::FormatDouble(result.combined.MeanIterationTime())
              << ", \"throughput\": "
              << runtime::FormatDouble(result.combined.Throughput())
              << "},\n  \"jobs\": [\n";
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const runtime::ExperimentSpec& job = spec.jobs[j].spec;
      std::cout << "    {\"model\": \"" << job.model << "\", \"policy\": \""
                << job.policy << "\", \"workers\": " << job.cluster.workers
                << ", \"mean_iteration_s\": "
                << runtime::FormatDouble(result.jobs[j].MeanIterationTime())
                << ", \"throughput\": "
                << runtime::FormatDouble(result.jobs[j].Throughput()) << "}"
                << (j + 1 < result.jobs.size() ? ",\n" : "\n");
    }
    std::cout << "  ]\n}\n";
    return 0;
  }

  std::cout << "combined: mean iteration "
            << util::Fmt(result.combined.MeanIterationTime() * 1e3, 2)
            << " ms, aggregate throughput "
            << util::Fmt(result.combined.Throughput(), 1) << " samples/s\n";
  util::Table table({"Job", "Model", "Policy", "Workers", "Iteration (ms)",
                     "Throughput", "E", "Overlap"});
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const runtime::ExperimentSpec& job = spec.jobs[j].spec;
    table.AddRow({std::to_string(j), job.model, job.policy,
                  std::to_string(job.cluster.workers),
                  util::Fmt(result.jobs[j].MeanIterationTime() * 1e3, 2),
                  util::Fmt(result.jobs[j].Throughput(), 1),
                  util::Fmt(result.jobs[j].MeanEfficiency(), 3),
                  util::Fmt(result.jobs[j].MeanOverlap(), 3)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdClusterSweep(const Args& args) {
  if (args.spec_text.empty()) {
    std::cerr << "clustersweep: missing job list (use --jobs "
                 "\"1000x{<experiment spec>}\")\n";
    return 2;
  }
  // Same group grammar as multijob, but replication counts up to 4096 —
  // the sweep partitions them over fabrics instead of packing one.
  std::vector<runtime::MultiJobEntry> jobs =
      runtime::ParseJobGroups(args.spec_text, /*max_count=*/4096);
  runtime::ClusterSweepOptions options;
  options.fabrics = args.sweep_fabrics;
  options.num_threads = args.threads;
  const runtime::ClusterSweep sweep(std::move(jobs), options);
  const runtime::ClusterSweepResult result = sweep.Run();
  if (args.emit == Args::Emit::kJson) {
    std::cout << result.ToJson();
    return 0;
  }
  std::cerr << "clustersweep: " << result.jobs << " jobs over "
            << result.fabrics << " fabrics (" << result.components
            << " engine shards), " << result.iterations << " iterations\n";
  util::Table table({"Metric", "Value"});
  table.AddRow({"mean makespan (ms)",
                util::Fmt(result.mean_makespan_s * 1e3, 2)});
  table.AddRow({"mean job iteration (ms)",
                util::Fmt(result.mean_job_iteration_s * 1e3, 2)});
  table.AddRow({"p50 job iteration (ms)",
                util::Fmt(result.p50_job_iteration_s * 1e3, 2)});
  table.AddRow({"p99 job iteration (ms)",
                util::Fmt(result.p99_job_iteration_s * 1e3, 2)});
  table.AddRow({"total throughput (samples/s)",
                util::Fmt(result.total_throughput, 1)});
  table.AddRow({"Jain fairness", util::Fmt(result.fairness, 3)});
  table.Print(std::cout);
  return 0;
}

int CmdServe(const Args& args) {
  if (args.arrivals.empty()) {
    std::cerr << "serve: missing arrival process (use --arrivals "
                 "\"poisson:rate=40\", \"bursty:rate=4:burst=8\", or "
                 "\"trace:arrivals.csv\")\n";
    return 2;
  }
  sched::ServiceConfig config;
  config.arrivals = sched::ArrivalSpec::Parse(args.arrivals);
  for (const std::string& job : args.serve_jobs) {
    config.workload.push_back(runtime::ExperimentSpec::Parse(job));
  }
  if (config.workload.empty() &&
      config.arrivals.kind != sched::ArrivalSpec::Kind::kTrace) {
    // A small default template so `serve --arrivals ...` works out of
    // the box; real studies pass their own --job specs.
    config.workload.push_back(runtime::ExperimentSpec::Parse(
        "envG:workers=4:ps=2:training model=Inception v2 policy=tac "
        "iterations=5"));
  }
  config.fabrics = args.fabrics;
  config.duration = args.duration;
  config.placement = args.placement;
  config.max_jobs_per_fabric = args.max_jobs;
  config.admission_queue_capacity = args.queue;
  config.seed = args.seed;
  if (!args.faults.empty()) {
    config.faults = fault::FaultSpec::Parse(args.faults);
  }
  config.retry_budget = args.retry_budget;
  harness::Session session;
  const sched::ServiceReport report = session.RunService(config);
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    if (!out) {
      std::cerr << "serve: cannot write trace file '" << args.trace_out
                << "'\n";
      return 1;
    }
    out << report.JobTraceJson();
    std::cerr << "serve: wrote " << report.jobs.size() << " job records to "
              << args.trace_out << "\n";
  }
  if (args.emit == Args::Emit::kJson) {
    std::cout << report.ToJson();
    return 0;
  }
  std::cerr << "serve: " << report.counters.arrivals << " arrivals over "
            << util::Fmt(config.duration, 2) << " s on " << config.fabrics
            << " fabric(s), placement " << config.placement << "\n";
  report.ToTable().Print(std::cout);
  return 0;
}

int CmdExec(const Args& args) {
  exec::ExecSpec spec;  // exec is always a training (push/pull) workload
  if (!args.model.empty()) spec.model = models::FindModel(args.model).name;
  if (!args.exec_policies.empty()) spec.policies = args.exec_policies;
  spec.num_workers = args.workers;
  spec.num_ps = args.ps;
  spec.iterations = args.iterations;
  spec.seed = args.seed;
  spec.deterministic = args.deterministic;
  spec.link_jitter_sigma = args.link_jitter;
  if (!args.stragglers.empty()) {
    spec.straggler_factors.assign(
        static_cast<std::size_t>(spec.num_workers), 1.0);
    for (const auto& [worker, factor] : args.stragglers) {
      if (worker >= spec.num_workers) {
        std::cerr << "exec: --straggler worker " << worker
                  << " out of range (have " << spec.num_workers
                  << " workers)\n";
        return 2;
      }
      spec.straggler_factors[static_cast<std::size_t>(worker)] = factor;
    }
  }
  harness::Session session;
  const exec::ExecReport report = session.RunExec(spec);
  if (args.emit == Args::Emit::kJson) {
    std::cout << report.ToJson();
    return 0;
  }
  std::cout << report.ToTable();
  return 0;
}

int CmdSimulate(const Args& args) {
  runtime::ExperimentSpec spec;
  spec.model = models::FindModel(args.model).name;
  spec.cluster.env = args.env;
  spec.cluster.workers = args.workers;
  spec.cluster.ps = args.ps;
  spec.cluster.training = args.training;
  spec.policy = args.policy;
  spec.iterations = args.iterations;
  return RunAndPrint(spec);
}

int CmdCompare(const Args& args) {
  runtime::SweepSpec sweep;
  sweep.models = {models::FindModel(args.model).name};
  sweep.env = args.env;
  sweep.workers = {args.workers};
  sweep.ps = {args.ps};
  sweep.tasks = {args.training};
  // Registration order puts "baseline" first, so every speedup's
  // reference row is present.
  sweep.policies = core::PolicyRegistry::Global().List();
  sweep.iterations = args.iterations;
  harness::Session session;
  const harness::ResultTable results =
      session.RunAll(sweep, harness::Session::DefaultParallelism());
  util::Table table({"Policy", "Iteration (ms)", "Throughput", "Speedup",
                     "E", "Overlap", "Max straggler %"});
  for (const auto& row : results.rows()) {
    table.AddRow({row.spec.policy,
                  util::Fmt(row.mean_iteration_s * 1e3, 1),
                  util::Fmt(row.throughput, 1),
                  util::FmtPct(results.SpeedupVsBaseline(row)),
                  util::Fmt(row.mean_efficiency, 3),
                  util::Fmt(row.mean_overlap, 3),
                  util::Fmt(row.max_straggler_pct, 1)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) return Usage();
  try {
    if (args.command == "models") return CmdModels();
    if (args.command == "policies") return CmdListPolicies();
    if (args.command == "schedule") return CmdSchedule(args);
    if (args.command == "run") return CmdRun(args);
    if (args.command == "sweep") return CmdSweep(args);
    if (args.command == "multijob") return CmdMultiJob(args);
    if (args.command == "lower") return CmdLower(args);
    if (args.command == "clustersweep") return CmdClusterSweep(args);
    if (args.command == "serve") return CmdServe(args);
    if (args.command == "exec") return CmdExec(args);
    if (args.command == "simulate") return CmdSimulate(args);
    if (args.command == "compare") return CmdCompare(args);
    if (args.command == "export-graph" || args.command == "export-dot") {
      const auto& info = models::FindModel(args.model);
      const core::Graph graph =
          models::BuildWorkerGraph(info, {.training = args.training});
      if (args.command == "export-graph") {
        std::cout << core::GraphToString(graph);
      } else {
        const core::Schedule tic = core::Tic(graph);
        std::cout << core::ToDot(graph, &tic);
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << args.command << "\n";
  return Usage();
}
