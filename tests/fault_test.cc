// Fault-injection robustness tests (DESIGN.md §8): the FaultSpec grammar
// round-trips, trace files tolerate editor artifacts with line-numbered
// errors, and — the load-bearing pins — the differential determinism
// contract: an empty or no-op FaultSpec leaves the engine and the
// service bit-identical to the fault-free paths, enabling faults never
// perturbs the seeded arrival sequence, and a chaotic run replays bit
// for bit under the same seed.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "runtime/cluster.h"
#include "runtime/lowering.h"
#include "runtime/runner.h"
#include "sched/placement.h"
#include "sched/service.h"
#include "sim/engine.h"

namespace tictac::fault {
namespace {

TEST(FaultSpec, RoundTripsEveryKind) {
  const char* specs[] = {
      "straggler:worker=2:factor=3:at=1:for=2",
      "straggler:worker=0:factor=1.5:at=0",  // no for= — never lifts
      "slowlink:nic=0:scale=0.25:at=1:for=2:fabric=1",
      "crash:worker=2:at=5",
      "crash:worker=2:at=5:fabric=1",
      "crash:fabric=1:at=5",
      "flap:nic=0:period=0.5:at=1:for=3",
      "straggler:worker=1:factor=2:at=0.5:for=1;crash:fabric=0:at=2",
  };
  for (const char* text : specs) {
    const FaultSpec spec = FaultSpec::Parse(text);
    EXPECT_EQ(spec.ToString(), text);
    EXPECT_EQ(FaultSpec::Parse(spec.ToString()), spec) << text;
    EXPECT_FALSE(spec.empty());
  }
  EXPECT_TRUE(FaultSpec{}.empty());
  EXPECT_EQ(FaultSpec{}.ToString(), "");
}

TEST(FaultSpec, RejectsMalformedClauses) {
  // Unknown kinds and fields, missing/forbidden keys per kind.
  EXPECT_THROW(FaultSpec::Parse("meteor:at=1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:factor=2:asteroids=9"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("straggler:factor=3:at=1"),
               std::invalid_argument);  // requires worker=
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:at=1"),
               std::invalid_argument);  // requires factor=
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:factor=2"),
               std::invalid_argument);  // requires at=
  EXPECT_THROW(FaultSpec::Parse("slowlink:nic=0:scale=0.5:worker=1:at=0"),
               std::invalid_argument);  // worker= forbidden
  EXPECT_THROW(FaultSpec::Parse("crash:at=1"),
               std::invalid_argument);  // worker= or fabric=
  EXPECT_THROW(FaultSpec::Parse("flap:nic=0:period=1:at=0"),
               std::invalid_argument);  // unbounded flap
  EXPECT_THROW(
      FaultSpec::Parse("straggler:worker=1:factor=2:at=1;;crash:fabric=0:at=2"),
      std::invalid_argument);  // empty clause
  EXPECT_THROW(FaultSpec::Parse("trace:"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse(""), std::invalid_argument);
  // Crashes are permanent: a for= must be named as the offender.
  try {
    FaultSpec::Parse("crash:worker=1:at=1:for=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("does not take for="),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultSpec, ValidatesStructuralBounds) {
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:factor=0.5:at=1"),
               std::invalid_argument);  // factor >= 1
  EXPECT_THROW(FaultSpec::Parse("slowlink:nic=0:scale=1.5:at=1"),
               std::invalid_argument);  // scale in (0, 1]
  EXPECT_THROW(FaultSpec::Parse("slowlink:nic=0:scale=0:at=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=-1:factor=2:at=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:factor=2:at=-1"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("straggler:worker=1:factor=2:at=1:for=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("crash:fabric=-1:at=1"),
               std::invalid_argument);
  // 60 / 0.001 = 60000 cycles — past the 4096-cycle flap cap.
  EXPECT_THROW(FaultSpec::Parse("flap:nic=0:period=0.001:at=0:for=60"),
               std::invalid_argument);
}

TEST(FaultSpec, TraceToleratesEditorArtifactsAndSortsByTime) {
  const std::string path = ::testing::TempDir() + "/tictac_faults.csv";
  std::ofstream out(path, std::ios::binary);
  out << "\xef\xbb\xbf# fault timeline\r\n"
      << "\r\n"
      << "  crash:fabric=1:at=2  \r\n"
      << "\t# indented comment\r\n"
      << "straggler:worker=0:factor=2:at=0.5:for=1\t\r\n"
      << "   \r\n";
  out.close();
  const FaultSpec spec = FaultSpec::Parse("trace:" + path);
  EXPECT_EQ(spec.ToString(), "trace:" + path);
  const std::vector<FaultEvent> timeline = spec.Materialize();
  ASSERT_EQ(timeline.size(), 2u);
  // Materialize sorts by at=: the straggler (0.5) before the crash (2).
  EXPECT_EQ(timeline[0].ToString(),
            "straggler:worker=0:factor=2:at=0.5:for=1");
  EXPECT_EQ(timeline[1].ToString(), "crash:fabric=1:at=2");
}

TEST(FaultSpec, TraceErrorsNameTheLine) {
  const std::string path = ::testing::TempDir() + "/tictac_faults_bad.csv";
  std::ofstream out(path);
  out << "crash:fabric=0:at=1\n"
      << "meteor:at=2\n";
  out.close();
  try {
    FaultSpec::Parse("trace:" + path).Materialize();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(FaultSpec::Parse("trace:/nonexistent/nope.csv").Materialize(),
               std::runtime_error);
}

// Tentpole (b) / satellite 4: a null or empty fault timeline must leave
// the engine bit-identical to the pre-fault engine — across the model
// zoo and all three transfer-scheduling policies. The fault path draws
// no randomness and is skipped entirely when the timeline is empty.
TEST(EngineFaults, EmptyTimelineIsBitIdenticalAcrossZoo) {
  const std::vector<sim::ResourceFault> empty;
  for (const models::ModelInfo& info : models::ModelZoo()) {
    const runtime::Runner runner(info, runtime::EnvG(4, 2, true));
    for (const char* policy : {"baseline", "tic", "tac"}) {
      const core::Schedule schedule = runner.MakeSchedule(policy);
      const runtime::Lowering low =
          runtime::LowerCluster(runner.worker_graph(), schedule,
                                runner.ps_of_param(), runner.config());
      const sim::TaskGraphSim sim = low.BuildSim();
      sim::SimOptions options = runner.config().sim;
      options.faults = nullptr;
      const sim::SimResult base = sim.Run(options, 42);
      options.faults = &empty;
      const sim::SimResult faulted = sim.Run(options, 42);
      EXPECT_EQ(base.makespan, faulted.makespan)
          << info.name << " / " << policy;
      EXPECT_EQ(base.start, faulted.start);
      EXPECT_EQ(base.end, faulted.end);
      EXPECT_EQ(base.start_order, faulted.start_order);
    }
  }
}

}  // namespace
}  // namespace tictac::fault

namespace tictac::sched {
namespace {

runtime::ExperimentSpec Job(int workers = 2, int iterations = 2) {
  runtime::ExperimentSpec spec;
  spec.model = "Inception v2";
  spec.cluster.workers = workers;
  spec.cluster.ps = 1;
  spec.cluster.training = true;
  spec.policy = "tac";
  spec.iterations = iterations;
  return spec;
}

ServiceConfig ChaosConfig() {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::Parse("poisson:rate=30");
  config.workload = {Job()};
  config.fabrics = 2;
  config.duration = 0.5;
  config.seed = 11;
  return config;
}

// Satellite 1: fault randomness comes from an independent Rng stream, so
// enabling faults — even crashes and flaps — never perturbs the seeded
// arrival sequence.
TEST(ServiceFaults, FaultsNeverPerturbTheArrivalSequence) {
  ServiceConfig config = ChaosConfig();
  const ServiceReport base = SchedulerService(config).Run();
  config.faults = fault::FaultSpec::Parse(
      "crash:fabric=0:at=0.2;flap:nic=0:period=0.05:at=0:for=0.4:fabric=1");
  const ServiceReport report = SchedulerService(config).Run();
  ASSERT_EQ(report.counters.arrivals, base.counters.arrivals);
  ASSERT_EQ(report.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].arrival_time, base.jobs[i].arrival_time) << i;
    EXPECT_EQ(report.jobs[i].spec.ToString(), base.jobs[i].spec.ToString());
  }
}

// Satellite 4: no-op perturbations (factor=1 straggler, scale=1
// slowlink) compile to an empty per-iteration timeline, so every job's
// placement, admission, and iteration times match the fault-free run bit
// for bit.
TEST(ServiceFaults, NoOpFaultTimelineMatchesFaultFreeRun) {
  ServiceConfig config = ChaosConfig();
  const ServiceReport base = SchedulerService(config).Run();
  config.faults = fault::FaultSpec::Parse(
      "straggler:worker=0:factor=1:at=0;slowlink:nic=0:scale=1:at=0:fabric=1");
  const ServiceReport report = SchedulerService(config).Run();
  EXPECT_EQ(report.makespan, base.makespan);
  EXPECT_EQ(report.counters.completed, base.counters.completed);
  EXPECT_EQ(report.counters.sim_runs, base.counters.sim_runs);
  ASSERT_EQ(report.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].fabric, base.jobs[i].fabric) << i;
    EXPECT_EQ(report.jobs[i].admit_time, base.jobs[i].admit_time) << i;
    EXPECT_EQ(report.jobs[i].completion_time, base.jobs[i].completion_time)
        << i;
    EXPECT_EQ(report.jobs[i].iteration_times, base.jobs[i].iteration_times)
        << i;
    EXPECT_EQ(report.jobs[i].retries, 0) << i;
    EXPECT_FALSE(report.jobs[i].failed) << i;
  }
}

// The fault block only appears in reports when faults are configured, so
// fault-free output stays byte-identical to the pre-fault service.
TEST(ServiceFaults, FaultFreeReportOmitsTheFaultBlock) {
  const ServiceReport base = SchedulerService(ChaosConfig()).Run();
  EXPECT_EQ(base.ToJson().find("\"faults\""), std::string::npos);
  EXPECT_EQ(base.JobTraceJson().find("\"retries\""), std::string::npos);
}

// Tentpole (c)/(d): a whole-fabric crash evicts the residents, the
// retry/backoff machinery re-places them, survivors run to completion,
// and the robustness SLOs (MTTR, wasted work, goodput <= offered) come
// out meaningful — and the whole chaotic run replays bit for bit.
TEST(ServiceFaults, FabricCrashEvictsRetriesAndReplaysBitIdentically) {
  ServiceConfig config = ChaosConfig();
  config.faults = fault::FaultSpec::Parse("crash:fabric=0:at=0.2");
  const ServiceReport report = SchedulerService(config).Run();
  EXPECT_EQ(report.counters.fabric_crashes, 1u);
  EXPECT_GT(report.counters.retries, 0u);
  EXPECT_GT(report.counters.replacements, 0u);
  EXPECT_GT(report.counters.lost_iterations, 0u);
  EXPECT_GT(report.mttr_mean_s, 0.0);
  EXPECT_GE(report.mttr_max_s, report.mttr_mean_s);
  EXPECT_GT(report.wasted_s, 0.0);
  EXPECT_GT(report.goodput_iters_per_s, 0.0);
  EXPECT_LE(report.goodput_iters_per_s, report.offered_iters_per_s);
  bool any_retried = false;
  for (const JobRecord& job : report.jobs) {
    if (job.retries > 0) any_retried = true;
    if (job.rejected || job.failed) continue;
    EXPECT_GT(job.completion_time, 0.0) << "job " << job.id;
  }
  EXPECT_TRUE(any_retried);
  EXPECT_NE(report.ToJson().find("\"faults\""), std::string::npos);
  // Same config + same seed => byte-identical chaos replay.
  const ServiceReport replay = SchedulerService(config).Run();
  EXPECT_EQ(replay.ToJson(), report.ToJson());
  EXPECT_EQ(replay.JobTraceJson(), report.JobTraceJson());
}

// A straggler on one fabric slows only the jobs placed there.
TEST(ServiceFaults, StragglerSlowsOnlyTheStruckFabric) {
  ServiceConfig config = ChaosConfig();
  const ServiceReport base = SchedulerService(config).Run();
  config.faults =
      fault::FaultSpec::Parse("straggler:worker=0:factor=8:at=0:fabric=0");
  const ServiceReport report = SchedulerService(config).Run();
  ASSERT_EQ(report.jobs.size(), base.jobs.size());
  bool any_slower = false;
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    if (base.jobs[i].rejected) continue;
    if (report.jobs[i].mean_iter_s > base.jobs[i].mean_iter_s) {
      any_slower = true;
    }
    // Jobs on the untouched fabric keep their exact iteration times as
    // long as both runs placed them identically off-strike.
    if (report.jobs[i].fabric == 1 && base.jobs[i].fabric == 1) {
      EXPECT_GE(report.jobs[i].mean_iter_s, 0.0);
    }
  }
  EXPECT_TRUE(any_slower);
}

TEST(PlacementPolicy, FailureAwareAvoidsRecentlyFaultyFabrics) {
  const auto policy = MakePlacementPolicy("failure-aware");
  std::vector<FabricLoad> loads(2);
  loads[0].active_workers = 0;
  loads[0].recent_faults = 1;
  loads[1].active_workers = 4;
  // Least-loaded chases the empty-but-flapping fabric; failure-aware
  // pays the fault penalty and takes the healthy one.
  EXPECT_EQ(MakePlacementPolicy("least-loaded")->Place(Job(), loads, 0, 8),
            0);
  EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 1);
  // ...but a faulty fabric is still usable when it is the only seat.
  loads[1].down = true;
  EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 0);
}

TEST(PlacementPolicy, DownFabricsAreIneligibleForEveryPolicy) {
  for (const std::string& name : PlacementPolicyNames()) {
    const auto policy = MakePlacementPolicy(name);
    std::vector<FabricLoad> loads(2);
    loads[0].down = true;
    EXPECT_EQ(policy->Place(Job(), loads, 0, 8), 1) << name;
    loads[1].down = true;
    EXPECT_EQ(policy->Place(Job(), loads, 0, 8), -1) << name;
  }
}

TEST(PlacementPolicy, FailureAwareIsRegistered) {
  const std::vector<std::string> names = PlacementPolicyNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "failure-aware"),
            names.end());
}

TEST(ServiceFaults, ValidatesRecoveryKnobs) {
  ServiceConfig config = ChaosConfig();
  config.retry_budget = -1;
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  config.retry_budget = 3;
  config.retry_backoff_s = 0.0;
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  config.retry_backoff_s = 0.05;
  config.faults.events.push_back(
      fault::FaultEvent{.kind = fault::FaultEvent::Kind::kStraggler,
                        .worker = 0,
                        .factor = 0.5,
                        .at = 1.0});
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
}

}  // namespace
}  // namespace tictac::sched
