#include "sched/arrival.h"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/spec.h"

namespace tictac::sched {
namespace {

runtime::ExperimentSpec Job(int workers = 4) {
  runtime::ExperimentSpec spec;
  spec.model = "Inception v2";
  spec.cluster.workers = workers;
  spec.cluster.ps = 2;
  spec.cluster.training = true;
  spec.policy = "tac";
  spec.iterations = 3;
  return spec;
}

// ---- grammar ---------------------------------------------------------------

TEST(ArrivalSpec, PoissonRoundTrip) {
  const ArrivalSpec spec = ArrivalSpec::Parse("poisson:rate=40");
  EXPECT_EQ(spec.kind, ArrivalSpec::Kind::kPoisson);
  EXPECT_EQ(spec.rate, 40.0);
  EXPECT_EQ(spec.ToString(), "poisson:rate=40");
  EXPECT_EQ(ArrivalSpec::Parse(spec.ToString()), spec);
}

TEST(ArrivalSpec, BurstyRoundTrip) {
  const ArrivalSpec spec = ArrivalSpec::Parse("bursty:rate=2.5:burst=8");
  EXPECT_EQ(spec.kind, ArrivalSpec::Kind::kBursty);
  EXPECT_EQ(spec.rate, 2.5);
  EXPECT_EQ(spec.burst, 8);
  EXPECT_EQ(spec.ToString(), "bursty:rate=2.5:burst=8");
  EXPECT_EQ(ArrivalSpec::Parse(spec.ToString()), spec);
}

TEST(ArrivalSpec, BurstyFieldOrderIsFree) {
  EXPECT_EQ(ArrivalSpec::Parse("bursty:burst=4:rate=1"),
            ArrivalSpec::Parse("bursty:rate=1:burst=4"));
}

TEST(ArrivalSpec, TraceRoundTripKeepsPathVerbatim) {
  // Paths may contain colons; everything after the first ':' is the path.
  const ArrivalSpec spec = ArrivalSpec::Parse("trace:/tmp/a:b.csv");
  EXPECT_EQ(spec.kind, ArrivalSpec::Kind::kTrace);
  EXPECT_EQ(spec.trace_path, "/tmp/a:b.csv");
  EXPECT_EQ(spec.ToString(), "trace:/tmp/a:b.csv");
  EXPECT_EQ(ArrivalSpec::Parse(spec.ToString()), spec);
}

TEST(ArrivalSpec, FormatsShortestRoundTripDoubles) {
  // Non-representable rates survive ToString/Parse exactly (FormatDouble).
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kPoisson;
  spec.rate = 0.1;
  EXPECT_EQ(spec.ToString(), "poisson:rate=0.1");
  EXPECT_EQ(ArrivalSpec::Parse(spec.ToString()).rate, 0.1);
}

// The error-message contract: each malformed spec names what went wrong.
TEST(ArrivalSpec, UnknownProcessIsNamed) {
  try {
    ArrivalSpec::Parse("uniform:rate=4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown arrival process"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("uniform"), std::string::npos);
  }
}

TEST(ArrivalSpec, MissingRateIsNamed) {
  try {
    ArrivalSpec::Parse("poisson");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("requires rate="),
              std::string::npos)
        << e.what();
  }
}

TEST(ArrivalSpec, NonNumericRateIsNamed) {
  try {
    ArrivalSpec::Parse("poisson:rate=fast");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rate= expects a number"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("fast"), std::string::npos);
  }
}

TEST(ArrivalSpec, BurstyWithoutBurstIsNamed) {
  try {
    ArrivalSpec::Parse("bursty:rate=4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bursty requires burst="),
              std::string::npos)
        << e.what();
  }
}

TEST(ArrivalSpec, RejectsMoreMalformedSpecs) {
  EXPECT_THROW(ArrivalSpec::Parse(""), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("trace"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("trace:"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=0"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=-1"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=inf"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=4:burst=2"),
               std::invalid_argument);  // burst is bursty-only
  EXPECT_THROW(ArrivalSpec::Parse("bursty:rate=4:burst=2.5"),
               std::invalid_argument);  // integer bursts only
  EXPECT_THROW(ArrivalSpec::Parse("bursty:rate=4:burst=0"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::Parse("bursty:rate=4:burst=1000000"),
               std::invalid_argument);  // capped
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=4:color=red"),
               std::invalid_argument);  // unknown field
}

// ---- synthetic generation --------------------------------------------------

TEST(GenerateArrivals, PoissonGoldenSequence) {
  // Inter-arrival gaps are inverse-CDF transforms of raw mt19937_64
  // output — standardized, so this sequence is identical on every
  // platform and standard library. Regenerate with util::Rng(42)
  // .Exponential(10.0) if the draw algorithm ever changes (that is a
  // breaking change to every seeded service run).
  const ArrivalSpec spec = ArrivalSpec::Parse("poisson:rate=10");
  const std::vector<runtime::ExperimentSpec> workload = {Job()};
  const std::vector<ArrivalEvent> events =
      GenerateArrivals(spec, workload, /*duration=*/0.4, /*seed=*/42);
  const std::vector<double> gaps = {
      0.028083154703570805, 0.044780169614836121, 0.02848258875699199,
      0.19930973739202501, 0.010173491119158334};
  ASSERT_EQ(events.size(), 5u);  // 6th cumulative time crosses 0.4
  double expected = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    expected += gaps[i];
    EXPECT_EQ(events[i].time, expected) << "event " << i;
    EXPECT_EQ(events[i].spec, workload[0]);
  }
}

TEST(GenerateArrivals, DeterministicInSeedAlone) {
  const ArrivalSpec spec = ArrivalSpec::Parse("poisson:rate=25");
  const std::vector<runtime::ExperimentSpec> workload = {Job(2), Job(4)};
  const auto a = GenerateArrivals(spec, workload, 2.0, 7);
  const auto b = GenerateArrivals(spec, workload, 2.0, 7);
  const auto c = GenerateArrivals(spec, workload, 2.0, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].spec, b[i].spec);
  }
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time != c[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateArrivals, CyclesWorkloadRoundRobin) {
  const ArrivalSpec spec = ArrivalSpec::Parse("poisson:rate=50");
  const std::vector<runtime::ExperimentSpec> workload = {Job(2), Job(4),
                                                         Job(8)};
  const auto events = GenerateArrivals(spec, workload, 1.0, 3);
  ASSERT_GE(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].spec, workload[i % workload.size()]);
  }
}

TEST(GenerateArrivals, BurstyEmitsBurstsAtSharedInstants) {
  const ArrivalSpec spec = ArrivalSpec::Parse("bursty:rate=10:burst=4");
  const std::vector<runtime::ExperimentSpec> workload = {Job()};
  const auto bursty = GenerateArrivals(spec, workload, 0.4, 42);
  const auto single =
      GenerateArrivals(ArrivalSpec::Parse("poisson:rate=10"), workload, 0.4,
                       42);
  // Same event instants as the rate-matched Poisson stream (same seed,
  // same draws), each carrying burst jobs.
  ASSERT_EQ(bursty.size(), single.size() * 4);
  for (std::size_t i = 0; i < bursty.size(); ++i) {
    EXPECT_EQ(bursty[i].time, single[i / 4].time);
  }
}

TEST(GenerateArrivals, EmptyWorkloadIsRejectedForSyntheticStreams) {
  EXPECT_THROW(
      GenerateArrivals(ArrivalSpec::Parse("poisson:rate=4"), {}, 1.0, 1),
      std::invalid_argument);
}

// ---- trace replay ----------------------------------------------------------

TEST(GenerateArrivals, ReplaysTraceCsv) {
  const std::string path = ::testing::TempDir() + "/tictac_arrivals.csv";
  const runtime::ExperimentSpec job = Job();
  {
    std::ofstream out(path);
    out << "# time,experiment spec\n";
    out << "\n";
    out << "0," << job.ToString() << "\n";
    out << "0.25," << Job(8).ToString() << "\n";
    out << "0.25," << job.ToString() << "\n";  // simultaneous is fine
    out << "9," << job.ToString() << "\n";     // >= duration: dropped
  }
  const ArrivalSpec spec = ArrivalSpec::Parse("trace:" + path);
  const auto events = GenerateArrivals(spec, {}, /*duration=*/1.0, 1);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 0.0);
  EXPECT_EQ(events[0].spec, job);
  EXPECT_EQ(events[1].time, 0.25);
  EXPECT_EQ(events[1].spec, Job(8));
  EXPECT_EQ(events[2].time, 0.25);
}

TEST(GenerateArrivals, TraceErrorsCarryLineNumbers) {
  const std::string path = ::testing::TempDir() + "/tictac_bad_trace.csv";
  {
    std::ofstream out(path);
    out << "0," << Job().ToString() << "\n";
    out << "not-a-number," << Job().ToString() << "\n";
  }
  try {
    GenerateArrivals(ArrivalSpec::Parse("trace:" + path), {}, 1.0, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(GenerateArrivals, TraceToleratesEditorArtifacts) {
  // Spreadsheet-export tolerance, shared with the fault trace reader: a
  // UTF-8 BOM on line 1, CRLF endings, trailing blanks, indented
  // comments, and whitespace-only lines.
  const std::string path = ::testing::TempDir() + "/tictac_artifacts.csv";
  const runtime::ExperimentSpec job = Job();
  {
    std::ofstream out(path, std::ios::binary);
    out << "\xef\xbb\xbf# time,experiment spec\r\n";
    out << "   \r\n";
    out << "  \t# indented comment\r\n";
    out << "0," << job.ToString() << "  \r\n";
    out << "\t0.25," << Job(8).ToString() << "\t\r\n";
  }
  const auto events =
      GenerateArrivals(ArrivalSpec::Parse("trace:" + path), {}, 1.0, 1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 0.0);
  EXPECT_EQ(events[0].spec, job);
  EXPECT_EQ(events[1].time, 0.25);
  EXPECT_EQ(events[1].spec, Job(8));
}

TEST(GenerateArrivals, TraceRejectsDecreasingTimesAndMissingFiles) {
  const std::string path = ::testing::TempDir() + "/tictac_unsorted.csv";
  {
    std::ofstream out(path);
    out << "0.5," << Job().ToString() << "\n";
    out << "0.25," << Job().ToString() << "\n";
  }
  EXPECT_THROW(GenerateArrivals(ArrivalSpec::Parse("trace:" + path), {},
                                1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(
      GenerateArrivals(ArrivalSpec::Parse("trace:/no/such/file.csv"), {},
                       1.0, 1),
      std::runtime_error);
}

}  // namespace
}  // namespace tictac::sched
