// Differential pinning of the pass-based lowering pipeline against the
// FROZEN pre-IR implementations (runtime/reference_lowering.h): every
// legacy-expressible scenario must reproduce the pre-refactor task
// graph BIT FOR BIT — same tasks in the same emission order, same
// durations/resources/priorities/gates/preds, same worker tables — over
// the model zoo, the grammar's ablation knobs, and a large sweep of
// random DAGs. The composed spec path (BuildModuleForSpec +
// FullLoweringPipeline) is pinned against MultiJobRunner the same way,
// down to the simulated start/end times.
#include "ir/lower.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tic.h"
#include "models/builder.h"
#include "models/random_dag.h"
#include "models/zoo.h"
#include "runtime/allreduce.h"
#include "runtime/lowering.h"
#include "runtime/multijob.h"
#include "runtime/reference_lowering.h"
#include "runtime/runner.h"
#include "runtime/sharding.h"

namespace tictac::runtime {
namespace {

void ExpectTasksIdentical(const std::vector<sim::Task>& got,
                          const std::vector<sim::Task>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t t = 0; t < got.size(); ++t) {
    const sim::Task& a = got[t];
    const sim::Task& b = want[t];
    const std::string at = context + ", task " + std::to_string(t);
    EXPECT_EQ(a.duration, b.duration) << at;  // bitwise: no tolerance
    EXPECT_EQ(a.resource, b.resource) << at;
    EXPECT_EQ(a.priority, b.priority) << at;
    EXPECT_EQ(a.gate_group, b.gate_group) << at;
    EXPECT_EQ(a.gate_rank, b.gate_rank) << at;
    EXPECT_EQ(a.preds, b.preds) << at;
    EXPECT_EQ(a.op, b.op) << at;
    EXPECT_EQ(a.kind, b.kind) << at;
    EXPECT_EQ(a.worker, b.worker) << at;
  }
}

void ExpectLoweringIdentical(const Lowering& got, const Lowering& want,
                             const std::string& context) {
  ExpectTasksIdentical(got.tasks, want.tasks, context);
  EXPECT_EQ(got.num_resources, want.num_resources) << context;
  EXPECT_EQ(got.num_workers, want.num_workers) << context;
  EXPECT_EQ(got.worker_tasks, want.worker_tasks) << context;
  EXPECT_EQ(got.worker_recv_tasks, want.worker_recv_tasks) << context;
  EXPECT_EQ(got.transfer_param, want.transfer_param) << context;
  EXPECT_EQ(got.update_task, want.update_task) << context;
  EXPECT_EQ(got.worker_sink, want.worker_sink) << context;
}

void ExpectMultiJobIdentical(const MultiJobLowering& got,
                             const MultiJobLowering& want,
                             const std::string& context) {
  ExpectLoweringIdentical(got.combined, want.combined, context + " combined");
  EXPECT_EQ(got.total_workers, want.total_workers) << context;
  EXPECT_EQ(got.num_ps, want.num_ps) << context;
  ASSERT_EQ(got.jobs.size(), want.jobs.size()) << context;
  for (std::size_t j = 0; j < got.jobs.size(); ++j) {
    const std::string at = context + ", job " + std::to_string(j);
    ExpectLoweringIdentical(got.jobs[j].lowering, want.jobs[j].lowering,
                            at + " slice");
    EXPECT_EQ(got.jobs[j].first_task, want.jobs[j].first_task) << at;
    EXPECT_EQ(got.jobs[j].last_task, want.jobs[j].last_task) << at;
    EXPECT_EQ(got.jobs[j].first_worker, want.jobs[j].first_worker) << at;
    EXPECT_EQ(got.jobs[j].delay_task, want.jobs[j].delay_task) << at;
    EXPECT_EQ(got.jobs[j].start_offset, want.jobs[j].start_offset) << at;
  }
}

// ---------------------------------------------------------------------------
// Zoo x policy x task: LowerCluster

TEST(Differential, ClusterLoweringMatchesReferenceAcrossZoo) {
  for (const auto& info : models::ModelZoo()) {
    for (const bool training : {false, true}) {
      const Runner runner(info, EnvG(2, 2, training));
      for (const char* policy : {"baseline", "tic", "tac"}) {
        const core::Schedule schedule = runner.MakeSchedule(policy);
        const std::string context =
            info.name + (training ? "/train/" : "/infer/") + policy;
        ExpectLoweringIdentical(
            LowerCluster(runner.worker_graph(), schedule,
                         runner.ps_of_param(), runner.config()),
            reference::LowerCluster(runner.worker_graph(), schedule,
                                    runner.ps_of_param(), runner.config()),
            context);
      }
    }
  }
}

TEST(Differential, ChunkedShardedClusterMatchesReference) {
  for (const char* model : {"Inception v2", "VGG-16"}) {
    ClusterConfig config = EnvG(3, 2, true);
    config.chunk_bytes = 1 << 20;
    config.shard = ShardStrategy::kEven;
    const Runner runner(models::FindModel(model), config);
    const core::Schedule schedule = runner.MakeSchedule("tic");
    ExpectLoweringIdentical(
        LowerCluster(runner.worker_graph(), schedule, runner.ps_of_param(),
                     runner.config()),
        reference::LowerCluster(runner.worker_graph(), schedule,
                                runner.ps_of_param(), runner.config()),
        std::string(model) + "/chunked+even");
  }
}

TEST(Differential, EnforcementVariantsMatchReference) {
  for (const Enforcement enforcement :
       {Enforcement::kPriorityOnly, Enforcement::kHandoffGate,
        Enforcement::kDagChain}) {
    ClusterConfig config = EnvG(2, 2, true);
    config.enforcement = enforcement;
    const Runner runner(models::FindModel("Inception v1"), config);
    const core::Schedule schedule = runner.MakeSchedule("tic");
    ExpectLoweringIdentical(
        LowerCluster(runner.worker_graph(), schedule, runner.ps_of_param(),
                     runner.config()),
        reference::LowerCluster(runner.worker_graph(), schedule,
                                runner.ps_of_param(), runner.config()),
        std::string("enforcement ") + ToString(enforcement));
  }
}

// ---------------------------------------------------------------------------
// LowerPipeline

TEST(Differential, PipelineLoweringMatchesReference) {
  for (const bool training : {false, true}) {
    const Runner runner(models::FindModel("Inception v1"),
                        EnvG(2, 2, training));
    const core::Schedule schedule = runner.MakeSchedule("tic");
    for (const int iterations : {1, 2, 4}) {
      const PipelineLowering got =
          LowerPipeline(runner.worker_graph(), schedule,
                        runner.ps_of_param(), runner.config(), iterations);
      const PipelineLowering want = reference::LowerPipeline(
          runner.worker_graph(), schedule, runner.ps_of_param(),
          runner.config(), iterations);
      const std::string context = std::string(training ? "train" : "infer") +
                                  "/k=" + std::to_string(iterations);
      ExpectLoweringIdentical(got.lowering, want.lowering, context);
      EXPECT_EQ(got.task_iteration, want.task_iteration) << context;
      EXPECT_EQ(got.iterations, want.iterations) << context;
    }
  }
}

TEST(Differential, PipelineValidatesIterationsBeforeLowering) {
  const Runner runner(models::FindModel("Inception v1"), EnvG(2, 1, true));
  EXPECT_THROW(LowerPipeline(runner.worker_graph(), core::Schedule{},
                             runner.ps_of_param(), runner.config(), 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LowerAllReduce

TEST(Differential, AllReduceMatchesReferenceAcrossZoo) {
  for (const auto& info : models::ModelZoo()) {
    for (const int workers : {2, 5}) {
      ClusterConfig config = EnvG(workers, 1, true);
      config.topology = Topology::kRing;
      const core::Graph graph =
          models::BuildWorkerGraph(info, {.training = true});
      ExpectLoweringIdentical(
          LowerAllReduce(graph, config),
          reference::LowerAllReduce(graph, config),
          info.name + "/ring/W=" + std::to_string(workers));
    }
  }
}

TEST(Differential, AllReduceKeepsLegacyErrorPrecedence) {
  const core::Graph graph = models::BuildWorkerGraph(
      models::FindModel("Inception v1"), {.training = true});
  ClusterConfig config = EnvG(1, 1, true);
  try {
    LowerAllReduce(graph, config);
    FAIL() << "expected the worker-count diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "all-reduce needs >= 2 workers");
  }
  config = EnvG(4, 1, false);
  try {
    LowerAllReduce(graph, config);
    FAIL() << "expected the training-only diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "all-reduce applies to training only");
  }
}

// ---------------------------------------------------------------------------
// LowerSharedCluster

TEST(Differential, SharedClusterMatchesReference) {
  // Three jobs, mixed models/policies/worker counts, one with an arrival
  // offset — the full multi-job surface.
  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<core::Schedule> schedules;
  std::vector<double> offsets{0.0, 0.05, 0.0};
  runners.push_back(std::make_unique<Runner>(
      models::FindModel("Inception v1"), EnvG(2, 2, true)));
  runners.push_back(std::make_unique<Runner>(models::FindModel("VGG-16"),
                                             EnvG(3, 2, true)));
  runners.push_back(std::make_unique<Runner>(
      models::FindModel("Inception v2"), EnvG(2, 2, false)));
  schedules.push_back(runners[0]->MakeSchedule("tac"));
  schedules.push_back(runners[1]->MakeSchedule("baseline"));
  schedules.push_back(runners[2]->MakeSchedule("tic"));

  std::vector<JobLoweringInput> inputs;
  for (std::size_t j = 0; j < runners.size(); ++j) {
    inputs.push_back(JobLoweringInput{
        runners[j]->worker_graph(), schedules[j], runners[j]->ps_of_param(),
        runners[j]->config(), offsets[j]});
  }
  ExpectMultiJobIdentical(LowerSharedCluster(inputs),
                          reference::LowerSharedCluster(inputs),
                          "3-job fabric");
  // A single zero-offset job must degenerate to LowerCluster bit for bit
  // through both implementations.
  std::vector<JobLoweringInput> single;
  single.push_back(JobLoweringInput{runners[0]->worker_graph(), schedules[0],
                                    runners[0]->ps_of_param(),
                                    runners[0]->config(), 0.0});
  ExpectMultiJobIdentical(LowerSharedCluster(single),
                          reference::LowerSharedCluster(single), "1-job");
}

TEST(Differential, SharedClusterKeepsLegacyErrorPrecedence) {
  try {
    LowerSharedCluster({});
    FAIL() << "expected the empty-jobs diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "multijob: LowerSharedCluster needs >= 1 job");
  }
  const Runner a(models::FindModel("Inception v1"), EnvG(2, 1, true));
  const Runner b(models::FindModel("Inception v1"), EnvG(2, 2, true));
  const core::Schedule none;
  std::vector<JobLoweringInput> inputs;
  inputs.push_back(
      JobLoweringInput{a.worker_graph(), none, a.ps_of_param(), a.config()});
  inputs.push_back(
      JobLoweringInput{b.worker_graph(), none, b.ps_of_param(), b.config()});
  try {
    LowerSharedCluster(inputs);
    FAIL() << "expected the ps-mismatch diagnostic";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "all jobs must share the PS fleet: got num_ps=2 vs 1"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Random DAGs: 110 seeds through every preset

class RandomDagDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomDagDifferential, AllPresetsMatchReference) {
  const std::uint64_t seed = GetParam();
  models::RandomDagOptions options;
  options.num_recvs = 3 + static_cast<int>(seed % 6);
  options.num_computes = 5 + static_cast<int>(seed % 11);
  options.num_layers = 2 + static_cast<int>(seed % 4);
  options.with_sends = (seed % 3) != 0;  // training needs gradient pushes
  const core::Graph graph = models::MakeRandomDag(options, seed);

  ClusterConfig config =
      EnvG(1 + static_cast<int>(seed % 4), 1 + static_cast<int>(seed % 3),
           /*training=*/options.with_sends);
  if (seed % 4 == 1) config.enforcement = Enforcement::kPriorityOnly;
  if (seed % 4 == 2) config.enforcement = Enforcement::kDagChain;

  // Params of a random DAG are the recv indices.
  std::vector<int> ps_of_param(static_cast<std::size_t>(options.num_recvs));
  for (std::size_t p = 0; p < ps_of_param.size(); ++p) {
    ps_of_param[p] = static_cast<int>(p) % config.num_ps;
  }
  const core::Schedule schedule =
      (seed % 2) ? core::Tic(graph) : core::Schedule{};
  const std::string context = "seed " + std::to_string(seed);

  ExpectLoweringIdentical(
      LowerCluster(graph, schedule, ps_of_param, config),
      reference::LowerCluster(graph, schedule, ps_of_param, config),
      context);

  const int iterations = 1 + static_cast<int>(seed % 3);
  const PipelineLowering got_pipeline =
      LowerPipeline(graph, schedule, ps_of_param, config, iterations);
  const PipelineLowering want_pipeline = reference::LowerPipeline(
      graph, schedule, ps_of_param, config, iterations);
  ExpectLoweringIdentical(got_pipeline.lowering, want_pipeline.lowering,
                          context + "/pipeline");
  EXPECT_EQ(got_pipeline.task_iteration, want_pipeline.task_iteration)
      << context;

  if (config.training && config.num_workers >= 2) {
    ExpectLoweringIdentical(LowerAllReduce(graph, config),
                            reference::LowerAllReduce(graph, config),
                            context + "/ring");
  }

  // Two copies of the job on one shared fabric, the second delayed.
  std::vector<JobLoweringInput> inputs;
  inputs.push_back(JobLoweringInput{graph, schedule, ps_of_param, config});
  inputs.push_back(
      JobLoweringInput{graph, schedule, ps_of_param, config, 0.01});
  ExpectMultiJobIdentical(LowerSharedCluster(inputs),
                          reference::LowerSharedCluster(inputs),
                          context + "/shared");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagDifferential,
                         ::testing::Range<std::uint64_t>(0, 110));

// ---------------------------------------------------------------------------
// The composed spec path: one PassPipeline invocation vs MultiJobRunner

TEST(Differential, SpecPipelineMatchesMultiJobRunnerBitForBit) {
  const auto spec = MultiJobSpec::Parse(
      "2x{envG:workers=2:ps=2:training:chunk=1048576:shard=even "
      "model=Inception v1 policy=tac iterations=3 seed=7} "
      "{envG:workers=2:ps=2:training model=Inception v1 policy=baseline "
      "iterations=3 seed=7}@0.05");

  // Side A: the legacy runner (per-job Runner construction, schedules,
  // LowerSharedCluster).
  const MultiJobRunner runner(spec);

  // Side B: the composed scenario as ONE pipeline invocation over one
  // ir::Module, invariant checks on.
  ir::PipelineOptions options;
  options.check_invariants = true;
  const ir::Module module =
      ir::FullLoweringPipeline(Topology::kPsFabric)
          .Run(ir::BuildModuleForSpec(spec), options);
  const MultiJobLowering lowering = ir::ToMultiJobLowering(module);

  ExpectMultiJobIdentical(lowering, runner.lowering(), "spec path");

  // And the simulated timeline is bit-identical: same tasks, same seeds,
  // same engine — the SimResults must be EXACTLY equal.
  bool any_scheduled = false;
  for (const auto& job : module.jobs) any_scheduled |= job.scheduled;
  sim::SimOptions sim_options = spec.jobs.front().spec.BuildCluster().sim;
  sim_options.enforce_gates = any_scheduled;

  sim::TaskGraphSim sim_a = runner.lowering().combined.BuildSim();
  sim::TaskGraphSim sim_b = lowering.combined.BuildSim();
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed = 7 + static_cast<std::uint64_t>(i);
    const sim::SimResult a = sim_a.Run(sim_options, seed);
    const sim::SimResult b = sim_b.Run(sim_options, seed);
    EXPECT_EQ(a.start, b.start) << "iteration " << i;
    EXPECT_EQ(a.end, b.end) << "iteration " << i;
    EXPECT_EQ(a.makespan, b.makespan) << "iteration " << i;
  }
}

TEST(Differential, SingleJobSpecPipelineMatchesRunnerPath) {
  // The single-job Runner path (MakeSchedule + LowerCluster) against the
  // spec pipeline collapsed to one job.
  const auto spec = MultiJobSpec::Parse(
      "{envG:workers=4:ps=2:training model=ResNet-50 v1 policy=tic "
      "iterations=2 seed=3}");
  const Runner runner(models::FindModel("ResNet-50 v1"),
                      spec.jobs.front().spec.BuildCluster());
  const core::Schedule schedule = runner.MakeSchedule("tic");
  const Lowering want = LowerCluster(runner.worker_graph(), schedule,
                                     runner.ps_of_param(), runner.config());

  const ir::Module module = ir::FullLoweringPipeline(Topology::kPsFabric)
                                .Run(ir::BuildModuleForSpec(spec));
  const MultiJobLowering lowering = ir::ToMultiJobLowering(module);
  ASSERT_EQ(lowering.jobs.size(), 1u);
  ExpectLoweringIdentical(lowering.jobs[0].lowering, want, "1-job spec");
}

}  // namespace
}  // namespace tictac::runtime
