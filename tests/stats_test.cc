// Tests for the runner's derived statistics: overlap fraction and the
// hardware-straggler injection knob.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "runtime/runner.h"

namespace tictac::runtime {
namespace {

TEST(Overlap, InUnitInterval) {
  Runner runner(models::FindModel("Inception v1"), EnvG(2, 1, true));
  for (const char* policy : {"baseline", "tic"}) {
    const auto result = runner.Run(policy, 4, 3);
    for (const auto& it : result.iterations) {
      EXPECT_GE(it.overlap_fraction, 0.0);
      EXPECT_LE(it.overlap_fraction, 1.0 + 1e-9);
    }
  }
}

TEST(Overlap, SchedulingImprovesOverlap) {
  // The whole point of TicTac: better orders overlap communication with
  // computation.
  Runner runner(models::FindModel("Inception v2"), EnvG(4, 1, false));
  const auto base = runner.Run("baseline", 6, 5);
  const auto tic = runner.Run("tic", 6, 5);
  EXPECT_GT(tic.MeanOverlap(), base.MeanOverlap());
  EXPECT_GT(tic.MeanOverlap(), 0.5);
}

TEST(Stragglers, SlowWorkerDominatesIterationTime) {
  auto config = EnvG(4, 1, true);
  Runner uniform(models::FindModel("Inception v1"), config);
  config.worker_speed_factors = {1.0, 1.0, 1.0, 0.5};  // one 2x-slow worker
  Runner skewed(models::FindModel("Inception v1"), config);
  const auto fast = uniform.Run("tic", 4, 9);
  const auto slow = skewed.Run("tic", 4, 9);
  EXPECT_GT(slow.MeanIterationTime(), fast.MeanIterationTime() * 1.1);
  // The slow worker finishes last in (almost) every iteration.
  for (const auto& it : slow.iterations) {
    const auto slowest = std::max_element(it.worker_finish.begin(),
                                          it.worker_finish.end()) -
                         it.worker_finish.begin();
    EXPECT_EQ(slowest, 3);
  }
}

TEST(Stragglers, SchedulingCannotFixHardwareStragglers) {
  // Enforced ordering removes schedule-induced stragglers but a slow
  // device still drags the barrier: straggler% stays high under TIC.
  auto config = EnvG(4, 1, true);
  config.worker_speed_factors = {1.0, 1.0, 1.0, 0.6};
  Runner runner(models::FindModel("Inception v2"), config);
  const auto tic = runner.Run("tic", 5, 11);
  EXPECT_GT(tic.MeanStragglerPct(), 5.0);
}

TEST(Stragglers, RejectsNonPositiveSpeed) {
  // ClusterConfig::Validate rejects the config at Runner construction.
  auto config = EnvG(2, 1, true);
  config.worker_speed_factors = {1.0, 0.0};
  EXPECT_THROW(Runner(models::FindModel("AlexNet v2"), config),
               std::invalid_argument);
}

TEST(Stragglers, RejectsSpeedFactorCountMismatch) {
  auto config = EnvG(2, 1, true);
  config.worker_speed_factors = {1.0, 1.0, 1.0};  // 3 factors, 2 workers
  try {
    Runner runner(models::FindModel("AlexNet v2"), config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("worker_speed_factors"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace tictac::runtime
