#include "core/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tictac::core {
namespace {

Graph Diamond() {
  // r -> a -> c, r -> b -> c
  Graph g;
  const OpId r = g.AddRecv("r", 100);
  const OpId a = g.AddCompute("a", 1.0);
  const OpId b = g.AddCompute("b", 2.0);
  const OpId c = g.AddCompute("c", 3.0);
  g.AddEdge(r, a);
  g.AddEdge(r, b);
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  return g;
}

TEST(Graph, AddOpAssignsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.AddCompute("a", 1.0), 0);
  EXPECT_EQ(g.AddRecv("b", 10), 1);
  EXPECT_EQ(g.AddSend("c", 20), 2);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.op(0).name, "a");
  EXPECT_EQ(g.op(1).kind, OpKind::kRecv);
  EXPECT_EQ(g.op(2).bytes, 20);
}

TEST(Graph, EdgesPopulateAdjacency) {
  const Graph g = Diamond();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.succs(0).size(), 2u);
  EXPECT_EQ(g.preds(3).size(), 2u);
  EXPECT_TRUE(g.preds(0).empty());
  EXPECT_TRUE(g.succs(3).empty());
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g;
  const OpId a = g.AddCompute("a", 1);
  const OpId b = g.AddCompute("b", 1);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.succs(a).size(), 1u);
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const Graph g = Diamond();
  const auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), g.size());
  EXPECT_TRUE(g.IsTopologicalOrder(order));
  // Root first, sink last.
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(Graph, TopologicalOrderIsDeterministic) {
  const Graph g = Diamond();
  EXPECT_EQ(g.TopologicalOrder(), g.TopologicalOrder());
}

TEST(Graph, DetectsCycle) {
  Graph g;
  const OpId a = g.AddCompute("a", 1);
  const OpId b = g.AddCompute("b", 1);
  const OpId c = g.AddCompute("c", 1);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(c, a);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_LT(g.TopologicalOrder().size(), g.size());
}

TEST(Graph, IsTopologicalOrderRejectsBadInputs) {
  const Graph g = Diamond();
  EXPECT_FALSE(g.IsTopologicalOrder({0, 1, 2}));           // wrong size
  EXPECT_FALSE(g.IsTopologicalOrder({0, 0, 1, 2}));        // duplicate
  EXPECT_FALSE(g.IsTopologicalOrder({3, 1, 2, 0}));        // violates edges
  EXPECT_FALSE(g.IsTopologicalOrder({0, 1, 2, 99}));       // out of range
  EXPECT_TRUE(g.IsTopologicalOrder({0, 2, 1, 3}));         // valid variant
}

TEST(Graph, RecvOpsAndKindFilter) {
  Graph g;
  g.AddRecv("r0", 8);
  g.AddCompute("c", 1);
  g.AddRecv("r1", 16);
  g.AddSend("s", 4);
  const auto recvs = g.RecvOps();
  ASSERT_EQ(recvs.size(), 2u);
  EXPECT_EQ(recvs[0], 0);
  EXPECT_EQ(recvs[1], 2);
  EXPECT_EQ(g.OpsOfKind(OpKind::kSend).size(), 1u);
  EXPECT_EQ(g.TotalRecvBytes(), 24);
}

TEST(Graph, EmptyGraphIsAcyclic) {
  Graph g;
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_TRUE(g.TopologicalOrder().empty());
  EXPECT_TRUE(g.IsTopologicalOrder({}));
}

TEST(Graph, DebugSummaryCountsKinds) {
  const Graph g = Diamond();
  const std::string s = g.DebugSummary();
  EXPECT_NE(s.find("4 ops"), std::string::npos);
  EXPECT_NE(s.find("recv: 1"), std::string::npos);
  EXPECT_NE(s.find("compute: 3"), std::string::npos);
}

TEST(Graph, IsCommunicationHelper) {
  EXPECT_TRUE(IsCommunication(OpKind::kRecv));
  EXPECT_TRUE(IsCommunication(OpKind::kSend));
  EXPECT_FALSE(IsCommunication(OpKind::kCompute));
  EXPECT_FALSE(IsCommunication(OpKind::kAggregate));
}

TEST(Graph, ToStringNamesAllKinds) {
  EXPECT_STREQ(ToString(OpKind::kCompute), "compute");
  EXPECT_STREQ(ToString(OpKind::kRecv), "recv");
  EXPECT_STREQ(ToString(OpKind::kSend), "send");
  EXPECT_STREQ(ToString(OpKind::kAggregate), "aggregate");
  EXPECT_STREQ(ToString(OpKind::kRead), "read");
  EXPECT_STREQ(ToString(OpKind::kUpdate), "update");
}

}  // namespace
}  // namespace tictac::core
