// Sharded event engine differentials (sim/parallel.cc, DESIGN.md §11).
//
// The contract under test: RunParallel partitions the graph into
// independent components (dependency edges, shared resources, shared
// gate groups, shared flow links), advances each on its own thread with
// the per-component random stream util::Rng::StreamSeed(seed, c), and
// merges — and the result is IDENTICAL at every thread count, including
// 1, where single-component graphs delegate to Run() outright. The
// manual-shard tests re-derive a component's subgraph by hand (local ids
// in global order, dense resource remap, remapped fault timeline) and
// check the merged result against running that subgraph alone.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/clustersweep.h"
#include "runtime/multijob.h"
#include "sim/engine.h"
#include "sim/flow.h"
#include "sim/task.h"
#include "util/rng.h"

namespace tictac {
namespace {

sim::Task MakeTask(double duration, int resource,
                   std::vector<sim::TaskId> preds = {}, int priority = 0) {
  sim::Task t;
  t.duration = duration;
  t.resource = resource;
  t.preds = std::move(preds);
  t.priority = priority;
  return t;
}

void ExpectSameResult(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.start_order, b.start_order);
}

TEST(ComponentOf, UnionsPredsResourcesAndGateGroups) {
  // Six tasks, three components: {0,1} share a dependency edge (distinct
  // resources), {2,3} share resource 2, {4,5} share gate group 0 on
  // distinct resources.
  std::vector<sim::Task> tasks;
  tasks.push_back(MakeTask(1.0, 0));
  tasks.push_back(MakeTask(1.0, 1, {0}));
  tasks.push_back(MakeTask(1.0, 2));
  tasks.push_back(MakeTask(1.0, 2));
  sim::Task g0 = MakeTask(1.0, 3);
  g0.gate_group = 0;
  g0.gate_rank = 0;
  sim::Task g1 = MakeTask(1.0, 4);
  g1.gate_group = 0;
  g1.gate_rank = 1;
  tasks.push_back(g0);
  tasks.push_back(g1);

  const sim::TaskGraphSim sim(tasks, 5);
  const std::vector<int> expected{0, 0, 1, 1, 2, 2};
  EXPECT_EQ(sim.ComponentOf(sim::SimOptions{}), expected);
}

TEST(ComponentOf, SharedFlowLinksMergeComponentsOnlyWhenFlowIsOn) {
  // Two tasks on distinct resources that traverse the same link: two
  // components with flow off (the link is inert), one with it on (their
  // rates are coupled through the shared capacity).
  const std::vector<sim::Task> tasks{MakeTask(1.0, 0), MakeTask(1.0, 1)};
  sim::FlowNetwork net;
  net.links = {{100.0}};
  net.resource_links = {{0}, {0}};
  net.resource_nominal_bps = {50.0, 50.0};

  const sim::TaskGraphSim sim(tasks, 2);
  sim::SimOptions off;
  off.network = &net;  // attached but fairness off: still inert
  EXPECT_EQ(sim.ComponentOf(off), (std::vector<int>{0, 1}));

  sim::SimOptions on = off;
  on.flow_fairness = true;
  EXPECT_EQ(sim.ComponentOf(on), (std::vector<int>{0, 0}));
}

TEST(RunParallel, SingleComponentDelegatesToTheSerialEngine) {
  // A diamond on one shared resource pool: one component, so any thread
  // count must be byte-identical to Run() (it literally delegates).
  std::vector<sim::Task> tasks;
  tasks.push_back(MakeTask(1.0, 0));
  tasks.push_back(MakeTask(2.0, 1, {0}));
  tasks.push_back(MakeTask(3.0, 0, {0}));
  tasks.push_back(MakeTask(1.0, 1, {1, 2}));
  const sim::TaskGraphSim sim(tasks, 2);
  sim::SimOptions options;
  options.jitter_sigma = 0.3;
  options.out_of_order_probability = 0.2;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameResult(sim.RunParallel(options, 11, threads),
                     sim.Run(options, 11));
  }
}

TEST(RunParallel, ThreadCountCannotChangeTheResult) {
  // Six disjoint gated chains with jitter and out-of-order draws — the
  // randomized paths — simulated at 1, 2 and 8 threads: all identical.
  std::vector<sim::Task> tasks;
  for (int c = 0; c < 6; ++c) {
    const int first = static_cast<int>(tasks.size());
    for (int i = 0; i < 4; ++i) {
      sim::Task t = MakeTask(0.5 + 0.25 * i, c,
                             i == 0 ? std::vector<sim::TaskId>{}
                                    : std::vector<sim::TaskId>{
                                          static_cast<sim::TaskId>(
                                              first + i - 1)},
                             i);
      t.gate_group = c;
      t.gate_rank = i;
      tasks.push_back(t);
    }
  }
  const sim::TaskGraphSim sim(tasks, 6);
  sim::SimOptions options;
  options.enforce_gates = true;
  options.jitter_sigma = 0.2;
  options.out_of_order_probability = 0.3;
  const sim::SimResult one = sim.RunParallel(options, 17, 1);
  EXPECT_EQ(one.start_order.size(), tasks.size());
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameResult(sim.RunParallel(options, 17, threads), one);
  }
}

TEST(RunParallel, ShardRunsMatchManualComponentRuns) {
  // Components interleaved by task id — component 0 owns tasks {0, 2} on
  // resource 0, component 1 owns {1, 3} on resource 1 — so the test
  // exercises the dense local remaps, not just contiguous slicing.
  std::vector<sim::Task> tasks;
  tasks.push_back(MakeTask(1.0, 0));
  tasks.push_back(MakeTask(2.0, 1));
  tasks.push_back(MakeTask(0.5, 0, {0}));
  tasks.push_back(MakeTask(0.25, 1, {1}));
  const sim::TaskGraphSim sim(tasks, 2);
  sim::SimOptions options;
  options.jitter_sigma = 0.4;

  const sim::SimResult merged = sim.RunParallel(options, 9, 2);

  // Component c's subgraph: local ids in increasing global order, the
  // component's resources remapped dense in first-use order, stream seed
  // StreamSeed(seed, c) — the protocol sim/parallel.cc documents.
  for (int c = 0; c < 2; ++c) {
    SCOPED_TRACE("component=" + std::to_string(c));
    const std::vector<sim::TaskId> members{static_cast<sim::TaskId>(c),
                                           static_cast<sim::TaskId>(c + 2)};
    std::vector<sim::Task> local;
    for (const sim::TaskId g : members) {
      sim::Task t = tasks[static_cast<std::size_t>(g)];
      t.resource = 0;  // each component touches exactly one resource
      for (sim::TaskId& pred : t.preds) pred = pred == c ? 0 : 1;
      local.push_back(t);
    }
    const sim::TaskGraphSim shard(local, 1);
    const sim::SimResult alone =
        shard.Run(options, util::Rng::StreamSeed(9, static_cast<std::uint64_t>(c)));
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto g = static_cast<std::size_t>(members[i]);
      EXPECT_EQ(merged.start[g], alone.start[i]);
      EXPECT_EQ(merged.end[g], alone.end[i]);
    }
  }
}

TEST(RunParallel, FaultTimelinesApplyPerShardIdentically) {
  // Two components, each with a fault on its own resource: the sharded
  // engine filters and remaps the timeline per shard. Thread counts must
  // agree with each other AND with the hand-built shard run.
  std::vector<sim::Task> tasks;
  tasks.push_back(MakeTask(1.0, 0));
  tasks.push_back(MakeTask(1.0, 0, {0}));
  tasks.push_back(MakeTask(1.0, 1));
  tasks.push_back(MakeTask(1.0, 1, {2}));
  const std::vector<sim::ResourceFault> faults{
      {0.5, 0, 0.25},  // resource 0 slows to quarter speed at t=0.5
      {0.5, 1, 2.0},   // resource 1 doubles at t=0.5
  };
  const sim::TaskGraphSim sim(tasks, 2);
  sim::SimOptions options;
  options.faults = &faults;

  const sim::SimResult one = sim.RunParallel(options, 3, 1);
  ExpectSameResult(sim.RunParallel(options, 3, 4), one);
  // Task 1 starts at t=1 under speed 0.25: duration 4, end 5. Task 3
  // starts at t=1 under speed 2: end 1.5.
  EXPECT_DOUBLE_EQ(one.end[1], 5.0);
  EXPECT_DOUBLE_EQ(one.end[3], 1.5);

  // Manual shard for component 1 ({2, 3} on resource 1): the fault's
  // resource id remaps with the dense resource remap.
  std::vector<sim::Task> local{MakeTask(1.0, 0), MakeTask(1.0, 0, {0})};
  const std::vector<sim::ResourceFault> local_faults{{0.5, 0, 2.0}};
  sim::SimOptions local_options;
  local_options.faults = &local_faults;
  const sim::TaskGraphSim shard(local, 1);
  const sim::SimResult alone =
      shard.Run(local_options, util::Rng::StreamSeed(3, 1));
  EXPECT_EQ(one.start[2], alone.start[0]);
  EXPECT_EQ(one.end[3], alone.end[1]);
}

TEST(ClusterSweep, SingleFabricMatchesTheMultiJobRunner) {
  // Three jobs on one fabric: the sweep's per-job means must equal the
  // MultiJobRunner's own slices exactly (same lowering, same engine).
  const std::string text =
      "2x{envG:workers=2:ps=1:training model=AlexNet v2 policy=tac "
      "iterations=2 seed=5} {envG:workers=2:ps=1:training model=AlexNet v2 "
      "policy=baseline iterations=2 seed=5}";
  std::vector<runtime::MultiJobEntry> jobs =
      runtime::ParseJobGroups(text, 4096);
  ASSERT_EQ(jobs.size(), 3u);

  runtime::MultiJobSpec spec;
  spec.jobs = jobs;
  const runtime::MultiJobRunner runner(std::move(spec));
  const runtime::MultiJobResult reference = runner.Run();

  runtime::ClusterSweepOptions options;
  options.fabrics = 1;
  const runtime::ClusterSweep sweep(std::move(jobs), options);
  EXPECT_EQ(sweep.num_jobs(), 3);
  EXPECT_EQ(sweep.num_fabrics(), 1);
  const runtime::ClusterSweepResult result = sweep.Run();

  ASSERT_EQ(result.job_mean_iteration_s.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(result.job_mean_iteration_s[j],
              reference.jobs[j].MeanIterationTime())
        << "job " << j;
  }
}

TEST(ClusterSweep, ThreadCountCannotChangeTheReport) {
  const std::string text =
      "8x{envG:workers=2:ps=1:training model=AlexNet v2 policy=tac "
      "iterations=2 seed=4}";
  const auto run = [&text](int threads) {
    runtime::ClusterSweepOptions options;
    options.fabrics = 2;
    options.num_threads = threads;
    return runtime::ClusterSweep(runtime::ParseJobGroups(text, 4096), options)
        .Run()
        .ToJson();
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(ClusterSweep, RejectsOverfullOrUnderfilledPartitions) {
  const auto parse_n = [](int n) {
    return runtime::ParseJobGroups(
        std::to_string(n) +
            "x{envG:workers=2:ps=1:training model=AlexNet v2 policy=tac "
            "iterations=1 seed=1}",
        4096);
  };
  {
    runtime::ClusterSweepOptions options;
    options.fabrics = 5;
    try {
      runtime::ClusterSweep sweep(parse_n(3), options);
      FAIL() << "expected fabrics > jobs to be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("more fabrics"), std::string::npos)
          << "message was: " << e.what();
    }
  }
  {
    // 70 jobs forced onto one fabric: over the 64-job cap. Rejected by
    // partition arithmetic BEFORE any runner is constructed, so the
    // error is instant and names the fix.
    runtime::ClusterSweepOptions options;
    options.fabrics = 1;
    try {
      runtime::ClusterSweep sweep(parse_n(70), options);
      FAIL() << "expected the per-fabric cap to reject 70 jobs on 1 fabric";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("per-fabric cap"), std::string::npos)
          << "message was: " << what;
      EXPECT_NE(what.find("use at least 2 fabrics"), std::string::npos)
          << "message was: " << what;
    }
  }
}

}  // namespace
}  // namespace tictac
