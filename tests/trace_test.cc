#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <string>

#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/sharding.h"
#include "trace/estimator.h"
#include "trace/tracer.h"

namespace tictac::trace {
namespace {

struct Fixture {
  Fixture()
      : info(models::FindModel("Inception v1")),
        config(runtime::EnvG(2, 1, true)),
        graph(models::BuildWorkerGraph(info, {.training = true})),
        lowering(runtime::LowerCluster(
            graph, core::Tic(graph),
            runtime::ShardParams(models::ParamSizes(info), 1), config)) {}

  const models::ModelInfo& info;
  runtime::ClusterConfig config;
  core::Graph graph;
  runtime::Lowering lowering;
};

TEST(Tracer, OneSpanPerTask) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  EXPECT_EQ(spans.size(), f.lowering.tasks.size());
  for (const Span& span : spans) {
    EXPECT_GE(span.end, span.start);
    EXPECT_FALSE(span.name.empty());
  }
}

TEST(Tracer, WorkerSpansArePrefixed) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  int worker_spans = 0;
  int ps_spans = 0;
  for (const Span& span : spans) {
    if (span.worker >= 0) {
      EXPECT_EQ(span.name.rfind("w", 0), 0u) << span.name;
      ++worker_spans;
    } else {
      EXPECT_EQ(span.name.rfind("ps/", 0), 0u) << span.name;
      ++ps_spans;
    }
  }
  EXPECT_EQ(worker_spans, static_cast<int>(f.graph.size()) * 2);
  EXPECT_EQ(ps_spans, f.info.num_params * 3);
}

// Minimal JSON well-formedness checker for the escaping tests below: a
// recursive-descent scan of one JSON value. Returns false instead of
// throwing so EXPECT_TRUE failures show the offending document.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < text_.size()) {
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::string("+-.eE").find(text_[pos_]) != std::string::npos)) {
      ++pos_;
    }
    return pos_ > begin;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  bool Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(Tracer, ChromeJsonShape) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  const std::string json = ToChromeTraceJson(spans);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"recv")"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":)"), std::string::npos);
}

TEST(Tracer, EmitsValidJsonForBenignNames) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  const std::string json = ToChromeTraceJson(spans);
  EXPECT_TRUE(JsonChecker(json).Valid());
}

TEST(Tracer, EscapesHostileSpanNames) {
  // Op names come from user-loaded graphs (core/io), so quotes,
  // backslashes and control characters must all survive serialization
  // as valid JSON.
  std::vector<Span> spans(2);
  spans[0].name = "w0/conv\"quoted\"\\back\\slash";
  spans[0].resource = 1;
  spans[0].kind = core::OpKind::kRecv;
  spans[0].start = 0.0;
  spans[0].end = 1.0;
  spans[1].name = "tab\there\nnewline\x01raw";
  spans[1].resource = 2;
  spans[1].kind = core::OpKind::kCompute;
  spans[1].start = 1.0;
  spans[1].end = 2.5;

  const std::string json = ToChromeTraceJson(spans);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The escaped forms are present; no raw quote survives inside a name.
  EXPECT_NE(json.find(R"(w0/conv\"quoted\"\\back\\slash)"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(R"(tab\there\nnewline\u0001raw)"), std::string::npos)
      << json;
}

TEST(Tracer, WritesFile) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  const std::string path = ::testing::TempDir() + "/tictac_trace.json";
  WriteChromeTrace(spans, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "[");
}

TEST(Estimator, MinOfRunsLowerBoundsEachRun) {
  Fixture f;
  sim::SimOptions options = f.config.sim;
  options.jitter_sigma = 0.1;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, options, kDefaultProfilingRuns, 3);

  sim::TaskGraphSim sim = f.lowering.BuildSim();
  for (int run = 0; run < kDefaultProfilingRuns; ++run) {
    const sim::SimResult result =
        sim.Run(options, 3 + static_cast<std::uint64_t>(run));
    for (sim::TaskId t : f.lowering.worker_tasks[0]) {
      const auto ti = static_cast<std::size_t>(t);
      const core::OpId op = f.lowering.tasks[ti].op;
      EXPECT_LE(oracle.Time(f.graph, op),
                result.end[ti] - result.start[ti] + 1e-12);
    }
  }
}

TEST(Estimator, ExactWithoutJitter) {
  Fixture f;
  sim::SimOptions options = f.config.sim;
  options.jitter_sigma = 0.0;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, options, 2, 5);
  for (sim::TaskId t : f.lowering.worker_tasks[0]) {
    const auto ti = static_cast<std::size_t>(t);
    EXPECT_NEAR(oracle.Time(f.graph, f.lowering.tasks[ti].op),
                f.lowering.tasks[ti].duration, 1e-12);
  }
}

TEST(Estimator, OracleDrivesTacEndToEnd) {
  // A TAC schedule built from estimated times must still cover all recvs.
  Fixture f;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, f.config.sim, 5, 7);
  const core::Schedule schedule = core::Tac(f.graph, oracle);
  EXPECT_TRUE(schedule.CoversAllRecvs(f.graph));
}

}  // namespace
}  // namespace tictac::trace
