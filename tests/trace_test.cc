#include <gtest/gtest.h>

#include <fstream>

#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/sharding.h"
#include "trace/estimator.h"
#include "trace/tracer.h"

namespace tictac::trace {
namespace {

struct Fixture {
  Fixture()
      : info(models::FindModel("Inception v1")),
        config(runtime::EnvG(2, 1, true)),
        graph(models::BuildWorkerGraph(info, {.training = true})),
        lowering(runtime::LowerCluster(
            graph, core::Tic(graph),
            runtime::ShardParams(models::ParamSizes(info), 1), config)) {}

  const models::ModelInfo& info;
  runtime::ClusterConfig config;
  core::Graph graph;
  runtime::Lowering lowering;
};

TEST(Tracer, OneSpanPerTask) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  EXPECT_EQ(spans.size(), f.lowering.tasks.size());
  for (const Span& span : spans) {
    EXPECT_GE(span.end, span.start);
    EXPECT_FALSE(span.name.empty());
  }
}

TEST(Tracer, WorkerSpansArePrefixed) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  int worker_spans = 0;
  int ps_spans = 0;
  for (const Span& span : spans) {
    if (span.worker >= 0) {
      EXPECT_EQ(span.name.rfind("w", 0), 0u) << span.name;
      ++worker_spans;
    } else {
      EXPECT_EQ(span.name.rfind("ps/", 0), 0u) << span.name;
      ++ps_spans;
    }
  }
  EXPECT_EQ(worker_spans, static_cast<int>(f.graph.size()) * 2);
  EXPECT_EQ(ps_spans, f.info.num_params * 3);
}

TEST(Tracer, ChromeJsonShape) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  const std::string json = ToChromeTraceJson(spans);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"recv")"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":)"), std::string::npos);
}

TEST(Tracer, WritesFile) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const auto spans = CollectSpans(f.lowering, result, f.graph);
  const std::string path = ::testing::TempDir() + "/tictac_trace.json";
  WriteChromeTrace(spans, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "[");
}

TEST(Estimator, MinOfRunsLowerBoundsEachRun) {
  Fixture f;
  sim::SimOptions options = f.config.sim;
  options.jitter_sigma = 0.1;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, options, kDefaultProfilingRuns, 3);

  sim::TaskGraphSim sim = f.lowering.BuildSim();
  for (int run = 0; run < kDefaultProfilingRuns; ++run) {
    const sim::SimResult result =
        sim.Run(options, 3 + static_cast<std::uint64_t>(run));
    for (sim::TaskId t : f.lowering.worker_tasks[0]) {
      const auto ti = static_cast<std::size_t>(t);
      const core::OpId op = f.lowering.tasks[ti].op;
      EXPECT_LE(oracle.Time(f.graph, op),
                result.end[ti] - result.start[ti] + 1e-12);
    }
  }
}

TEST(Estimator, ExactWithoutJitter) {
  Fixture f;
  sim::SimOptions options = f.config.sim;
  options.jitter_sigma = 0.0;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, options, 2, 5);
  for (sim::TaskId t : f.lowering.worker_tasks[0]) {
    const auto ti = static_cast<std::size_t>(t);
    EXPECT_NEAR(oracle.Time(f.graph, f.lowering.tasks[ti].op),
                f.lowering.tasks[ti].duration, 1e-12);
  }
}

TEST(Estimator, OracleDrivesTacEndToEnd) {
  // A TAC schedule built from estimated times must still cover all recvs.
  Fixture f;
  const core::MapTimeOracle oracle =
      EstimateWorkerOracle(f.lowering, f.config.sim, 5, 7);
  const core::Schedule schedule = core::Tac(f.graph, oracle);
  EXPECT_TRUE(schedule.CoversAllRecvs(f.graph));
}

}  // namespace
}  // namespace tictac::trace
