#include "core/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace tictac::core {
namespace {

// Figure 1's two-resource device: one NIC (recvs), one processor.
Graph ToyGraph() {
  Graph g;
  g.AddRecv("recv1", 0);    // id 0
  g.AddRecv("recv2", 0);    // id 1
  g.AddCompute("op1", 0);   // id 2
  g.AddCompute("op2", 0);   // id 3
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  return g;
}

MapTimeOracle UnitOracle() {
  return MapTimeOracle({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}});
}

TEST(Metrics, BoundsOnToyGraph) {
  const Graph g = ToyGraph();
  const MapTimeOracle oracle = UnitOracle();
  const MakespanBounds bounds = ComputeBounds(g, oracle);
  // U = serial total (Eq. 1) = 4; L = busiest resource (Eq. 2) = 2.
  EXPECT_DOUBLE_EQ(bounds.upper, 4.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 2.0);
}

TEST(Metrics, EfficiencyEndpoints) {
  const MakespanBounds bounds{4.0, 2.0};
  // Figure 1b's good order achieves makespan 3; 1c's bad order 4.
  EXPECT_DOUBLE_EQ(Efficiency(bounds, 2.0), 1.0);  // m = L: perfect
  EXPECT_DOUBLE_EQ(Efficiency(bounds, 4.0), 0.0);  // m = U: worst
  EXPECT_DOUBLE_EQ(Efficiency(bounds, 3.0), 0.5);
}

TEST(Metrics, EfficiencyWhenNoHeadroom) {
  EXPECT_DOUBLE_EQ(Efficiency({5.0, 5.0}, 5.0), 1.0);
}

TEST(Metrics, SpeedupDefinition) {
  EXPECT_DOUBLE_EQ(Speedup({4.0, 2.0}), 1.0);   // double throughput possible
  EXPECT_DOUBLE_EQ(Speedup({3.0, 3.0}), 0.0);   // no benefit
  EXPECT_DOUBLE_EQ(Speedup({4.0, 0.0}), 0.0);   // degenerate lower bound
}

TEST(Metrics, ExplicitResourceTagsGroupLoad) {
  Graph g;
  Op a;
  a.kind = OpKind::kCompute;
  a.cost = 0;
  a.resource = 7;
  const OpId ida = g.AddOp(a);
  Op b = a;
  const OpId idb = g.AddOp(b);
  Op c = a;
  c.resource = 8;
  const OpId idc = g.AddOp(c);
  MapTimeOracle oracle({{ida, 2.0}, {idb, 3.0}, {idc, 4.0}});
  const MakespanBounds bounds = ComputeBounds(g, oracle);
  EXPECT_DOUBLE_EQ(bounds.upper, 9.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 5.0);  // resource 7 carries 2+3
}

TEST(Metrics, UntaggedOpsSplitByKind) {
  Graph g;
  g.AddRecv("r", 0);
  g.AddSend("s", 0);
  g.AddCompute("c", 0);
  MapTimeOracle oracle({{0, 3.0}, {1, 2.0}, {2, 4.0}});
  const MakespanBounds bounds = ComputeBounds(g, oracle);
  // Communication (3+2) on the default channel vs compute (4).
  EXPECT_DOUBLE_EQ(bounds.lower, 5.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 9.0);
}

TEST(Metrics, JainFairnessEndpoints) {
  EXPECT_DOUBLE_EQ(JainFairness({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairness({1.0, 0.0}), 0.5);       // max unfair, n = 2
  EXPECT_DOUBLE_EQ(JainFairness({1.0, 0.0, 0.0}),
                   1.0 / 3.0);                           // max unfair, n = 3
  EXPECT_DOUBLE_EQ(JainFairness({}), 1.0);               // no information
  EXPECT_DOUBLE_EQ(JainFairness({0.0, 0.0}), 1.0);       // no information
  EXPECT_NEAR(JainFairness({4.0, 1.0}), 25.0 / 34.0, 1e-12);
  EXPECT_THROW(JainFairness({1.0, -0.5}), std::invalid_argument);
}

TEST(Metrics, JainFairnessIsScaleInvariant) {
  const std::vector<double> shares{0.7, 1.1, 0.9};
  std::vector<double> scaled;
  for (const double s : shares) scaled.push_back(s * 42.0);
  EXPECT_NEAR(JainFairness(shares), JainFairness(scaled), 1e-12);
}

TEST(Metrics, ComputeInterferenceSlowdownsAndFairness) {
  // Job 0 doubled its iteration time under contention, job 1 unaffected.
  const InterferenceStats stats =
      ComputeInterference({2.0, 3.0}, {1.0, 3.0});
  ASSERT_EQ(stats.slowdown.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.slowdown[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.slowdown[1], 1.0);
  EXPECT_DOUBLE_EQ(stats.normalized_progress[0], 0.5);
  EXPECT_DOUBLE_EQ(stats.normalized_progress[1], 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_slowdown, 1.5);
  EXPECT_DOUBLE_EQ(stats.max_slowdown, 2.0);
  // Jain over {0.5, 1.0}: 2.25 / (2 * 1.25) = 0.9.
  EXPECT_DOUBLE_EQ(stats.fairness, 0.9);
}

TEST(Metrics, ComputeInterferenceEqualImpactIsPerfectlyFair) {
  const InterferenceStats stats =
      ComputeInterference({2.0, 6.0}, {1.0, 3.0});  // both slowed 2x
  EXPECT_DOUBLE_EQ(stats.fairness, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_slowdown, 2.0);
}

TEST(Metrics, ComputeInterferenceRejectsBadInput) {
  EXPECT_THROW(ComputeInterference({}, {}), std::invalid_argument);
  EXPECT_THROW(ComputeInterference({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ComputeInterference({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(ComputeInterference({-1.0}, {1.0}), std::invalid_argument);
}

TEST(Metrics, EmptyGraph) {
  Graph g;
  GeneralTimeOracle oracle;
  const MakespanBounds bounds = ComputeBounds(g, oracle);
  EXPECT_DOUBLE_EQ(bounds.upper, 0.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(Efficiency(bounds, 0.0), 1.0);
}

}  // namespace
}  // namespace tictac::core
