#include "trace/calibrate.h"

#include <gtest/gtest.h>

#include "core/tac.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "runtime/sharding.h"

namespace tictac::trace {
namespace {

struct Fixture {
  explicit Fixture(double jitter = 0.0)
      : info(models::FindModel("Inception v2")),
        config(runtime::EnvG(4, 2, /*training=*/true)),
        graph(models::BuildWorkerGraph(info, {.training = true})) {
    config.sim.jitter_sigma = jitter;
    config.sim.out_of_order_probability = 0.0;
    lowering = runtime::LowerCluster(
        graph, core::Schedule(),
        runtime::ShardParams(models::ParamSizes(info), config.num_ps),
        config);
  }

  const models::ModelInfo& info;
  runtime::ClusterConfig config;
  core::Graph graph;
  runtime::Lowering lowering;
};

TEST(Calibrate, RecoversPlatformExactlyWithoutJitter) {
  Fixture f(/*jitter=*/0.0);
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const Calibration cal =
      CalibratePlatform(f.lowering, result, f.graph, f.config.num_workers);

  EXPECT_NEAR(cal.platform.bandwidth_bps / f.config.platform.bandwidth_bps,
              1.0, 1e-6);
  EXPECT_NEAR(cal.platform.latency_s, f.config.platform.latency_s, 1e-9);
  EXPECT_NEAR(cal.platform.compute_rate / f.config.platform.compute_rate,
              1.0, 1e-6);
  EXPECT_GT(cal.transfer_fit_r2, 0.999999);
  EXPECT_EQ(cal.transfer_samples,
            f.info.num_params * 2);  // recvs + sends on worker 0
  EXPECT_GT(cal.compute_samples, 0);
}

TEST(Calibrate, RobustToModerateJitter) {
  Fixture f(/*jitter=*/0.05);
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 3);
  const Calibration cal =
      CalibratePlatform(f.lowering, result, f.graph, f.config.num_workers);
  EXPECT_NEAR(cal.platform.bandwidth_bps / f.config.platform.bandwidth_bps,
              1.0, 0.1);
  EXPECT_NEAR(cal.platform.compute_rate / f.config.platform.compute_rate,
              1.0, 0.1);
  EXPECT_GT(cal.transfer_fit_r2, 0.95);
}

TEST(Calibrate, ResidualsAndR2TrackFitQuality) {
  // Jitter-free traces fit both regressions essentially exactly:
  // residuals collapse to ~0, both R² to ~1, and GoodFit accepts.
  Fixture clean(/*jitter=*/0.0);
  const sim::SimResult clean_result =
      clean.lowering.BuildSim().Run(clean.config.sim, 1);
  const Calibration exact = CalibratePlatform(
      clean.lowering, clean_result, clean.graph, clean.config.num_workers);
  EXPECT_GT(exact.compute_fit_r2, 0.999999);
  EXPECT_LT(exact.transfer_mean_abs_residual_s, 1e-9);
  EXPECT_LT(exact.compute_mean_abs_residual_s, 1e-9);
  EXPECT_TRUE(exact.GoodFit());

  // Heavy jitter degrades the fit measurably on every diagnostic, and a
  // strict threshold flags it — the gate ValidateAgainstSim relies on to
  // report POOR instead of a confident wrong prediction.
  Fixture noisy(/*jitter=*/0.5);
  const sim::SimResult noisy_result =
      noisy.lowering.BuildSim().Run(noisy.config.sim, 3);
  const Calibration rough = CalibratePlatform(
      noisy.lowering, noisy_result, noisy.graph, noisy.config.num_workers);
  EXPECT_GT(rough.transfer_mean_abs_residual_s,
            exact.transfer_mean_abs_residual_s);
  EXPECT_GT(rough.compute_mean_abs_residual_s,
            exact.compute_mean_abs_residual_s);
  EXPECT_LT(rough.compute_fit_r2, exact.compute_fit_r2);
  EXPECT_FALSE(rough.GoodFit(/*min_r2=*/0.999999999));
}

TEST(Calibrate, CalibratedOracleSchedulesAnotherModel) {
  // The transfer-learning loop: calibrate on Inception v2 traces, then
  // schedule ResNet-50 v1 with TAC using the recovered platform.
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  const Calibration cal =
      CalibratePlatform(f.lowering, result, f.graph, f.config.num_workers);

  const auto& other = models::FindModel("ResNet-50 v1");
  const core::Graph other_graph =
      models::BuildWorkerGraph(other, {.training = true});
  core::AnalyticalTimeOracle oracle(cal.platform);
  const core::Schedule schedule = core::Tac(other_graph, oracle);
  EXPECT_TRUE(schedule.CoversAllRecvs(other_graph));
}

TEST(Calibrate, DiagnosesEqualByteSizesAsDegenerate) {
  // All transfers the same size: util::FitLine returns its default
  // (slope 0) on zero x-variance, which used to be misreported as
  // "non-positive slope". The real problem — a degenerate sample set —
  // must be named, with the byte value and sample count.
  core::Graph graph;
  const core::OpId r0 = graph.AddRecv("recv0", 1 << 20, /*param=*/0);
  const core::OpId r1 = graph.AddRecv("recv1", 1 << 20, /*param=*/1);
  const core::OpId c = graph.AddCompute("compute", /*cost=*/5.0);
  graph.AddEdge(r0, c);
  graph.AddEdge(r1, c);

  runtime::ClusterConfig config = runtime::EnvG(2, 1, /*training=*/false);
  config.sim.jitter_sigma = 0.0;
  config.sim.out_of_order_probability = 0.0;
  const runtime::Lowering lowering = runtime::LowerCluster(
      graph, core::Schedule(), /*ps_of_param=*/{0, 0}, config);
  sim::TaskGraphSim sim = lowering.BuildSim();
  const sim::SimResult result = sim.Run(config.sim, 1);

  try {
    CalibratePlatform(lowering, result, graph, config.num_workers);
    FAIL() << "expected a degenerate-calibration error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("degenerate"), std::string::npos) << message;
    EXPECT_NE(message.find("1048576"), std::string::npos) << message;
    EXPECT_NE(message.find("2 transfer samples"), std::string::npos)
        << message;
  }
}

TEST(Calibrate, RejectsBadArguments) {
  Fixture f;
  sim::TaskGraphSim sim = f.lowering.BuildSim();
  const sim::SimResult result = sim.Run(f.config.sim, 1);
  EXPECT_THROW(CalibratePlatform(f.lowering, result, f.graph, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tictac::trace
