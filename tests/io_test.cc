#include "core/io.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/tac.h"
#include "core/tic.h"
#include "models/builder.h"
#include "models/zoo.h"

namespace tictac::core {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  const auto& info = models::FindModel("Inception v1");
  const Graph g = models::BuildWorkerGraph(info, {.training = true});
  const Graph parsed = GraphFromString(GraphToString(g));
  ASSERT_EQ(parsed.size(), g.size());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (const Op& op : g.ops()) {
    const Op& copy = parsed.op(op.id);
    EXPECT_EQ(copy.name, op.name);
    EXPECT_EQ(copy.kind, op.kind);
    EXPECT_EQ(copy.bytes, op.bytes);
    EXPECT_EQ(copy.cost, op.cost);
    EXPECT_EQ(copy.param, op.param);
    // Edge multiset is preserved; adjacency order is not canonical.
    auto a = parsed.preds(op.id);
    auto b = g.preds(op.id);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(GraphFromString("op nonsense"), std::runtime_error);
  EXPECT_THROW(GraphFromString("op 0 warble 0 0 -1 x"), std::runtime_error);
  EXPECT_THROW(GraphFromString("frobnicate 1 2"), std::runtime_error);
  EXPECT_THROW(GraphFromString("op 5 compute 0 1.0 -1 x"),
               std::runtime_error);  // non-contiguous id
  EXPECT_THROW(GraphFromString("op 0 compute 0 1.0 -1 x\nedge 0 7"),
               std::runtime_error);  // dangling edge
}

TEST(GraphIo, RejectsCycles) {
  const std::string text =
      "op 0 compute 0 1 -1 a\n"
      "op 1 compute 0 1 -1 b\n"
      "edge 0 1\n"
      "edge 1 0\n";
  EXPECT_THROW(GraphFromString(text), std::runtime_error);
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "# header\n"
      "\n"
      "op 0 recv 128 0 3 r0\n"
      "# trailing comment\n";
  const Graph g = GraphFromString(text);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.op(0).kind, OpKind::kRecv);
  EXPECT_EQ(g.op(0).bytes, 128);
  EXPECT_EQ(g.op(0).param, 3);
  EXPECT_EQ(g.op(0).name, "r0");
}

TEST(ScheduleIo, RoundTripMatchesTic) {
  const auto& info = models::FindModel("AlexNet v2");
  const Graph g = models::BuildWorkerGraph(info, {});
  const Schedule tic = Tic(g);
  const Schedule parsed =
      ScheduleFromString(ScheduleToString(tic, g), g);
  for (const Op& op : g.ops()) {
    EXPECT_EQ(parsed.priority(op.id), tic.priority(op.id));
  }
  EXPECT_EQ(parsed.RecvOrder(g), tic.RecvOrder(g));
}

TEST(ScheduleIo, RejectsBadLines) {
  Graph g;
  g.AddRecv("r", 0, 0);
  EXPECT_THROW(ScheduleFromString("priority 5 0", g), std::runtime_error);
  EXPECT_THROW(ScheduleFromString("prio 0 0", g), std::runtime_error);
}

TEST(Dot, ContainsNodesEdgesAndPriorities) {
  Graph g;
  const OpId r = g.AddRecv("r0", 256, 0);
  const OpId c = g.AddCompute("work", 1.0);
  g.AddEdge(r, c);
  Schedule s(g.size());
  s.SetPriority(r, 4);
  const std::string dot = ToDot(g, &s);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("256B"), std::string::npos);
  EXPECT_NE(dot.find("p4"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(Dot, WorksWithoutSchedule) {
  Graph g;
  g.AddSend("out", 64, 0);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
}

TEST(GraphIo, OfflineWizardWorkflow) {
  // The §5 pipeline on disk: serialize model graph, compute TAC offline,
  // serialize the priority list, load both back, verify the order.
  const auto& info = models::FindModel("ResNet-50 v1");
  const Graph original = models::BuildWorkerGraph(info, {});
  const std::string graph_text = GraphToString(original);

  const Graph loaded = GraphFromString(graph_text);
  AnalyticalTimeOracle oracle{PlatformModel{}};
  const Schedule schedule = Tac(loaded, oracle);
  const std::string schedule_text = ScheduleToString(schedule, loaded);

  const Schedule reloaded = ScheduleFromString(schedule_text, loaded);
  EXPECT_TRUE(reloaded.CoversAllRecvs(loaded));
  EXPECT_EQ(reloaded.RecvOrder(loaded), schedule.RecvOrder(loaded));
}

}  // namespace
}  // namespace tictac::core
