#include "models/builder.h"
#include "models/topology.h"
#include "models/zoo.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <stdexcept>
#include <string>

namespace tictac::models {
namespace {

using core::Graph;
using core::OpId;
using core::OpKind;

TEST(Zoo, HasAllTenTable1Models) {
  const auto& zoo = ModelZoo();
  ASSERT_EQ(zoo.size(), 10u);
  EXPECT_EQ(zoo.front().name, "AlexNet v2");
  EXPECT_EQ(zoo.back().name, "VGG-19");
}

TEST(Zoo, FindModelByNameAndUnknownThrows) {
  EXPECT_EQ(FindModel("VGG-16").num_params, 32);
  EXPECT_THROW(FindModel("LeNet"), std::out_of_range);
}

TEST(Zoo, Table1CharacteristicsMatchPaper) {
  struct Row {
    const char* name;
    int params;
    double mib;
    int inf;
    int train;
    int batch;
  };
  // Table 1 of the paper, verbatim.
  const Row rows[] = {
      {"AlexNet v2", 16, 191.89, 235, 483, 512},
      {"Inception v1", 116, 25.24, 1114, 2246, 128},
      {"Inception v2", 141, 42.64, 1369, 2706, 128},
      {"Inception v3", 196, 103.54, 1904, 3672, 32},
      {"ResNet-50 v1", 108, 97.39, 1114, 2096, 32},
      {"ResNet-101 v1", 210, 169.74, 2083, 3898, 64},
      {"ResNet-50 v2", 125, 97.45, 1423, 2813, 64},
      {"ResNet-101 v2", 244, 169.86, 2749, 5380, 32},
      {"VGG-16", 32, 527.79, 388, 758, 32},
      {"VGG-19", 38, 548.05, 442, 857, 32},
  };
  for (const Row& row : rows) {
    const ModelInfo& info = FindModel(row.name);
    EXPECT_EQ(info.num_params, row.params) << row.name;
    EXPECT_DOUBLE_EQ(info.total_param_mib, row.mib) << row.name;
    EXPECT_EQ(info.ops_inference, row.inf) << row.name;
    EXPECT_EQ(info.ops_training, row.train) << row.name;
    EXPECT_EQ(info.standard_batch, row.batch) << row.name;
  }
}

TEST(ParamSizes, ExactCountAndTotal) {
  for (const ModelInfo& info : ModelZoo()) {
    const auto sizes = ParamSizes(info);
    ASSERT_EQ(sizes.size(), static_cast<std::size_t>(info.num_params))
        << info.name;
    std::int64_t total = 0;
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
      EXPECT_GT(sizes[i], 0) << info.name;
      EXPECT_EQ(sizes[i] % 4, 0) << info.name;
      total += sizes[i];
    }
    total += sizes.back();
    EXPECT_EQ(total, info.total_param_bytes()) << info.name;
  }
}

TEST(ParamSizes, ProfileIsNonDecreasingTail) {
  // Back-heavy chain models: the classifier parameters dominate.
  const auto sizes = ParamSizes(FindModel("VGG-16"));
  EXPECT_GT(sizes.back(), sizes.front() * 10);
}

TEST(ParamSizes, Deterministic) {
  const auto& info = FindModel("ResNet-50 v2");
  EXPECT_EQ(ParamSizes(info), ParamSizes(info));
}

class BuilderTest : public ::testing::TestWithParam<
                        std::tuple<std::string, bool>> {};

TEST_P(BuilderTest, MatchesTable1AndStructuralInvariants) {
  const auto& [name, training] = GetParam();
  const ModelInfo& info = FindModel(name);
  const Graph g = BuildWorkerGraph(info, {.training = training});

  // Op count matches Table 1 exactly.
  EXPECT_EQ(static_cast<int>(g.size()),
            training ? info.ops_training : info.ops_inference);

  // One recv per parameter, with exact byte totals.
  const auto recvs = g.RecvOps();
  EXPECT_EQ(static_cast<int>(recvs.size()), info.num_params);
  EXPECT_EQ(g.TotalRecvBytes(), info.total_param_bytes());

  // Sends exist only in training, one per parameter.
  const auto sends = g.OpsOfKind(OpKind::kSend);
  EXPECT_EQ(sends.size(), training ? recvs.size() : 0u);

  // DAG sanity.
  EXPECT_TRUE(g.IsAcyclic());

  // Recvs are roots; sends are leaves (§2.2).
  for (OpId r : recvs) EXPECT_TRUE(g.preds(r).empty());
  for (OpId s : sends) EXPECT_TRUE(g.succs(s).empty());

  // Every recv is consumed by some compute.
  for (OpId r : recvs) EXPECT_FALSE(g.succs(r).empty());

  // Positive compute cost overall.
  double cost = 0.0;
  for (const core::Op& op : g.ops()) cost += op.cost;
  EXPECT_GT(cost, 0.0);

  // Distinct param indices on recvs.
  std::set<int> params;
  for (OpId r : recvs) params.insert(g.op(r).param);
  EXPECT_EQ(params.size(), recvs.size());
}

std::vector<std::tuple<std::string, bool>> AllModelModes() {
  std::vector<std::tuple<std::string, bool>> out;
  for (const ModelInfo& info : ModelZoo()) {
    out.emplace_back(info.name, false);
    out.emplace_back(info.name, true);
  }
  return out;
}

std::string ModeTestName(
    const ::testing::TestParamInfo<std::tuple<std::string, bool>>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + (std::get<1>(info.param) ? "_train" : "_inference");
}

INSTANTIATE_TEST_SUITE_P(AllModels, BuilderTest,
                         ::testing::ValuesIn(AllModelModes()), ModeTestName);

TEST(Builder, BatchFactorScalesComputeLinearly) {
  const ModelInfo& info = FindModel("Inception v1");
  const Graph half = BuildWorkerGraph(info, {.batch_factor = 0.5});
  const Graph full = BuildWorkerGraph(info, {.batch_factor = 1.0});
  double cost_half = 0.0;
  double cost_full = 0.0;
  for (const core::Op& op : half.ops()) cost_half += op.cost;
  for (const core::Op& op : full.ops()) cost_full += op.cost;
  EXPECT_NEAR(cost_full / cost_half, 2.0, 1e-9);
  // Structure does not change with batch size.
  EXPECT_EQ(half.size(), full.size());
  EXPECT_EQ(half.num_edges(), full.num_edges());
}

TEST(Builder, TrainingGraphContainsInferencePrefix) {
  const ModelInfo& info = FindModel("ResNet-50 v1");
  const Graph inf = BuildWorkerGraph(info, {.training = false});
  const Graph train = BuildWorkerGraph(info, {.training = true});
  EXPECT_GT(train.size(), inf.size());
  // Total compute cost in training ~ 3x inference (backward = 2x forward).
  double cost_inf = 0.0;
  double cost_train = 0.0;
  for (const core::Op& op : inf.ops()) cost_inf += op.cost;
  for (const core::Op& op : train.ops()) cost_train += op.cost;
  EXPECT_NEAR(cost_train / cost_inf, 3.0, 0.15);
}

TEST(Builder, TotalComputeGflopsHelper) {
  const ModelInfo& info = FindModel("VGG-16");
  EXPECT_NEAR(TotalComputeGflops(info, {.training = false}),
              15.5 * 32, 1e-9);
  EXPECT_NEAR(TotalComputeGflops(info, {.training = true}),
              3 * 15.5 * 32, 1e-9);
  EXPECT_NEAR(
      TotalComputeGflops(info, {.training = false, .batch_factor = 2.0}),
      2 * 15.5 * 32, 1e-9);
}

TEST(Builder, InceptionHasBranchingResNetHasSkips) {
  // Inception: some op has >= 4 predecessors (module concat).
  const Graph inception =
      BuildWorkerGraph(FindModel("Inception v3"), {});
  bool has_concat = false;
  for (const core::Op& op : inception.ops()) {
    if (op.kind == OpKind::kCompute && inception.preds(op.id).size() >= 4) {
      has_concat = true;
    }
  }
  EXPECT_TRUE(has_concat);

  // ResNet: some compute has two compute predecessors (residual add).
  const Graph resnet = BuildWorkerGraph(FindModel("ResNet-50 v2"), {});
  bool has_add = false;
  for (const core::Op& op : resnet.ops()) {
    if (op.kind != OpKind::kCompute) continue;
    const auto& preds = resnet.preds(op.id);
    int compute_preds = 0;
    for (OpId p : preds) {
      if (resnet.op(p).kind == OpKind::kCompute) ++compute_preds;
    }
    if (compute_preds >= 2) has_add = true;
  }
  EXPECT_TRUE(has_add);
}

TEST(Builder, DeterministicAcrossCalls) {
  const ModelInfo& info = FindModel("VGG-19");
  const Graph a = BuildWorkerGraph(info, {.training = true});
  const Graph b = BuildWorkerGraph(info, {.training = true});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<OpId>(i);
    EXPECT_EQ(a.op(id).name, b.op(id).name);
    EXPECT_EQ(a.op(id).bytes, b.op(id).bytes);
    EXPECT_EQ(a.op(id).cost, b.op(id).cost);
    EXPECT_EQ(a.preds(id), b.preds(id));
  }
}

void ExpectTopologyThrow(const std::function<void()>& build,
                         const std::string& fragment) {
  try {
    build();
    FAIL() << "expected invalid_argument containing '" << fragment << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(FatTree, PodOfSplitsHostsContiguously) {
  // floor(index * pods / count): contiguous, balanced, covers every pod.
  EXPECT_EQ(PodOf(0, 6, 2), 0);
  EXPECT_EQ(PodOf(2, 6, 2), 0);
  EXPECT_EQ(PodOf(3, 6, 2), 1);
  EXPECT_EQ(PodOf(5, 6, 2), 1);
  // Uneven split: 5 hosts over 2 pods -> 3 + 2.
  EXPECT_EQ(PodOf(2, 5, 2), 0);
  EXPECT_EQ(PodOf(3, 5, 2), 1);
  // pods == count degenerates to one host per pod.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(PodOf(i, 4, 4), i);
}

TEST(FatTree, ValidationNamesTheOffendingKnob) {
  const FabricShape shape{.num_workers = 2, .num_ps = 1,
                          .bandwidth_bps = 100.0};
  ExpectTopologyThrow(
      [&] { BuildFatTreeFlowNetwork(shape, {.pods = 0}); },
      "pods must be >= 1");
  ExpectTopologyThrow(
      [&] { BuildFatTreeFlowNetwork(shape, {.oversubscription = 0.0}); },
      "oversubscription must be a positive finite ratio");
  ExpectTopologyThrow(
      [&] { BuildFatTreeFlowNetwork(shape, {.pods = 8}); },
      "some pods would be empty");
  ExpectTopologyThrow(
      [&] {
        BuildFatTreeFlowNetwork({.num_workers = 0, .num_ps = 1,
                                 .bandwidth_bps = 100.0}, {});
      },
      "at least one worker and one PS");
  ExpectTopologyThrow(
      [&] {
        BuildFatTreeFlowNetwork({.num_workers = 2, .num_ps = 1,
                                 .bandwidth_bps = 0.0}, {});
      },
      "bandwidth_bps must be positive");
}

TEST(FatTree, SinglePodBuildsNicOnlyContention) {
  // W=2, S=1, line rate 100: 6 NIC links (worker in/out x2, PS out/in),
  // no core. Channel resources map to exactly the two NIC directions
  // they traverse; compute and PS-CPU resources stay non-flow.
  const sim::FlowNetwork net = BuildFatTreeFlowNetwork(
      {.num_workers = 2, .num_ps = 1, .bandwidth_bps = 100.0}, {});
  ASSERT_EQ(net.links.size(), 6u);
  for (const sim::FlowLink& link : net.links) {
    EXPECT_DOUBLE_EQ(link.capacity_bps, 100.0);
  }
  // Block: workers [0,2), downlinks [2,4), uplinks [4,6), PS CPU {6}.
  ASSERT_EQ(net.resource_links.size(), 7u);
  EXPECT_TRUE(net.resource_links[0].empty());
  EXPECT_TRUE(net.resource_links[1].empty());
  EXPECT_TRUE(net.resource_links[6].empty());
  // Downlink w=0: PS egress (link 4) + worker 0 ingress (link 0).
  EXPECT_EQ(net.resource_links[2], (std::vector<int>{0, 4}));
  EXPECT_EQ(net.resource_links[3], (std::vector<int>{1, 4}));
  // Uplink w=0: worker 0 egress (link 2) + PS ingress (link 5).
  EXPECT_EQ(net.resource_links[4], (std::vector<int>{2, 5}));
  EXPECT_EQ(net.resource_links[5], (std::vector<int>{3, 5}));
  // Nominal rate = static per-channel split, line / W.
  for (int r = 2; r <= 5; ++r) {
    EXPECT_DOUBLE_EQ(net.resource_nominal_bps[static_cast<std::size_t>(r)],
                     50.0);
  }
  net.Validate(7);
}

TEST(FatTree, OversubscribedCoreLinksOnCrossPodChannelsOnly) {
  // W=2, S=2, pods=2, oversub=4: worker 0 + PS 0 land in pod 0, worker 1
  // + PS 1 in pod 1. 8 NIC links at 100 plus 2 core uplinks and 2 core
  // downlinks at (2 hosts x 100) / 4 = 50.
  const sim::FlowNetwork net = BuildFatTreeFlowNetwork(
      {.num_workers = 2, .num_ps = 2, .bandwidth_bps = 100.0},
      {.pods = 2, .oversubscription = 4.0});
  ASSERT_EQ(net.links.size(), 12u);
  for (int l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(net.links[static_cast<std::size_t>(l)].capacity_bps,
                     100.0);
  }
  for (int l = 8; l < 12; ++l) {
    EXPECT_DOUBLE_EQ(net.links[static_cast<std::size_t>(l)].capacity_bps,
                     50.0);
  }
  // Block: workers [0,2), downlinks [2,6), uplinks [6,10), PS CPUs [10,12).
  ASSERT_EQ(net.resource_links.size(), 12u);
  // Pod-local downlink (w=0, s=0): NICs only.
  EXPECT_EQ(net.resource_links[2], (std::vector<int>{0, 4}));
  // Cross-pod downlink (w=0, s=1): NICs + pod 1's core uplink (9) and
  // pod 0's core downlink (10).
  EXPECT_EQ(net.resource_links[3], (std::vector<int>{0, 5, 9, 10}));
  // Cross-pod uplink (w=1, s=0): worker 1 egress (3), PS 0 ingress (6),
  // pod 1's core uplink (9), pod 0's core downlink (10).
  EXPECT_EQ(net.resource_links[8], (std::vector<int>{3, 6, 9, 10}));
  net.Validate(12);
}

TEST(FatTree, AppendOffsetsSecondFabricsLinksAndResources) {
  // Two fabrics in one network, the sweep's merged layout: fabric B's
  // links start after A's 6, its resources after A's block of 7.
  sim::FlowNetwork net;
  AppendFatTreeFabric({.num_workers = 2, .num_ps = 1,
                       .bandwidth_bps = 100.0, .resource_base = 0},
                      {}, &net);
  AppendFatTreeFabric({.num_workers = 1, .num_ps = 1,
                       .bandwidth_bps = 200.0, .resource_base = 7},
                      {}, &net);
  ASSERT_EQ(net.links.size(), 10u);
  EXPECT_DOUBLE_EQ(net.links[6].capacity_bps, 200.0);
  // Fabric B block: worker {7}, downlink {8}, uplink {9}, PS CPU {10}.
  ASSERT_EQ(net.resource_links.size(), 11u);
  EXPECT_TRUE(net.resource_links[7].empty());
  EXPECT_EQ(net.resource_links[8], (std::vector<int>{6, 8}));
  EXPECT_EQ(net.resource_links[9], (std::vector<int>{7, 9}));
  EXPECT_TRUE(net.resource_links[10].empty());
  // Fabric A's mappings are untouched; B's nominal is its own line rate
  // over its single worker.
  EXPECT_EQ(net.resource_links[2], (std::vector<int>{0, 4}));
  EXPECT_DOUBLE_EQ(net.resource_nominal_bps[8], 200.0);
  net.Validate(11);
}

}  // namespace
}  // namespace tictac::models
