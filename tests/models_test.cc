#include "models/builder.h"
#include "models/zoo.h"

#include <gtest/gtest.h>

#include <set>

namespace tictac::models {
namespace {

using core::Graph;
using core::OpId;
using core::OpKind;

TEST(Zoo, HasAllTenTable1Models) {
  const auto& zoo = ModelZoo();
  ASSERT_EQ(zoo.size(), 10u);
  EXPECT_EQ(zoo.front().name, "AlexNet v2");
  EXPECT_EQ(zoo.back().name, "VGG-19");
}

TEST(Zoo, FindModelByNameAndUnknownThrows) {
  EXPECT_EQ(FindModel("VGG-16").num_params, 32);
  EXPECT_THROW(FindModel("LeNet"), std::out_of_range);
}

TEST(Zoo, Table1CharacteristicsMatchPaper) {
  struct Row {
    const char* name;
    int params;
    double mib;
    int inf;
    int train;
    int batch;
  };
  // Table 1 of the paper, verbatim.
  const Row rows[] = {
      {"AlexNet v2", 16, 191.89, 235, 483, 512},
      {"Inception v1", 116, 25.24, 1114, 2246, 128},
      {"Inception v2", 141, 42.64, 1369, 2706, 128},
      {"Inception v3", 196, 103.54, 1904, 3672, 32},
      {"ResNet-50 v1", 108, 97.39, 1114, 2096, 32},
      {"ResNet-101 v1", 210, 169.74, 2083, 3898, 64},
      {"ResNet-50 v2", 125, 97.45, 1423, 2813, 64},
      {"ResNet-101 v2", 244, 169.86, 2749, 5380, 32},
      {"VGG-16", 32, 527.79, 388, 758, 32},
      {"VGG-19", 38, 548.05, 442, 857, 32},
  };
  for (const Row& row : rows) {
    const ModelInfo& info = FindModel(row.name);
    EXPECT_EQ(info.num_params, row.params) << row.name;
    EXPECT_DOUBLE_EQ(info.total_param_mib, row.mib) << row.name;
    EXPECT_EQ(info.ops_inference, row.inf) << row.name;
    EXPECT_EQ(info.ops_training, row.train) << row.name;
    EXPECT_EQ(info.standard_batch, row.batch) << row.name;
  }
}

TEST(ParamSizes, ExactCountAndTotal) {
  for (const ModelInfo& info : ModelZoo()) {
    const auto sizes = ParamSizes(info);
    ASSERT_EQ(sizes.size(), static_cast<std::size_t>(info.num_params))
        << info.name;
    std::int64_t total = 0;
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
      EXPECT_GT(sizes[i], 0) << info.name;
      EXPECT_EQ(sizes[i] % 4, 0) << info.name;
      total += sizes[i];
    }
    total += sizes.back();
    EXPECT_EQ(total, info.total_param_bytes()) << info.name;
  }
}

TEST(ParamSizes, ProfileIsNonDecreasingTail) {
  // Back-heavy chain models: the classifier parameters dominate.
  const auto sizes = ParamSizes(FindModel("VGG-16"));
  EXPECT_GT(sizes.back(), sizes.front() * 10);
}

TEST(ParamSizes, Deterministic) {
  const auto& info = FindModel("ResNet-50 v2");
  EXPECT_EQ(ParamSizes(info), ParamSizes(info));
}

class BuilderTest : public ::testing::TestWithParam<
                        std::tuple<std::string, bool>> {};

TEST_P(BuilderTest, MatchesTable1AndStructuralInvariants) {
  const auto& [name, training] = GetParam();
  const ModelInfo& info = FindModel(name);
  const Graph g = BuildWorkerGraph(info, {.training = training});

  // Op count matches Table 1 exactly.
  EXPECT_EQ(static_cast<int>(g.size()),
            training ? info.ops_training : info.ops_inference);

  // One recv per parameter, with exact byte totals.
  const auto recvs = g.RecvOps();
  EXPECT_EQ(static_cast<int>(recvs.size()), info.num_params);
  EXPECT_EQ(g.TotalRecvBytes(), info.total_param_bytes());

  // Sends exist only in training, one per parameter.
  const auto sends = g.OpsOfKind(OpKind::kSend);
  EXPECT_EQ(sends.size(), training ? recvs.size() : 0u);

  // DAG sanity.
  EXPECT_TRUE(g.IsAcyclic());

  // Recvs are roots; sends are leaves (§2.2).
  for (OpId r : recvs) EXPECT_TRUE(g.preds(r).empty());
  for (OpId s : sends) EXPECT_TRUE(g.succs(s).empty());

  // Every recv is consumed by some compute.
  for (OpId r : recvs) EXPECT_FALSE(g.succs(r).empty());

  // Positive compute cost overall.
  double cost = 0.0;
  for (const core::Op& op : g.ops()) cost += op.cost;
  EXPECT_GT(cost, 0.0);

  // Distinct param indices on recvs.
  std::set<int> params;
  for (OpId r : recvs) params.insert(g.op(r).param);
  EXPECT_EQ(params.size(), recvs.size());
}

std::vector<std::tuple<std::string, bool>> AllModelModes() {
  std::vector<std::tuple<std::string, bool>> out;
  for (const ModelInfo& info : ModelZoo()) {
    out.emplace_back(info.name, false);
    out.emplace_back(info.name, true);
  }
  return out;
}

std::string ModeTestName(
    const ::testing::TestParamInfo<std::tuple<std::string, bool>>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + (std::get<1>(info.param) ? "_train" : "_inference");
}

INSTANTIATE_TEST_SUITE_P(AllModels, BuilderTest,
                         ::testing::ValuesIn(AllModelModes()), ModeTestName);

TEST(Builder, BatchFactorScalesComputeLinearly) {
  const ModelInfo& info = FindModel("Inception v1");
  const Graph half = BuildWorkerGraph(info, {.batch_factor = 0.5});
  const Graph full = BuildWorkerGraph(info, {.batch_factor = 1.0});
  double cost_half = 0.0;
  double cost_full = 0.0;
  for (const core::Op& op : half.ops()) cost_half += op.cost;
  for (const core::Op& op : full.ops()) cost_full += op.cost;
  EXPECT_NEAR(cost_full / cost_half, 2.0, 1e-9);
  // Structure does not change with batch size.
  EXPECT_EQ(half.size(), full.size());
  EXPECT_EQ(half.num_edges(), full.num_edges());
}

TEST(Builder, TrainingGraphContainsInferencePrefix) {
  const ModelInfo& info = FindModel("ResNet-50 v1");
  const Graph inf = BuildWorkerGraph(info, {.training = false});
  const Graph train = BuildWorkerGraph(info, {.training = true});
  EXPECT_GT(train.size(), inf.size());
  // Total compute cost in training ~ 3x inference (backward = 2x forward).
  double cost_inf = 0.0;
  double cost_train = 0.0;
  for (const core::Op& op : inf.ops()) cost_inf += op.cost;
  for (const core::Op& op : train.ops()) cost_train += op.cost;
  EXPECT_NEAR(cost_train / cost_inf, 3.0, 0.15);
}

TEST(Builder, TotalComputeGflopsHelper) {
  const ModelInfo& info = FindModel("VGG-16");
  EXPECT_NEAR(TotalComputeGflops(info, {.training = false}),
              15.5 * 32, 1e-9);
  EXPECT_NEAR(TotalComputeGflops(info, {.training = true}),
              3 * 15.5 * 32, 1e-9);
  EXPECT_NEAR(
      TotalComputeGflops(info, {.training = false, .batch_factor = 2.0}),
      2 * 15.5 * 32, 1e-9);
}

TEST(Builder, InceptionHasBranchingResNetHasSkips) {
  // Inception: some op has >= 4 predecessors (module concat).
  const Graph inception =
      BuildWorkerGraph(FindModel("Inception v3"), {});
  bool has_concat = false;
  for (const core::Op& op : inception.ops()) {
    if (op.kind == OpKind::kCompute && inception.preds(op.id).size() >= 4) {
      has_concat = true;
    }
  }
  EXPECT_TRUE(has_concat);

  // ResNet: some compute has two compute predecessors (residual add).
  const Graph resnet = BuildWorkerGraph(FindModel("ResNet-50 v2"), {});
  bool has_add = false;
  for (const core::Op& op : resnet.ops()) {
    if (op.kind != OpKind::kCompute) continue;
    const auto& preds = resnet.preds(op.id);
    int compute_preds = 0;
    for (OpId p : preds) {
      if (resnet.op(p).kind == OpKind::kCompute) ++compute_preds;
    }
    if (compute_preds >= 2) has_add = true;
  }
  EXPECT_TRUE(has_add);
}

TEST(Builder, DeterministicAcrossCalls) {
  const ModelInfo& info = FindModel("VGG-19");
  const Graph a = BuildWorkerGraph(info, {.training = true});
  const Graph b = BuildWorkerGraph(info, {.training = true});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<OpId>(i);
    EXPECT_EQ(a.op(id).name, b.op(id).name);
    EXPECT_EQ(a.op(id).bytes, b.op(id).bytes);
    EXPECT_EQ(a.op(id).cost, b.op(id).cost);
    EXPECT_EQ(a.preds(id), b.preds(id));
  }
}

}  // namespace
}  // namespace tictac::models
