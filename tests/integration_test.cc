// End-to-end behavioural tests mirroring the paper's headline claims,
// expressed through the declarative ExperimentSpec / Session API.
#include <gtest/gtest.h>

#include "harness/session.h"
#include "models/zoo.h"
#include "util/stats.h"

namespace tictac {
namespace {

using runtime::ExperimentSpec;

ExperimentSpec Spec(const std::string& model, const std::string& env,
                    int workers, int ps, bool training,
                    const std::string& policy, std::uint64_t seed,
                    int iterations) {
  ExperimentSpec spec;
  spec.model = model;
  spec.cluster.env = env;
  spec.cluster.workers = workers;
  spec.cluster.ps = ps;
  spec.cluster.training = training;
  spec.policy = policy;
  spec.seed = seed;
  spec.iterations = iterations;
  return spec;
}

double Speedup(harness::Session& session, const ExperimentSpec& spec) {
  ExperimentSpec baseline = spec;
  baseline.policy = "baseline";
  const double base = session.Run(baseline).Throughput();
  return session.Run(spec).Throughput() / base - 1.0;
}

TEST(Integration, FigureModelListMatchesFigures) {
  const auto names = harness::FigureModels();
  EXPECT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    EXPECT_NO_THROW(models::FindModel(name));
  }
}

TEST(Integration, TicImprovesMostModelsInference) {
  // Figure 7's qualitative claim: scheduling helps, and large branchy
  // models gain more than small chain models.
  harness::Session session;
  const double inception_gain = Speedup(
      session, Spec("Inception v2", "envG", 4, 1, false, "tic", 42, 6));
  const double alexnet_gain = Speedup(
      session, Spec("AlexNet v2", "envG", 4, 1, false, "tic", 42, 6));
  EXPECT_GT(inception_gain, 0.15);
  EXPECT_GT(inception_gain, alexnet_gain);
}

TEST(Integration, InferenceGainsExceedTrainingGains) {
  // §6.1: "we obtain higher gains in the inference phase than training."
  harness::Session session;
  const double inference = Speedup(
      session, Spec("Inception v2", "envG", 4, 1, false, "tic", 11, 6));
  const double training = Speedup(
      session, Spec("Inception v2", "envG", 4, 1, true, "tic", 11, 6));
  EXPECT_GT(inference, training);
}

TEST(Integration, TacMatchesOrBeatsTicOnEnvC) {
  // Appendix B: TIC is comparable to TAC; neither should collapse.
  harness::Session session;
  const double tic = Speedup(
      session, Spec("Inception v2", "envC", 4, 1, false, "tic", 23, 6));
  const double tac = Speedup(
      session, Spec("Inception v2", "envC", 4, 1, false, "tac", 23, 6));
  EXPECT_GT(tic, 0.0);
  EXPECT_GT(tac, 0.0);
  EXPECT_NEAR(tic, tac, 0.10);
}

TEST(Integration, EfficiencyPredictsStepTime) {
  // Figure 12a: scheduling efficiency regresses strongly against
  // normalized step time across runs with and without scheduling.
  harness::Session session;
  std::vector<double> efficiency;
  std::vector<double> step_time;
  for (const char* policy : {"baseline", "tac"}) {
    const auto result = session.Run(
        Spec("Inception v2", "envC", 2, 1, true, policy, 5, 30));
    for (const auto& it : result.iterations) {
      efficiency.push_back(it.mean_efficiency);
      step_time.push_back(it.makespan);
    }
  }
  const auto fit = util::FitLine(efficiency, step_time);
  EXPECT_LT(fit.slope, 0.0);  // higher efficiency => lower step time
  EXPECT_GT(fit.r2, 0.85);
}

TEST(Integration, BaselineStepTimeSpreadExceedsTac) {
  // Figure 12b: the baseline CDF is wide, TAC's is sharp.
  harness::Session session;
  std::vector<double> base_times;
  std::vector<double> tac_times;
  const auto base = session.Run(
      Spec("Inception v2", "envC", 2, 1, false, "baseline", 7, 30));
  const auto tac = session.Run(
      Spec("Inception v2", "envC", 2, 1, false, "tac", 7, 30));
  for (const auto& it : base.iterations) base_times.push_back(it.makespan);
  for (const auto& it : tac.iterations) tac_times.push_back(it.makespan);
  EXPECT_GT(util::Stddev(base_times) / util::Mean(base_times),
            2.0 * util::Stddev(tac_times) / util::Mean(tac_times));
}

TEST(Integration, MoreWorkersIncreaseAggregateThroughput) {
  harness::Session session;
  const double t2 =
      session.Run(Spec("ResNet-50 v1", "envG", 2, 1, false, "tic", 3, 5))
          .Throughput();
  const double t8 =
      session.Run(Spec("ResNet-50 v1", "envG", 8, 2, false, "tic", 3, 5))
          .Throughput();
  EXPECT_GT(t8, t2);
}

TEST(Integration, MorePsImprovesCommBoundThroughput) {
  // Figure 9: spreading parameters over more PS parallelizes transfers.
  harness::Session session;
  const double ps1 =
      session.Run(Spec("VGG-16", "envG", 8, 1, false, "tic", 3, 5))
          .Throughput();
  const double ps4 =
      session.Run(Spec("VGG-16", "envG", 8, 4, false, "tic", 3, 5))
          .Throughput();
  EXPECT_GT(ps4, ps1 * 1.5);
}

}  // namespace
}  // namespace tictac
