// End-to-end behavioural tests mirroring the paper's headline claims.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "models/zoo.h"
#include "util/stats.h"

namespace tictac {
namespace {

using runtime::EnvC;
using runtime::EnvG;

TEST(Integration, FigureModelListMatchesFigures) {
  const auto names = harness::FigureModels();
  EXPECT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    EXPECT_NO_THROW(models::FindModel(name));
  }
}

TEST(Integration, SpeedupRowArithmetic) {
  harness::SpeedupRow row;
  row.baseline_throughput = 100.0;
  row.scheduled_throughput = 120.0;
  EXPECT_NEAR(row.speedup(), 0.2, 1e-12);
  harness::SpeedupRow zero;
  EXPECT_EQ(zero.speedup(), 0.0);
}

TEST(Integration, TicImprovesMostModelsInference) {
  // Figure 7's qualitative claim: scheduling helps, and large branchy
  // models gain more than small chain models.
  double inception_gain = 0.0;
  double alexnet_gain = 0.0;
  for (const char* name : {"Inception v2", "AlexNet v2"}) {
    const auto row = harness::MeasureSpeedup(
        models::FindModel(name), EnvG(4, 1, false), "tic", 42, 6);
    if (std::string(name) == "Inception v2") inception_gain = row.speedup();
    if (std::string(name) == "AlexNet v2") alexnet_gain = row.speedup();
  }
  EXPECT_GT(inception_gain, 0.15);
  EXPECT_GT(inception_gain, alexnet_gain);
}

TEST(Integration, InferenceGainsExceedTrainingGains) {
  // §6.1: "we obtain higher gains in the inference phase than training."
  const auto& info = models::FindModel("Inception v2");
  const auto inference = harness::MeasureSpeedup(
      info, EnvG(4, 1, false), "tic", 11, 6);
  const auto training = harness::MeasureSpeedup(
      info, EnvG(4, 1, true), "tic", 11, 6);
  EXPECT_GT(inference.speedup(), training.speedup());
}

TEST(Integration, TacMatchesOrBeatsTicOnEnvC) {
  // Appendix B: TIC is comparable to TAC; neither should collapse.
  const auto& info = models::FindModel("Inception v2");
  const auto tic = harness::MeasureSpeedup(
      info, EnvC(4, 1, false), "tic", 23, 6);
  const auto tac = harness::MeasureSpeedup(
      info, EnvC(4, 1, false), "tac", 23, 6);
  EXPECT_GT(tic.speedup(), 0.0);
  EXPECT_GT(tac.speedup(), 0.0);
  EXPECT_NEAR(tic.speedup(), tac.speedup(), 0.10);
}

TEST(Integration, EfficiencyPredictsStepTime) {
  // Figure 12a: scheduling efficiency regresses strongly against
  // normalized step time across runs with and without scheduling.
  const auto& info = models::FindModel("Inception v2");
  runtime::Runner runner(info, EnvC(2, 1, true));
  std::vector<double> efficiency;
  std::vector<double> step_time;
  for (const std::string policy : {"baseline", "tac"}) {
    const auto result = runner.Run(policy, 30, 5);
    for (const auto& it : result.iterations) {
      efficiency.push_back(it.mean_efficiency);
      step_time.push_back(it.makespan);
    }
  }
  const auto fit = util::FitLine(efficiency, step_time);
  EXPECT_LT(fit.slope, 0.0);  // higher efficiency => lower step time
  EXPECT_GT(fit.r2, 0.85);
}

TEST(Integration, BaselineStepTimeSpreadExceedsTac) {
  // Figure 12b: the baseline CDF is wide, TAC's is sharp.
  const auto& info = models::FindModel("Inception v2");
  runtime::Runner runner(info, EnvC(2, 1, false));
  std::vector<double> base_times;
  std::vector<double> tac_times;
  const auto base = runner.Run("baseline", 30, 7);
  const auto tac = runner.Run("tac", 30, 7);
  for (const auto& it : base.iterations) base_times.push_back(it.makespan);
  for (const auto& it : tac.iterations) tac_times.push_back(it.makespan);
  EXPECT_GT(util::Stddev(base_times) / util::Mean(base_times),
            2.0 * util::Stddev(tac_times) / util::Mean(tac_times));
}

TEST(Integration, MoreWorkersIncreaseAggregateThroughput) {
  const auto& info = models::FindModel("ResNet-50 v1");
  const double t2 = harness::MeasureThroughput(
      info, EnvG(2, 1, false), "tic", 3, 5);
  const double t8 = harness::MeasureThroughput(
      info, EnvG(8, 2, false), "tic", 3, 5);
  EXPECT_GT(t8, t2);
}

TEST(Integration, MorePsImprovesCommBoundThroughput) {
  // Figure 9: spreading parameters over more PS parallelizes transfers.
  const auto& info = models::FindModel("VGG-16");
  const double ps1 = harness::MeasureThroughput(
      info, EnvG(8, 1, false), "tic", 3, 5);
  const double ps4 = harness::MeasureThroughput(
      info, EnvG(8, 4, false), "tic", 3, 5);
  EXPECT_GT(ps4, ps1 * 1.5);
}

}  // namespace
}  // namespace tictac
